//! The hardened supervisor's contract, exercised end to end with the
//! deterministic fault-injection harness (`jsmt-faults`):
//!
//! * a failing cell — injected panic, dead worker, livelock, blown
//!   deadline — is isolated: the grid completes, the failure manifest
//!   names exactly the injected cells with component/cycle attribution,
//!   and every healthy cell's CSV row is bit-identical to a clean run;
//! * a transient fault plus a supervisor retry converges to the clean
//!   (golden) output;
//! * every failure leaves a crash-repro bundle that `CrashBundle::replay`
//!   reproduces deterministically;
//! * injected durable-write faults (I/O error, corruption) surface as
//!   typed `JsmtError`s from the checkpoint path, never as panics.

use std::sync::{Mutex, MutexGuard, OnceLock};

use jsmt_core::experiments::{
    self as exp, Engine, ExperimentCtx, FailureKind, Parallelism, SupervisorCfg,
};
use jsmt_core::{ErrorKind, JsmtError};
use jsmt_workloads::BenchmarkId;
use proptest::prelude::*;

/// The fault plan is process-global: serialize every test that arms one.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn plan_lock() -> MutexGuard<'static, ()> {
    PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tiny context: the full 9×9 grid stays cheap enough to run several
/// times (fault isolation does not depend on scale).
fn tiny() -> ExperimentCtx {
    ExperimentCtx {
        scale: 0.01,
        repeats: 1,
        seed: 0xA5,
    }
}

/// The clean (fault-free) grid CSV at [`tiny`] scale — the golden
/// reference every fault-injected run is compared against.
fn clean_csv() -> &'static str {
    static CLEAN: OnceLock<String> = OnceLock::new();
    CLEAN.get_or_init(|| exp::csv_grid(&exp::pair_matrix_on(&Engine::serial(), &tiny())))
}

fn grid_labels() -> Vec<String> {
    let names: Vec<&str> = BenchmarkId::SINGLE_THREADED
        .iter()
        .map(|b| b.name())
        .collect();
    names
        .iter()
        .flat_map(|a| names.iter().map(move |b| format!("{a}+{b}")))
        .collect()
}

/// Assert `partial` is exactly `full` minus the rows whose `a,b` prefix
/// is in `missing` (order preserved); returns the dropped lines.
fn assert_rows_are_clean_subset(partial: &str, full: &str, missing: &[&str]) {
    let full_lines: Vec<&str> = full.lines().collect();
    let mut part = partial.lines();
    let mut dropped = Vec::new();
    let mut pending = part.next();
    for line in &full_lines {
        if pending == Some(line) {
            pending = part.next();
        } else {
            dropped.push(*line);
        }
    }
    assert_eq!(
        pending, None,
        "partial CSV has a row absent from the clean run"
    );
    assert_eq!(
        dropped.len(),
        missing.len(),
        "expected exactly {} dropped rows, got {dropped:?}",
        missing.len()
    );
    for label in missing {
        let prefix = format!("{},", label.replace('+', ","));
        assert!(
            dropped.iter().any(|l| l.starts_with(&prefix)),
            "row for failed cell {label} should be the one omitted (dropped: {dropped:?})"
        );
    }
}

/// With no fault plan armed, the supervised grid is byte-identical to
/// the unsupervised one: supervision only observes the simulation.
#[test]
fn clean_supervised_grid_is_bit_identical_to_unsupervised() {
    let _l = plan_lock();
    jsmt_faults::clear();
    let sg = exp::pair_matrix_supervised(
        &Engine::new(Parallelism::Threads(4)),
        &tiny(),
        &SupervisorCfg::default(),
    );
    assert!(sg.is_complete());
    assert_eq!(sg.manifest_csv().lines().count(), 1, "header only");
    assert_eq!(sg.csv(), clean_csv());
    assert_eq!(exp::csv_grid(&sg.into_grid()), clean_csv());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The headline isolation property: a panic injected into any single
    /// cell leaves every other cell's CSV row bit-identical to a clean
    /// run, and the manifest attributes exactly that cell.
    #[test]
    fn single_cell_panic_leaves_every_other_row_bit_identical(idx in 0usize..81) {
        let _l = plan_lock();
        let labels = grid_labels();
        let label = &labels[idx];
        jsmt_faults::install_spec(&format!(
            "panic,component=system,cycle=2000,scope=pair-grid/{label}"
        ))
        .expect("valid spec");

        let cfg = SupervisorCfg {
            retries: 0,
            ..SupervisorCfg::default()
        };
        let sg = exp::pair_matrix_supervised(&Engine::new(Parallelism::Threads(4)), &tiny(), &cfg);
        jsmt_faults::clear();

        prop_assert!(!sg.is_complete());
        prop_assert_eq!(sg.cells.len(), 80);
        prop_assert_eq!(sg.failures.len(), 1);
        let f = &sg.failures[0];
        prop_assert_eq!(&f.stage, "pair-grid");
        prop_assert_eq!(&f.label, label);
        prop_assert_eq!(f.index, idx);
        prop_assert_eq!(f.kind, FailureKind::Panic);
        prop_assert_eq!(&f.component, "system");
        prop_assert!(f.cycle >= 2000, "fired at cycle {}", f.cycle);
        prop_assert_eq!(f.attempts, 1);

        let manifest = sg.manifest_csv();
        prop_assert_eq!(manifest.lines().count(), 2);
        prop_assert!(manifest.contains(label) && manifest.contains("panic"));

        assert_rows_are_clean_subset(&sg.csv(), clean_csv(), &[label]);
    }
}

/// A transient fault (`attempts=1`: it only fires on the first attempt)
/// plus one supervisor retry converges to the clean golden bytes.
#[test]
fn transient_fault_with_retry_converges_to_clean_output() {
    let _l = plan_lock();
    jsmt_faults::install_spec(
        "panic,component=system,cycle=2000,scope=pair-grid/jess+db,attempts=1",
    )
    .expect("valid spec");
    let sg = exp::pair_matrix_supervised(
        &Engine::new(Parallelism::Threads(4)),
        &tiny(),
        &SupervisorCfg::default(), // retries: 1
    );
    jsmt_faults::clear();
    assert!(sg.is_complete(), "retry must clear the transient fault");
    assert_eq!(sg.csv(), clean_csv());
}

/// A dying worker thread and a livelocked (starved) cell in the same
/// grid: the run completes, the manifest lists exactly those two cells
/// with the right kinds, and the 79 surviving rows match the clean run.
#[test]
fn grid_survives_worker_death_and_livelock_with_exact_attribution() {
    let _l = plan_lock();
    let dead = "compress+jack";
    let stuck = "db+MolDyn";
    jsmt_faults::install_spec(&format!(
        "worker-panic,scope=pair-grid/{dead}; starve,cycle=1000,scope=pair-grid/{stuck}"
    ))
    .expect("valid spec");
    let cfg = SupervisorCfg {
        retries: 0,
        livelock_cycles: 500_000,
        ..SupervisorCfg::default()
    };
    let sg = exp::pair_matrix_supervised(&Engine::new(Parallelism::Threads(4)), &tiny(), &cfg);
    jsmt_faults::clear();

    assert_eq!(sg.cells.len(), 79);
    assert_eq!(sg.failures.len(), 2);
    let by_label = |l: &str| {
        sg.failures
            .iter()
            .find(|f| f.label == l)
            .unwrap_or_else(|| panic!("no failure recorded for {l}"))
    };
    let f_dead = by_label(dead);
    assert_eq!(f_dead.kind, FailureKind::Panic);
    assert_eq!(f_dead.component, "worker");
    let f_stuck = by_label(stuck);
    assert_eq!(f_stuck.kind, FailureKind::Livelock);
    assert_eq!(f_stuck.component, "watchdog");
    assert!(
        f_stuck.cycle >= 500_000,
        "livelock tripped before the threshold: cycle {}",
        f_stuck.cycle
    );

    assert_rows_are_clean_subset(&sg.csv(), clean_csv(), &[dead, stuck]);
}

/// A cell that overruns its wall-clock deadline is cancelled
/// cooperatively and attributed as `Deadline`. (Wall-clock is
/// nondeterministic, so the assertion is on the kind, not the cycle —
/// the same rule `CrashBundle::replay` uses.)
#[test]
fn deadline_overrun_is_cancelled_and_attributed() {
    let _l = plan_lock();
    jsmt_faults::install_spec("starve,cycle=100").expect("valid spec");
    let cfg = SupervisorCfg {
        retries: 0,
        deadline: Some(std::time::Duration::from_millis(50)),
        livelock_cycles: u64::MAX, // let the deadline trip first
        ..SupervisorCfg::default()
    };
    let ctx = tiny();
    let engine = Engine::serial();
    let results = engine.run_supervised(
        "solo-baselines",
        &cfg,
        &ctx,
        vec![("compress".to_string(), BenchmarkId::Compress)],
        |&id| exp::solo_baseline_cycles(id, &ctx),
    );
    jsmt_faults::clear();
    let f = results[0].as_ref().expect_err("starved cell must time out");
    assert_eq!(f.kind, FailureKind::Deadline);
    assert_eq!(f.component, "watchdog");
}

/// Every failure leaves a self-contained crash-repro bundle whose
/// replay re-arms the recorded fault plan and reproduces the failure
/// bit-for-bit (same kind, component, and cycle).
#[test]
fn crash_bundle_replay_reproduces_the_recorded_failure() {
    let _l = plan_lock();
    let dir = std::env::temp_dir().join(format!("jsmt-bundles-{}", std::process::id()));
    let ctx = tiny();
    let engine = Engine::serial();
    // Mirror `pair_matrix_supervised`'s scoping: baselines are computed
    // (and memoized) before the fault plan arms, exactly as
    // `CrashBundle::replay` does on the other side.
    let base_a = engine.solo_baseline(BenchmarkId::Compress, &ctx);
    let base_b = engine.solo_baseline(BenchmarkId::Db, &ctx);
    let spec = "panic,component=system,cycle=2000,scope=pair-grid/compress+db";
    jsmt_faults::install_spec(spec).expect("valid spec");

    let cfg = SupervisorCfg {
        retries: 0,
        bundle_dir: Some(dir.clone()),
        ..SupervisorCfg::default()
    };
    let results = engine.run_supervised(
        "pair-grid",
        &cfg,
        &ctx,
        vec![(
            "compress+db".to_string(),
            (BenchmarkId::Compress, BenchmarkId::Db),
        )],
        |&(a, b)| exp::run_pair(a, b, base_a, base_b, &ctx),
    );
    jsmt_faults::clear();

    let failure = results[0].as_ref().expect_err("injected panic must fire");
    let path = failure.bundle.as_ref().expect("bundle written");
    let bundle = exp::CrashBundle::load(path).expect("bundle loads");
    assert_eq!(bundle.stage, "pair-grid");
    assert_eq!(bundle.label, "compress+db");
    assert_eq!(bundle.kind, FailureKind::Panic);
    assert_eq!(bundle.component, "system");
    assert_eq!(bundle.cycle, failure.cycle);
    assert_eq!(bundle.fault_spec, spec);

    let report = bundle.replay().expect("replay runs");
    let observed = report.observed.expect("replay must fail the same way");
    assert_eq!(observed.kind, FailureKind::Panic);
    assert_eq!(observed.component, "system");
    assert_eq!(observed.cycle, failure.cycle, "replay cycle diverged");
    assert!(report.reproduced);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected durable-write faults surface as typed errors from the
/// checkpointed grid driver: an I/O error fails the run with
/// `ErrorKind::Io`, and a corrupted write is detected at resume as
/// `ErrorKind::Snapshot` — never a panic, never silent acceptance.
#[test]
fn checkpoint_write_faults_surface_as_typed_errors() {
    let _l = plan_lock();
    let ctx = tiny();
    let engine = Engine::serial();
    let dir = std::env::temp_dir().join(format!("jsmt-ckpt-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // First durable checkpoint write fails with an injected io::Error.
    let p1 = dir.join("io.ck");
    jsmt_faults::install_spec("io-error,target=checkpoint,nth=0").expect("valid spec");
    let err = exp::pair_matrix_ckpt(&engine, &ctx, &p1, 1, Some(1))
        .map(|_| ())
        .expect_err("injected write error must propagate");
    jsmt_faults::clear();
    assert_eq!(JsmtError::from(err).kind(), ErrorKind::Io);

    // The final flush is silently corrupted (write #0 is the baseline
    // save, write #1 the one-cell flush); the resume must detect it.
    let p2 = dir.join("corrupt.ck");
    jsmt_faults::install_spec("corrupt,target=checkpoint,nth=1").expect("valid spec");
    let partial = exp::pair_matrix_ckpt(&engine, &ctx, &p2, 1, Some(1))
        .expect("corruption is invisible at write time");
    assert!(partial.is_none(), "budgeted run must stop early");
    jsmt_faults::clear();
    let err = exp::pair_matrix_ckpt(&engine, &ctx, &p2, 1, Some(1))
        .map(|_| ())
        .expect_err("corrupt checkpoint must be rejected at load");
    assert_eq!(JsmtError::from(err).kind(), ErrorKind::Snapshot);

    let _ = std::fs::remove_dir_all(&dir);
}
