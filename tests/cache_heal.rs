//! Self-healing of the persistent result cache, driven through the
//! real `repro` binary: entries are corrupted and truncated on disk
//! (and via injected write faults), and the cache must quarantine,
//! recompute, and keep the rendered output byte-identical — never trust
//! a bad entry, never die over one.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

const CTX: [&str; 6] = ["--scale", "0.01", "--repeats", "1", "--seed", "334"];

fn run(cache: &Path, extra: &[&str]) -> Output {
    repro()
        .args(CTX)
        .arg("--csv")
        .args(["--cache-dir", cache.to_str().unwrap()])
        .args(extra)
        .arg("fig8")
        .env_remove("JSMT_FAULTS")
        .env_remove("JSMT_CACHE")
        .output()
        .expect("spawn repro")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jsmt-heal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn cell_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cell"))
        .collect();
    v.sort();
    v
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn corrupt_and_torn_entries_are_quarantined_and_recomputed() {
    let dir = tmpdir("quarantine");
    let cold = run(&dir, &[]);
    assert!(cold.status.success(), "cold run failed");
    assert!(
        stderr_of(&cold).contains("misses=90 stores=90"),
        "cold run populates all 90 cells: {}",
        stderr_of(&cold)
    );
    let cells = cell_files(&dir);
    assert_eq!(cells.len(), 90, "9 solos + 81 pairs on disk");

    // Flip bytes in one entry and truncate another: a bit-rot and a
    // torn write, straight on the stored files.
    let flipped = &cells[0];
    let mut bytes = std::fs::read(flipped).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(flipped, &bytes).unwrap();
    let torn = &cells[1];
    let bytes = std::fs::read(torn).unwrap();
    std::fs::write(torn, &bytes[..bytes.len() / 3]).unwrap();

    let healed = run(&dir, &[]);
    assert!(healed.status.success(), "healing run must not fail");
    assert_eq!(
        String::from_utf8_lossy(&cold.stdout),
        String::from_utf8_lossy(&healed.stdout),
        "healed output must be byte-identical to the cold run"
    );
    let err = stderr_of(&healed);
    assert!(
        err.contains("hits=88 misses=2 stores=2 store_errors=0 quarantined=2"),
        "exactly the two damaged entries heal by recompute: {err}"
    );

    // The damaged bytes were preserved aside and logged, not deleted.
    let quarantined: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().contains(".quarantine-"))
        .collect();
    assert_eq!(quarantined.len(), 2, "both bad entries set aside");
    let log = std::fs::read_to_string(dir.join("quarantine.log")).expect("quarantine manifest");
    assert_eq!(
        log.lines().count(),
        2,
        "one manifest line per quarantine: {log}"
    );

    // A third run is fully warm again: the healed entries verify.
    let warm = run(&dir, &[]);
    assert!(warm.status.success());
    assert!(
        stderr_of(&warm).contains("hits=90 misses=0 stores=0 store_errors=0 quarantined=0"),
        "healed cache serves 100% hits: {}",
        stderr_of(&warm)
    );
    assert_eq!(
        String::from_utf8_lossy(&cold.stdout),
        String::from_utf8_lossy(&warm.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_cache_write_faults_never_poison_results() {
    let dir = tmpdir("badwrites");

    // Corrupt one cache store and tear another while the grid runs:
    // the stored entries go bad, the returned results must not.
    let cold = run(
        &dir,
        &["--faults", "cache-corrupt,nth=5;cache-torn-write,nth=12"],
    );
    assert!(cold.status.success(), "{}", stderr_of(&cold));

    // Reference output from a clean, uncached run.
    let clean = repro()
        .args(CTX)
        .args(["--csv", "fig8"])
        .env_remove("JSMT_FAULTS")
        .env_remove("JSMT_CACHE")
        .output()
        .expect("spawn repro");
    assert!(clean.status.success());
    assert_eq!(
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&cold.stdout),
        "fault-injected cache writes must not change the rendered output"
    );

    // The rerun finds the two bad entries, quarantines, recomputes, and
    // still renders identical bytes.
    let healed = run(&dir, &[]);
    assert!(healed.status.success());
    let err = stderr_of(&healed);
    assert!(
        err.contains("quarantined=2"),
        "both injected bad writes detected on reread: {err}"
    );
    assert!(
        err.contains("store_errors=0"),
        "healing stores succeed once the fault plan is gone: {err}"
    );
    assert_eq!(
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&healed.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_rerun_simulates_nothing_under_shard_dispatch() {
    let dir = tmpdir("warmshard");

    // Populate through the dispatcher, with a transient worker kill and
    // an on-disk corruption folded in (the combined acceptance drill).
    let cold = run(
        &dir,
        &[
            "--workers",
            "2",
            "--retries",
            "2",
            "--backoff-ms",
            "5",
            "--faults",
            "worker-kill,scope=pair-grid/compress+db,attempts=1",
        ],
    );
    assert!(cold.status.success(), "{}", stderr_of(&cold));

    let cells = cell_files(&dir);
    assert_eq!(
        cells.len(),
        90,
        "workers wrote every cell through the cache"
    );
    let victim = &cells[3];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(victim, &bytes).unwrap();

    // Sharded rerun: 89 hits resolve in the parent (no dispatch), the
    // corrupt cell is quarantined and recomputed by a worker.
    let healed = run(&dir, &["--workers", "2"]);
    assert!(healed.status.success(), "{}", stderr_of(&healed));
    assert_eq!(
        String::from_utf8_lossy(&cold.stdout),
        String::from_utf8_lossy(&healed.stdout),
        "healed sharded rerun must render identical bytes"
    );
    assert!(
        stderr_of(&healed).contains("hits=89 misses=1"),
        "only the damaged cell was re-dispatched: {}",
        stderr_of(&healed)
    );

    // Fully warm: zero shards dispatched, zero cells simulated.
    let warm = run(&dir, &["--workers", "2"]);
    assert!(warm.status.success());
    assert!(
        stderr_of(&warm).contains("hits=90 misses=0"),
        "warm rerun is 100% cache hits: {}",
        stderr_of(&warm)
    );
    assert_eq!(
        String::from_utf8_lossy(&cold.stdout),
        String::from_utf8_lossy(&warm.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
