//! Cross-crate integration tests: every benchmark runs end-to-end through
//! the full stack (workload kernel → JVM runtime → OS scheduler → SMT
//! core → counters) under both machine configurations, and the counter
//! architecture stays internally consistent.

use jsmt_core::{RunReport, System, SystemConfig};
use jsmt_perfmon::{Event, LogicalCpu};
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

const SCALE: f64 = 0.02;

fn run(id: BenchmarkId, threads: usize, ht: bool) -> RunReport {
    let mut sys = System::new(SystemConfig::p4(ht).with_max_cycles(600_000_000));
    sys.add_process(WorkloadSpec {
        id,
        threads,
        scale: SCALE,
    });
    sys.run_to_completion()
}

#[test]
fn every_benchmark_completes_with_ht_enabled() {
    for id in BenchmarkId::ALL {
        let threads = if id.is_multithreaded() { 2 } else { 1 };
        let r = run(id, threads, true);
        assert_eq!(r.processes[0].completions, 1, "{id}");
        assert!(
            r.metrics.instructions > 5_000,
            "{id} retired {}",
            r.metrics.instructions
        );
        assert!(
            r.metrics.ipc > 0.01 && r.metrics.ipc < 3.0,
            "{id} ipc {}",
            r.metrics.ipc
        );
    }
}

#[test]
fn every_benchmark_completes_with_ht_disabled() {
    for id in BenchmarkId::ALL {
        let threads = if id.is_multithreaded() { 2 } else { 1 };
        let r = run(id, threads, false);
        assert_eq!(r.processes[0].completions, 1, "{id}");
        // With HT off, the second context must never be active.
        assert_eq!(
            r.bank.get(LogicalCpu::Lp1, Event::ActiveCycles),
            0,
            "{id}: lcpu1 ran with HT disabled"
        );
        assert_eq!(r.bank.total(Event::DualThreadCycles), 0, "{id}");
    }
}

#[test]
fn retirement_histogram_covers_every_cycle() {
    let r = run(BenchmarkId::Compress, 1, true);
    let hist = r.bank.total(Event::CyclesRetire0)
        + r.bank.total(Event::CyclesRetire1)
        + r.bank.total(Event::CyclesRetire2)
        + r.bank.total(Event::CyclesRetire3);
    assert_eq!(hist, r.cycles);
}

#[test]
fn counter_sanity_invariants() {
    let r = run(BenchmarkId::Jess, 1, true);
    let b = &r.bank;
    // Misses never exceed lookups.
    assert!(b.total(Event::TcMisses) <= b.total(Event::TcLookups));
    assert!(b.total(Event::L1dMisses) <= b.total(Event::L1dLookups));
    assert!(b.total(Event::L2Misses) <= b.total(Event::L2Lookups));
    assert!(b.total(Event::ItlbMisses) <= b.total(Event::ItlbLookups));
    assert!(b.total(Event::DtlbMisses) <= b.total(Event::DtlbLookups));
    assert!(b.total(Event::BtbMisses) <= b.total(Event::BtbLookups));
    assert!(
        b.total(Event::BranchMispredicts)
            <= b.total(Event::BranchesRetired) + b.total(Event::Squashes)
    );
    // Kernel µops are a subset of all µops.
    assert!(b.total(Event::UopsRetiredKernel) <= b.total(Event::UopsRetired));
    // OS cycles are a subset of active cycles.
    assert!(b.total(Event::OsCycles) <= b.total(Event::ActiveCycles));
    // Memory accesses are a subset of L2 misses.
    assert_eq!(b.total(Event::MemAccesses), b.total(Event::L2Misses));
    // Retired loads/stores imply lookups happened.
    assert!(b.total(Event::L1dLookups) >= b.total(Event::LoadsRetired));
}

#[test]
fn eight_threads_multiplex_and_complete() {
    let r = run(BenchmarkId::PseudoJbb, 8, true);
    assert_eq!(r.processes[0].completions, 1);
    assert!(
        r.bank.total(Event::ContextSwitches) > 8,
        "8 threads on 2 contexts must switch"
    );
    assert!(r.bank.total(Event::TimerInterrupts) > 0);
}

#[test]
fn multiprogrammed_processes_share_the_machine() {
    let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(600_000_000));
    sys.add_process(WorkloadSpec::single(BenchmarkId::Compress).with_scale(SCALE));
    sys.add_process(WorkloadSpec::single(BenchmarkId::Mpegaudio).with_scale(SCALE));
    let r = sys.run_to_completion();
    assert!(r.processes.iter().all(|p| p.completions == 1));
    assert!(
        r.metrics.dual_thread_fraction > 0.3,
        "independent processes should co-run: {}",
        r.metrics.dual_thread_fraction
    );
}

#[test]
fn gc_thread_runs_for_allocation_heavy_workloads() {
    let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(600_000_000));
    sys.add_process_with_jvm(
        WorkloadSpec::single(BenchmarkId::Jack).with_scale(0.1),
        jsmt_jvm::JvmConfig::default()
            .with_heap(1 << 20)
            .with_survival(0.15),
    );
    let r = sys.run_to_completion();
    assert!(r.processes[0].gc_count > 0);
    assert!(r.bank.total(Event::GcCycles) > 0);
    assert!(r.bank.total(Event::GcCount) == r.processes[0].gc_count);
}

#[test]
fn relaunch_methodology_reports_durations() {
    let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(600_000_000));
    sys.add_relaunching_process(WorkloadSpec::single(BenchmarkId::Db).with_scale(SCALE));
    let r = sys.run_until_completions(4);
    let p = &r.processes[0];
    assert!(p.completions >= 4);
    let d = p.durations();
    assert_eq!(d.len() as u64, p.completions);
    // Warm runs should be no slower than the cold first run.
    let warm_mean = p.mean_duration();
    assert!(
        warm_mean <= d[0] as f64 * 1.05,
        "warm {warm_mean} vs cold {}",
        d[0]
    );
}

#[test]
fn interval_sampling_produces_a_time_series() {
    let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(600_000_000));
    sys.add_process(WorkloadSpec::single(BenchmarkId::Mpegaudio).with_scale(SCALE));
    sys.attach_sampler(50_000);
    let r = sys.run_to_completion();
    let sampler = sys.sampler().expect("attached");
    let series = sampler.series(Event::UopsRetired);
    assert!(
        series.len() >= 2,
        "run of {} cycles should yield samples",
        r.cycles
    );
    let total: u64 = series.iter().sum();
    assert!(total <= r.bank.total(Event::UopsRetired));
    assert!(total > 0);
}

#[test]
fn pmu_tool_reads_run_counters() {
    use jsmt_perfmon::{CounterConfig, Pmu};
    let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(600_000_000));
    sys.add_process(WorkloadSpec::single(BenchmarkId::Compress).with_scale(SCALE));
    let r = sys.run_to_completion();
    let mut pmu = Pmu::new();
    let uops = pmu.program(CounterConfig::all(Event::UopsRetired)).unwrap();
    let tc = pmu
        .program(CounterConfig::on(Event::TcMisses, LogicalCpu::Lp0))
        .unwrap();
    assert_eq!(
        pmu.read(uops, &r.bank).unwrap(),
        r.bank.total(Event::UopsRetired)
    );
    assert_eq!(
        pmu.read(tc, &r.bank).unwrap(),
        r.bank.get(LogicalCpu::Lp0, Event::TcMisses)
    );
}

#[test]
fn background_jit_thread_compiles_methods() {
    let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(600_000_000));
    sys.add_process_with_jvm(
        WorkloadSpec::single(BenchmarkId::Javac).with_scale(0.05),
        jsmt_workloads::jvm_config_for(BenchmarkId::Javac).with_background_jit(true),
    );
    let r = sys.run_to_completion();
    assert_eq!(r.processes[0].completions, 1);
    assert!(
        r.processes[0].compiles_done > 10,
        "javac's many hot methods must flow through the compiler thread: {}",
        r.processes[0].compiles_done
    );
}
