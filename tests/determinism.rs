//! Reproducibility: every figure in EXPERIMENTS.md must be regenerable
//! bit-for-bit, so runs must be pure functions of (config, seed).

use jsmt_core::{System, SystemConfig};
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

fn fingerprint(seed: u64, ht: bool) -> (u64, u64, u64, u64) {
    let mut sys = System::new(
        SystemConfig::p4(ht)
            .with_seed(seed)
            .with_max_cycles(600_000_000),
    );
    sys.add_process(WorkloadSpec::threaded(BenchmarkId::MonteCarlo, 2).with_scale(0.02));
    sys.add_process(WorkloadSpec::single(BenchmarkId::Jess).with_scale(0.02));
    let r = sys.run_to_completion();
    (
        r.cycles,
        r.metrics.instructions,
        r.bank.total(jsmt_perfmon::Event::TcMisses),
        r.bank.total(jsmt_perfmon::Event::BranchMispredicts),
    )
}

#[test]
fn identical_configs_are_bit_identical() {
    let a = fingerprint(1, true);
    let b = fingerprint(1, true);
    assert_eq!(a, b);
}

#[test]
fn the_seed_matters_but_only_the_seed() {
    let a = fingerprint(1, true);
    let b = fingerprint(2, true);
    // Different kernel-codegen seeds perturb cache layout; cycle counts
    // should differ slightly but stay in the same band.
    assert_ne!(a, b, "seed must influence the run");
    let (ca, cb) = (a.0 as f64, b.0 as f64);
    assert!(
        (ca - cb).abs() / ca < 0.2,
        "seeds are noise, not regime changes: {ca} vs {cb}"
    );
}

#[test]
fn ht_mode_changes_the_execution() {
    let on = fingerprint(1, true);
    let off = fingerprint(1, false);
    assert_ne!(on.0, off.0);
}

/// The event-driven fast-forward must be invisible in the results: a
/// full-system run with the optimization disabled produces bit-identical
/// cycles, counter banks, and completion records. This guards the whole
/// chain (core skip analysis, trace-cache replay, scheduler/sampler span
/// caps, GC-cycle bulk attribution).
#[test]
fn fast_forward_toggle_is_bit_identical_at_system_level() {
    let run = |fastfwd: bool| {
        let mut sys = System::new(
            SystemConfig::p4(true)
                .with_seed(7)
                .with_max_cycles(600_000_000),
        );
        sys.set_fast_forward(fastfwd);
        sys.add_process(WorkloadSpec::threaded(BenchmarkId::MonteCarlo, 2).with_scale(0.02));
        sys.add_process(WorkloadSpec::single(BenchmarkId::Db).with_scale(0.02));
        sys.run_to_completion()
    };
    let fast = run(true);
    let slow = run(false);
    assert_eq!(fast.cycles, slow.cycles);
    assert_eq!(fast.bank, slow.bank, "counter banks diverged");
    for (f, s) in fast.processes.iter().zip(&slow.processes) {
        assert_eq!(f.completions, s.completions);
        assert_eq!(f.completion_cycles, s.completion_cycles);
        assert_eq!(f.gc_count, s.gc_count);
    }
}

/// Checkpoint/resume is part of the reproducibility contract: running a
/// system straight through must be indistinguishable from checkpointing
/// it halfway, resuming in a "fresh process" (a new `System` built from
/// the same config), and finishing there.
#[test]
fn checkpoint_resume_is_bit_identical_to_a_straight_run() {
    let cfg = || {
        SystemConfig::p4(true)
            .with_seed(1)
            .with_max_cycles(600_000_000)
    };
    let specs = || {
        [
            WorkloadSpec::threaded(BenchmarkId::MonteCarlo, 2).with_scale(0.02),
            WorkloadSpec::single(BenchmarkId::Jess).with_scale(0.02),
        ]
    };
    let straight = {
        let mut sys = System::new(cfg());
        for s in specs() {
            sys.add_process(s);
        }
        sys.run_to_completion()
    };
    let resumed = {
        let mut sys = System::new(cfg());
        for s in specs() {
            sys.add_process(s);
        }
        sys.run_cycles(straight.cycles / 2);
        let bytes = sys.checkpoint();
        let mut sys = System::resume(cfg(), &bytes).expect("resume");
        sys.run_to_completion()
    };
    assert_eq!(straight.cycles, resumed.cycles);
    assert_eq!(straight.bank, resumed.bank, "counter banks diverged");
    assert_eq!(straight.metrics.instructions, resumed.metrics.instructions);
    for (a, b) in straight.processes.iter().zip(&resumed.processes) {
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.gc_count, b.gc_count);
    }
}

#[test]
fn reports_are_stable_across_report_calls() {
    let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(600_000_000));
    sys.add_process(WorkloadSpec::single(BenchmarkId::Compress).with_scale(0.01));
    let r1 = sys.run_to_completion();
    let r2 = sys.report();
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.bank, r2.bank);
}
