//! Golden-snapshot tests: every `csv_*` export at `ExperimentCtx::quick()`
//! must match the files committed under `tests/golden/` byte for byte.
//!
//! These pin two things at once: the simulator's numerical output (any
//! change to the core model shows up as a golden diff, on every machine,
//! at any `JSMT_JOBS` setting) and the CSV schemas external plotting
//! scripts depend on.
//!
//! Regenerating after an intentional model change:
//!
//! ```text
//! JSMT_BLESS=1 cargo test -q --offline --test golden_csv
//! ```
//!
//! then commit the rewritten `tests/golden/*.csv` alongside the model
//! change and explain the delta in the PR.

use std::path::PathBuf;

use jsmt_core::experiments::{self as exp, Engine, ExperimentCtx};

fn golden_dir() -> PathBuf {
    // This test is registered in crates/core/Cargo.toml, so the manifest
    // dir is crates/core; the snapshots live at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compare `actual` against `tests/golden/<name>`, or rewrite the golden
/// file when `JSMT_BLESS=1` is set.
fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("JSMT_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             JSMT_BLESS=1 cargo test -q --offline --test golden_csv",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} diverged from its golden snapshot; if the model change is \
         intentional, re-bless with JSMT_BLESS=1 cargo test -q --offline \
         --test golden_csv and commit the diff"
    );
}

/// Engine honoring `JSMT_JOBS`: goldens are schedule-invariant, so CI and
/// laptops may bless/check at any parallelism and get the same bytes.
fn engine() -> Engine {
    Engine::from_env()
}

#[test]
fn golden_mt_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::characterize_mt_on(&engine(), &[1, 2], &[false, true], &ctx);
    check("mt.csv", &exp::csv_mt(&pts));
}

#[test]
fn golden_grid_csv() {
    let ctx = ExperimentCtx::quick();
    let grid = exp::pair_matrix_on(&engine(), &ctx);
    check("grid.csv", &exp::csv_grid(&grid));
}

#[test]
fn golden_single_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::fig10_single_thread_impact_on(&engine(), &ctx);
    check("single.csv", &exp::csv_single(&pts));
}

#[test]
fn golden_threads_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::fig12_ipc_vs_threads_on(&engine(), &[1, 2, 4, 8, 16], &ctx);
    check("threads.csv", &exp::csv_threads(&pts));
}

#[test]
fn golden_partition_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::ablation_partition_on(&engine(), &ctx);
    check("partition.csv", &exp::csv_partition(&pts));
}

#[test]
fn golden_l1_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::ablation_l1_on(&engine(), &[8, 16, 32, 64], &ctx);
    check("l1.csv", &exp::csv_l1(&pts));
}

#[test]
fn golden_prefetch_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::ablation_prefetch_on(&engine(), &ctx);
    check("prefetch.csv", &exp::csv_prefetch(&pts));
}

#[test]
fn golden_jit_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::ablation_jit_on(&engine(), &ctx);
    check("jit.csv", &exp::csv_jit(&pts));
}
