//! Golden-snapshot tests: every `csv_*` export at `ExperimentCtx::quick()`
//! must match the files committed under `tests/golden/` byte for byte.
//!
//! These pin two things at once: the simulator's numerical output (any
//! change to the core model shows up as a golden diff, on every machine,
//! at any `JSMT_JOBS` setting) and the CSV schemas external plotting
//! scripts depend on.
//!
//! Regenerating after an intentional model change:
//!
//! ```text
//! JSMT_BLESS=1 cargo test -q --offline --test golden_csv
//! ```
//!
//! then commit the rewritten `tests/golden/*.csv` alongside the model
//! change and explain the delta in the PR.

use std::path::PathBuf;

use jsmt_core::experiments::{self as exp, Engine, ExperimentCtx};

fn golden_dir() -> PathBuf {
    // This test is registered in crates/core/Cargo.toml, so the manifest
    // dir is crates/core; the snapshots live at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compare `actual` against `tests/golden/<name>`, or rewrite the golden
/// file when `JSMT_BLESS=1` is set.
fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("JSMT_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             JSMT_BLESS=1 cargo test -q --offline --test golden_csv",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} diverged from its golden snapshot; if the model change is \
         intentional, re-bless with JSMT_BLESS=1 cargo test -q --offline \
         --test golden_csv and commit the diff"
    );
}

/// Engine honoring `JSMT_JOBS`: goldens are schedule-invariant, so CI and
/// laptops may bless/check at any parallelism and get the same bytes.
fn engine() -> Engine {
    Engine::from_env()
}

#[test]
fn golden_mt_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::characterize_mt_on(&engine(), &[1, 2], &[false, true], &ctx);
    check("mt.csv", &exp::csv_mt(&pts));
}

#[test]
fn golden_grid_csv() {
    let ctx = ExperimentCtx::quick();
    let grid = exp::pair_matrix_on(&engine(), &ctx);
    check("grid.csv", &exp::csv_grid(&grid));
}

#[test]
fn golden_single_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::fig10_single_thread_impact_on(&engine(), &ctx);
    check("single.csv", &exp::csv_single(&pts));
}

#[test]
fn golden_threads_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::fig12_ipc_vs_threads_on(&engine(), &[1, 2, 4, 8, 16], &ctx);
    check("threads.csv", &exp::csv_threads(&pts));
}

#[test]
fn golden_partition_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::ablation_partition_on(&engine(), &ctx);
    check("partition.csv", &exp::csv_partition(&pts));
}

#[test]
fn golden_l1_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::ablation_l1_on(&engine(), &[8, 16, 32, 64], &ctx);
    check("l1.csv", &exp::csv_l1(&pts));
}

#[test]
fn golden_prefetch_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::ablation_prefetch_on(&engine(), &ctx);
    check("prefetch.csv", &exp::csv_prefetch(&pts));
}

#[test]
fn golden_jit_csv() {
    let ctx = ExperimentCtx::quick();
    let pts = exp::ablation_jit_on(&engine(), &ctx);
    check("jit.csv", &exp::csv_jit(&pts));
}

/// The litmus interleaving sweep: pins the observed outcome label and
/// the synchronization counters of every (shape, seed) cell. Any change
/// to the scheduler, monitor protocol, or exec tiers that perturbs an
/// interleaving shows up here as a label/counter diff — on every
/// machine, at any `JSMT_JOBS` setting, with any tier toggles (the CI
/// litmus matrix diffs all of them against these bytes).
#[test]
fn golden_litmus_csv() {
    let ctx = ExperimentCtx::quick();
    let sweeps = exp::litmus_all_on(&engine(), 6, &ctx);
    for s in &sweeps {
        assert!(
            s.is_clean(),
            "{}: forbidden outcomes {:?}",
            s.shape.name(),
            s.forbidden
        );
    }
    check("litmus.csv", &exp::csv_litmus(&sweeps));
}

/// Pin the *busy* path itself, not just the quiet workloads the
/// experiment goldens lean on. Dense synthetic streams drive the core
/// through the same pending-buffer harness the system layer uses, so
/// with the trace tier enabled (the default) the dense rows execute
/// mostly as bulk trace replays — and the bytes here must match a
/// `JSMT_NO_TRACE_TIER=1` / `JSMT_NO_FASTFWD=1` run exactly (CI diffs
/// both: every execution tier is results-invisible by contract).
#[test]
fn golden_busy_csv() {
    use std::collections::VecDeque;

    use jsmt_cpu::synth::SyntheticStream;
    use jsmt_cpu::{CoreConfig, SmtCore};
    use jsmt_isa::{Asid, Uop};
    use jsmt_mem::MemConfig;
    use jsmt_perfmon::{Event, LogicalCpu};

    let profiles: [(&str, SyntheticStream); 3] = [
        ("balanced", SyntheticStream::builder(25).build()),
        (
            "balanced_dense",
            SyntheticStream::builder(31)
                .code_footprint(2 * 1024)
                .data_footprint(64 * 1024)
                .mem_fraction(0.0)
                .branch_fraction(0.0)
                .dep_chain(0.0)
                .fp_fraction(0.25)
                .build(),
        ),
        (
            "fp_dense",
            SyntheticStream::builder(43)
                .code_footprint(2 * 1024)
                .data_footprint(64 * 1024)
                .mem_fraction(0.0)
                .branch_fraction(0.0)
                .dep_chain(0.0)
                .fp_fraction(0.7)
                .build(),
        ),
    ];
    let mut csv = String::from(
        "workload,cycles,uops_retired,retire0,retire1,retire2,retire3,\
         tc_lookups,tc_misses,l1d_lookups,l1d_misses,btb_lookups\n",
    );
    for (name, stream) in profiles {
        // `balanced` spends its first ~150k cycles cold-building the 32 KB
        // code footprint into the trace cache; run it long enough that the
        // steady-state busy loop dominates the pinned counts. The dense
        // profiles (2 KB of code) warm up almost immediately.
        let cycles_target: u64 = if name == "balanced" { 600_000 } else { 150_000 };
        let mut s = stream;
        // Construction reads JSMT_NO_TRACE_TIER / JSMT_NO_FASTFWD, so the
        // escape hatches exercise the exact off-tier paths here.
        let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        core.bind(LogicalCpu::Lp0, Asid(1));
        let mut pending: VecDeque<Uop> = VecDeque::new();
        while core.cycles() < cycles_target {
            while pending.len() < 4096 {
                s.fill(&mut pending, 48);
            }
            let left = cycles_target - core.cycles();
            let (cycles, consumed) = core.trace_step(left, &pending);
            if cycles > 0 {
                pending.drain(..consumed);
                continue;
            }
            if core.fast_forward(left) > 0 {
                continue;
            }
            core.cycle(&mut |lcpu, buf, max| {
                if lcpu != LogicalCpu::Lp0 {
                    return 0;
                }
                let take = max.min(pending.len());
                for u in pending.drain(..take) {
                    buf.push_back(u);
                }
                take
            });
        }
        let b = core.counters();
        let cols = [
            Event::UopsRetired,
            Event::CyclesRetire0,
            Event::CyclesRetire1,
            Event::CyclesRetire2,
            Event::CyclesRetire3,
            Event::TcLookups,
            Event::TcMisses,
            Event::L1dLookups,
            Event::L1dMisses,
            Event::BtbLookups,
        ];
        csv.push_str(&format!("{name},{cycles_target}"));
        for e in cols {
            csv.push_str(&format!(",{}", b.total(e)));
        }
        csv.push('\n');
    }
    check("busy.csv", &csv);
}
