//! The headline shapes of the paper's evaluation, asserted at smoke-test
//! scale. These are the claims EXPERIMENTS.md reports at full scale; the
//! assertions here are looser (small inputs are noisier) but directional.

use jsmt_core::experiments::{self as exp, ExperimentCtx};
use jsmt_core::{System, SystemConfig};
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

fn ctx() -> ExperimentCtx {
    ExperimentCtx {
        scale: 0.05,
        repeats: 3,
        seed: 0x15_9A55,
    }
}

fn mt_ipc(id: BenchmarkId, ht: bool) -> f64 {
    let mut sys = System::new(SystemConfig::p4(ht).with_max_cycles(600_000_000));
    sys.add_process(WorkloadSpec::threaded(id, 2).with_scale(ctx().scale));
    sys.run_to_completion().metrics.ipc
}

/// Figure 1: Hyper-Threading improves multithreaded Java throughput.
#[test]
fn fig1_ht_improves_multithreaded_ipc() {
    for id in BenchmarkId::MULTITHREADED {
        let off = mt_ipc(id, false);
        let on = mt_ipc(id, true);
        assert!(
            on > off,
            "{id}: HT-on IPC {on:.3} must beat HT-off {off:.3}"
        );
    }
}

/// Figure 2: a large share of cycles retire nothing; HT reduces it.
#[test]
fn fig2_zero_retire_cycles_shrink_under_ht() {
    let run = |ht: bool| {
        let mut sys = System::new(SystemConfig::p4(ht).with_max_cycles(600_000_000));
        sys.add_process(WorkloadSpec::threaded(BenchmarkId::MolDyn, 2).with_scale(ctx().scale));
        sys.run_to_completion().metrics.retirement.retire0
    };
    let off = run(false);
    let on = run(true);
    assert!(
        off > 0.4,
        "zero-retire share should be large HT-off: {off:.2}"
    );
    assert!(
        on < off,
        "HT must reduce zero-retire cycles: {on:.2} vs {off:.2}"
    );
}

/// Figures 3–4: trace cache and L1D degrade under HT (contention).
#[test]
fn fig3_fig4_l1_structures_degrade_under_ht() {
    let run = |id: BenchmarkId, ht: bool| {
        let mut sys = System::new(SystemConfig::p4(ht).with_max_cycles(600_000_000));
        sys.add_process(WorkloadSpec::threaded(id, 2).with_scale(ctx().scale));
        let m = sys.run_to_completion().metrics;
        (m.tc_mpki, m.l1d_mpki)
    };
    let mut tc_worse = 0;
    let mut l1_worse = 0;
    for id in BenchmarkId::MULTITHREADED {
        let (tc_off, l1_off) = run(id, false);
        let (tc_on, l1_on) = run(id, true);
        if tc_on > tc_off {
            tc_worse += 1;
        }
        if l1_on > l1_off {
            l1_worse += 1;
        }
    }
    assert!(
        tc_worse >= 3,
        "trace cache should degrade for most benchmarks: {tc_worse}/4"
    );
    assert!(
        l1_worse >= 3,
        "L1D should degrade for most benchmarks: {l1_worse}/4"
    );
}

/// Figure 6: the partitioned ITLB degrades under HT.
#[test]
fn fig6_itlb_degrades_under_ht() {
    let run = |ht: bool| {
        let mut sys = System::new(SystemConfig::p4(ht).with_max_cycles(600_000_000));
        sys.add_process(WorkloadSpec::threaded(BenchmarkId::PseudoJbb, 2).with_scale(ctx().scale));
        sys.run_to_completion().metrics.itlb_mpki
    };
    assert!(
        run(true) > run(false),
        "PseudoJBB ITLB must degrade under HT"
    );
}

/// Figure 7: the thread-tagged BTB degrades under HT.
#[test]
fn fig7_btb_degrades_under_ht() {
    let run = |ht: bool| {
        let mut sys = System::new(SystemConfig::p4(ht).with_max_cycles(600_000_000));
        sys.add_process(WorkloadSpec::threaded(BenchmarkId::MonteCarlo, 2).with_scale(ctx().scale));
        sys.run_to_completion().metrics.btb_miss_ratio
    };
    assert!(run(true) > run(false), "BTB miss ratio must rise under HT");
}

/// Figure 10: single-threaded programs do not benefit from HT; most lose.
#[test]
fn fig10_single_threaded_programs_slow_down() {
    let picks = [
        BenchmarkId::Compress,
        BenchmarkId::Db,
        BenchmarkId::MonteCarlo,
    ];
    let mut slower = 0;
    for id in picks {
        let spec = WorkloadSpec::single(id).with_scale(ctx().scale);
        let off = exp::solo_run(spec, false, ctx().seed).cycles;
        let on = exp::solo_run(spec, true, ctx().seed).cycles;
        if on > off {
            slower += 1;
        }
    }
    assert!(
        slower >= 2,
        "most single-threaded programs must slow down: {slower}/3"
    );
}

/// Figure 12: going from 1 to 2 threads raises IPC sharply; beyond 2 the
/// machine is saturated.
#[test]
fn fig12_two_threads_saturate_the_machine() {
    let c = ctx();
    let pts = exp::fig12_ipc_vs_threads(&[1, 2, 4], &c);
    for id in BenchmarkId::MULTITHREADED {
        let ipc = |t: usize| {
            pts.iter()
                .find(|p| p.id == id && p.threads == t)
                .map(|p| p.ipc)
                .unwrap()
        };
        assert!(ipc(2) > ipc(1) * 1.15, "{id}: 1→2 threads must jump");
        assert!(
            ipc(4) < ipc(2) * 1.25,
            "{id}: 2→4 threads must not jump again"
        );
    }
}

/// Extension ablation: the L2 streaming prefetcher must do its job at
/// quick scale — fewer L2 misses, and IPC at worst unchanged for most
/// of the multithreaded suite.
#[test]
fn ablation_prefetch_reduces_l2_misses() {
    let engine = exp::Engine::new(exp::Parallelism::Threads(4));
    let points = exp::ablation_prefetch_on(&engine, &ctx());
    assert_eq!(points.len(), BenchmarkId::MULTITHREADED.len());
    let fewer_misses = points
        .iter()
        .filter(|p| p.l2_mpki_on < p.l2_mpki_off)
        .count();
    let ipc_held = points
        .iter()
        .filter(|p| p.ipc_on >= p.ipc_off * 0.98)
        .count();
    assert!(
        fewer_misses >= 3,
        "prefetcher must cut L2 MPKI for most benchmarks: {fewer_misses}/{}",
        points.len()
    );
    assert!(
        ipc_held >= 3,
        "prefetcher must not tank IPC: held for {ipc_held}/{}",
        points.len()
    );
}

/// Extension ablation: the background JIT compiler thread actually
/// compiles, and moving compilation off the critical path never turns
/// into a free lunch — the sibling context it occupies and the longer
/// interpreted window cost cycles for most single-threaded programs.
#[test]
fn ablation_jit_background_compiler_is_visible() {
    let engine = exp::Engine::new(exp::Parallelism::Threads(4));
    let points = exp::ablation_jit_on(&engine, &ctx());
    assert_eq!(points.len(), BenchmarkId::SINGLE_THREADED.len());
    let compiled: u64 = points.iter().map(|p| p.compiles).sum();
    assert!(compiled > 0, "background compiler must compile something");
    let changed = points
        .iter()
        .filter(|p| p.cycles_background != p.cycles_instant)
        .count();
    assert!(
        changed >= 5,
        "background JIT must perturb most runs: {changed}/{}",
        points.len()
    );
}

/// The paper's concluding claim at quick scale: solo trace-cache MPKI
/// predicts pairing quality. On a 4-benchmark subgrid mixing friendly
/// (compress, mpegaudio) and hostile (jack, javac) programs, the
/// predictor's ranking must anti-correlate with measured combined
/// speedup.
#[test]
fn pairing_prediction_ranks_pairs_from_solo_profiles() {
    let c = ctx();
    let benchmarks = vec![
        BenchmarkId::Compress,
        BenchmarkId::Mpegaudio,
        BenchmarkId::Jack,
        BenchmarkId::Javac,
    ];
    let solos: Vec<u64> = benchmarks
        .iter()
        .map(|&b| exp::solo_baseline_cycles(b, &c))
        .collect();
    let outcomes: Vec<Vec<_>> = benchmarks
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            benchmarks
                .iter()
                .enumerate()
                .map(|(j, &b)| exp::run_pair(a, b, solos[i], solos[j], &c))
                .collect()
        })
        .collect();
    let grid = exp::PairGrid {
        benchmarks,
        outcomes,
    };
    let p = exp::pairing_prediction(&grid, &c);
    assert!(
        p.rank_corr < -0.2,
        "solo TC profiles must anti-correlate with combined speedup: rho={:.3}",
        p.rank_corr
    );
    assert!(
        p.worst_quartile_hit_rate >= 0.25,
        "predictor must find some of the worst pairs: hit rate {:.2}",
        p.worst_quartile_hit_rate
    );
}

/// §4.2: pairs involving the paper's bad partners (jack, javac, jess)
/// achieve lower *combined* speedups — the quantity Figures 8 and 9
/// plot — than pairs of well-behaved programs.
#[test]
fn pairing_bad_partner_effect() {
    let c = ExperimentCtx {
        scale: 0.08,
        repeats: 3,
        seed: 0x15_9A55,
    };
    let victim = BenchmarkId::Compress;
    let v_solo = exp::solo_baseline_cycles(victim, &c);
    let combined = |partner: BenchmarkId| {
        let p_solo = exp::solo_baseline_cycles(partner, &c);
        exp::run_pair(victim, partner, v_solo, p_solo, &c).combined
    };
    let friendly = combined(BenchmarkId::Mpegaudio);
    let bad_pairs = [
        combined(BenchmarkId::Jack),
        combined(BenchmarkId::Javac),
        combined(BenchmarkId::Jess),
    ];
    for (b, c_ab) in [BenchmarkId::Jack, BenchmarkId::Javac, BenchmarkId::Jess]
        .iter()
        .zip(bad_pairs)
    {
        assert!(
            c_ab < friendly,
            "pair with {b} (C={c_ab:.3}) must combine worse than with mpegaudio (C={friendly:.3})"
        );
    }
}
