//! Crash-tolerance of the multi-process shard dispatcher, driven
//! through the real `repro` binary: workers are genuinely killed
//! (SIGABRT via the `worker-kill` fault), and the dispatcher must
//! reassign, degrade, and stay bit-identical to serial execution.
//!
//! These tests live in `jsmt-bench` because `CARGO_BIN_EXE_repro` only
//! resolves in the crate that defines the binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// Small-but-real grid parameters shared by every run in this file;
/// bit-identity only means something when all runs agree on them.
const CTX: [&str; 6] = ["--scale", "0.01", "--repeats", "1", "--seed", "333"];

fn run(extra: &[&str]) -> Output {
    repro()
        .args(CTX)
        .arg("--csv")
        .args(extra)
        .arg("fig8")
        .env_remove("JSMT_FAULTS")
        .env_remove("JSMT_CACHE")
        .output()
        .expect("spawn repro")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jsmt-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

#[test]
fn sharded_grid_is_bit_identical_to_serial() {
    let serial = run(&[]);
    assert!(serial.status.success(), "serial run failed");
    let sharded = run(&["--workers", "3"]);
    assert!(sharded.status.success(), "sharded run failed");
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&sharded.stdout),
        "sharded output must be byte-identical to serial"
    );
}

#[test]
fn killed_worker_is_detected_and_shard_reassigned() {
    let dir = tmpdir("kill");
    let manifest = dir.join("manifest.csv");
    let serial = run(&[]);
    assert!(serial.status.success());

    // attempts=1 → the kill fires on the first attempt only; the
    // respawned worker's retry completes the cell.
    let out = run(&[
        "--workers",
        "2",
        "--retries",
        "2",
        "--backoff-ms",
        "5",
        "--backoff-cap-ms",
        "20",
        "--manifest",
        manifest.to_str().unwrap(),
        "--faults",
        "worker-kill,scope=pair-grid/compress+db,attempts=1",
    ]);
    assert!(
        out.status.success(),
        "transient worker kill must heal: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&out.stdout),
        "output after a healed worker kill must be byte-identical to serial"
    );
    let manifest = std::fs::read_to_string(&manifest).expect("manifest written");
    assert_eq!(
        manifest.lines().count(),
        1,
        "clean manifest (header only), got:\n{manifest}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_worker_death_degrades_to_partial_results_and_manifest() {
    let dir = tmpdir("dead");
    let manifest = dir.join("manifest.csv");

    // No attempts bound → every attempt of the scoped cell dies.
    let out = run(&[
        "--workers",
        "2",
        "--retries",
        "1",
        "--backoff-ms",
        "5",
        "--backoff-cap-ms",
        "20",
        "--manifest",
        manifest.to_str().unwrap(),
        "--faults",
        "worker-kill,scope=pair-grid/compress+db",
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "exhausted cell must exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let manifest = std::fs::read_to_string(&manifest).expect("manifest written");
    let mut lines = manifest.lines();
    assert_eq!(
        lines.next().unwrap(),
        "stage,label,index,kind,component,cycle,attempts,backoff_ms,bundle,message"
    );
    let row = lines.next().expect("one failure row");
    assert!(
        row.starts_with("pair-grid,compress+db,"),
        "failure attributed to the killed cell: {row}"
    );
    assert!(
        row.contains(",worker-death,worker,"),
        "kind/component attribution: {row}"
    );
    assert!(row.contains(",2,"), "both attempts recorded: {row}");
    assert_eq!(lines.next(), None, "exactly one cell failed");

    // Partial results: the 80 surviving cells, byte-identical to the
    // corresponding rows of a clean run's grid CSV.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let rows: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(rows.len(), 1 + 80, "header plus 80 surviving cells");
    assert!(!stdout.contains("compress,db,"), "the dead cell is absent");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_shard_deadline_kills_and_attributes_hung_workers() {
    let dir = tmpdir("deadline");
    let manifest = dir.join("manifest.csv");

    // Starve one cell's µop supply with the worker-side livelock
    // watchdog disabled: the cell spins forever without progress, so
    // only the parent's wall-clock deadline can end it. The parent must
    // SIGKILL the wedged worker and attribute the failure as a
    // deadline, not a worker death.
    let out = run(&[
        "--workers",
        "2",
        "--retries",
        "0",
        "--deadline-secs",
        "5",
        "--livelock-cycles",
        "0",
        "--manifest",
        manifest.to_str().unwrap(),
        "--faults",
        "starve,cycle=1000,scope=pair-grid/compress+db",
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "deadline exhaustion must exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = std::fs::read_to_string(&manifest).expect("manifest written");
    let row = manifest.lines().nth(1).expect("one failure row");
    assert!(
        row.starts_with("pair-grid,compress+db,") && row.contains(",deadline,worker,"),
        "deadline attribution: {row}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
