//! Whole-system checkpoint/restore equivalence.
//!
//! The contract under test: a machine checkpointed at *any* cycle and
//! resumed in a fresh process continues bit-identically — same final
//! cycle count, same counter banks, same completion records, same CSV
//! bytes — including checkpoints taken mid-GC, mid-fast-forward span,
//! and exactly on sampler/timer boundaries.

use jsmt_core::experiments::{self as exp, Engine, ExperimentCtx, Parallelism};
use jsmt_core::{System, SystemConfig};
use jsmt_perfmon::Event;
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

fn cfg(ht: bool) -> SystemConfig {
    SystemConfig::p4(ht)
        .with_seed(11)
        .with_max_cycles(600_000_000)
}

/// The standard two-process machine used across these tests.
fn machine(ht: bool) -> System {
    let mut sys = System::new(cfg(ht));
    sys.add_process(WorkloadSpec::threaded(BenchmarkId::MonteCarlo, 2).with_scale(0.01));
    sys.add_relaunching_process(WorkloadSpec::single(BenchmarkId::Jess).with_scale(0.01));
    sys
}

fn assert_reports_equal(a: &jsmt_core::RunReport, b: &jsmt_core::RunReport, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.bank, b.bank, "{what}: counter banks");
    for (x, y) in a.processes.iter().zip(&b.processes) {
        assert_eq!(x.completions, y.completions, "{what}: completions");
        assert_eq!(
            x.completion_cycles, y.completion_cycles,
            "{what}: completion cycles"
        );
        assert_eq!(x.gc_count, y.gc_count, "{what}: gc count");
        assert_eq!(x.allocations, y.allocations, "{what}: allocations");
    }
}

/// Checkpoint at a mid-run cycle, resume into a fresh `System`, run both
/// the donor and the resumed machine to the same completion target: all
/// three executions (uninterrupted, donor-continued, resumed) must agree
/// bit-for-bit.
#[test]
fn resume_continues_bit_identically() {
    let mut uninterrupted = machine(true);
    let golden = uninterrupted.run_until_completions(1);

    // Early, middle, and late relative to the uninterrupted run length.
    for at in [
        golden.cycles / 100,
        golden.cycles / 3,
        golden.cycles * 9 / 10,
    ] {
        let mut donor = machine(true);
        donor.run_cycles(at);
        let bytes = donor.checkpoint();
        let mut resumed = System::resume(cfg(true), &bytes).expect("resume");
        assert_eq!(resumed.cycles(), at);

        // save → restore → save must be byte-identical (canonical form).
        assert_eq!(
            resumed.checkpoint(),
            bytes,
            "re-checkpoint at cycle {at} not canonical"
        );

        let donor_final = donor.run_until_completions(1);
        let resumed_final = resumed.run_until_completions(1);
        assert_reports_equal(&golden, &donor_final, &format!("donor @{at}"));
        assert_reports_equal(&golden, &resumed_final, &format!("resumed @{at}"));
    }
}

/// A checkpoint taken while a stop-the-world collection is in flight
/// (GC generator live, mutators parked) must restore and finish the
/// collection identically.
#[test]
fn mid_gc_checkpoint_restores() {
    let gc_machine = || {
        let mut sys = System::new(cfg(true));
        sys.add_process_with_jvm(
            WorkloadSpec::single(BenchmarkId::Jack).with_scale(0.05),
            jsmt_jvm::JvmConfig::default()
                .with_heap(512 * 1024)
                .with_survival(0.15),
        );
        sys
    };
    let mut uninterrupted = gc_machine();
    let golden = uninterrupted.run_to_completion();
    assert!(golden.processes[0].gc_count > 0, "jack must collect");

    let mut donor = gc_machine();
    while !donor.gc_active() {
        donor.step_cycle();
    }
    let at = donor.cycles();
    let bytes = donor.checkpoint();
    let mut resumed = System::resume(cfg(true), &bytes).expect("mid-GC resume");
    assert!(resumed.gc_active(), "restored machine must still be in GC");
    assert_eq!(resumed.cycles(), at);
    let r = resumed.run_to_completion();
    assert_reports_equal(&golden, &r, "mid-GC resume");
}

/// Fast-forward must compose with checkpointing: a checkpoint taken on a
/// machine that reached its cycle via fast-forwarded spans restores into
/// a machine whose continuation matches the never-fast-forwarded run.
#[test]
fn checkpoint_across_fast_forward_spans() {
    let mut slow = machine(true);
    slow.set_fast_forward(false);
    let golden = slow.run_until_completions(1);

    let mut fast = machine(true);
    fast.set_fast_forward(true);
    fast.run_cycles(50_000);
    let bytes = fast.checkpoint();

    for resumed_fastfwd in [true, false] {
        let mut resumed = System::resume(cfg(true), &bytes).expect("resume");
        resumed.set_fast_forward(resumed_fastfwd);
        let r = resumed.run_until_completions(1);
        assert_reports_equal(
            &golden,
            &r,
            &format!("fast-forward checkpoint, resumed fastfwd={resumed_fastfwd}"),
        );
    }
}

/// Regression: a sampler whose `next_due` lands exactly on the resume
/// boundary must fire exactly once, and sample series must be identical
/// to the uninterrupted run. Checkpoints straddle the interval boundary
/// on both sides and on it.
#[test]
fn sampler_boundary_fires_exactly_once_across_resume() {
    const INTERVAL: u64 = 10_000;
    let sampled = || {
        let mut sys = machine(true);
        sys.attach_sampler(INTERVAL);
        sys
    };
    let mut uninterrupted = sampled();
    uninterrupted.run_cycles(20 * INTERVAL);
    let golden: Vec<(u64, u64)> = uninterrupted
        .sampler()
        .expect("sampler")
        .samples()
        .iter()
        .map(|s| (s.at_cycle, s.delta.total(Event::ClockCycles)))
        .collect();
    assert!(
        golden.len() >= 19,
        "expected ~20 samples, got {}",
        golden.len()
    );

    for at in [3 * INTERVAL - 1, 3 * INTERVAL, 3 * INTERVAL + 1] {
        let mut donor = sampled();
        donor.run_cycles(at);
        let bytes = donor.checkpoint();
        let mut resumed = System::resume(cfg(true), &bytes).expect("resume");
        resumed.run_cycles(20 * INTERVAL - at);
        let got: Vec<(u64, u64)> = resumed
            .sampler()
            .expect("sampler")
            .samples()
            .iter()
            .map(|s| (s.at_cycle, s.delta.total(Event::ClockCycles)))
            .collect();
        assert_eq!(golden, got, "sample series diverged for checkpoint at {at}");
    }
}

/// Regression: scheduler timer interrupts due exactly at the resume
/// boundary fire exactly once (counted via the TimerInterrupts event of
/// the full run).
#[test]
fn scheduler_timer_boundary_across_resume() {
    // Find a cycle where a timer interrupt is about to fire by scanning
    // for the first TimerInterrupts increment, then checkpoint exactly
    // one cycle before it and replay across the boundary.
    let mut probe = machine(true);
    let mut fire_cycle = 0;
    for _ in 0..2_000_000u64 {
        let before = probe.report().bank.total(Event::TimerInterrupts);
        probe.step_cycle();
        if probe.report().bank.total(Event::TimerInterrupts) > before {
            fire_cycle = probe.cycles();
            break;
        }
    }
    assert!(fire_cycle > 1, "no timer interrupt observed");

    let horizon = fire_cycle + 50_000;
    let mut uninterrupted = machine(true);
    uninterrupted.run_cycles(horizon);
    let golden = uninterrupted.report();

    for at in [fire_cycle - 1, fire_cycle] {
        let mut donor = machine(true);
        donor.run_cycles(at);
        let bytes = donor.checkpoint();
        let mut resumed = System::resume(cfg(true), &bytes).expect("resume");
        resumed.run_cycles(horizon - at);
        let r = resumed.report();
        assert_eq!(
            golden.bank.total(Event::TimerInterrupts),
            r.bank.total(Event::TimerInterrupts),
            "timer count diverged for checkpoint at {at} (fire at {fire_cycle})"
        );
        assert_reports_equal(&golden, &r, &format!("timer boundary @{at}"));
    }
}

/// A checkpoint taken while a thread is parked in `Object.wait` — and,
/// harder, inside the *pending-notify window* (notified, moved to the
/// entry queue, but not yet handed ownership because the notifier still
/// holds the monitor) — must restore that exact synchronization state
/// and continue to the identical interleaving observation.
#[test]
fn mid_wait_checkpoint_restores_pending_notify_edge() {
    let wait_machine = || {
        let mut sys = System::new(cfg(true));
        // The ping-pong litmus shape lives in wait/notify: its producer
        // holds the monitor for several scheduler steps after notifying,
        // so the pending-notify window is wide enough to checkpoint in.
        sys.add_process(WorkloadSpec::threaded(BenchmarkId::LitmusPingPong, 2).with_scale(0.03));
        sys
    };
    let mut uninterrupted = wait_machine();
    let golden = uninterrupted.run_to_completion();
    let golden_label = uninterrupted.observation(0).expect("label");
    let golden_stats = uninterrupted.sync_stats(0);
    assert!(golden_stats.waits > 0, "ping-pong must actually wait");
    assert!(golden_stats.notifies > 0, "ping-pong must actually notify");

    // Walk a donor to each edge in turn: first a thread parked in a wait
    // set, then a thread in the pending-notify window.
    for edge in ["wait-parked", "pending-notify"] {
        let mut donor = wait_machine();
        let hit = loop {
            let s = donor.sync_stats(0);
            match edge {
                "wait-parked" if s.wait_parked > 0 => break true,
                "pending-notify" if s.pending_notify > 0 => break true,
                _ => {}
            }
            if donor.cycles() >= golden.cycles {
                break false;
            }
            donor.step_cycle();
        };
        assert!(hit, "{edge}: edge never occurred before completion");
        let at = donor.cycles();
        let stats_at = donor.sync_stats(0);

        let bytes = donor.checkpoint();
        let mut resumed = System::resume(cfg(true), &bytes).expect("mid-wait resume");
        assert_eq!(resumed.cycles(), at);
        assert_eq!(
            resumed.sync_stats(0),
            stats_at,
            "{edge}: restored sync state differs at cycle {at}"
        );
        assert_eq!(resumed.checkpoint(), bytes, "{edge}: re-save not canonical");

        let donor_final = donor.run_to_completion();
        let resumed_final = resumed.run_to_completion();
        assert_reports_equal(&golden, &donor_final, &format!("{edge} donor @{at}"));
        assert_reports_equal(&golden, &resumed_final, &format!("{edge} resumed @{at}"));
        assert_eq!(
            resumed.observation(0).as_deref(),
            Some(golden_label.as_str()),
            "{edge}: interleaving label diverged after resume at cycle {at}"
        );
        assert_eq!(
            resumed.sync_stats(0),
            golden_stats,
            "{edge}: final sync stats"
        );
    }
}

/// Corrupt, truncated, or mismatched snapshots fail cleanly — clean
/// `Err`, no panic — and a resume under a different configuration is
/// rejected by the fingerprint.
#[test]
fn corrupt_and_mismatched_snapshots_fail_cleanly() {
    let mut donor = machine(true);
    donor.run_cycles(5_000);
    let bytes = donor.checkpoint();

    // Sanity: the pristine snapshot resumes.
    assert!(System::resume(cfg(true), &bytes).is_ok());

    // Different configuration (HT off) → fingerprint mismatch.
    assert!(System::resume(cfg(false), &bytes).is_err());
    assert!(System::resume(cfg(true).with_seed(99), &bytes).is_err());

    // Every truncation fails cleanly.
    for cut in [0, 1, 7, 16, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            System::resume(cfg(true), &bytes[..cut]).is_err(),
            "truncation at {cut} must error"
        );
    }

    // Single-byte corruption anywhere fails cleanly (the checksum or a
    // validation catches it). Stride keeps the test fast.
    for i in (0..bytes.len()).step_by(97) {
        let mut bad = bytes.clone();
        bad[i] ^= 0xA5;
        assert!(
            System::resume(cfg(true), &bad).is_err(),
            "corruption at byte {i} must error"
        );
    }
}

/// The checkpointed pairing grid: interrupt the run repeatedly (via the
/// cell budget, simulating a kill between flushes), restart with a
/// *fresh engine* each time (a fresh process), and the assembled grid's
/// CSV must be byte-identical to an uninterrupted run. The persisted
/// baseline cache must spare every later process from re-simulating
/// baselines.
#[test]
fn interrupted_grid_resumes_to_identical_csv() {
    // The tiny-grid configuration used by the engine determinism tests.
    let ctx = ExperimentCtx {
        scale: 0.01,
        repeats: 1,
        seed: 0xA5,
    };
    let golden = exp::csv_grid(&exp::pair_matrix_on(
        &Engine::new(Parallelism::Threads(4)),
        &ctx,
    ));

    let path = std::env::temp_dir().join(format!("jsmt-grid-ckpt-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut restarts = 0;
    let grid = loop {
        restarts += 1;
        assert!(restarts < 40, "grid never completed");
        let engine = Engine::new(Parallelism::Threads(2));
        match exp::pair_matrix_ckpt(&engine, &ctx, &path, 3, Some(7)).expect("checkpointed grid") {
            Some(grid) => {
                if restarts > 1 {
                    // Baselines came from the checkpoint, not re-simulation.
                    assert_eq!(engine.baseline_stats().misses, 0, "baselines not reused");
                }
                break grid;
            }
            None => continue,
        }
    };
    assert!(restarts > 1, "budget of 7 must interrupt an 81-cell grid");
    assert_eq!(exp::csv_grid(&grid), golden, "resumed grid CSV differs");

    // Resuming a *complete* checkpoint recomputes nothing.
    let engine = Engine::serial();
    let again = exp::pair_matrix_ckpt(&engine, &ctx, &path, 3, Some(0))
        .expect("reload")
        .expect("grid is complete");
    assert_eq!(exp::csv_grid(&again), golden);
    assert_eq!(engine.baseline_stats().misses, 0);

    // A checkpoint from different experiment parameters is rejected.
    let other = ExperimentCtx { seed: 0xA6, ..ctx };
    assert!(exp::pair_matrix_ckpt(&Engine::serial(), &other, &path, 3, None).is_err());

    let _ = std::fs::remove_file(&path);
}
