//! The parallel experiment engine's core guarantee: results are a pure
//! function of the experiment inputs, never of the schedule. Every
//! ported driver must produce bit-identical output — structured fields,
//! counter banks, and rendered CSV bytes — under `Parallelism::Serial`
//! and any `Parallelism::Threads(n)`.

use jsmt_core::experiments::{self as exp, Engine, ExperimentCtx, Parallelism};

/// A reduced context for the cheap per-driver sweeps (determinism does
/// not depend on scale, so these run well under a second per driver).
fn small() -> ExperimentCtx {
    ExperimentCtx {
        scale: 0.02,
        repeats: 2,
        seed: 0xA5,
    }
}

fn engines() -> (Engine, Engine) {
    (Engine::serial(), Engine::new(Parallelism::Threads(4)))
}

/// The headline acceptance criterion: the full 9×9 pairing grid at
/// `ExperimentCtx::quick()` is byte-identical between `Serial` and
/// `Threads(4)` — structured results compared at f64 bit level, CSV and
/// rendered figures compared as bytes — and the parallel engine's
/// memoizing cache simulates each solo baseline exactly once.
#[test]
fn pair_matrix_quick_threads4_matches_serial_bit_for_bit() {
    let ctx = ExperimentCtx::quick();
    let (ser, par) = engines();
    let g_ser = exp::pair_matrix_on(&ser, &ctx);
    let g_par = exp::pair_matrix_on(&par, &ctx);

    assert_eq!(g_ser.benchmarks, g_par.benchmarks);
    for (row_s, row_p) in g_ser.outcomes.iter().zip(&g_par.outcomes) {
        for (s, p) in row_s.iter().zip(row_p) {
            assert_eq!((s.a, s.b), (p.a, p.b));
            assert_eq!(
                s.speedup_a.to_bits(),
                p.speedup_a.to_bits(),
                "{:?}+{:?}",
                s.a,
                s.b
            );
            assert_eq!(
                s.speedup_b.to_bits(),
                p.speedup_b.to_bits(),
                "{:?}+{:?}",
                s.a,
                s.b
            );
            assert_eq!(
                s.combined.to_bits(),
                p.combined.to_bits(),
                "{:?}+{:?}",
                s.a,
                s.b
            );
            assert_eq!(
                s.tc_mpki.to_bits(),
                p.tc_mpki.to_bits(),
                "{:?}+{:?}",
                s.a,
                s.b
            );
            assert_eq!(s.completions, p.completions, "{:?}+{:?}", s.a, s.b);
        }
    }
    assert_eq!(
        exp::csv_grid(&g_ser).into_bytes(),
        exp::csv_grid(&g_par).into_bytes()
    );
    assert_eq!(exp::render_fig8(&g_ser), exp::render_fig8(&g_par));
    assert_eq!(exp::render_fig9(&g_ser), exp::render_fig9(&g_par));

    // Exactly-once baselines: 9 prewarm lookups miss and simulate; the
    // 81 cells' 162 in-job lookups are all served from the cache.
    let n = g_par.benchmarks.len() as u64;
    let stats = par.baseline_stats();
    assert_eq!(stats.misses, n, "each solo baseline simulated exactly once");
    assert_eq!(stats.lookups, n + 2 * n * n);
    assert_eq!(stats.hits(), 2 * n * n);
}

/// Figures 1–7 data: cycles, full counter banks, and CSV bytes agree.
#[test]
fn characterize_mt_is_schedule_invariant() {
    let ctx = small();
    let (ser, par) = engines();
    let a = exp::characterize_mt_on(&ser, &[1, 2], &[false, true], &ctx);
    let b = exp::characterize_mt_on(&par, &[1, 2], &[false, true], &ctx);
    assert_eq!(a.len(), b.len());
    for (s, p) in a.iter().zip(&b) {
        assert_eq!((s.id, s.threads, s.ht), (p.id, p.threads, p.ht));
        assert_eq!(s.report.cycles, p.report.cycles, "{}", s.label());
        assert_eq!(
            s.report.bank,
            p.report.bank,
            "counter bank diverged for {}",
            s.label()
        );
    }
    assert_eq!(exp::csv_mt(&a).into_bytes(), exp::csv_mt(&b).into_bytes());
}

/// Figures 10 and 11: the single-threaded HT impact and self-pair
/// drivers agree, including the baseline cache path used by fig11.
#[test]
fn single_thread_drivers_are_schedule_invariant() {
    let ctx = small();
    let (ser, par) = engines();
    let a10 = exp::fig10_single_thread_impact_on(&ser, &ctx);
    let b10 = exp::fig10_single_thread_impact_on(&par, &ctx);
    assert_eq!(
        exp::csv_single(&a10).into_bytes(),
        exp::csv_single(&b10).into_bytes()
    );

    let a11 = exp::fig11_self_pairs_on(&ser, &ctx);
    let b11 = exp::fig11_self_pairs_on(&par, &ctx);
    assert_eq!(a11.len(), b11.len());
    for ((ia, ca), (ib, cb)) in a11.iter().zip(&b11) {
        assert_eq!(ia, ib);
        assert_eq!(
            ca.to_bits(),
            cb.to_bits(),
            "{ia:?} self-pair combined speedup"
        );
    }
}

/// Figure 12: the thread-count sweep agrees.
#[test]
fn fig12_is_schedule_invariant() {
    let ctx = small();
    let (ser, par) = engines();
    let a = exp::fig12_ipc_vs_threads_on(&ser, &[1, 2, 4], &ctx);
    let b = exp::fig12_ipc_vs_threads_on(&par, &[1, 2, 4], &ctx);
    assert_eq!(
        exp::csv_threads(&a).into_bytes(),
        exp::csv_threads(&b).into_bytes()
    );
}

/// All four ablation sweeps agree.
#[test]
fn ablations_are_schedule_invariant() {
    let ctx = small();
    let (ser, par) = engines();
    assert_eq!(
        exp::csv_partition(&exp::ablation_partition_on(&ser, &ctx)).into_bytes(),
        exp::csv_partition(&exp::ablation_partition_on(&par, &ctx)).into_bytes(),
    );
    assert_eq!(
        exp::csv_l1(&exp::ablation_l1_on(&ser, &[16, 64], &ctx)).into_bytes(),
        exp::csv_l1(&exp::ablation_l1_on(&par, &[16, 64], &ctx)).into_bytes(),
    );
    assert_eq!(
        exp::csv_prefetch(&exp::ablation_prefetch_on(&ser, &ctx)).into_bytes(),
        exp::csv_prefetch(&exp::ablation_prefetch_on(&par, &ctx)).into_bytes(),
    );
    assert_eq!(
        exp::csv_jit(&exp::ablation_jit_on(&ser, &ctx)).into_bytes(),
        exp::csv_jit(&exp::ablation_jit_on(&par, &ctx)).into_bytes(),
    );
}

/// The worker count is immaterial: Threads(2) and Threads(8) agree with
/// each other (and, transitively via the tests above, with Serial).
#[test]
fn results_are_invariant_across_worker_counts() {
    let ctx = small();
    let t2 = Engine::new(Parallelism::Threads(2));
    let t8 = Engine::new(Parallelism::Threads(8));
    assert_eq!(
        exp::csv_threads(&exp::fig12_ipc_vs_threads_on(&t2, &[1, 2], &ctx)).into_bytes(),
        exp::csv_threads(&exp::fig12_ipc_vs_threads_on(&t8, &[1, 2], &ctx)).into_bytes(),
    );
    assert_eq!(
        exp::csv_mt(&exp::characterize_mt_on(&t2, &[2], &[false, true], &ctx)).into_bytes(),
        exp::csv_mt(&exp::characterize_mt_on(&t8, &[2], &[false, true], &ctx)).into_bytes(),
    );
}

/// `JSMT_NO_FASTFWD=1` is the escape hatch that forces the plain
/// cycle-by-cycle loop in every core the engine spawns; the rendered CSV
/// bytes must not change. (The env var is only read at core construction
/// and both settings are bit-identical by contract, so the brief window
/// where the variable is set cannot corrupt concurrently running tests.)
#[test]
fn no_fastfwd_env_var_produces_identical_csv_bytes() {
    let ctx = small();
    // Fresh engines for each run so no per-engine memoization can serve
    // the second sweep without constructing new cores.
    let with_ff = exp::csv_mt(&exp::characterize_mt_on(
        &Engine::serial(),
        &[1, 2],
        &[true],
        &ctx,
    ))
    .into_bytes();

    std::env::set_var("JSMT_NO_FASTFWD", "1");
    let without_ff = exp::csv_mt(&exp::characterize_mt_on(
        &Engine::serial(),
        &[1, 2],
        &[true],
        &ctx,
    ))
    .into_bytes();
    std::env::remove_var("JSMT_NO_FASTFWD");

    assert_eq!(with_ff, without_ff, "fast-forward leaked into results");
}

/// The baseline cache is shared across drivers on one engine: a pairing
/// grid followed by fig11 never re-simulates a baseline, and re-running
/// the grid on the same engine adds lookups but zero misses.
#[test]
fn baselines_are_simulated_exactly_once_per_engine() {
    // Tiny scale: this test runs the 81-cell grid twice and only cares
    // about cache accounting, not simulated numbers.
    let ctx = ExperimentCtx {
        scale: 0.01,
        repeats: 1,
        seed: 0xA5,
    };
    let par = Engine::new(Parallelism::Threads(4));
    let g = exp::pair_matrix_on(&par, &ctx);
    let n = g.benchmarks.len() as u64;
    let after_grid = par.baseline_stats();
    assert_eq!(after_grid.misses, n);
    assert_eq!(after_grid.lookups, n + 2 * n * n);

    let _ = exp::fig11_self_pairs_on(&par, &ctx);
    let after_fig11 = par.baseline_stats();
    assert_eq!(
        after_fig11.misses, n,
        "fig11 must reuse the grid's baselines"
    );
    assert_eq!(after_fig11.lookups, after_grid.lookups + 2 * n);

    let _ = exp::pair_matrix_on(&par, &ctx);
    let after_rerun = par.baseline_stats();
    assert_eq!(
        after_rerun.misses, n,
        "re-running the grid must not re-simulate"
    );
    assert_eq!(after_rerun.lookups, after_fig11.lookups + n + 2 * n * n);
}
