//! Differential harness for the three execution tiers.
//!
//! The scalar interpreter, the batched SoA walk, and the compiled-trace
//! tier are *claimed* to be pure wall-clock optimizations — every counter
//! bit, every snapshot byte identical. This suite drives random synthetic
//! and kernel (privileged) workloads through all three paths in lockstep
//! and checks that claim at randomly placed cycle boundaries, not just at
//! the end of a run: a tier that drifts and re-converges would still fail
//! here.
//!
//! Every tier is driven through the same pending-buffer harness the
//! system layer uses, so fill deliveries are identical by construction
//! and the only variable is the execution path itself.

use std::collections::VecDeque;

use jsmt_cpu::synth::SyntheticStream;
use jsmt_cpu::{CoreConfig, ExecTier, SmtCore};
use jsmt_isa::{Asid, Uop};
use jsmt_mem::MemConfig;
use jsmt_perfmon::LogicalCpu;
use jsmt_snapshot::save_bytes;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Workload {
    seed: u64,
    code_kb: u64,
    mem: f64,
    br: f64,
    fp: f64,
    dep: f64,
    privileged: bool,
}

impl Workload {
    fn stream(&self, salt: u64) -> SyntheticStream {
        SyntheticStream::builder(self.seed ^ salt)
            .code_footprint(self.code_kb * 1024)
            .data_footprint(64 * 1024)
            .mem_fraction(self.mem)
            .branch_fraction(self.br)
            .fp_fraction(self.fp)
            .dep_chain(self.dep)
            .privileged(self.privileged)
            .build()
    }
}

/// One core plus its µop supply, driven the way the system layer drives
/// the real machine: generated µops sit in a pending buffer, fills are
/// pure drains of it, and (on the trace tier) replays consume from its
/// front. Non-trace tiers take the identical path — `trace_step` is a
/// no-op for them — so deliveries match across tiers by construction.
struct Driver {
    core: SmtCore,
    streams: Vec<SyntheticStream>,
    pendings: Vec<VecDeque<Uop>>,
}

impl Driver {
    fn new(tier: ExecTier, w: &Workload, dual: bool) -> Self {
        let ht = dual;
        let mut core = SmtCore::new(CoreConfig::p4(ht), MemConfig::p4(ht));
        core.set_exec_tier(tier);
        core.bind(LogicalCpu::Lp0, Asid(1));
        let mut streams = vec![w.stream(0)];
        if dual {
            core.bind(LogicalCpu::Lp1, Asid(2));
            streams.push(w.stream(1));
        }
        let pendings = streams.iter().map(|_| VecDeque::new()).collect();
        Driver {
            core,
            streams,
            pendings,
        }
    }

    /// Advance to exactly cycle `t`.
    fn advance_to(&mut self, t: u64) {
        while self.core.cycles() < t {
            // Keep each pending buffer deeper than the longest possible
            // trace fill (fetch_width × MAX_TRACE µops) so replays are
            // never starved by the harness.
            for (s, p) in self.streams.iter_mut().zip(self.pendings.iter_mut()) {
                while p.len() < 4096 {
                    s.fill(p, 48);
                }
            }
            if self.pendings.len() == 1 {
                let left = t - self.core.cycles();
                let (cycles, consumed) = self.core.trace_step(left, &self.pendings[0]);
                if cycles > 0 {
                    self.pendings[0].drain(..consumed);
                    continue;
                }
            }
            let pendings = &mut self.pendings;
            self.core.cycle(&mut |lcpu, buf, max| {
                let Some(p) = pendings.get_mut(lcpu.index()) else {
                    return 0;
                };
                let take = max.min(p.len());
                for u in p.drain(..take) {
                    buf.push_back(u);
                }
                take
            });
        }
    }
}

/// The litmus shapes, through the *full system* (real scheduler, real
/// monitors, GC threads): every exec-tier combination — trace tier
/// on/off × fast-forward on/off — must produce the identical observed
/// interleaving label, identical cycle count, identical counter bank,
/// and byte-identical final checkpoint. A tier that perturbed monitor
/// scheduling would flip an interleaving observation long before it
/// corrupted a mean IPC, which is exactly why the litmus family exists.
#[test]
fn litmus_shapes_identical_across_tier_and_fastfwd_toggles() {
    use jsmt_core::{System, SystemConfig};
    use jsmt_workloads::{BenchmarkId, WorkloadSpec};

    for &shape in &BenchmarkId::LITMUS {
        let run = |trace: bool, fastfwd: bool| {
            let mut sys = System::new(SystemConfig::p4(true).with_seed(0xC0FFEE));
            sys.set_trace_tier(trace);
            sys.set_fast_forward(fastfwd);
            sys.add_process(
                WorkloadSpec::threaded(shape, shape.default_threads()).with_scale(0.02),
            );
            let report = sys.run_to_completion();
            (
                report.cycles,
                report.bank.clone(),
                sys.observation(0),
                sys.sync_stats(0),
                sys.checkpoint(),
            )
        };
        let golden = run(true, true);
        assert!(golden.2.is_some(), "{}: no observation label", shape.name());
        for (trace, fastfwd) in [(true, false), (false, true), (false, false)] {
            let other = run(trace, fastfwd);
            assert_eq!(
                golden.0,
                other.0,
                "{}: cycles diverged at trace={trace} fastfwd={fastfwd}",
                shape.name()
            );
            assert_eq!(
                golden.2,
                other.2,
                "{}: interleaving label diverged at trace={trace} fastfwd={fastfwd}",
                shape.name()
            );
            assert_eq!(
                golden.3,
                other.3,
                "{}: sync stats diverged at trace={trace} fastfwd={fastfwd}",
                shape.name()
            );
            assert_eq!(
                golden.1,
                other.1,
                "{}: counter bank diverged at trace={trace} fastfwd={fastfwd}",
                shape.name()
            );
            assert_eq!(
                golden.4,
                other.4,
                "{}: checkpoint bytes diverged at trace={trace} fastfwd={fastfwd}",
                shape.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random workloads (memory-heavy, branchy, FP-dense, dependent,
    /// kernel-mode) through all three tiers, with snapshot bytes compared
    /// at every random checkpoint — retirement counts and every other
    /// counter live inside those bytes, and so does the full pipeline
    /// state.
    #[test]
    fn tiers_lockstep_at_random_checkpoints(
        seed in 0u64..1_000_000,
        code_kb in 1u64..16,
        mem in 0.0f64..0.5,
        br in 0.0f64..0.25,
        fp in 0.0f64..0.6,
        dep in 0.0f64..0.5,
        privileged in any::<bool>(),
        dual in any::<bool>(),
        cuts in prop::collection::vec(200u64..4000, 2..5),
    ) {
        let w = Workload { seed, code_kb, mem, br, fp, dep, privileged };
        let mut drivers = [
            Driver::new(ExecTier::Scalar, &w, dual),
            Driver::new(ExecTier::Batched, &w, dual),
            Driver::new(ExecTier::Trace, &w, dual),
        ];
        let mut t = 0;
        for cut in cuts {
            t += cut;
            let mut snaps = Vec::new();
            for d in drivers.iter_mut() {
                d.advance_to(t);
                prop_assert_eq!(d.core.cycles(), t);
                snaps.push(save_bytes(&d.core));
            }
            prop_assert_eq!(&snaps[0], &snaps[1],
                "scalar vs batched diverged at cycle {}", t);
            prop_assert_eq!(&snaps[1], &snaps[2],
                "batched vs trace diverged at cycle {}", t);
            prop_assert_eq!(
                drivers[0].core.counters(), drivers[2].core.counters(),
                "counter banks diverged at cycle {}", t);
        }
    }

    /// Dense pure-compute streams — the shape the compiled-trace tier
    /// actually replays — against the batched reference, with a random
    /// mid-run checkpoint. This is the path where a replay bug would
    /// show up as a byte diff.
    #[test]
    fn trace_replay_lockstep_on_dense_streams(
        seed in 0u64..100_000,
        fp in 0.0f64..0.8,
        privileged in any::<bool>(),
        cut in 10_000u64..30_000,
        tail in 10_000u64..60_000,
    ) {
        let w = Workload {
            seed,
            code_kb: 2,
            mem: 0.0,
            br: 0.0,
            fp,
            dep: 0.0,
            privileged,
        };
        let mut reference = Driver::new(ExecTier::Batched, &w, false);
        let mut traced = Driver::new(ExecTier::Trace, &w, false);
        for t in [cut, cut + tail] {
            reference.advance_to(t);
            traced.advance_to(t);
            prop_assert_eq!(
                save_bytes(&reference.core),
                save_bytes(&traced.core),
                "trace tier diverged at cycle {} ({:?})",
                t,
                traced.core.trace_stats()
            );
        }
    }
}
