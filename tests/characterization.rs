//! Calibration tests: each benchmark's microarchitectural signature, as
//! the paper and the SPECjvm98/Java Grande literature describe them, must
//! hold when run through the full system. These are the guardrails that
//! keep future model changes from silently breaking the figures.

use jsmt_core::{RunReport, System, SystemConfig};
use jsmt_perfmon::Event;
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

fn run_at(id: BenchmarkId, threads: usize, scale: f64) -> RunReport {
    let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(600_000_000));
    sys.add_process(WorkloadSpec { id, threads, scale });
    sys.run_to_completion()
}

fn run(id: BenchmarkId, threads: usize) -> RunReport {
    run_at(id, threads, 0.05)
}

#[test]
fn mpegaudio_is_the_best_behaved_program() {
    // FP-dominated, small hot data, predictable branches → lowest CPI and
    // near-zero trace-cache pressure.
    let mpeg = run(BenchmarkId::Mpegaudio, 1);
    for other in [
        BenchmarkId::Db,
        BenchmarkId::Jack,
        BenchmarkId::Javac,
        BenchmarkId::Jess,
    ] {
        let o = run(other, 1);
        assert!(
            mpeg.metrics.cpi < o.metrics.cpi,
            "mpegaudio CPI {:.2} must beat {other} {:.2}",
            mpeg.metrics.cpi,
            o.metrics.cpi
        );
    }
}

#[test]
fn db_is_memory_bound() {
    let db = run(BenchmarkId::Db, 1);
    let mpeg = run(BenchmarkId::Mpegaudio, 1);
    assert!(
        db.metrics.l2_mpki > 3.0 * mpeg.metrics.l2_mpki,
        "db L2 MPKI {:.1} must dwarf mpegaudio {:.1}",
        db.metrics.l2_mpki,
        mpeg.metrics.l2_mpki
    );
    assert!(
        db.metrics.cpi > 2.0,
        "binary search over MBs is slow: {:.2}",
        db.metrics.cpi
    );
}

#[test]
fn bad_partners_have_the_largest_trace_cache_pressure() {
    // The §4.2 mechanism: jack, javac and jess stream the most code.
    // Larger scale: the signature is a steady-state property and the
    // cold compulsory misses of a tiny run would drown it.
    let mut tc: Vec<(BenchmarkId, f64)> = BenchmarkId::SINGLE_THREADED
        .iter()
        .map(|&id| (id, run_at(id, 1, 0.2).metrics.tc_mpki))
        .collect();
    tc.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaNs"));
    let worst4: Vec<BenchmarkId> = tc.iter().take(4).map(|(id, _)| *id).collect();
    for bad in [BenchmarkId::Jack, BenchmarkId::Javac, BenchmarkId::Jess] {
        assert!(
            worst4.contains(&bad),
            "{bad} must be in the TC-pressure top 4, got {worst4:?} from {tc:?}"
        );
    }
}

#[test]
fn pseudojbb_has_the_largest_memory_footprint_effects() {
    // Steady-state property: use a scale past the cold-start regime.
    let jbb = run_at(BenchmarkId::PseudoJbb, 2, 0.2);
    for other in BenchmarkId::MULTITHREADED
        .iter()
        .filter(|&&b| b != BenchmarkId::PseudoJbb)
    {
        let o = run_at(*other, 2, 0.2);
        assert!(
            jbb.metrics.l2_mpki > o.metrics.l2_mpki,
            "PseudoJBB L2 MPKI {:.1} must exceed {other} {:.1}",
            jbb.metrics.l2_mpki,
            o.metrics.l2_mpki
        );
        assert!(
            jbb.metrics.itlb_mpki >= o.metrics.itlb_mpki,
            "PseudoJBB ITLB MPKI must be the largest"
        );
    }
}

#[test]
fn raytracer_is_the_sync_heaviest_jgf_kernel() {
    let rt = run(BenchmarkId::RayTracer, 2);
    let md = run(BenchmarkId::MolDyn, 2);
    let mc = run(BenchmarkId::MonteCarlo, 2);
    assert!(
        rt.metrics.dual_thread_fraction < md.metrics.dual_thread_fraction
            && rt.metrics.dual_thread_fraction < mc.metrics.dual_thread_fraction,
        "RayTracer DT% {:.2} must be the lowest (MolDyn {:.2}, MonteCarlo {:.2})",
        rt.metrics.dual_thread_fraction,
        md.metrics.dual_thread_fraction,
        mc.metrics.dual_thread_fraction
    );
    assert!(
        rt.metrics.os_cycle_fraction > md.metrics.os_cycle_fraction,
        "RayTracer's contended row dispatch must cost more OS time"
    );
}

#[test]
fn allocation_rates_rank_as_published() {
    // jack (string churn) and javac (AST churn) allocate far more per
    // work than the numeric kernels.
    let allocs_per_ki = |id: BenchmarkId| {
        let r = run(id, 1);
        r.processes[0].allocations as f64 / (r.metrics.instructions as f64 / 1000.0)
    };
    let jack = allocs_per_ki(BenchmarkId::Jack);
    let compress = allocs_per_ki(BenchmarkId::Compress);
    let moldyn = allocs_per_ki(BenchmarkId::MolDyn);
    assert!(
        jack > 10.0 * compress.max(0.001),
        "jack {jack:.2} vs compress {compress:.2}"
    );
    assert!(
        jack > 10.0 * moldyn.max(0.001),
        "jack {jack:.2} vs MolDyn {moldyn:.2}"
    );
}

#[test]
fn branch_behaviour_signatures() {
    // mpegaudio's filterbank loops are the most predictable code in the
    // suite; javac's lexer/parser control flow is the least. The numeric
    // kernels sit between: their loop branches train well but MonteCarlo's
    // payoff test and MolDyn's cutoff are genuinely data-dependent.
    let mpeg = run_at(BenchmarkId::Mpegaudio, 1, 0.15)
        .metrics
        .branch_mispredict_ratio;
    let javac = run_at(BenchmarkId::Javac, 1, 0.15)
        .metrics
        .branch_mispredict_ratio;
    assert!(
        mpeg < javac,
        "mpegaudio ({mpeg:.3}) must predict better than javac ({javac:.3})"
    );
    let rt = run_at(BenchmarkId::RayTracer, 2, 0.15)
        .metrics
        .branch_mispredict_ratio;
    assert!(
        rt < javac,
        "RayTracer ({rt:.3}) must predict better than javac ({javac:.3})"
    );
}

#[test]
fn monitor_contention_happens_where_expected() {
    let rt = run(BenchmarkId::RayTracer, 4);
    assert!(
        rt.bank.total(Event::MonitorContended) > 0,
        "four tracers must contend on the row monitor"
    );
    let md = run(BenchmarkId::MolDyn, 4);
    // MolDyn synchronizes by barrier, not monitor.
    assert_eq!(md.bank.total(Event::MonitorContended), 0);
}
