#!/usr/bin/env python3
"""Perf-regression gate over BENCH_cycle_loop.json.

Reads the bench artifact written by `cargo bench --bench throughput`
and fails (exit 1) if any committed speedup floor regresses. Floors
come in two tiers keyed on the artifact's own `quick` flag:

* full runs use the committed floors that match the numbers recorded
  in BENCH_trajectory.csv (with noise margin);
* quick runs (CI smoke) use loose floors that only catch gross
  breakage — a tier that stopped engaging entirely — because 300k-cycle
  wall times are too noisy to gate tightly.

Run locally after a full bench:

    cargo bench -p jsmt-bench --bench throughput --offline
    python3 tools/perf_gate.py BENCH_cycle_loop.json
"""

import json
import sys

# Committed floors: (workload, full-run floor, quick-run floor).
# `balanced` is the honest hard case — only ~37 % of its cycles are
# fast-forwardable and the rest re-execute bit-identically, so its
# full-stack ceiling sits near 1.8x (see DESIGN.md §3.7). The big tier
# wins are structural elsewhere: fast-forward on stall-heavy profiles,
# compiled-trace replay on dense compute loops.
FLOORS = [
    ("balanced", 1.4, 1.1),
    ("dram_bound", 3.0, 1.3),
    ("fp_dense", 3.0, 1.3),
]


def main(path):
    with open(path) as f:
        doc = json.load(f)
    quick = bool(doc.get("quick"))
    speedups = {w["name"]: w["speedup"] for w in doc["workloads"]}
    failures = []
    for name, full_floor, quick_floor in FLOORS:
        floor = quick_floor if quick else full_floor
        got = speedups.get(name)
        if got is None:
            failures.append(f"{name}: missing from {path}")
        elif got < floor:
            failures.append(
                f"{name}: speedup {got:.2f}x below committed floor "
                f"{floor:.2f}x ({'quick' if quick else 'full'} run)"
            )
    mode = "quick" if quick else "full"
    for name, _, _ in FLOORS:
        if name in speedups:
            print(f"perf-gate [{mode}]: {name} {speedups[name]:.2f}x")
    if failures:
        for f_ in failures:
            print(f"perf-gate FAIL: {f_}", file=sys.stderr)
        return 1
    print("perf-gate: all committed floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_cycle_loop.json"))
