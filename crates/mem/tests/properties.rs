//! Property-based tests on the memory-system invariants.

use jsmt_isa::Asid;
use jsmt_mem::{
    Btb, BtbConfig, CacheConfig, SetAssocCache, Tlb, TlbConfig, TraceCache, TraceCacheConfig,
};
use jsmt_perfmon::LogicalCpu;
use proptest::prelude::*;

fn arb_lcpu() -> impl Strategy<Value = LogicalCpu> {
    prop_oneof![Just(LogicalCpu::Lp0), Just(LogicalCpu::Lp1)]
}

proptest! {
    /// Inclusion: immediately re-accessing any address hits (the line was
    /// just filled and cannot have been evicted).
    #[test]
    fn cache_refill_then_hit(addrs in prop::collection::vec(0u64..1_000_000, 1..200),
                             asid in 1u16..4) {
        let mut c = SetAssocCache::new(CacheConfig::p4_l1d());
        for a in addrs {
            c.access(a, Asid(asid), LogicalCpu::Lp0);
            prop_assert!(c.access(a, Asid(asid), LogicalCpu::Lp0), "immediate re-access must hit");
        }
    }

    /// Accesses within one line always agree (hit/miss is line-granular).
    #[test]
    fn cache_line_granularity(base in 0u64..1_000_000, off in 0u64..64) {
        let mut c = SetAssocCache::new(CacheConfig::p4_l1d());
        let line = base & !63;
        c.access(line, Asid(1), LogicalCpu::Lp0);
        prop_assert!(c.access(line + off, Asid(1), LogicalCpu::Lp0));
    }

    /// Miss count never exceeds access count, and stats are conserved.
    #[test]
    fn cache_stats_conserved(ops in prop::collection::vec((0u64..100_000, arb_lcpu()), 0..300)) {
        let mut c = SetAssocCache::new(CacheConfig {
            sets: 8, ways: 2, line_bytes: 64, phys_indexed: false, partitioned: false,
        });
        for (a, l) in &ops {
            c.access(*a, Asid(1), *l);
        }
        let acc = c.accesses(LogicalCpu::Lp0) + c.accesses(LogicalCpu::Lp1);
        let mis = c.misses(LogicalCpu::Lp0) + c.misses(LogicalCpu::Lp1);
        prop_assert_eq!(acc, ops.len() as u64);
        prop_assert!(mis <= acc);
        prop_assert!(c.occupancy() <= 16);
    }

    /// A partitioned cache never lets one logical CPU's accesses evict the
    /// other's lines.
    #[test]
    fn partitioned_cache_isolation(mine in prop::collection::vec(0u64..10_000, 1..20),
                                   theirs in prop::collection::vec(0u64..10_000, 0..200)) {
        let cfg = CacheConfig { sets: 8, ways: 2, line_bytes: 64, phys_indexed: false, partitioned: true };
        let mut c = SetAssocCache::new(cfg);
        // Restrict "mine" to what one partition can definitely hold.
        let mine: Vec<u64> = mine.into_iter().take(2).collect();
        for &a in &mine {
            c.access(a & !63, Asid(1), LogicalCpu::Lp0);
        }
        let resident_before: Vec<bool> =
            mine.iter().map(|&a| c.probe(a & !63, Asid(1), LogicalCpu::Lp0)).collect();
        for &a in &theirs {
            c.access(a, Asid(1), LogicalCpu::Lp1);
        }
        let resident_after: Vec<bool> =
            mine.iter().map(|&a| c.probe(a & !63, Asid(1), LogicalCpu::Lp0)).collect();
        prop_assert_eq!(resident_before, resident_after, "sibling traffic must not evict");
    }

    /// The TLB translates at page granularity.
    #[test]
    fn tlb_page_granularity(page in 0u64..100_000, off in 0u64..4096) {
        let mut t = Tlb::new(TlbConfig::p4_dtlb());
        t.access(page * 4096, Asid(1), LogicalCpu::Lp0);
        prop_assert!(t.access(page * 4096 + off, Asid(1), LogicalCpu::Lp0));
    }

    /// BTB: after an update, a lookup from the same thread returns exactly
    /// the stored target.
    #[test]
    fn btb_returns_what_was_stored(pcs in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000), 1..50)) {
        let mut btb = Btb::new(BtbConfig::p4(true));
        for &(pc, target) in &pcs {
            btb.update(pc, Asid(1), LogicalCpu::Lp0, target);
            prop_assert_eq!(btb.lookup(pc, Asid(1), LogicalCpu::Lp0), Some(target));
        }
    }

    /// Trace cache: thread tagging is strict two-way isolation.
    #[test]
    fn trace_cache_tagging_isolation(pc in 0u64..1_000_000) {
        let mut tc = TraceCache::new(TraceCacheConfig::p4(true));
        tc.fetch(pc, Asid(1), LogicalCpu::Lp0);
        prop_assert!(!tc.fetch(pc, Asid(1), LogicalCpu::Lp1), "first sibling fetch must miss");
        prop_assert!(tc.fetch(pc, Asid(1), LogicalCpu::Lp0), "own trace still resident");
        prop_assert!(tc.fetch(pc, Asid(1), LogicalCpu::Lp1), "sibling's own build now hits");
    }
}
