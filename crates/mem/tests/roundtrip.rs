//! Snapshot round-trip properties for the memory system: a restored
//! hierarchy (or any individual structure) is byte-canonical and
//! behaves identically to its uninterrupted twin on any access stream.

use jsmt_isa::Asid;
use jsmt_mem::{
    AccessKind, Btb, BtbConfig, CacheConfig, MemConfig, MemoryHierarchy, SetAssocCache,
};
use jsmt_perfmon::{CounterBank, LogicalCpu};
use jsmt_snapshot::{restore_bytes, save_bytes};
use proptest::prelude::*;

fn arb_lcpu() -> impl Strategy<Value = LogicalCpu> {
    prop_oneof![Just(LogicalCpu::Lp0), Just(LogicalCpu::Lp1)]
}

/// One synthetic memory operation: data access or fetch.
type Op = (bool, u64, u16, LogicalCpu);

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((any::<bool>(), 0u64..500_000, 1u16..4, arb_lcpu()), 0..max)
}

fn drive(h: &mut MemoryHierarchy, bank: &mut CounterBank, ops: &[Op]) -> Vec<u32> {
    ops.iter()
        .map(|&(is_fetch, addr, asid, lcpu)| {
            if is_fetch {
                h.fetch(addr, Asid(asid), lcpu, bank).penalty
            } else {
                h.data_access(addr, Asid(asid), lcpu, AccessKind::Read, bank)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full hierarchy: interrupt after a prefix of the stream,
    /// restore into a fresh instance, replay the suffix on both — the
    /// latencies, counters, and final snapshot bytes must be identical.
    #[test]
    fn hierarchy_round_trip_continues_identically(ops in arb_ops(300), cut_frac in 0.0f64..1.0, ht in any::<bool>()) {
        let cut = ((ops.len() as f64) * cut_frac) as usize;
        let mut twin = MemoryHierarchy::new(MemConfig::p4(ht));
        let mut twin_bank = CounterBank::new();
        drive(&mut twin, &mut twin_bank, &ops[..cut]);

        let bytes = save_bytes(&twin);
        let mut restored = MemoryHierarchy::new(MemConfig::p4(ht));
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(save_bytes(&restored), bytes, "re-save not canonical");

        let mut restored_bank = twin_bank.clone();
        let lat_twin = drive(&mut twin, &mut twin_bank, &ops[cut..]);
        let lat_rest = drive(&mut restored, &mut restored_bank, &ops[cut..]);
        prop_assert_eq!(lat_twin, lat_rest, "latency streams diverged");
        prop_assert_eq!(&twin_bank, &restored_bank, "counters diverged");
        prop_assert_eq!(save_bytes(&twin), save_bytes(&restored));
    }

    /// Restoring into a hierarchy with different cache geometry is
    /// rejected (line counts are validated, not trusted).
    #[test]
    fn hierarchy_geometry_mismatch_rejected(ops in arb_ops(50)) {
        let mut donor = MemoryHierarchy::new(MemConfig::p4(true));
        let mut bank = CounterBank::new();
        drive(&mut donor, &mut bank, &ops);
        let bytes = save_bytes(&donor);
        let mut small = MemConfig::p4(true);
        small.l1d = CacheConfig { sets: 4, ways: 2, line_bytes: 64, phys_indexed: false, partitioned: false };
        let mut other = MemoryHierarchy::new(small);
        prop_assert!(restore_bytes(&mut other, &bytes).is_err(),
                     "snapshot must not restore into a smaller L1d");
    }

    /// A bare set-associative cache round-trips: same hit/miss behaviour
    /// afterwards, canonical bytes.
    #[test]
    fn cache_round_trip(warm in prop::collection::vec((0u64..100_000, arb_lcpu()), 0..200),
                        probe in prop::collection::vec((0u64..100_000, arb_lcpu()), 0..100)) {
        let cfg = CacheConfig { sets: 16, ways: 4, line_bytes: 64, phys_indexed: false, partitioned: true };
        let mut twin = SetAssocCache::new(cfg);
        for (a, l) in &warm {
            twin.access(*a, Asid(1), *l);
        }
        let bytes = save_bytes(&twin);
        let mut restored = SetAssocCache::new(cfg);
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(save_bytes(&restored), bytes);
        for (a, l) in &probe {
            prop_assert_eq!(twin.access(*a, Asid(1), *l), restored.access(*a, Asid(1), *l));
        }
        prop_assert_eq!(save_bytes(&twin), save_bytes(&restored));
    }

    /// BTB round-trips with its prediction state intact.
    #[test]
    fn btb_round_trip(ops in prop::collection::vec((0u64..50_000, 0u64..50_000), 1..200)) {
        let mut twin = Btb::new(BtbConfig::p4(true));
        for (pc, target) in &ops {
            twin.lookup(*pc, Asid(1), LogicalCpu::Lp0);
            twin.update(*pc, Asid(1), LogicalCpu::Lp0, *target);
        }
        let bytes = save_bytes(&twin);
        let mut restored = Btb::new(BtbConfig::p4(true));
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(save_bytes(&restored), bytes);
        for (pc, target) in &ops {
            prop_assert_eq!(
                twin.lookup(*pc, Asid(1), LogicalCpu::Lp1),
                restored.lookup(*pc, Asid(1), LogicalCpu::Lp1)
            );
            twin.update(*pc, Asid(1), LogicalCpu::Lp1, target ^ 0x40);
            restored.update(*pc, Asid(1), LogicalCpu::Lp1, target ^ 0x40);
        }
        prop_assert_eq!(save_bytes(&twin), save_bytes(&restored));
    }
}
