//! Translation lookaside buffers.
//!
//! The paper attributes PseudoJBB's sharp ITLB degradation under
//! Hyper-Threading to the P4's *partitioned* ITLB design ("each logical
//! processor has its own ITLB", §4.1): with HT on, each context sees half
//! the reach even when the sibling is idle. The [`Tlb`] model makes the
//! partitioning switchable so both Figure 6 and the dynamic-partitioning
//! ablation can be run.

use jsmt_isa::{Addr, Asid, PAGE_BYTES};
use jsmt_perfmon::LogicalCpu;

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries (across both partitions when partitioned).
    pub entries: usize,
    /// Associativity (entries/ways = sets).
    pub ways: usize,
    /// Statically partition entries between logical CPUs.
    pub partitioned: bool,
}

impl TlbConfig {
    /// P4-like ITLB: 128 entries total, partitioned in half per logical
    /// CPU when Hyper-Threading is enabled.
    pub fn p4_itlb(ht_enabled: bool) -> Self {
        TlbConfig {
            entries: 128,
            ways: 8,
            partitioned: ht_enabled,
        }
    }

    /// P4-like DTLB: 64 entries, fully shared.
    pub fn p4_dtlb() -> Self {
        TlbConfig {
            entries: 64,
            ways: 8,
            partitioned: false,
        }
    }
}

/// A set-associative TLB with LRU replacement. Entries are stored as
/// parallel columns (tags / stamps / valid bits) so the way search on the
/// per-memory-µop access path reads one contiguous run of tags.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: usize,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    valid: Vec<bool>,
    tick: u64,
    lookups: [u64; 2],
    misses: [u64; 2],
}

impl Tlb {
    /// Build a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways`, if the resulting set
    /// count is not a power of two, or if a partitioned TLB has fewer than
    /// two sets.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(
            cfg.ways >= 1 && cfg.entries.is_multiple_of(cfg.ways),
            "entries must divide by ways"
        );
        let sets = cfg.entries / cfg.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            !cfg.partitioned || sets >= 2,
            "partitioned TLB needs >= 2 sets"
        );
        Tlb {
            cfg,
            sets,
            tags: vec![0; cfg.entries],
            stamps: vec![0; cfg.entries],
            valid: vec![false; cfg.entries],
            tick: 0,
            lookups: [0; 2],
            misses: [0; 2],
        }
    }

    /// The TLB geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, vpn: u64, lcpu: LogicalCpu) -> usize {
        // Set counts are validated powers of two, so the modulo reduces
        // to a mask (the access path runs per memory µop).
        if self.cfg.partitioned {
            let half = self.sets / 2;
            (vpn as usize & (half - 1)) + lcpu.index() * half
        } else {
            vpn as usize & (self.sets - 1)
        }
    }

    /// Translate the page containing `addr`; fills on miss. Returns hit.
    pub fn access(&mut self, addr: Addr, asid: Asid, lcpu: LogicalCpu) -> bool {
        self.tick += 1;
        self.lookups[lcpu.index()] += 1;
        let vpn = addr / PAGE_BYTES;
        let tag = (vpn << 16) | asid.0 as u64;
        let set = self.set_of(vpn, lcpu);
        let base = set * self.cfg.ways;
        let end = base + self.cfg.ways;
        for w in base..end {
            if self.valid[w] && self.tags[w] == tag {
                self.stamps[w] = self.tick;
                return true;
            }
        }
        self.misses[lcpu.index()] += 1;
        // Victim: the first invalid way, else the least recently used one
        // (first on ties, matching `Iterator::min_by_key`).
        let mut victim = base;
        let mut victim_key = u64::MAX;
        for w in base..end {
            let key = if self.valid[w] { self.stamps[w] } else { 0 };
            if key < victim_key {
                victim_key = key;
                victim = w;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.tick;
        self.valid[victim] = true;
        false
    }

    /// Lookups by `lcpu`.
    pub fn lookups(&self, lcpu: LogicalCpu) -> u64 {
        self.lookups[lcpu.index()]
    }

    /// Misses by `lcpu`.
    pub fn misses(&self, lcpu: LogicalCpu) -> u64 {
        self.misses[lcpu.index()]
    }

    /// Drop all translations (full TLB flush, e.g. on address-space
    /// switch for architectures without ASIDs; our model keeps ASIDs so
    /// this is only used by tests and the OS's explicit flush path).
    pub fn flush(&mut self) {
        self.valid.fill(false);
    }
}

impl jsmt_snapshot::Snapshotable for Tlb {
    /// The encoding predates the SoA columns and is kept byte-identical:
    /// interleaved `(tag, stamp, valid)` per entry.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.tags.len());
        for i in 0..self.tags.len() {
            w.put_u64(self.tags[i]);
            w.put_u64(self.stamps[i]);
            w.put_bool(self.valid[i]);
        }
        w.put_u64(self.tick);
        for i in 0..2 {
            w.put_u64(self.lookups[i]);
            w.put_u64(self.misses[i]);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_usize()?;
        if n != self.tags.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "tlb geometry mismatch",
            ));
        }
        for i in 0..n {
            self.tags[i] = r.get_u64()?;
            self.stamps[i] = r.get_u64()?;
            self.valid[i] = r.get_bool()?;
        }
        self.tick = r.get_u64()?;
        for i in 0..2 {
            self.lookups[i] = r.get_u64()?;
            self.misses[i] = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A1: Asid = Asid(1);
    const LP0: LogicalCpu = LogicalCpu::Lp0;
    const LP1: LogicalCpu = LogicalCpu::Lp1;

    #[test]
    fn miss_then_hit_same_page() {
        let mut t = Tlb::new(TlbConfig::p4_dtlb());
        assert!(!t.access(0x2000_0000, A1, LP0));
        assert!(t.access(0x2000_0FFF, A1, LP0), "same 4 KB page");
        assert!(!t.access(0x2000_1000, A1, LP0), "next page");
    }

    #[test]
    fn partitioning_halves_reach() {
        // Touch N pages that fit in a shared TLB but overflow a half
        // partition; a shared TLB keeps them all resident, the partitioned
        // one does not.
        let pages: Vec<u64> = (0..96).map(|i| i * PAGE_BYTES).collect();
        let mut shared = Tlb::new(TlbConfig {
            entries: 128,
            ways: 8,
            partitioned: false,
        });
        let mut part = Tlb::new(TlbConfig {
            entries: 128,
            ways: 8,
            partitioned: true,
        });
        for &p in &pages {
            shared.access(p, A1, LP0);
            part.access(p, A1, LP0);
        }
        let shared_second: u64 = pages
            .iter()
            .map(|&p| !shared.access(p, A1, LP0) as u64)
            .sum();
        let part_second: u64 = pages.iter().map(|&p| !part.access(p, A1, LP0) as u64).sum();
        assert_eq!(shared_second, 0, "96 pages fit in 128 shared entries");
        assert!(part_second > 0, "96 pages overflow a 64-entry partition");
    }

    #[test]
    fn partitions_are_private() {
        let mut t = Tlb::new(TlbConfig {
            entries: 16,
            ways: 2,
            partitioned: true,
        });
        t.access(0, A1, LP0);
        assert!(!t.access(0, A1, LP1), "sibling has its own partition");
        assert!(t.access(0, A1, LP0));
    }

    #[test]
    fn stats_and_flush() {
        let mut t = Tlb::new(TlbConfig::p4_dtlb());
        t.access(0, A1, LP0);
        t.access(0, A1, LP0);
        assert_eq!(t.lookups(LP0), 2);
        assert_eq!(t.misses(LP0), 1);
        t.flush();
        assert!(!t.access(0, A1, LP0));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_geometry() {
        let _ = Tlb::new(TlbConfig {
            entries: 10,
            ways: 4,
            partitioned: false,
        });
    }
}
