//! # jsmt-mem
//!
//! Memory-system models for the `jsmt` SMT simulator: set-associative
//! caches, TLBs, the Pentium 4 trace cache, the branch target buffer and
//! direction predictor, and the composed [`MemoryHierarchy`].
//!
//! Every structure supports the sharing policy the corresponding P4
//! structure uses under Hyper-Threading, because the paper's Figures 3–7
//! are precisely about those policies:
//!
//! * **L1D, L2** — fully shared, tagged by address-space id (competitive
//!   *or* constructive sharing, depending on footprints);
//! * **trace cache** — shared capacity, but trace lines are *thread-
//!   tagged* under Hyper-Threading (traces are path-specific and the P4
//!   tags its entries with thread information): siblings compete for
//!   capacity without reusing each other's traces (Figure 3);
//! * **ITLB** — *statically partitioned* between logical CPUs ("each
//!   logical processor has its own ITLB", §4.1);
//! * **BTB** — shared but entries are *tagged with the logical processor
//!   id*, so threads evict but never share each other's entries
//!   (destructive interference, Figure 7).
//!
//! ## Example
//!
//! ```
//! use jsmt_mem::{CacheConfig, SetAssocCache};
//! use jsmt_isa::Asid;
//! use jsmt_perfmon::LogicalCpu;
//!
//! // The paper machine's 8 KB 4-way L1 data cache with 64-byte lines.
//! let mut l1d = SetAssocCache::new(CacheConfig::p4_l1d());
//! let hit = l1d.access(0x2000_0040, Asid(1), LogicalCpu::Lp0);
//! assert!(!hit, "cold cache misses");
//! assert!(l1d.access(0x2000_0040, Asid(1), LogicalCpu::Lp0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod cache;
mod config;
mod hierarchy;
mod tlb;
mod trace_cache;

pub use btb::{Btb, BtbConfig, DirectionPredictor, PredictorConfig};
pub use cache::{CacheConfig, SetAssocCache};
pub use config::{MemConfig, MemLatencies};
pub use hierarchy::{AccessKind, FetchOutcome, MemoryHierarchy};
pub use tlb::{Tlb, TlbConfig};
pub use trace_cache::{TraceCache, TraceCacheConfig};
