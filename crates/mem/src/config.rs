//! Memory-system configuration.

use crate::{BtbConfig, CacheConfig, PredictorConfig, TlbConfig, TraceCacheConfig};

/// Latencies of the memory system, in core cycles at the nominal 2.8 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLatencies {
    /// L1D hit (load-to-use).
    pub l1d_hit: u32,
    /// L2 hit (on L1D or trace-cache miss).
    pub l2_hit: u32,
    /// DRAM access (dual-channel DDR400 behind an 800 MHz FSB: ~125 ns
    /// ≈ 350 core cycles).
    pub memory: u32,
    /// Extra decode cycles to rebuild a trace line after a TC miss, on top
    /// of the L2/memory time to get the instruction bytes.
    pub tc_build: u32,
    /// Page-walk penalty on a TLB miss.
    pub tlb_walk: u32,
}

impl MemLatencies {
    /// Latencies matching the paper's machine.
    pub fn p4() -> Self {
        MemLatencies {
            l1d_hit: 2,
            l2_hit: 18,
            memory: 350,
            tc_build: 12,
            tlb_walk: 30,
        }
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Trace cache geometry.
    pub tc: TraceCacheConfig,
    /// Instruction TLB (partitioned when HT is on, per the P4 design).
    pub itlb: TlbConfig,
    /// Data TLB (shared).
    pub dtlb: TlbConfig,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// Direction predictor geometry.
    pub predictor: PredictorConfig,
    /// Latencies.
    pub latencies: MemLatencies,
    /// Enable the L2 streaming prefetcher (next-line on an ascending L1D
    /// miss stride). The baseline reproduction runs with it off; the
    /// `ablation-prefetch` experiment turns it on.
    pub l2_prefetch: bool,
}

impl MemConfig {
    /// The paper machine's memory system, configured for `ht_enabled`.
    ///
    /// Hyper-Threading changes two things here: the ITLB becomes
    /// statically partitioned and BTB entries become logical-CPU-tagged.
    /// The caches are shared either way.
    pub fn p4(ht_enabled: bool) -> Self {
        MemConfig {
            l1d: CacheConfig::p4_l1d(),
            l2: CacheConfig::p4_l2(),
            tc: TraceCacheConfig::p4(ht_enabled),
            itlb: TlbConfig::p4_itlb(ht_enabled),
            dtlb: TlbConfig::p4_dtlb(),
            btb: BtbConfig::p4(ht_enabled),
            predictor: PredictorConfig::p4(),
            latencies: MemLatencies::p4(),
            l2_prefetch: false,
        }
    }

    /// Builder-style: enable/disable the L2 streaming prefetcher.
    pub fn with_l2_prefetch(mut self, on: bool) -> Self {
        self.l2_prefetch = on;
        self
    }

    /// Ablation helper: same system with an L1D scaled to `kib` kibibytes
    /// (the paper's §1 suggests "incorporating larger L1 cache may be
    /// effective to alleviate memory latency").
    pub fn with_l1d_kib(mut self, kib: usize) -> Self {
        assert!(kib.is_power_of_two(), "L1D size must be a power of two KiB");
        let line = self.l1d.line_bytes as usize;
        self.l1d.sets = kib * 1024 / (self.l1d.ways * line);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4_defaults_match_paper_platform() {
        let m = MemConfig::p4(true);
        assert_eq!(m.l1d.capacity_bytes(), 8 * 1024, "8KB L1D");
        assert_eq!(m.l2.capacity_bytes(), 1024 * 1024, "1MB L2");
        assert_eq!(m.tc.capacity_uops(), 12 * 1024, "12K uop trace cache");
        assert_eq!(m.l1d.line_bytes, 64);
        assert_eq!(m.l2.line_bytes, 64);
        assert!(m.itlb.partitioned, "ITLB partitioned under HT");
        assert!(m.btb.lcpu_tagged, "BTB tagged under HT");
    }

    #[test]
    fn ht_off_unpartitions() {
        let m = MemConfig::p4(false);
        assert!(!m.itlb.partitioned);
        assert!(!m.btb.lcpu_tagged);
    }

    #[test]
    fn l1d_scaling_ablation() {
        let m = MemConfig::p4(true).with_l1d_kib(32);
        assert_eq!(m.l1d.capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn latency_ordering() {
        let l = MemLatencies::p4();
        assert!(l.l1d_hit < l.l2_hit);
        assert!(l.l2_hit < l.memory);
    }
}
