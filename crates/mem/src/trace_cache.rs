//! The Pentium 4 execution trace cache.
//!
//! The P4 has no conventional L1 instruction cache: decoded µops are stored
//! in a ~12 Kµop trace cache, and a trace-cache miss sends fetch down the
//! slow decode path through the ITLB and L2. The paper identifies the
//! trace cache as *the* structure that determines Java pairing behaviour
//! (§4.2: "trace cache is the major factor determining the pairing
//! performance"), so this model is central to Figures 3, 8, 9 and 11.
//!
//! We model the trace cache as a set-associative cache of *trace lines*,
//! each holding [`TraceCacheConfig::uops_per_line`] µops of sequential
//! fetch, tagged by (line address, asid, and — under Hyper-Threading —
//! the building logical CPU, since traces are path-specific and the P4
//! tags entries with thread information). Capacity is shared: distinct
//! processes and, with HT on, sibling threads compete for it.

use jsmt_isa::{Addr, Asid};
use jsmt_perfmon::LogicalCpu;

/// Trace cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// µops stored per trace line (fetch granularity).
    pub uops_per_line: u32,
    /// Approximate code bytes covered by one trace line, used to map a
    /// fetch pc to its line address. IA-32 instructions average ~3.5
    /// bytes and decompose to ~1.5 µops, so a 6-µop line covers ~16 bytes.
    pub line_code_bytes: u64,
    /// Tag trace lines with the building logical CPU. Traces are
    /// path-specific and the P4 tags trace-cache entries with thread
    /// information under Hyper-Threading, so sibling threads *compete
    /// for* but do not *share* each other's traces — the contention the
    /// paper's Figure 3 measures.
    pub lcpu_tagged: bool,
}

impl TraceCacheConfig {
    /// P4-like trace cache: 12 Kµops as 256 sets × 8 ways × 6 µops;
    /// thread-tagged when Hyper-Threading is enabled.
    pub fn p4(ht_enabled: bool) -> Self {
        TraceCacheConfig {
            sets: 256,
            ways: 8,
            uops_per_line: 6,
            line_code_bytes: 16,
            lcpu_tagged: ht_enabled,
        }
    }

    /// Total µop capacity.
    pub fn capacity_uops(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.uops_per_line as u64
    }
}

#[derive(Debug, Clone, Copy)]
struct TraceLine {
    tag: u64,
    stamp: u64,
    valid: bool,
}

/// The execution trace cache.
#[derive(Debug, Clone)]
pub struct TraceCache {
    cfg: TraceCacheConfig,
    lines: Vec<TraceLine>,
    tick: u64,
    lookups: [u64; 2],
    misses: [u64; 2],
    builds: [u64; 2],
}

impl TraceCache {
    /// Build a trace cache.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (zero ways, non-power-of-two sets or
    /// line coverage).
    pub fn new(cfg: TraceCacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_code_bytes.is_power_of_two(),
            "line coverage must be a power of two"
        );
        assert!(
            cfg.ways >= 1 && cfg.uops_per_line >= 1,
            "degenerate geometry"
        );
        TraceCache {
            cfg,
            lines: vec![
                TraceLine {
                    tag: 0,
                    stamp: 0,
                    valid: false
                };
                cfg.sets * cfg.ways
            ],
            tick: 0,
            lookups: [0; 2],
            misses: [0; 2],
            builds: [0; 2],
        }
    }

    /// The geometry.
    pub fn config(&self) -> &TraceCacheConfig {
        &self.cfg
    }

    /// The set base index and tag for a fetch at `pc`. The geometry is
    /// validated power-of-two, so the probed-every-cycle index math is
    /// shifts and masks, not hardware divides.
    #[inline]
    fn key(&self, pc: Addr, asid: Asid, lcpu: LogicalCpu) -> (usize, u64) {
        let line_addr = pc >> self.cfg.line_code_bytes.trailing_zeros();
        let set = (line_addr as usize) & (self.cfg.sets - 1);
        let mut tag = (line_addr << 17) | ((asid.0 as u64) << 1);
        if self.cfg.lcpu_tagged {
            tag |= lcpu.index() as u64;
        }
        (set * self.cfg.ways, tag)
    }

    /// Look up the trace line for a fetch at `pc`. On a miss the line is
    /// *built* (filled) immediately and the miss is recorded — the build
    /// latency is charged by the caller from [`crate::MemLatencies`].
    /// Returns whether fetch hit.
    pub fn fetch(&mut self, pc: Addr, asid: Asid, lcpu: LogicalCpu) -> bool {
        self.tick += 1;
        self.lookups[lcpu.index()] += 1;
        let (base, tag) = self.key(pc, asid, lcpu);
        let ways = &mut self.lines[base..base + self.cfg.ways];
        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.stamp = self.tick;
            return true;
        }
        self.misses[lcpu.index()] += 1;
        self.builds[lcpu.index()] += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("ways >= 1");
        *victim = TraceLine {
            tag,
            stamp: self.tick,
            valid: true,
        };
        false
    }

    /// Read-only probe: would [`TraceCache::fetch`] at `pc` hit right
    /// now? Touches no state — no tick, no stamp, no counters — so the
    /// fast-forward path can decide whether a span of identical probes is
    /// replayable before committing to it.
    pub fn would_hit(&self, pc: Addr, asid: Asid, lcpu: LogicalCpu) -> bool {
        let (base, tag) = self.key(pc, asid, lcpu);
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Replay `n` consecutive hitting fetches of the line at `pc` in one
    /// step, leaving the cache bit-identical to `n` calls of
    /// [`TraceCache::fetch`] that each hit: the global tick advances by
    /// `n`, the line's LRU stamp lands on the final tick, and `n` lookups
    /// are recorded.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is not present (callers must
    /// check [`TraceCache::would_hit`] first).
    pub fn repeat_hit(&mut self, pc: Addr, asid: Asid, lcpu: LogicalCpu, n: u64) {
        if n == 0 {
            return;
        }
        self.tick += n;
        self.lookups[lcpu.index()] += n;
        let (base, tag) = self.key(pc, asid, lcpu);
        let tick = self.tick;
        let line = self.lines[base..base + self.cfg.ways]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag);
        debug_assert!(line.is_some(), "repeat_hit on an absent trace line");
        if let Some(l) = line {
            l.stamp = tick;
        }
    }

    /// µops deliverable per hit (the fetch width cap from the trace cache).
    pub fn uops_per_fetch(&self) -> u32 {
        self.cfg.uops_per_line
    }

    /// Lookups by `lcpu`.
    pub fn lookups(&self, lcpu: LogicalCpu) -> u64 {
        self.lookups[lcpu.index()]
    }

    /// Misses by `lcpu`.
    pub fn misses(&self, lcpu: LogicalCpu) -> u64 {
        self.misses[lcpu.index()]
    }

    /// Trace builds by `lcpu` (equals misses in this model).
    pub fn builds(&self, lcpu: LogicalCpu) -> u64 {
        self.builds[lcpu.index()]
    }

    /// Fraction of valid lines (warm-up diagnostics).
    pub fn occupancy(&self) -> f64 {
        self.lines.iter().filter(|l| l.valid).count() as f64 / self.lines.len() as f64
    }
}

impl jsmt_snapshot::Snapshotable for TraceCache {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.lines.len());
        for l in &self.lines {
            w.put_u64(l.tag);
            w.put_u64(l.stamp);
            w.put_bool(l.valid);
        }
        w.put_u64(self.tick);
        for i in 0..2 {
            w.put_u64(self.lookups[i]);
            w.put_u64(self.misses[i]);
            w.put_u64(self.builds[i]);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_usize()?;
        if n != self.lines.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "trace cache geometry mismatch",
            ));
        }
        for l in &mut self.lines {
            l.tag = r.get_u64()?;
            l.stamp = r.get_u64()?;
            l.valid = r.get_bool()?;
        }
        self.tick = r.get_u64()?;
        for i in 0..2 {
            self.lookups[i] = r.get_u64()?;
            self.misses[i] = r.get_u64()?;
            self.builds[i] = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A1: Asid = Asid(1);
    const A2: Asid = Asid(2);
    const LP0: LogicalCpu = LogicalCpu::Lp0;
    const LP1: LogicalCpu = LogicalCpu::Lp1;

    #[test]
    fn loop_body_hits_after_first_iteration() {
        let mut tc = TraceCache::new(TraceCacheConfig::p4(false));
        let body: Vec<u64> = (0..8).map(|i| 0x0800_0000 + i * 16).collect();
        for &pc in &body {
            assert!(!tc.fetch(pc, A1, LP0), "cold");
        }
        for &pc in &body {
            assert!(tc.fetch(pc, A1, LP0), "warm loop");
        }
    }

    #[test]
    fn capacity_thrash_between_processes() {
        // Two processes each streaming a footprint of ~3/4 the trace cache
        // capacity through it, interleaved: they evict each other.
        let cfg = TraceCacheConfig::p4(false);
        let lines = (cfg.sets * cfg.ways) as u64;
        let mut tc = TraceCache::new(cfg);
        let footprint: Vec<u64> = (0..(lines * 3 / 4))
            .map(|i| 0x0800_0000 + i * cfg.line_code_bytes)
            .collect();
        // Warm both.
        for _ in 0..3 {
            for &pc in &footprint {
                tc.fetch(pc, A1, LP0);
                tc.fetch(pc, A2, LP1);
            }
        }
        let before = (tc.misses(LP0), tc.misses(LP1));
        for &pc in &footprint {
            tc.fetch(pc, A1, LP0);
            tc.fetch(pc, A2, LP1);
        }
        let new_misses = tc.misses(LP0) - before.0 + tc.misses(LP1) - before.1;
        assert!(
            new_misses > footprint.len() as u64 / 4,
            "interleaved oversized footprints should keep missing, got {new_misses}"
        );
    }

    #[test]
    fn same_process_threads_share_traces_without_ht_tagging() {
        let mut tc = TraceCache::new(TraceCacheConfig::p4(false));
        tc.fetch(0x0800_0000, A1, LP0);
        assert!(
            tc.fetch(0x0800_0000, A1, LP1),
            "constructive sharing within a process"
        );
    }

    #[test]
    fn ht_tagging_separates_sibling_traces() {
        let mut tc = TraceCache::new(TraceCacheConfig::p4(true));
        tc.fetch(0x0800_0000, A1, LP0);
        assert!(
            !tc.fetch(0x0800_0000, A1, LP1),
            "thread-tagged traces are not shared between logical CPUs"
        );
    }

    #[test]
    fn different_processes_do_not_alias() {
        let mut tc = TraceCache::new(TraceCacheConfig::p4(false));
        tc.fetch(0x0800_0000, A1, LP0);
        assert!(!tc.fetch(0x0800_0000, A2, LP1));
    }

    #[test]
    fn p4_capacity_is_12k_uops() {
        assert_eq!(TraceCacheConfig::p4(false).capacity_uops(), 12 * 1024);
    }

    #[test]
    fn would_hit_is_pure_and_repeat_hit_replays_fetches() {
        let mk = || {
            let mut tc = TraceCache::new(TraceCacheConfig::p4(true));
            for i in 0..16 {
                tc.fetch(0x0800_0000 + i * 16, A1, LP0);
            }
            tc
        };
        let mut a = mk();
        let mut b = mk();
        // would_hit agrees with fetch without mutating anything.
        assert!(a.would_hit(0x0800_0000, A1, LP0));
        assert!(!a.would_hit(0x0800_0000, A2, LP0));
        assert!(!a.would_hit(0x0800_0000, A1, LP1), "thread-tagged");
        assert_eq!(a.lookups(LP0), b.lookups(LP0), "would_hit counted");

        // n repeated fetch() hits == one repeat_hit(n): identical LRU
        // behaviour afterwards (probe a conflict pattern to expose it).
        for _ in 0..5 {
            assert!(a.fetch(0x0800_0070, A1, LP0));
        }
        b.repeat_hit(0x0800_0070, A1, LP0, 5);
        assert_eq!(a.lookups(LP0), b.lookups(LP0));
        let stress = |tc: &mut TraceCache| {
            let mut hits = 0;
            for i in 0..64u64 {
                if tc.fetch(0x0800_0000 + (i % 24) * 16 * 256, A1, LP0) {
                    hits += 1;
                }
            }
            (hits, tc.misses(LP0))
        };
        assert_eq!(stress(&mut a), stress(&mut b), "LRU state diverged");
    }

    #[test]
    fn occupancy_grows() {
        let mut tc = TraceCache::new(TraceCacheConfig::p4(false));
        assert_eq!(tc.occupancy(), 0.0);
        tc.fetch(0x0800_0000, A1, LP0);
        assert!(tc.occupancy() > 0.0);
    }
}
