//! Generic set-associative cache with true-LRU replacement.

use jsmt_isa::{Addr, Asid, PAGE_BYTES};
use jsmt_perfmon::LogicalCpu;

/// Geometry and indexing policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Physically indexed: the set index is derived from a per-(page, asid)
    /// hash, modeling the OS's page-frame scatter. Virtually-indexed
    /// caches (small L1s whose index bits fall inside the page offset) use
    /// the raw address.
    pub phys_indexed: bool,
    /// Statically partition the sets between the two logical CPUs (each
    /// sees half the capacity and cannot evict the other's lines).
    pub partitioned: bool,
}

impl CacheConfig {
    /// The paper machine's L1 data cache: 8 KB, 4-way, 64 B lines
    /// (32 sets). Index bits all fall within the 4 KB page offset, so it
    /// is effectively virtually indexed; shared between logical CPUs.
    pub fn p4_l1d() -> Self {
        CacheConfig {
            sets: 32,
            ways: 4,
            line_bytes: 64,
            phys_indexed: false,
            partitioned: false,
        }
    }

    /// The paper machine's unified L2: 1 MB, 8-way, 64 B lines
    /// (2048 sets), physically indexed, shared.
    pub fn p4_l2() -> Self {
        CacheConfig {
            sets: 2048,
            ways: 8,
            line_bytes: 64,
            phys_indexed: true,
            partitioned: false,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }

    fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways >= 1, "associativity must be at least 1");
        assert!(
            !self.partitioned || self.sets >= 2,
            "partitioned cache needs >= 2 sets"
        );
    }
}

/// A set-associative cache with true-LRU replacement and optional static
/// partitioning / physical indexing.
///
/// The cache models only tags (hit/miss behaviour); data never moves. Tags
/// incorporate the [`Asid`] so that identical virtual addresses in
/// different simulated processes do not falsely hit.
///
/// Lines are stored as parallel columns (tags / stamps / valid bits)
/// rather than an array of structs: the way search — run several times
/// per simulated cycle — then reads one contiguous run of tags instead of
/// striding over 24-byte entries.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    valid: Vec<bool>,
    tick: u64,
    accesses: [u64; 2],
    misses: [u64; 2],
    // Precomputed shift/mask forms of the power-of-two geometry: the
    // access path runs several times per simulated cycle, and hardware
    // divides on the runtime divisors dominate it otherwise. All are
    // exactly equivalent to the `/`/`%` they replace.
    line_shift: u32,
    set_mask: usize,
    half_mask: usize,
    page_line_mask: u64,
    page_line_shift: u32,
}

impl SetAssocCache {
    /// Build a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (non-power-of-two sets or line
    /// size, zero ways, or a partitioned cache with a single set).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let lines_per_page = (PAGE_BYTES / cfg.line_bytes).max(1);
        let n = cfg.sets * cfg.ways;
        SetAssocCache {
            cfg,
            tags: vec![0; n],
            stamps: vec![0; n],
            valid: vec![false; n],
            tick: 0,
            accesses: [0; 2],
            misses: [0; 2],
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: cfg.sets - 1,
            half_mask: (cfg.sets / 2).saturating_sub(1),
            page_line_mask: lines_per_page - 1,
            page_line_shift: lines_per_page.trailing_zeros(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn index_and_tag(&self, addr: Addr, asid: Asid) -> (usize, u64, usize) {
        let line_addr = addr >> self.line_shift;
        let raw_index = if self.cfg.phys_indexed {
            // Scatter pages as the OS's physical allocator would: hash the
            // (virtual page, asid) pair to a pseudo-frame, keep the line's
            // offset within the page.
            let vpn = addr / PAGE_BYTES;
            let frame = splitmix(vpn ^ ((asid.0 as u64) << 40));
            ((frame << self.page_line_shift).wrapping_add(line_addr & self.page_line_mask)) as usize
        } else {
            line_addr as usize
        };
        (raw_index, (line_addr << 16) | asid.0 as u64, raw_index)
    }

    #[inline]
    fn set_range(&self, raw_index: usize, lcpu: LogicalCpu) -> usize {
        if self.cfg.partitioned {
            let half = self.cfg.sets / 2;
            (raw_index & self.half_mask) + lcpu.index() * half
        } else {
            raw_index & self.set_mask
        }
    }

    /// Look up `addr`; on a miss, fill the line (evicting LRU). Returns
    /// whether the access hit.
    pub fn access(&mut self, addr: Addr, asid: Asid, lcpu: LogicalCpu) -> bool {
        self.tick += 1;
        self.accesses[lcpu.index()] += 1;
        let (raw, tag, _) = self.index_and_tag(addr, asid);
        let set = self.set_range(raw, lcpu);
        let base = set * self.cfg.ways;
        let end = base + self.cfg.ways;

        for w in base..end {
            if self.valid[w] && self.tags[w] == tag {
                self.stamps[w] = self.tick;
                return true;
            }
        }
        self.misses[lcpu.index()] += 1;
        // Victim: the first invalid way, else the least recently used one
        // (first on ties, matching `Iterator::min_by_key`).
        let mut victim = base;
        let mut victim_key = u64::MAX;
        for w in base..end {
            let key = if self.valid[w] { self.stamps[w] } else { 0 };
            if key < victim_key {
                victim_key = key;
                victim = w;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.tick;
        self.valid[victim] = true;
        false
    }

    /// Probe without filling or updating recency (used by tests and by the
    /// GC model's footprint estimation).
    pub fn probe(&self, addr: Addr, asid: Asid, lcpu: LogicalCpu) -> bool {
        let (raw, tag, _) = self.index_and_tag(addr, asid);
        let set = self.set_range(raw, lcpu);
        let base = set * self.cfg.ways;
        (base..base + self.cfg.ways).any(|w| self.valid[w] && self.tags[w] == tag)
    }

    /// Invalidate everything (e.g. simulated cache flush).
    pub fn flush(&mut self) {
        self.tags.fill(0);
        self.stamps.fill(0);
        self.valid.fill(false);
    }

    /// Total accesses by `lcpu`.
    pub fn accesses(&self, lcpu: LogicalCpu) -> u64 {
        self.accesses[lcpu.index()]
    }

    /// Total misses by `lcpu`.
    pub fn misses(&self, lcpu: LogicalCpu) -> u64 {
        self.misses[lcpu.index()]
    }

    /// Machine-wide miss rate over the lifetime of the cache.
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses[0] + self.accesses[1];
        if a == 0 {
            0.0
        } else {
            (self.misses[0] + self.misses[1]) as f64 / a as f64
        }
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().filter(|v| **v).count()
    }
}

impl jsmt_snapshot::Snapshotable for SetAssocCache {
    /// The encoding predates the SoA columns and is kept byte-identical:
    /// interleaved `(tag, stamp, valid)` per line.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.tags.len());
        for i in 0..self.tags.len() {
            w.put_u64(self.tags[i]);
            w.put_u64(self.stamps[i]);
            w.put_bool(self.valid[i]);
        }
        w.put_u64(self.tick);
        for i in 0..2 {
            w.put_u64(self.accesses[i]);
            w.put_u64(self.misses[i]);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_usize()?;
        if n != self.tags.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "cache geometry mismatch",
            ));
        }
        for i in 0..n {
            self.tags[i] = r.get_u64()?;
            self.stamps[i] = r.get_u64()?;
            self.valid[i] = r.get_bool()?;
        }
        self.tick = r.get_u64()?;
        for i in 0..2 {
            self.accesses[i] = r.get_u64()?;
            self.misses[i] = r.get_u64()?;
        }
        Ok(())
    }
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A1: Asid = Asid(1);
    const A2: Asid = Asid(2);
    const LP0: LogicalCpu = LogicalCpu::Lp0;
    const LP1: LogicalCpu = LogicalCpu::Lp1;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 64,
            phys_indexed: false,
            partitioned: false,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, A1, LP0));
        assert!(c.access(0x1000, A1, LP0));
        assert!(c.access(0x103F, A1, LP0), "same line");
        assert!(!c.access(0x1040, A1, LP0), "next line");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line).
        let stride = 4 * 64;
        c.access(0, A1, LP0);
        c.access(stride, A1, LP0);
        c.access(0, A1, LP0); // touch line 0 again; line `stride` is now LRU
        c.access(2 * stride, A1, LP0); // evicts `stride`
        assert!(c.probe(0, A1, LP0));
        assert!(!c.probe(stride, A1, LP0));
        assert!(c.probe(2 * stride, A1, LP0));
    }

    #[test]
    fn asids_do_not_alias() {
        let mut c = tiny();
        c.access(0x1000, A1, LP0);
        assert!(!c.access(0x1000, A2, LP0), "same VA, different process");
        assert!(c.access(0x1000, A1, LP0), "original still resident");
    }

    #[test]
    fn shared_cache_is_visible_across_lcpus() {
        let mut c = tiny();
        c.access(0x1000, A1, LP0);
        assert!(c.access(0x1000, A1, LP1), "same process on sibling hits");
    }

    #[test]
    fn partitioned_cache_isolates_lcpus() {
        let mut c = SetAssocCache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 64,
            phys_indexed: false,
            partitioned: true,
        });
        c.access(0x1000, A1, LP0);
        assert!(!c.access(0x1000, A1, LP1), "partition prevents sharing");
        assert!(c.access(0x1000, A1, LP0));
        assert!(c.access(0x1000, A1, LP1));
    }

    #[test]
    fn phys_indexing_spreads_pages() {
        // In a 2048-set × 64 B cache a way covers 128 KB, so pages at a
        // 128 KB *virtual* stride collide in the same sets under virtual
        // indexing. Physical indexing hashes each page to a pseudo-frame
        // and should scatter them across many sets.
        let mk = |phys| {
            SetAssocCache::new(CacheConfig {
                sets: 2048,
                ways: 2,
                line_bytes: 64,
                phys_indexed: phys,
                partitioned: false,
            })
        };
        let pages: Vec<u64> = (0..16u64).map(|i| 0x2000_0000 + i * 128 * 1024).collect();
        let mut virt = mk(false);
        let mut phys = mk(true);
        for &p in &pages {
            virt.access(p, A1, LP0);
            phys.access(p, A1, LP0);
        }
        let virt_resident = pages.iter().filter(|&&p| virt.probe(p, A1, LP0)).count();
        let phys_resident = pages.iter().filter(|&&p| phys.probe(p, A1, LP0)).count();
        assert_eq!(
            virt_resident, 2,
            "virtual indexing keeps only `ways` colliding pages"
        );
        assert!(
            phys_resident > 8,
            "physical indexing should scatter the pages, got {phys_resident}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.access(0, A1, LP0);
        c.access(0, A1, LP0);
        c.access(64, A1, LP1);
        assert_eq!(c.accesses(LP0), 2);
        assert_eq!(c.misses(LP0), 1);
        assert_eq!(c.accesses(LP1), 1);
        assert!((c.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0, A1, LP0);
        assert_eq!(c.occupancy(), 1);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(0, A1, LP0));
    }

    #[test]
    fn p4_geometries() {
        assert_eq!(CacheConfig::p4_l1d().capacity_bytes(), 8 * 1024);
        assert_eq!(CacheConfig::p4_l2().capacity_bytes(), 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = SetAssocCache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 64,
            phys_indexed: false,
            partitioned: false,
        });
    }
}
