//! Branch target buffer and direction predictor.
//!
//! The paper (§4.1, Figure 7) explains the BTB degradation under
//! Hyper-Threading: "the Pentium 4 ... treats the BTB as a shared structure
//! with entries that are tagged with a logical processor ID. This sharing
//! will cause destructive interferences." The [`Btb`] reproduces exactly
//! that: one physical array, entries usable only by the logical CPU that
//! installed them, so two contexts evict — but never prefetch for — each
//! other.
//!
//! Direction prediction is a gshare-style scheme with per-logical-CPU
//! history and a shared pattern table (cross-thread aliasing in the table
//! is another, milder, source of destructive interference).

use jsmt_isa::{Addr, Asid, BranchKind};
use jsmt_perfmon::LogicalCpu;

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Tag entries with the installing logical CPU (the P4 design). When
    /// `false` the BTB behaves as an ideally shared structure (ablation).
    pub lcpu_tagged: bool,
}

impl BtbConfig {
    /// P4-like BTB: 4K entries, 4-way, logical-CPU-tagged.
    pub fn p4(ht_enabled: bool) -> Self {
        BtbConfig {
            sets: 1024,
            ways: 4,
            lcpu_tagged: ht_enabled,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u64,
    target: Addr,
    stamp: u64,
    valid: bool,
}

/// The branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    cfg: BtbConfig,
    entries: Vec<BtbEntry>,
    tick: u64,
    lookups: [u64; 2],
    misses: [u64; 2],
}

impl Btb {
    /// Build a BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(cfg: BtbConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways >= 1, "ways must be >= 1");
        Btb {
            cfg,
            entries: vec![
                BtbEntry {
                    tag: 0,
                    target: 0,
                    stamp: 0,
                    valid: false
                };
                cfg.sets * cfg.ways
            ],
            tick: 0,
            lookups: [0; 2],
            misses: [0; 2],
        }
    }

    #[inline]
    fn tag_of(&self, pc: Addr, asid: Asid, lcpu: LogicalCpu) -> u64 {
        let mut t = (pc << 18) | ((asid.0 as u64) << 2);
        if self.cfg.lcpu_tagged {
            t |= 1 << (lcpu.index() as u64);
        }
        t
    }

    /// Look up the predicted target for the branch at `pc`. Returns
    /// `Some(target)` on a BTB hit. Misses are counted; the entry is not
    /// filled here (call [`Btb::update`] at resolution).
    pub fn lookup(&mut self, pc: Addr, asid: Asid, lcpu: LogicalCpu) -> Option<Addr> {
        self.tick += 1;
        self.lookups[lcpu.index()] += 1;
        // `sets` is validated as a power of two in `new`.
        let set = (pc as usize >> 2) & (self.cfg.sets - 1);
        let tag = self.tag_of(pc, asid, lcpu);
        let base = set * self.cfg.ways;
        for e in &mut self.entries[base..base + self.cfg.ways] {
            if e.valid && e.tag == tag {
                e.stamp = self.tick;
                return Some(e.target);
            }
        }
        self.misses[lcpu.index()] += 1;
        None
    }

    /// Install/refresh the target for a resolved taken branch.
    pub fn update(&mut self, pc: Addr, asid: Asid, lcpu: LogicalCpu, target: Addr) {
        self.tick += 1;
        let set = (pc as usize >> 2) & (self.cfg.sets - 1);
        let tag = self.tag_of(pc, asid, lcpu);
        let base = set * self.cfg.ways;
        let ways = &mut self.entries[base..base + self.cfg.ways];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.target = target;
            e.stamp = self.tick;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.stamp } else { 0 })
            .expect("ways >= 1");
        *victim = BtbEntry {
            tag,
            target,
            stamp: self.tick,
            valid: true,
        };
    }

    /// Lookups by `lcpu`.
    pub fn lookups(&self, lcpu: LogicalCpu) -> u64 {
        self.lookups[lcpu.index()]
    }

    /// Misses by `lcpu`.
    pub fn misses(&self, lcpu: LogicalCpu) -> u64 {
        self.misses[lcpu.index()]
    }
}

/// Direction predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// log2 of the pattern table size.
    pub table_bits: u32,
    /// History length in branches.
    pub history_bits: u32,
}

impl PredictorConfig {
    /// A P4-class global predictor (4K-entry pattern table, 12-bit
    /// history).
    pub fn p4() -> Self {
        PredictorConfig {
            table_bits: 12,
            history_bits: 12,
        }
    }
}

/// Gshare direction predictor: shared 2-bit-counter pattern table,
/// per-logical-CPU global history.
#[derive(Debug, Clone)]
pub struct DirectionPredictor {
    cfg: PredictorConfig,
    table: Vec<u8>,
    history: [u64; 2],
    predictions: [u64; 2],
    mispredicts: [u64; 2],
}

impl DirectionPredictor {
    /// Build a predictor; the pattern table starts weakly taken.
    pub fn new(cfg: PredictorConfig) -> Self {
        DirectionPredictor {
            cfg,
            table: vec![2u8; 1 << cfg.table_bits],
            history: [0; 2],
            predictions: [0; 2],
            mispredicts: [0; 2],
        }
    }

    #[inline]
    fn slot(&self, pc: Addr, lcpu: LogicalCpu) -> usize {
        let mask = (1u64 << self.cfg.table_bits) - 1;
        (((pc >> 2) ^ self.history[lcpu.index()]) & mask) as usize
    }

    /// Predict the direction of the conditional branch at `pc`, then update
    /// history and the pattern table with the actual outcome. Returns
    /// whether the *prediction was correct*. Unconditional branch kinds are
    /// always predicted taken (correctly).
    pub fn predict_and_update(
        &mut self,
        pc: Addr,
        lcpu: LogicalCpu,
        kind: BranchKind,
        taken: bool,
    ) -> bool {
        self.predictions[lcpu.index()] += 1;
        if !matches!(kind, BranchKind::Conditional) {
            // Direction of calls/returns/jumps is trivially known.
            return true;
        }
        let slot = self.slot(pc, lcpu);
        let counter = self.table[slot];
        let predicted_taken = counter >= 2;
        // 2-bit saturating update.
        self.table[slot] = match (taken, counter) {
            (true, c) if c < 3 => c + 1,
            (false, c) if c > 0 => c - 1,
            (_, c) => c,
        };
        let h = &mut self.history[lcpu.index()];
        *h = ((*h << 1) | taken as u64) & ((1 << self.cfg.history_bits) - 1);
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredicts[lcpu.index()] += 1;
        }
        correct
    }

    /// Predictions made by `lcpu`.
    pub fn predictions(&self, lcpu: LogicalCpu) -> u64 {
        self.predictions[lcpu.index()]
    }

    /// Mispredictions by `lcpu`.
    pub fn mispredicts(&self, lcpu: LogicalCpu) -> u64 {
        self.mispredicts[lcpu.index()]
    }
}

impl jsmt_snapshot::Snapshotable for Btb {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.tag);
            w.put_u64(e.target);
            w.put_u64(e.stamp);
            w.put_bool(e.valid);
        }
        w.put_u64(self.tick);
        for i in 0..2 {
            w.put_u64(self.lookups[i]);
            w.put_u64(self.misses[i]);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_usize()?;
        if n != self.entries.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "btb geometry mismatch",
            ));
        }
        for e in &mut self.entries {
            e.tag = r.get_u64()?;
            e.target = r.get_u64()?;
            e.stamp = r.get_u64()?;
            e.valid = r.get_bool()?;
        }
        self.tick = r.get_u64()?;
        for i in 0..2 {
            self.lookups[i] = r.get_u64()?;
            self.misses[i] = r.get_u64()?;
        }
        Ok(())
    }
}

impl jsmt_snapshot::Snapshotable for DirectionPredictor {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.table.len());
        w.put_raw(&self.table);
        for i in 0..2 {
            w.put_u64(self.history[i]);
            w.put_u64(self.predictions[i]);
            w.put_u64(self.mispredicts[i]);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_usize()?;
        if n != self.table.len() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "predictor table size mismatch",
            ));
        }
        self.table.copy_from_slice(r.get_raw(n)?);
        if self.table.iter().any(|&c| c > 3) {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "predictor counter out of 2-bit domain",
            ));
        }
        for i in 0..2 {
            self.history[i] = r.get_u64()?;
            self.predictions[i] = r.get_u64()?;
            self.mispredicts[i] = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A1: Asid = Asid(1);
    const LP0: LogicalCpu = LogicalCpu::Lp0;
    const LP1: LogicalCpu = LogicalCpu::Lp1;

    #[test]
    fn btb_learns_targets() {
        let mut btb = Btb::new(BtbConfig::p4(true));
        assert_eq!(btb.lookup(0x1000, A1, LP0), None);
        btb.update(0x1000, A1, LP0, 0x2000);
        assert_eq!(btb.lookup(0x1000, A1, LP0), Some(0x2000));
    }

    #[test]
    fn lcpu_tagging_blocks_cross_thread_hits() {
        let mut btb = Btb::new(BtbConfig::p4(true));
        btb.update(0x1000, A1, LP0, 0x2000);
        assert_eq!(
            btb.lookup(0x1000, A1, LP1),
            None,
            "tagged entry invisible to sibling"
        );
    }

    #[test]
    fn untagged_btb_shares_entries() {
        let mut btb = Btb::new(BtbConfig {
            sets: 16,
            ways: 2,
            lcpu_tagged: false,
        });
        btb.update(0x1000, A1, LP0, 0x2000);
        assert_eq!(btb.lookup(0x1000, A1, LP1), Some(0x2000));
    }

    #[test]
    fn tagged_siblings_compete_for_ways() {
        // Same pc from both threads with 1-way sets: each install evicts
        // the other's entry — destructive interference.
        let mut btb = Btb::new(BtbConfig {
            sets: 4,
            ways: 1,
            lcpu_tagged: true,
        });
        btb.update(0x1000, A1, LP0, 0x2000);
        btb.update(0x1000, A1, LP1, 0x2000);
        assert_eq!(
            btb.lookup(0x1000, A1, LP0),
            None,
            "sibling's install evicted ours"
        );
    }

    #[test]
    fn predictor_learns_a_loop_branch() {
        let mut p = DirectionPredictor::new(PredictorConfig::p4());
        // Strongly-biased taken branch: after warmup, always predicted.
        let mut correct = 0;
        for i in 0..1000 {
            if p.predict_and_update(0x4000, LP0, BranchKind::Conditional, true) && i >= 10 {
                correct += 1;
            }
        }
        assert!(
            correct >= 985,
            "biased branch should be near-perfect, got {correct}"
        );
    }

    #[test]
    fn predictor_struggles_with_random_branches() {
        let mut p = DirectionPredictor::new(PredictorConfig::p4());
        // Deterministic pseudo-random outcome stream.
        let mut x = 0x12345u64;
        let mut wrong = 0u64;
        let n = 4000;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if !p.predict_and_update(0x4000, LP0, BranchKind::Conditional, taken) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / n as f64;
        assert!(
            rate > 0.3,
            "random branches should mispredict often, rate={rate}"
        );
    }

    #[test]
    fn unconditional_kinds_never_mispredict() {
        let mut p = DirectionPredictor::new(PredictorConfig::p4());
        assert!(p.predict_and_update(0x1000, LP0, BranchKind::Direct, true));
        assert!(p.predict_and_update(0x1000, LP0, BranchKind::Return, true));
        assert_eq!(p.mispredicts(LP0), 0);
    }

    #[test]
    fn stats_per_lcpu() {
        let mut btb = Btb::new(BtbConfig::p4(true));
        btb.lookup(0x1000, A1, LP0);
        btb.lookup(0x1000, A1, LP1);
        assert_eq!(btb.lookups(LP0), 1);
        assert_eq!(btb.misses(LP1), 1);
    }
}
