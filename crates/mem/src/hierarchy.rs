//! The composed memory hierarchy.
//!
//! Ties the individual structures into the two paths the core exercises:
//! the *data* path (L1D → L2 → DRAM, with DTLB in parallel) and the
//! *fetch* path (trace cache; on a TC miss, ITLB → L2 → DRAM plus the
//! trace-build penalty). All events are recorded into a
//! [`jsmt_perfmon::CounterBank`] so experiments observe exactly what the
//! paper's counter tool observed.

use jsmt_isa::{Addr, Asid};
use jsmt_perfmon::{CounterBank, Event, LogicalCpu};

use crate::{Btb, DirectionPredictor, MemConfig, SetAssocCache, Tlb, TraceCache};

/// Kind of data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (latency-critical).
    Read,
    /// A store (modeled as allocate-on-write; completion latency mostly
    /// hidden by the store buffer, but misses still occupy the hierarchy).
    Write,
}

/// Result of an instruction fetch probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Whether the trace cache hit.
    pub tc_hit: bool,
    /// Cycles before µops are deliverable (0 on a TC hit).
    pub penalty: u32,
}

/// The full memory system of the modeled processor.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: MemConfig,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    tc: TraceCache,
    itlb: Tlb,
    dtlb: Tlb,
    /// Exposed for the front end: BTB and direction predictor live with
    /// the memory structures because they share the sharing-policy story.
    pub btb: Btb,
    /// Direction predictor (see [`MemoryHierarchy::btb`]).
    pub predictor: DirectionPredictor,
    /// Last L1D-miss line address per logical CPU (stride detection for
    /// the prefetcher).
    last_miss_line: [Addr; 2],
}

impl MemoryHierarchy {
    /// Build the hierarchy from a configuration.
    pub fn new(cfg: MemConfig) -> Self {
        MemoryHierarchy {
            l1d: SetAssocCache::new(cfg.l1d),
            l2: SetAssocCache::new(cfg.l2),
            tc: TraceCache::new(cfg.tc),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            btb: Btb::new(cfg.btb),
            predictor: DirectionPredictor::new(cfg.predictor),
            last_miss_line: [0; 2],
            cfg,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Perform a data access; returns the load-to-use latency in cycles.
    ///
    /// Stores return the same latency (the core model decides how much of
    /// it to expose; store misses matter for occupancy and for the L1D
    /// miss counts in Figure 4, which count both loads and stores).
    pub fn data_access(
        &mut self,
        addr: Addr,
        asid: Asid,
        lcpu: LogicalCpu,
        kind: AccessKind,
        bank: &mut CounterBank,
    ) -> u32 {
        let lat = &self.cfg.latencies;
        let mut cycles = lat.l1d_hit;

        bank.inc(lcpu, Event::DtlbLookups);
        if !self.dtlb.access(addr, asid, lcpu) {
            bank.inc(lcpu, Event::DtlbMisses);
            cycles += lat.tlb_walk;
        }

        bank.inc(lcpu, Event::L1dLookups);
        if self.l1d.access(addr, asid, lcpu) {
            return cycles;
        }
        bank.inc(lcpu, Event::L1dMisses);

        // Hardware prefetcher: on an ascending short-stride miss pattern,
        // stream the next line into the L2 ahead of demand.
        if self.cfg.l2_prefetch {
            // Line size is a validated power of two; shift instead of
            // dividing on this per-L1D-miss path.
            let shift = self.cfg.l2.line_bytes.trailing_zeros();
            let line = addr >> shift;
            let last = self.last_miss_line[lcpu.index()];
            if line > last && line - last <= 2 {
                let next = (line + 1) << shift;
                self.l2.access(next, asid, lcpu);
                bank.inc(lcpu, Event::PrefetchesIssued);
            }
            self.last_miss_line[lcpu.index()] = line;
        }

        bank.inc(lcpu, Event::L2Lookups);
        if self.l2.access(addr, asid, lcpu) {
            return cycles + lat.l2_hit;
        }
        bank.inc(lcpu, Event::L2Misses);
        bank.inc(lcpu, Event::MemAccesses);
        let _ = kind;
        cycles + lat.memory
    }

    /// Probe the fetch path for the group starting at `pc`.
    pub fn fetch(
        &mut self,
        pc: Addr,
        asid: Asid,
        lcpu: LogicalCpu,
        bank: &mut CounterBank,
    ) -> FetchOutcome {
        let lat = &self.cfg.latencies;
        bank.inc(lcpu, Event::TcLookups);
        if self.tc.fetch(pc, asid, lcpu) {
            return FetchOutcome {
                tc_hit: true,
                penalty: 0,
            };
        }
        bank.inc(lcpu, Event::TcMisses);
        bank.inc(lcpu, Event::TcBuilds);

        // Slow path: translate, read instruction bytes from L2 (or DRAM),
        // rebuild the trace.
        let mut penalty = lat.tc_build;
        bank.inc(lcpu, Event::ItlbLookups);
        if !self.itlb.access(pc, asid, lcpu) {
            bank.inc(lcpu, Event::ItlbMisses);
            penalty += lat.tlb_walk;
        }
        bank.inc(lcpu, Event::L2Lookups);
        if self.l2.access(pc, asid, lcpu) {
            penalty += lat.l2_hit;
        } else {
            bank.inc(lcpu, Event::L2Misses);
            bank.inc(lcpu, Event::MemAccesses);
            penalty += lat.memory;
        }
        FetchOutcome {
            tc_hit: false,
            penalty,
        }
    }

    /// Read-only probe: would [`MemoryHierarchy::fetch`] at `pc` hit the
    /// trace cache right now? No state — cache contents, LRU, counters —
    /// is touched.
    pub fn fetch_would_hit(&self, pc: Addr, asid: Asid, lcpu: LogicalCpu) -> bool {
        self.tc.would_hit(pc, asid, lcpu)
    }

    /// Replay `n` consecutive trace-cache-hit fetches of the group at
    /// `pc` in one step, bit-identical to `n` calls of
    /// [`MemoryHierarchy::fetch`] that each hit: `n` lookups land in
    /// `bank` and the trace cache's tick/LRU state advances as if probed
    /// `n` times. The caller must have established the hit via
    /// [`MemoryHierarchy::fetch_would_hit`].
    pub fn fetch_repeat_hit(
        &mut self,
        pc: Addr,
        asid: Asid,
        lcpu: LogicalCpu,
        n: u64,
        bank: &mut CounterBank,
    ) {
        bank.add(lcpu, Event::TcLookups, n);
        self.tc.repeat_hit(pc, asid, lcpu, n);
    }

    /// Maximum µops deliverable by one fetch (trace-line width).
    pub fn fetch_width(&self) -> u32 {
        self.tc.uops_per_fetch()
    }

    /// Access to the trace cache (read-only, for diagnostics).
    pub fn trace_cache(&self) -> &TraceCache {
        &self.tc
    }

    /// Access to the L1 data cache (read-only, for diagnostics).
    pub fn l1d(&self) -> &SetAssocCache {
        &self.l1d
    }

    /// Access to the L2 (read-only, for diagnostics).
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }
}

impl jsmt_snapshot::Snapshotable for MemoryHierarchy {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.section("l1d", |w| self.l1d.save_state(w));
        w.section("l2", |w| self.l2.save_state(w));
        w.section("tc", |w| self.tc.save_state(w));
        w.section("itlb", |w| self.itlb.save_state(w));
        w.section("dtlb", |w| self.dtlb.save_state(w));
        w.section("btb", |w| self.btb.save_state(w));
        w.section("predictor", |w| self.predictor.save_state(w));
        w.section("prefetch", |w| {
            w.put_u64(self.last_miss_line[0]);
            w.put_u64(self.last_miss_line[1]);
        });
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        self.l1d.restore_state(&mut r.section("l1d")?)?;
        self.l2.restore_state(&mut r.section("l2")?)?;
        self.tc.restore_state(&mut r.section("tc")?)?;
        self.itlb.restore_state(&mut r.section("itlb")?)?;
        self.dtlb.restore_state(&mut r.section("dtlb")?)?;
        self.btb.restore_state(&mut r.section("btb")?)?;
        self.predictor.restore_state(&mut r.section("predictor")?)?;
        let mut pf = r.section("prefetch")?;
        self.last_miss_line[0] = pf.get_u64()?;
        self.last_miss_line[1] = pf.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A1: Asid = Asid(1);
    const LP0: LogicalCpu = LogicalCpu::Lp0;

    fn hier() -> (MemoryHierarchy, CounterBank) {
        (
            MemoryHierarchy::new(MemConfig::p4(true)),
            CounterBank::new(),
        )
    }

    #[test]
    fn data_latency_tiers() {
        let (mut h, mut bank) = hier();
        let cold = h.data_access(0x2000_0000, A1, LP0, AccessKind::Read, &mut bank);
        let warm = h.data_access(0x2000_0000, A1, LP0, AccessKind::Read, &mut bank);
        assert!(cold > 300, "cold access goes to memory: {cold}");
        assert_eq!(warm, MemConfig::p4(true).latencies.l1d_hit);
        assert_eq!(bank.total(Event::L1dMisses), 1);
        assert_eq!(bank.total(Event::L2Misses), 1);
        assert_eq!(bank.total(Event::MemAccesses), 1);
    }

    #[test]
    fn l2_hit_tier() {
        let (mut h, mut bank) = hier();
        // Fill L2 and L1 with the line, then evict it from L1D by
        // streaming conflicting lines (same L1 set: stride = 2 KB for the
        // 32-set × 64 B L1D).
        h.data_access(0x2000_0000, A1, LP0, AccessKind::Read, &mut bank);
        for i in 1..=8u64 {
            h.data_access(0x2000_0000 + i * 2048, A1, LP0, AccessKind::Read, &mut bank);
        }
        let lat = h.data_access(0x2000_0000, A1, LP0, AccessKind::Read, &mut bank);
        let cfg = MemConfig::p4(true).latencies;
        assert_eq!(
            lat,
            cfg.l1d_hit + cfg.l2_hit,
            "should be an L2 hit after L1 eviction"
        );
    }

    #[test]
    fn fetch_hit_is_free_miss_pays_build() {
        let (mut h, mut bank) = hier();
        let cold = h.fetch(0x0800_0000, A1, LP0, &mut bank);
        assert!(!cold.tc_hit);
        assert!(cold.penalty > 0);
        let warm = h.fetch(0x0800_0000, A1, LP0, &mut bank);
        assert!(warm.tc_hit);
        assert_eq!(warm.penalty, 0);
        assert_eq!(bank.total(Event::TcMisses), 1);
        assert_eq!(bank.total(Event::TcLookups), 2);
    }

    #[test]
    fn fetch_miss_counts_itlb() {
        let (mut h, mut bank) = hier();
        h.fetch(0x0800_0000, A1, LP0, &mut bank);
        assert_eq!(bank.total(Event::ItlbLookups), 1);
        assert_eq!(bank.total(Event::ItlbMisses), 1);
    }

    #[test]
    fn prefetcher_streams_next_lines_into_l2() {
        let mut h = MemoryHierarchy::new(MemConfig::p4(true).with_l2_prefetch(true));
        let mut bank = CounterBank::new();
        // Ascending line-by-line stream: prefetches should fire and turn
        // later demand misses into L2 hits.
        for i in 0..32u64 {
            h.data_access(0x3000_0000 + i * 64, A1, LP0, AccessKind::Read, &mut bank);
        }
        assert!(
            bank.total(Event::PrefetchesIssued) > 16,
            "stream must trigger prefetches"
        );
        // Compare L2 misses against a prefetch-less hierarchy on the same
        // stream.
        let mut h2 = MemoryHierarchy::new(MemConfig::p4(true));
        let mut bank2 = CounterBank::new();
        for i in 0..32u64 {
            h2.data_access(0x3000_0000 + i * 64, A1, LP0, AccessKind::Read, &mut bank2);
        }
        assert!(
            bank.total(Event::L2Misses) < bank2.total(Event::L2Misses),
            "prefetching must reduce demand L2 misses ({} vs {})",
            bank.total(Event::L2Misses),
            bank2.total(Event::L2Misses)
        );
    }

    #[test]
    fn dtlb_walk_adds_latency() {
        let (mut h, mut bank) = hier();
        h.data_access(0x3000_0000, A1, LP0, AccessKind::Read, &mut bank);
        // Second access to a *different line of the same page*: DTLB hit,
        // L1D miss.
        let with_tlb_hit = h.data_access(0x3000_0000 + 64, A1, LP0, AccessKind::Read, &mut bank);
        // A fresh page: pays the walk again.
        let with_walk = h.data_access(0x3100_0000, A1, LP0, AccessKind::Read, &mut bank);
        assert!(with_walk > with_tlb_hit);
    }
}
