//! Kernel-mode µop generation.
//!
//! Redstone et al. (cited by the paper) showed the OS has a very large
//! instruction and data footprint with worse cache/TLB behaviour than user
//! code; the paper leans on that to explain Java-server OS overheads. The
//! [`KernelCodegen`] reproduces the *footprint* effect: every kernel
//! service walks a slice of a large kernel code region and touches kernel
//! data structures, so frequent OS activity pollutes the trace cache, L1D
//! and TLBs that user code shares with it.

use jsmt_isa::{Addr, Region, Uop, UopSink, DEP_NONE};

/// The kernel services the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelService {
    /// Periodic timer interrupt (accounting + runqueue poke).
    TimerInterrupt,
    /// Full context switch between software threads.
    ContextSwitch,
    /// Futex-style block/wake (contended Java monitor, `Thread.park`).
    Futex,
    /// Generic system call (I/O, mmap).
    Syscall,
    /// Thread creation/teardown.
    ThreadSpawn,
}

/// Deterministic kernel µop stream generator.
///
/// Each service executes at a stable position in the kernel code region
/// (real kernels have fixed entry points), so repeated services hit the
/// trace cache once warm — but still *occupy* capacity that user code
/// loses, which is the effect the paper observes.
#[derive(Debug, Clone)]
pub struct KernelCodegen {
    code_span: u64,
    data_span: u64,
    rng_state: u64,
}

impl KernelCodegen {
    /// Kernel code footprint: 96 KB of hot paths.
    const CODE_SPAN: u64 = 96 * 1024;
    /// Kernel data footprint: 192 KB of hot task structs, runqueues and
    /// page-table paths.
    const DATA_SPAN: u64 = 192 * 1024;

    /// A generator with the default footprints.
    pub fn new(seed: u64) -> Self {
        KernelCodegen {
            code_span: Self::CODE_SPAN,
            data_span: Self::DATA_SPAN,
            rng_state: seed | 1,
        }
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        // xorshift64*; cheap and deterministic.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Entry pc of a service (stable across calls).
    fn entry_of(&self, service: KernelService) -> Addr {
        let slot = match service {
            KernelService::TimerInterrupt => 0u64,
            KernelService::ContextSwitch => 1,
            KernelService::Futex => 2,
            KernelService::Syscall => 3,
            KernelService::ThreadSpawn => 4,
        };
        Region::KernelCode.base() + slot * (self.code_span / 5)
    }

    /// Emit `uops` kernel-mode µops for `service` into `out`.
    ///
    /// The stream is ~30 % memory µops over the kernel data region, ~10 %
    /// branches (well-biased — kernel fast paths are predictable), rest
    /// ALU; all privileged. Generic over the destination so handlers can
    /// be written straight into a thread's pending queue (zero-copy).
    pub fn emit<S: UopSink>(&mut self, service: KernelService, uops: u32, out: &mut S) {
        let entry = self.entry_of(service);
        let span = self.code_span / 5;
        let data_base = Region::KernelData.base();
        let mut pc_off = 0u64;
        for i in 0..uops {
            let pc = entry + (pc_off % span);
            pc_off += 4;
            let r = self.next_rand();
            let mut uop = match r % 10 {
                0 | 1 => {
                    let addr = (data_base + (self.next_rand() % self.data_span)) & !7;
                    Uop::load(pc, addr)
                }
                2 => {
                    let addr = (data_base + (self.next_rand() % self.data_span)) & !7;
                    Uop::store(pc, addr)
                }
                3 => {
                    // Kernel branches: biased taken, stable targets.
                    let target = entry + (pc.wrapping_mul(0x9E37) % span);
                    Uop::branch(pc, target, true)
                }
                _ => Uop::alu(pc),
            };
            uop.privileged = true;
            uop.dep_dist = if i % 4 == 0 { 1 } else { DEP_NONE };
            out.push_uop(uop);
        }
    }
}

impl jsmt_snapshot::Snapshotable for KernelCodegen {
    /// Only the RNG stream position is state; the footprints are fixed.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_u64(self.rng_state);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        self.rng_state = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsmt_isa::InstrMix;

    #[test]
    fn all_uops_are_privileged_kernel_addresses() {
        let mut kg = KernelCodegen::new(1);
        let mut out = Vec::new();
        kg.emit(KernelService::ContextSwitch, 500, &mut out);
        assert_eq!(out.len(), 500);
        for u in &out {
            assert!(u.privileged);
            assert!(Region::is_kernel(u.pc), "pc {:#x}", u.pc);
            if let Some(a) = u.mem {
                assert!(Region::is_kernel(a), "data {a:#x}");
            }
        }
    }

    #[test]
    fn services_have_distinct_entries() {
        let kg = KernelCodegen::new(1);
        let services = [
            KernelService::TimerInterrupt,
            KernelService::ContextSwitch,
            KernelService::Futex,
            KernelService::Syscall,
            KernelService::ThreadSpawn,
        ];
        let entries: std::collections::HashSet<_> =
            services.iter().map(|&s| kg.entry_of(s)).collect();
        assert_eq!(entries.len(), services.len());
    }

    #[test]
    fn mix_is_kernel_like() {
        let mut kg = KernelCodegen::new(7);
        let mut out = Vec::new();
        kg.emit(KernelService::Syscall, 10_000, &mut out);
        let mut mix = InstrMix::new();
        for u in &out {
            mix.record(u);
        }
        assert!(
            mix.mem_fraction() > 0.2 && mix.mem_fraction() < 0.4,
            "{}",
            mix.mem_fraction()
        );
        assert!(mix.branch_fraction() > 0.05 && mix.branch_fraction() < 0.15);
        assert_eq!(mix.kernel, 10_000);
    }

    #[test]
    fn repeated_service_reuses_code_addresses() {
        let mut kg = KernelCodegen::new(3);
        let mut first = Vec::new();
        let mut second = Vec::new();
        kg.emit(KernelService::TimerInterrupt, 100, &mut first);
        kg.emit(KernelService::TimerInterrupt, 100, &mut second);
        let pcs: Vec<_> = first.iter().map(|u| u.pc).collect();
        let pcs2: Vec<_> = second.iter().map(|u| u.pc).collect();
        assert_eq!(pcs, pcs2, "stable kernel entry paths");
    }
}
