//! OS model configuration.

/// Parameters of the OS model.
///
/// Costs are expressed in kernel-mode µops (the [`crate::KernelCodegen`]
/// turns them into streams with a realistic kernel code/data footprint);
/// periods are in core cycles at the nominal 2.8 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsConfig {
    /// Scheduling quantum. Linux 2.4's default timeslice was ~50 ms; at
    /// simulation scale we shrink it so that an 8-thread run experiences
    /// many quanta, keeping the *ratio* of scheduling work to user work in
    /// a realistic band.
    pub timeslice_cycles: u64,
    /// Timer-interrupt period (Linux 2.4: 100 Hz → 28 M cycles; scaled
    /// down with the timeslice).
    pub timer_period_cycles: u64,
    /// Kernel µops to handle a timer interrupt.
    pub timer_uops: u32,
    /// Kernel µops for a full context switch (save/restore, runqueue,
    /// MMU bookkeeping).
    pub ctx_switch_uops: u32,
    /// Kernel µops for a futex-style block or wake (Java contended
    /// monitor, thread park).
    pub futex_uops: u32,
    /// Kernel µops for a generic system call (I/O in `jack`/`javac`,
    /// memory mapping in the JVM heap grower).
    pub syscall_uops: u32,
    /// Kernel µops to create/destroy a thread.
    pub thread_spawn_uops: u32,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            timeslice_cycles: 240_000,
            timer_period_cycles: 110_000,
            timer_uops: 140,
            ctx_switch_uops: 900,
            futex_uops: 420,
            syscall_uops: 300,
            thread_spawn_uops: 2_200,
        }
    }
}

impl OsConfig {
    /// Scale all OS costs by a factor (sensitivity studies).
    pub fn scaled(mut self, factor: f64) -> Self {
        let s = |x: u32| ((x as f64 * factor).round() as u32).max(1);
        self.timer_uops = s(self.timer_uops);
        self.ctx_switch_uops = s(self.ctx_switch_uops);
        self.futex_uops = s(self.futex_uops);
        self.syscall_uops = s(self.syscall_uops);
        self.thread_spawn_uops = s(self.thread_spawn_uops);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered() {
        let c = OsConfig::default();
        assert!(c.timer_uops < c.ctx_switch_uops);
        assert!(c.ctx_switch_uops < c.thread_spawn_uops);
        assert!(c.timer_period_cycles <= c.timeslice_cycles);
    }

    #[test]
    fn scaling() {
        let c = OsConfig::default().scaled(2.0);
        assert_eq!(c.timer_uops, OsConfig::default().timer_uops * 2);
        let tiny = OsConfig::default().scaled(0.000001);
        assert!(tiny.timer_uops >= 1, "costs never reach zero");
    }
}
