//! The time-slicing thread scheduler.

use std::collections::VecDeque;

use jsmt_isa::Asid;

use crate::OsConfig;

/// Identifier of a software thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

/// Lifecycle state of a software thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Waiting in the run queue.
    Runnable,
    /// Bound to a logical CPU (index stored).
    Running(usize),
    /// Bound, but told to drain for an impending context switch.
    Draining(usize),
    /// Blocked (monitor, barrier, GC safepoint, I/O).
    Blocked,
    /// Exited.
    Finished,
}

/// A scheduling decision for the system layer to apply to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// Bind `thread` to logical CPU `lcpu`. The system layer must charge
    /// the context-switch kernel cost to the incoming thread's stream.
    Bind {
        /// Logical CPU index (0 or 1).
        lcpu: usize,
        /// The thread being scheduled in.
        thread: ThreadId,
        /// Address space of the thread.
        asid: Asid,
    },
    /// Ask the core to drain `lcpu` (stop fetching for the bound thread).
    RequestDrain {
        /// Logical CPU index.
        lcpu: usize,
    },
    /// Unbind the drained thread on `lcpu`.
    Unbind {
        /// Logical CPU index.
        lcpu: usize,
        /// The thread being descheduled.
        thread: ThreadId,
    },
    /// A timer interrupt fired on `lcpu`; the system layer injects the
    /// timer-handler kernel µops into the running thread's stream.
    Timer {
        /// Logical CPU index.
        lcpu: usize,
    },
}

#[derive(Debug, Clone)]
struct ThreadInfo {
    asid: Asid,
    state: ThreadState,
}

/// Round-robin, affinity-respecting time-slice scheduler over one or two
/// logical CPUs.
#[derive(Debug, Clone)]
pub struct Scheduler {
    cfg: OsConfig,
    nlcpus: usize,
    threads: Vec<ThreadInfo>,
    runq: VecDeque<ThreadId>,
    running: [Option<ThreadId>; 2],
    draining: [Option<ThreadId>; 2],
    slice_end: [u64; 2],
    next_timer: [u64; 2],
    ctx_switches: u64,
    timer_irqs: u64,
    preempt_pending: [bool; 2],
    block_events: u64,
    wake_events: u64,
}

impl Scheduler {
    /// A scheduler over 2 logical CPUs when `ht_enabled`, else 1.
    pub fn new(cfg: OsConfig, ht_enabled: bool) -> Self {
        Scheduler {
            cfg,
            nlcpus: if ht_enabled { 2 } else { 1 },
            threads: Vec::new(),
            runq: VecDeque::new(),
            running: [None; 2],
            draining: [None; 2],
            slice_end: [0; 2],
            next_timer: [cfg.timer_period_cycles; 2],
            ctx_switches: 0,
            timer_irqs: 0,
            preempt_pending: [false; 2],
            block_events: 0,
            wake_events: 0,
        }
    }

    /// Number of logical CPUs the scheduler manages.
    pub fn nlcpus(&self) -> usize {
        self.nlcpus
    }

    /// Number of threads ever spawned (including finished ones).
    pub fn nthreads(&self) -> usize {
        self.threads.len()
    }

    /// Create a runnable thread in address space `asid`.
    pub fn spawn(&mut self, asid: Asid) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u32);
        self.threads.push(ThreadInfo {
            asid,
            state: ThreadState::Runnable,
        });
        self.runq.push_back(tid);
        tid
    }

    /// State of a thread.
    ///
    /// # Panics
    ///
    /// Panics on an unknown thread id.
    pub fn state(&self, tid: ThreadId) -> ThreadState {
        self.threads[tid.0 as usize].state
    }

    /// The thread currently running on `lcpu` (if any).
    pub fn running_on(&self, lcpu: usize) -> Option<ThreadId> {
        self.running[lcpu].or(self.draining[lcpu])
    }

    /// Mark the running/runnable thread blocked. If it is currently bound,
    /// the next [`Scheduler::tick`] will drain and unbind it.
    pub fn block(&mut self, tid: ThreadId) {
        let info = &mut self.threads[tid.0 as usize];
        match info.state {
            ThreadState::Running(l) => {
                info.state = ThreadState::Blocked;
                self.block_events += 1;
                // Leave `running` slot occupied until the drain completes;
                // mark it for preemption at the next tick.
                self.preempt_pending[l] = true;
            }
            ThreadState::Draining(_) => {
                info.state = ThreadState::Blocked;
                self.block_events += 1;
            }
            ThreadState::Runnable => {
                info.state = ThreadState::Blocked;
                self.block_events += 1;
                self.runq.retain(|&t| t != tid);
            }
            ThreadState::Blocked | ThreadState::Finished => {}
        }
    }

    /// Wake a blocked thread.
    ///
    /// A thread that blocked while bound may still occupy its CPU slot —
    /// the drain-then-unbind protocol keeps it there until the context
    /// empties. Waking such a thread restores it *in place*: pushing it
    /// to the run queue while it is still bound would let the dispatcher
    /// bind it to the other logical CPU concurrently (one thread fetching
    /// on two contexts).
    pub fn wake(&mut self, tid: ThreadId) {
        if self.threads[tid.0 as usize].state != ThreadState::Blocked {
            return;
        }
        self.wake_events += 1;
        for l in 0..self.nlcpus {
            if self.running[l] == Some(tid) {
                // The block's preemption request has not been acted on
                // yet; cancel it and let the thread keep its slot. Only
                // block/finish on the bound thread set the flag, and a
                // finished thread is never woken.
                self.threads[tid.0 as usize].state = ThreadState::Running(l);
                self.preempt_pending[l] = false;
                return;
            }
            if self.draining[l] == Some(tid) {
                // Mid-drain: fall back to Draining so the completion
                // path re-queues it like any preempted thread.
                self.threads[tid.0 as usize].state = ThreadState::Draining(l);
                return;
            }
        }
        self.threads[tid.0 as usize].state = ThreadState::Runnable;
        self.runq.push_back(tid);
    }

    /// Mark a thread finished (its stream is exhausted).
    pub fn finish(&mut self, tid: ThreadId) {
        let info = &mut self.threads[tid.0 as usize];
        match info.state {
            ThreadState::Running(l) => {
                info.state = ThreadState::Finished;
                self.preempt_pending[l] = true;
            }
            ThreadState::Draining(_) => info.state = ThreadState::Finished,
            ThreadState::Runnable => {
                info.state = ThreadState::Finished;
                self.runq.retain(|&t| t != tid);
            }
            _ => info.state = ThreadState::Finished,
        }
    }

    /// Total context switches performed.
    pub fn ctx_switches(&self) -> u64 {
        self.ctx_switches
    }

    /// Total timer interrupts delivered.
    pub fn timer_irqs(&self) -> u64 {
        self.timer_irqs
    }

    /// Threads currently in [`ThreadState::Blocked`].
    pub fn blocked_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.state == ThreadState::Blocked)
            .count()
    }

    /// Total runnable→blocked (or running→blocked) transitions.
    pub fn block_events(&self) -> u64 {
        self.block_events
    }

    /// Total blocked→runnable transitions (wakes of actually-blocked
    /// threads; redundant wakes are not counted).
    pub fn wake_events(&self) -> u64 {
        self.wake_events
    }

    /// The earliest cycle strictly after `now` at which a *time-driven*
    /// decision could fire, assuming no thread state changes in between:
    /// the next timer interrupt on a busy CPU, or the next timeslice
    /// expiry while someone is waiting in the run queue. `u64::MAX` when
    /// no such event is scheduled.
    ///
    /// State-driven decisions (drain completions, wakes, blocks) are the
    /// caller's responsibility — the system layer only fast-forwards
    /// across spans where it can prove no such change happens.
    pub fn next_timed_event(&self, now: u64) -> u64 {
        let mut next = u64::MAX;
        for l in 0..self.nlcpus {
            if self.running[l].is_some() {
                next = next.min(self.next_timer[l].max(now + 1));
                if !self.runq.is_empty() {
                    next = next.min(self.slice_end[l].max(now + 1));
                }
            }
        }
        next
    }

    /// Count of threads not yet finished.
    pub fn live_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.state != ThreadState::Finished)
            .count()
    }

    /// Advance scheduling decisions. `drained[l]` reports whether logical
    /// CPU `l`'s context has fully drained (from the core's snapshot).
    /// Decisions are appended to `out` in application order.
    pub fn tick(&mut self, now: u64, drained: [bool; 2], out: &mut Vec<SchedEvent>) {
        for (l, &ctx_drained) in drained.iter().enumerate().take(self.nlcpus) {
            // Timer interrupts tick on active CPUs.
            if self.running[l].is_some() && now >= self.next_timer[l] {
                self.next_timer[l] = now + self.cfg.timer_period_cycles;
                self.timer_irqs += 1;
                out.push(SchedEvent::Timer { lcpu: l });
            }

            // Finish a drain in progress; on completion fall through so
            // the successor can be dispatched in the same tick (the
            // context-switch cost is charged to the incoming thread).
            if let Some(tid) = self.draining[l] {
                if !ctx_drained {
                    continue;
                }
                self.draining[l] = None;
                out.push(SchedEvent::Unbind {
                    lcpu: l,
                    thread: tid,
                });
                let info = &mut self.threads[tid.0 as usize];
                if let ThreadState::Draining(_) = info.state {
                    info.state = ThreadState::Runnable;
                    self.runq.push_back(tid);
                }
            }

            // Preemption: timeslice expiry (only when someone is waiting),
            // or a block/finish request.
            if let Some(tid) = self.running[l] {
                let slice_up = now >= self.slice_end[l] && !self.runq.is_empty();
                if slice_up || self.preempt_pending[l] {
                    self.preempt_pending[l] = false;
                    self.running[l] = None;
                    self.draining[l] = Some(tid);
                    let info = &mut self.threads[tid.0 as usize];
                    if info.state == ThreadState::Running(l) {
                        info.state = ThreadState::Draining(l);
                    }
                    out.push(SchedEvent::RequestDrain { lcpu: l });
                    continue;
                }
            }

            // Dispatch onto an idle CPU.
            if self.running[l].is_none() && self.draining[l].is_none() {
                if let Some(tid) = self.runq.pop_front() {
                    let asid = self.threads[tid.0 as usize].asid;
                    self.threads[tid.0 as usize].state = ThreadState::Running(l);
                    self.running[l] = Some(tid);
                    self.slice_end[l] = now + self.cfg.timeslice_cycles;
                    self.next_timer[l] = self.next_timer[l].max(now + self.cfg.timer_period_cycles);
                    self.ctx_switches += 1;
                    out.push(SchedEvent::Bind {
                        lcpu: l,
                        thread: tid,
                        asid,
                    });
                }
            }
        }
    }
}

fn thread_state_tag(state: ThreadState) -> (u8, u8) {
    match state {
        ThreadState::Runnable => (0, 0),
        ThreadState::Running(l) => (1, l as u8),
        ThreadState::Draining(l) => (2, l as u8),
        ThreadState::Blocked => (3, 0),
        ThreadState::Finished => (4, 0),
    }
}

fn thread_state_from_tag(tag: u8, lcpu: u8) -> Result<ThreadState, jsmt_snapshot::SnapshotError> {
    if lcpu >= 2 {
        return Err(jsmt_snapshot::SnapshotError::Corrupt(
            "thread state lcpu out of range",
        ));
    }
    Ok(match tag {
        0 => ThreadState::Runnable,
        1 => ThreadState::Running(lcpu as usize),
        2 => ThreadState::Draining(lcpu as usize),
        3 => ThreadState::Blocked,
        4 => ThreadState::Finished,
        _ => {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "thread state tag out of domain",
            ))
        }
    })
}

fn save_opt_tid(w: &mut jsmt_snapshot::Writer, slot: Option<ThreadId>) {
    w.put_opt_u64(slot.map(|t| u64::from(t.0)));
}

fn restore_opt_tid(
    r: &mut jsmt_snapshot::Reader<'_>,
    nthreads: usize,
) -> Result<Option<ThreadId>, jsmt_snapshot::SnapshotError> {
    match r.get_opt_u64()? {
        None => Ok(None),
        Some(v) if (v as usize) < nthreads => Ok(Some(ThreadId(v as u32))),
        Some(_) => Err(jsmt_snapshot::SnapshotError::Corrupt(
            "thread id out of range",
        )),
    }
}

impl jsmt_snapshot::Snapshotable for Scheduler {
    /// `cfg` and `nlcpus` are construction inputs and are not serialized;
    /// the thread table, run queue and per-CPU occupancy are state proper
    /// (threads are *spawned* at runtime, so the table length is dynamic).
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.threads.len());
        for info in &self.threads {
            w.put_u16(info.asid.0);
            let (tag, lcpu) = thread_state_tag(info.state);
            w.put_u8(tag);
            w.put_u8(lcpu);
        }
        w.put_usize(self.runq.len());
        for tid in &self.runq {
            w.put_u64(u64::from(tid.0));
        }
        for l in 0..2 {
            save_opt_tid(w, self.running[l]);
            save_opt_tid(w, self.draining[l]);
            w.put_u64(self.slice_end[l]);
            w.put_u64(self.next_timer[l]);
            w.put_bool(self.preempt_pending[l]);
        }
        w.put_u64(self.ctx_switches);
        w.put_u64(self.timer_irqs);
        w.put_u64(self.block_events);
        w.put_u64(self.wake_events);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_len(4)?;
        self.threads.clear();
        self.threads.reserve(n);
        for _ in 0..n {
            let asid = Asid(r.get_u16()?);
            let tag = r.get_u8()?;
            let lcpu = r.get_u8()?;
            self.threads.push(ThreadInfo {
                asid,
                state: thread_state_from_tag(tag, lcpu)?,
            });
        }
        let qn = r.get_len(8)?;
        self.runq.clear();
        for _ in 0..qn {
            let v = r.get_u64()?;
            if v as usize >= n {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "run queue references unknown thread",
                ));
            }
            self.runq.push_back(ThreadId(v as u32));
        }
        for l in 0..2 {
            self.running[l] = restore_opt_tid(r, n)?;
            self.draining[l] = restore_opt_tid(r, n)?;
            self.slice_end[l] = r.get_u64()?;
            self.next_timer[l] = r.get_u64()?;
            self.preempt_pending[l] = r.get_bool()?;
        }
        self.ctx_switches = r.get_u64()?;
        self.timer_irqs = r.get_u64()?;
        self.block_events = r.get_u64()?;
        self.wake_events = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Asid = Asid(1);

    fn drain_all(s: &mut Scheduler, now: u64) -> Vec<SchedEvent> {
        let mut out = Vec::new();
        s.tick(now, [true, true], &mut out);
        out
    }

    #[test]
    fn two_threads_two_cpus_bind_immediately() {
        let mut s = Scheduler::new(OsConfig::default(), true);
        let a = s.spawn(A);
        let b = s.spawn(A);
        let ev = drain_all(&mut s, 0);
        assert_eq!(
            ev,
            vec![
                SchedEvent::Bind {
                    lcpu: 0,
                    thread: a,
                    asid: A
                },
                SchedEvent::Bind {
                    lcpu: 1,
                    thread: b,
                    asid: A
                }
            ]
        );
        assert_eq!(s.state(a), ThreadState::Running(0));
        assert_eq!(s.state(b), ThreadState::Running(1));
    }

    #[test]
    fn ht_off_uses_one_cpu() {
        let mut s = Scheduler::new(OsConfig::default(), false);
        s.spawn(A);
        s.spawn(A);
        let ev = drain_all(&mut s, 0);
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0], SchedEvent::Bind { lcpu: 0, .. }));
    }

    #[test]
    fn timeslice_preempts_when_queue_nonempty() {
        let cfg = OsConfig::default();
        let mut s = Scheduler::new(cfg, false);
        let a = s.spawn(A);
        let b = s.spawn(A);
        drain_all(&mut s, 0);
        // Before expiry: nothing but timer interrupts.
        let ev = drain_all(&mut s, cfg.timeslice_cycles / 2);
        assert!(
            ev.iter().all(|e| matches!(e, SchedEvent::Timer { .. })),
            "{ev:?}"
        );
        // After expiry: drain, unbind, bind the waiter.
        let ev: Vec<_> = drain_all(&mut s, cfg.timeslice_cycles + 1)
            .into_iter()
            .filter(|e| !matches!(e, SchedEvent::Timer { .. }))
            .collect();
        assert_eq!(ev, vec![SchedEvent::RequestDrain { lcpu: 0 }]);
        let ev = drain_all(&mut s, cfg.timeslice_cycles + 2);
        assert!(ev.contains(&SchedEvent::Unbind { lcpu: 0, thread: a }));
        assert!(matches!(
            ev.last(),
            Some(SchedEvent::Bind { lcpu: 0, thread, .. }) if *thread == b
        ));
    }

    #[test]
    fn no_preemption_without_waiters() {
        let cfg = OsConfig::default();
        let mut s = Scheduler::new(cfg, false);
        s.spawn(A);
        drain_all(&mut s, 0);
        let ev: Vec<_> = drain_all(&mut s, cfg.timeslice_cycles * 10)
            .into_iter()
            .filter(|e| !matches!(e, SchedEvent::Timer { .. }))
            .collect();
        assert!(ev.is_empty(), "lone thread runs forever: {ev:?}");
    }

    #[test]
    fn block_and_wake_cycle() {
        let mut s = Scheduler::new(OsConfig::default(), false);
        let a = s.spawn(A);
        drain_all(&mut s, 0);
        s.block(a);
        let ev = drain_all(&mut s, 1);
        assert_eq!(ev, vec![SchedEvent::RequestDrain { lcpu: 0 }]);
        let ev = drain_all(&mut s, 2);
        assert_eq!(ev, vec![SchedEvent::Unbind { lcpu: 0, thread: a }]);
        assert_eq!(s.state(a), ThreadState::Blocked);
        s.wake(a);
        let ev = drain_all(&mut s, 3);
        assert!(matches!(ev[0], SchedEvent::Bind { thread, .. } if thread == a));
    }

    #[test]
    fn eight_threads_multiplex_on_two_cpus() {
        let cfg = OsConfig::default();
        let mut s = Scheduler::new(cfg, true);
        let tids: Vec<_> = (0..8).map(|_| s.spawn(A)).collect();
        let mut now = 0;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let mut out = Vec::new();
            s.tick(now, [true, true], &mut out);
            for e in out {
                if let SchedEvent::Bind { thread, .. } = e {
                    seen.insert(thread);
                }
            }
            now += cfg.timeslice_cycles / 2;
        }
        for t in tids {
            assert!(seen.contains(&t), "{t:?} never got scheduled");
        }
        assert!(s.ctx_switches() > 8, "round-robin must keep switching");
    }

    #[test]
    fn timer_fires_periodically_on_busy_cpu() {
        let cfg = OsConfig::default();
        let mut s = Scheduler::new(cfg, false);
        s.spawn(A);
        drain_all(&mut s, 0);
        let mut timers = 0;
        for i in 1..=10 {
            let ev = drain_all(&mut s, i * cfg.timer_period_cycles + 1);
            timers += ev
                .iter()
                .filter(|e| matches!(e, SchedEvent::Timer { .. }))
                .count();
        }
        assert!(timers >= 9, "expected ~10 timer irqs, got {timers}");
        assert_eq!(s.timer_irqs(), timers as u64);
    }

    #[test]
    fn finish_releases_cpu() {
        let mut s = Scheduler::new(OsConfig::default(), false);
        let a = s.spawn(A);
        let b = s.spawn(A);
        drain_all(&mut s, 0);
        s.finish(a);
        drain_all(&mut s, 1);
        let ev = drain_all(&mut s, 2);
        assert!(matches!(ev.last(), Some(SchedEvent::Bind { thread, .. }) if *thread == b));
        assert_eq!(s.state(a), ThreadState::Finished);
        assert_eq!(s.live_threads(), 1);
    }

    #[test]
    fn next_timed_event_tracks_timers_and_slices() {
        let cfg = OsConfig::default();
        let mut s = Scheduler::new(cfg, false);
        assert_eq!(s.next_timed_event(0), u64::MAX, "idle machine: no events");
        s.spawn(A);
        drain_all(&mut s, 0);
        // One thread, empty runq: only the timer is scheduled.
        assert_eq!(s.next_timed_event(0), cfg.timer_period_cycles);
        // A waiter arms the timeslice expiry too.
        s.spawn(A);
        let expect = cfg.timer_period_cycles.min(cfg.timeslice_cycles);
        assert_eq!(s.next_timed_event(0), expect);
        // The returned cycle is always strictly in the future.
        let late = cfg.timer_period_cycles + cfg.timeslice_cycles;
        assert!(s.next_timed_event(late) > late);
    }

    /// Regression: a monitor handoff can wake a thread whose block is
    /// still being drained (the owner exits within the drain window).
    /// The woken thread must not be re-dispatched through the run queue
    /// while its old context still holds it — that binds one thread to
    /// two logical CPUs at once.
    #[test]
    fn wake_during_drain_does_not_double_bind() {
        let mut s = Scheduler::new(OsConfig::default(), true);
        let a = s.spawn(A);
        drain_all(&mut s, 0);
        assert_eq!(s.state(a), ThreadState::Running(0));
        s.block(a);
        // The drain request goes out, but lcpu0's context is not empty
        // yet; `a` still occupies the draining slot.
        let mut out = Vec::new();
        s.tick(1, [false, false], &mut out);
        assert_eq!(out, vec![SchedEvent::RequestDrain { lcpu: 0 }]);
        assert_eq!(s.running_on(0), Some(a));
        // Handoff wake arrives mid-drain.
        s.wake(a);
        assert_eq!(s.state(a), ThreadState::Draining(0));
        // lcpu1 is idle; it must NOT steal `a` while lcpu0 drains it.
        let mut out = Vec::new();
        s.tick(2, [false, true], &mut out);
        assert!(out.is_empty(), "double bind: {out:?}");
        assert_ne!(s.running_on(1), Some(a));
        // Once the drain completes, `a` is re-queued and dispatched once.
        let ev = drain_all(&mut s, 3);
        assert!(ev.contains(&SchedEvent::Unbind { lcpu: 0, thread: a }));
        let binds: Vec<_> = ev
            .iter()
            .filter(|e| matches!(e, SchedEvent::Bind { thread, .. } if *thread == a))
            .collect();
        assert_eq!(binds.len(), 1, "{ev:?}");
    }

    /// Regression companion: a wake that lands before the drain is even
    /// requested (thread still in its `running` slot) cancels the
    /// pending preemption instead of queueing a second dispatch.
    #[test]
    fn wake_before_drain_request_cancels_preemption() {
        let mut s = Scheduler::new(OsConfig::default(), true);
        let a = s.spawn(A);
        drain_all(&mut s, 0);
        s.block(a);
        assert_eq!(s.state(a), ThreadState::Blocked);
        s.wake(a);
        assert_eq!(s.state(a), ThreadState::Running(0));
        let ev = drain_all(&mut s, 1);
        assert!(
            ev.iter().all(|e| matches!(e, SchedEvent::Timer { .. })),
            "no drain should fire: {ev:?}"
        );
        assert_eq!(s.running_on(0), Some(a));
    }

    #[test]
    fn block_and_wake_events_are_counted() {
        let mut s = Scheduler::new(OsConfig::default(), false);
        let a = s.spawn(A);
        let b = s.spawn(A);
        drain_all(&mut s, 0);
        s.block(a);
        s.block(a); // redundant: not counted
        s.block(b);
        assert_eq!(s.block_events(), 2);
        assert_eq!(s.blocked_threads(), 2);
        s.wake(b);
        s.wake(b); // redundant: not counted
        assert_eq!(s.wake_events(), 1);
        assert_eq!(s.blocked_threads(), 1);
    }

    #[test]
    fn blocked_runnable_thread_leaves_runqueue() {
        let mut s = Scheduler::new(OsConfig::default(), false);
        let a = s.spawn(A);
        let b = s.spawn(A);
        s.block(b);
        let ev = drain_all(&mut s, 0);
        assert_eq!(ev.len(), 1, "only thread a binds");
        assert!(matches!(ev[0], SchedEvent::Bind { thread, .. } if thread == a));
    }
}
