//! # jsmt-os
//!
//! The operating-system model: a time-sliced scheduler that multiplexes
//! software threads onto the machine's one or two logical CPUs, plus a
//! kernel-mode µop generator for the OS work the paper's Table 2 measures
//! (timer interrupts, context switches, system calls, futex wait/wake for
//! Java monitors).
//!
//! The paper's platform is RedHat Linux 9 booted single-user; the
//! observations that depend on the OS are: OS-cycle percentage grows with
//! thread count ("this is caused by more frequent thread scheduling");
//! 8 threads are *multiplexed* onto the two contexts; and kernel code has
//! its own large instruction/data footprint that pollutes the caches.
//! This crate reproduces those mechanisms without modeling any specific
//! kernel's internals.
//!
//! The scheduler is deliberately decoupled from `jsmt-cpu`: it emits
//! [`SchedEvent`]s and the system layer (`jsmt-core`) applies them to the
//! core, so the policy is unit-testable in isolation.
//!
//! ## Example
//!
//! ```
//! use jsmt_os::{OsConfig, Scheduler};
//!
//! let mut sched = Scheduler::new(OsConfig::default(), true);
//! let a = sched.spawn(jsmt_isa::Asid(1));
//! let b = sched.spawn(jsmt_isa::Asid(1));
//! let mut events = Vec::new();
//! sched.tick(0, [true, true], &mut events);
//! assert_eq!(events.len(), 2, "both threads get bound immediately");
//! let _ = (a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod kernel;
mod sched;

pub use config::OsConfig;
pub use kernel::{KernelCodegen, KernelService};
pub use sched::{SchedEvent, Scheduler, ThreadId, ThreadState};
