//! Snapshot round-trip properties for the OS layer: a scheduler (or
//! kernel code generator) restored mid-run is byte-canonical and emits
//! exactly the same event/µop streams as its uninterrupted twin.

use jsmt_isa::{Asid, Uop};
use jsmt_os::{KernelCodegen, KernelService, OsConfig, Scheduler};
use jsmt_snapshot::{restore_bytes, save_bytes};
use proptest::prelude::*;

/// One scripted scheduler action: `(thread pick, block?, finish?,
/// lp0 drained?, lp1 drained?)`.
type Op = (u32, bool, bool, bool, bool);

fn arb_script(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            0u32..10,
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
        ),
        1..max,
    )
}

/// Drive one scheduler through a script slice, collecting the emitted
/// events (debug-formatted — `SchedEvent` carries all its fields there).
fn drive(
    s: &mut Scheduler,
    tids: &[jsmt_os::ThreadId],
    now: &mut u64,
    step: u64,
    script: &[Op],
) -> Vec<String> {
    let mut log = Vec::new();
    let mut events = Vec::new();
    for &(pick, do_block, do_finish, d0, d1) in script {
        let t = tids[(pick as usize) % tids.len()];
        if do_finish && pick % 3 == 0 {
            s.finish(t);
        } else if do_block {
            s.block(t);
        } else {
            s.wake(t);
        }
        *now += step;
        events.clear();
        s.tick(*now, [d0, d1], &mut events);
        for ev in &events {
            log.push(format!("{now}:{ev:?}"));
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interrupt a scheduler mid-script, restore into a fresh instance
    /// (no threads spawned — restore rebuilds the thread table), replay
    /// the suffix on both: event streams, accounting counters, and
    /// final snapshot bytes must be identical.
    #[test]
    fn scheduler_round_trip_continues_identically(
        nthreads in 1u32..8,
        ht in any::<bool>(),
        script in arb_script(150),
        cut_frac in 0.0f64..1.0,
    ) {
        let cfg = OsConfig::default();
        let step = cfg.timeslice_cycles / 3;
        let cut = ((script.len() as f64) * cut_frac) as usize;

        let mut twin = Scheduler::new(cfg, ht);
        let mut donor = Scheduler::new(cfg, ht);
        let tids: Vec<_> = (0..nthreads).map(|_| twin.spawn(Asid(1))).collect();
        for _ in 0..nthreads {
            donor.spawn(Asid(1));
        }
        let mut now_twin = 0u64;
        let mut now_donor = 0u64;
        drive(&mut twin, &tids, &mut now_twin, step, &script[..cut]);
        drive(&mut donor, &tids, &mut now_donor, step, &script[..cut]);

        let bytes = save_bytes(&donor);
        let mut restored = Scheduler::new(cfg, ht);
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(save_bytes(&restored), bytes, "re-save not canonical");
        prop_assert_eq!(restored.nthreads(), twin.nthreads());
        prop_assert_eq!(restored.ctx_switches(), twin.ctx_switches());

        let ev_twin = drive(&mut twin, &tids, &mut now_twin, step, &script[cut..]);
        let ev_rest = drive(&mut restored, &tids, &mut now_donor, step, &script[cut..]);
        prop_assert_eq!(ev_twin, ev_rest, "event streams diverged");
        prop_assert_eq!(twin.timer_irqs(), restored.timer_irqs());
        prop_assert_eq!(save_bytes(&twin), save_bytes(&restored));
    }

    /// The kernel code generator round-trips with its RNG state intact:
    /// a restored generator emits the exact same µops for the same
    /// service requests.
    #[test]
    fn kernel_codegen_round_trip(
        seed in any::<u64>(),
        warm in prop::collection::vec(0usize..5, 0..40),
        tail in prop::collection::vec(0usize..5, 1..40),
    ) {
        const SERVICES: [KernelService; 5] = [
            KernelService::TimerInterrupt,
            KernelService::ContextSwitch,
            KernelService::Futex,
            KernelService::Syscall,
            KernelService::ThreadSpawn,
        ];
        let mut twin = KernelCodegen::new(seed);
        let mut donor = KernelCodegen::new(seed);
        let mut sink: Vec<Uop> = Vec::new();
        for &s in &warm {
            twin.emit(SERVICES[s], 20, &mut sink);
            donor.emit(SERVICES[s], 20, &mut sink);
        }

        let bytes = save_bytes(&donor);
        // A different seed proves the restore overwrites the RNG.
        let mut restored = KernelCodegen::new(seed.wrapping_add(1));
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(save_bytes(&restored), bytes, "re-save not canonical");

        for &s in &tail {
            let mut a: Vec<Uop> = Vec::new();
            let mut b: Vec<Uop> = Vec::new();
            twin.emit(SERVICES[s], 20, &mut a);
            restored.emit(SERVICES[s], 20, &mut b);
            prop_assert_eq!(a, b, "kernel µop streams diverged");
        }
        prop_assert_eq!(save_bytes(&twin), save_bytes(&restored));
    }

    /// Every truncation of a scheduler snapshot errors instead of
    /// panicking.
    #[test]
    fn scheduler_truncations_error_cleanly(nthreads in 1u32..6, script in arb_script(30)) {
        let cfg = OsConfig::default();
        let mut s = Scheduler::new(cfg, true);
        let tids: Vec<_> = (0..nthreads).map(|_| s.spawn(Asid(1))).collect();
        let mut now = 0u64;
        drive(&mut s, &tids, &mut now, cfg.timeslice_cycles / 3, &script);
        let bytes = save_bytes(&s);
        for cut in (0..bytes.len()).step_by(17) {
            let mut victim = Scheduler::new(cfg, true);
            prop_assert!(restore_bytes(&mut victim, &bytes[..cut]).is_err(),
                         "truncation at {cut} must error");
        }
    }
}
