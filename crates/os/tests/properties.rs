//! Property-based tests on scheduler invariants.

use jsmt_isa::Asid;
use jsmt_os::{OsConfig, SchedEvent, Scheduler, ThreadState};
use proptest::prelude::*;

proptest! {
    #[test]
    fn scheduler_invariants_hold(nthreads in 1u32..10,
                                 ht in any::<bool>(),
                                 script in prop::collection::vec((0u32..10u32, any::<bool>(), any::<bool>()), 0..200)) {
        let cfg = OsConfig::default();
        let mut s = Scheduler::new(cfg, ht);
        let tids: Vec<_> = (0..nthreads).map(|_| s.spawn(Asid(1))).collect();
        let nlcpus = s.nlcpus();
        let mut now = 0u64;
        let mut bound: [Option<jsmt_os::ThreadId>; 2] = [None, None];
        for (pick, do_block, do_finish) in script {
            let t = tids[(pick % nthreads) as usize];
            if do_finish && pick % 3 == 0 {
                s.finish(t);
            } else if do_block {
                s.block(t);
            } else {
                s.wake(t);
            }
            now += cfg.timeslice_cycles / 3;
            let mut events = Vec::new();
            // Report everything drained (the core always drains quickly).
            s.tick(now, [true, true], &mut events);
            for ev in events {
                match ev {
                    SchedEvent::Bind { lcpu, thread, .. } => {
                        prop_assert!(lcpu < nlcpus, "bind on nonexistent lcpu");
                        prop_assert!(bound[lcpu].is_none(), "double bind on lcpu {lcpu}");
                        bound[lcpu] = Some(thread);
                    }
                    SchedEvent::Unbind { lcpu, thread } => {
                        prop_assert_eq!(bound[lcpu], Some(thread), "unbind mismatch");
                        bound[lcpu] = None;
                    }
                    SchedEvent::RequestDrain { lcpu } => {
                        prop_assert!(bound[lcpu].is_some(), "drain of empty lcpu");
                    }
                    SchedEvent::Timer { lcpu } => {
                        prop_assert!(lcpu < nlcpus);
                    }
                }
            }
            // A thread can be running on at most one CPU.
            if let (Some(a), Some(b)) = (bound[0], bound[1]) {
                prop_assert_ne!(a, b, "thread bound to both CPUs");
            }
            // A bound thread is never simultaneously in the run queue.
            // (Blocked/Finished are legitimate transient states between
            // the block/finish call and the drain that unbinds.)
            for &slot in bound.iter().take(nlcpus) {
                if let Some(t) = slot {
                    prop_assert_ne!(s.state(t), ThreadState::Runnable, "bound thread in runqueue");
                }
            }
        }
    }

    /// Every runnable thread eventually gets CPU time under pure ticking
    /// (no starvation).
    #[test]
    fn no_starvation(nthreads in 2u32..12, ht in any::<bool>()) {
        let cfg = OsConfig::default();
        let mut s = Scheduler::new(cfg, ht);
        let tids: Vec<_> = (0..nthreads).map(|_| s.spawn(Asid(1))).collect();
        let mut ran = std::collections::HashSet::new();
        let mut now = 0u64;
        for _ in 0..(nthreads as usize * 8) {
            let mut events = Vec::new();
            s.tick(now, [true, true], &mut events);
            for ev in events {
                if let SchedEvent::Bind { thread, .. } = ev {
                    ran.insert(thread);
                }
            }
            now += cfg.timeslice_cycles + 1;
        }
        for t in tids {
            prop_assert!(ran.contains(&t), "{t:?} starved");
        }
    }
}
