//! # jsmt-cache
//!
//! Persistent, content-addressed, self-healing result cache.
//!
//! ROADMAP item 2's exit criterion is "any cell ever simulated anywhere
//! is never simulated again". This crate is the *anywhere*: a flat
//! on-disk store of experiment cell results, keyed by the FNV-1a content
//! hash of a [`CacheKey`] (config fingerprint, workload label, seed) and
//! shared between serial runs, supervised runs, and every shard worker
//! process of a multi-process grid.
//!
//! ## Trust model: verify everything, heal everything
//!
//! Multi-process I/O produces torn writes, truncated files, and flipped
//! bits, so no entry is ever trusted:
//!
//! * every entry is written through [`jsmt_faults::fsio::persist`]
//!   (temp file + fsync + atomic rename), under the fault plan's
//!   `cache` target so `cache-corrupt` / `cache-torn-write` /
//!   `io-error,target=cache` drills bite exactly here;
//! * every read re-verifies the snapshot seal (magic, version, kind,
//!   FNV-1a checksum) *and* that the stored key equals the requested
//!   key, so a hash collision can never serve the wrong cell;
//! * a corrupt or torn entry is **quarantined** — renamed aside to
//!   `<entry>.quarantine-<n>`, appended to the `quarantine.log`
//!   manifest in the cache directory — and reported as a miss, so the
//!   caller transparently recomputes and re-stores it. Corruption is
//!   never trusted, and never fatal.
//!
//! A cache store failure (disk full, injected `io-error`) is also
//! non-fatal: the cache is an accelerator, and a run that cannot
//! persist results must still produce them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use jsmt_snapshot::{fnv64, open, seal, Reader, SnapshotError, Writer};

/// Snapshot kind tag of a cache entry (1 = system, 2 = grid checkpoint,
/// 3 = crash bundle, 4 = cache entry).
pub const KIND_CACHE_ENTRY: u32 = 4;

/// Name of the append-only quarantine manifest kept in the cache
/// directory: one `entry-file,reason` line per quarantined entry.
pub const QUARANTINE_LOG: &str = "quarantine.log";

/// Identity of one cached cell result.
///
/// The `fingerprint` folds in everything about the simulator and the
/// experiment configuration that affects cell bytes (scale, repeats,
/// and a cache epoch bumped when simulation semantics change); the
/// `workload` names the cell (`solo:jess`, `pair:compress+db`); the
/// `seed` is the master seed. Together they content-address the result:
/// equal key, equal bytes — on any machine, in any process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// Configuration fingerprint (see [`CacheKey`]).
    pub fingerprint: u64,
    /// Workload label, e.g. `solo:jess` or `pair:compress+db`.
    pub workload: String,
    /// Master seed the cell was simulated with.
    pub seed: u64,
}

impl CacheKey {
    /// The FNV-1a content hash addressing this key's entry file.
    pub fn content_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(16 + self.workload.len() + 1);
        bytes.extend_from_slice(&self.fingerprint.to_le_bytes());
        bytes.extend_from_slice(self.workload.as_bytes());
        // NUL separator: ("a", seed) and ("a\x01", seed') can't collide
        // by concatenation because workload labels never contain NUL.
        bytes.push(0);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        fnv64(&bytes)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@seed={:#x}/cfg={:016x}",
            self.workload, self.seed, self.fingerprint
        )
    }
}

/// Monotonic counters describing one process's view of a [`Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups issued.
    pub lookups: u64,
    /// Lookups served from a verified entry.
    pub hits: u64,
    /// Lookups that found no usable entry (absent, quarantined, or
    /// collided).
    pub misses: u64,
    /// Entries persisted.
    pub stores: u64,
    /// Stores that failed (non-fatal; the result was still returned).
    pub store_errors: u64,
    /// Entries quarantined because the seal or key check failed.
    pub quarantined: u64,
    /// Lookups that hit a different key's entry under the same content
    /// hash (the entry is left in place; such a key is simply never
    /// cacheable).
    pub collisions: u64,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lookups={} hits={} misses={} stores={} store_errors={} quarantined={} collisions={}",
            self.lookups,
            self.hits,
            self.misses,
            self.stores,
            self.store_errors,
            self.quarantined,
            self.collisions
        )
    }
}

#[derive(Default)]
struct Counters {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    store_errors: AtomicU64,
    quarantined: AtomicU64,
    collisions: AtomicU64,
}

/// A persistent result cache rooted at one directory.
///
/// Thread-safe: share it behind an `Arc` across engine worker threads;
/// separate processes open the same directory independently and
/// coordinate only through atomic renames.
pub struct Cache {
    dir: PathBuf,
    counters: Counters,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Cache {
    /// Open (creating if needed) the cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Cache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Cache {
            dir,
            counters: Counters::default(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file a key is addressed to.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{:016x}.cell", key.content_hash()))
    }

    /// Fetch the value cached under `key`, verifying the seal and the
    /// stored key. Absent, corrupt (→ quarantined), and collided
    /// entries all report as `None`; corruption is healed by the
    /// recompute-and-store the caller does next, never propagated.
    pub fn lookup(&self, key: &CacheKey) -> Option<Vec<u8>> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    eprintln!("# cache: unreadable entry {}: {e}", path.display());
                }
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&bytes, key) {
            Ok(Some(value)) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Ok(None) => {
                // Same content hash, different key: the entry is a valid
                // result for some *other* cell, so leave it alone.
                self.counters.collisions.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(err) => {
                self.quarantine(&path, &err.to_string());
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist `value` under `key`. Failures are recorded and reported,
    /// not propagated: the cache is an accelerator, and the computed
    /// value is already in the caller's hands.
    pub fn store(&self, key: &CacheKey, value: &[u8]) {
        let bytes = encode_entry(key, value);
        let path = self.entry_path(key);
        match jsmt_faults::fsio::persist(&path, &bytes, jsmt_faults::CACHE_TARGET) {
            Ok(()) => {
                self.counters.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("# cache: failed to store {key}: {e} (continuing uncached)");
            }
        }
    }

    /// `lookup` or else compute, store, and return.
    pub fn get_or_compute(&self, key: &CacheKey, compute: impl FnOnce() -> Vec<u8>) -> Vec<u8> {
        if let Some(v) = self.lookup(key) {
            return v;
        }
        let value = compute();
        self.store(key, &value);
        value
    }

    /// Counter snapshot for this process.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.counters.lookups.load(Ordering::Relaxed),
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            store_errors: self.counters.store_errors.load(Ordering::Relaxed),
            quarantined: self.counters.quarantined.load(Ordering::Relaxed),
            collisions: self.counters.collisions.load(Ordering::Relaxed),
        }
    }

    /// The `# cache: …` stderr report line the `repro` CLI prints after
    /// a cached run (the CI cache-determinism job greps it).
    pub fn report(&self) -> String {
        format!("# cache: {}", self.stats())
    }

    /// Move a bad entry aside and record it in the quarantine manifest.
    /// Rename races (another process already quarantined or replaced the
    /// entry) are benign and ignored.
    fn quarantine(&self, path: &Path, reason: &str) {
        let mut dest = None;
        for n in 0.. {
            let candidate = path.with_file_name(format!("{}.quarantine-{n}", file_name_of(path)));
            if !candidate.exists() {
                dest = Some(candidate);
                break;
            }
        }
        let dest = dest.expect("unbounded quarantine suffix search");
        match fs::rename(path, &dest) {
            Ok(()) => {
                self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "# cache: quarantined {} -> {} ({reason}); recomputing",
                    file_name_of(path),
                    file_name_of(&dest),
                );
                self.log_quarantine(path, reason);
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!(
                    "# cache: could not quarantine {}: {e} (entry stays; every read re-verifies)",
                    path.display()
                );
            }
        }
    }

    fn log_quarantine(&self, path: &Path, reason: &str) {
        // Commas would break the one-line-per-entry CSV shape.
        let reason = reason.replace(',', ";");
        let line = format!("{},{reason}\n", file_name_of(path));
        let res = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(QUARANTINE_LOG))
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = res {
            eprintln!("# cache: could not append to {QUARANTINE_LOG}: {e}");
        }
    }
}

fn file_name_of(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

fn encode_entry(key: &CacheKey, value: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(key.fingerprint);
    w.put_str(&key.workload);
    w.put_u64(key.seed);
    w.put_usize(value.len());
    w.put_raw(value);
    seal(KIND_CACHE_ENTRY, &w.into_bytes())
}

/// `Ok(Some(value))` = verified entry for `key`; `Ok(None)` = verified
/// entry for a *different* key (content-hash collision); `Err` = the
/// entry is damaged and must be quarantined.
fn decode_entry(bytes: &[u8], key: &CacheKey) -> Result<Option<Vec<u8>>, SnapshotError> {
    let mut r: Reader<'_> = open(bytes, KIND_CACHE_ENTRY)?;
    let fingerprint = r.get_u64()?;
    let workload = r.get_str()?;
    let seed = r.get_u64()?;
    let n = r.get_len(1)?;
    let value = r.get_raw(n)?.to_vec();
    r.expect_end()?;
    let stored = CacheKey {
        fingerprint,
        workload,
        seed,
    };
    Ok((stored == *key).then_some(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The fault plan is process-global; every test that arms one (or
    /// whose stores could be bitten by one) serializes here.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tmp_cache(tag: &str) -> Cache {
        let dir =
            std::env::temp_dir().join(format!("jsmt-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Cache::open(dir).unwrap()
    }

    fn key(workload: &str) -> CacheKey {
        CacheKey {
            fingerprint: 0xDEAD_BEEF,
            workload: workload.to_string(),
            seed: 0x15_9A55,
        }
    }

    #[test]
    fn roundtrip_and_stats() {
        let _l = lock();
        let cache = tmp_cache("roundtrip");
        let k = key("pair:compress+db");
        assert_eq!(cache.lookup(&k), None);
        cache.store(&k, b"outcome-bytes");
        assert_eq!(cache.lookup(&k).as_deref(), Some(&b"outcome-bytes"[..]));
        // Key identity is the full triple, not just the workload.
        let other = CacheKey {
            seed: 1,
            ..k.clone()
        };
        assert_eq!(cache.lookup(&other), None);
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.misses, s.stores), (3, 1, 2, 1));
        assert_eq!((s.quarantined, s.collisions, s.store_errors), (0, 0, 0));
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn get_or_compute_computes_once() {
        let _l = lock();
        let cache = tmp_cache("compute-once");
        let k = key("solo:jess");
        let mut calls = 0;
        let v1 = cache.get_or_compute(&k, || {
            calls += 1;
            vec![1, 2, 3]
        });
        let v2 = cache.get_or_compute(&k, || {
            calls += 1;
            unreachable!("second call must be a hit")
        });
        assert_eq!(v1, vec![1, 2, 3]);
        assert_eq!(v2, vec![1, 2, 3]);
        assert_eq!(calls, 1);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_healed() {
        let _l = lock();
        let cache = tmp_cache("heal-corrupt");
        let k = key("pair:jess+jack");
        cache.store(&k, b"good");
        // Flip a byte on disk, as a bad disk or torn concurrent writer
        // would.
        let path = cache.entry_path(&k);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        fs::write(&path, &bytes).unwrap();

        let healed = cache.get_or_compute(&k, || b"good".to_vec());
        assert_eq!(healed, b"good");
        let s = cache.stats();
        assert_eq!(s.quarantined, 1);
        // Entry was re-stored clean and aside sits the quarantined copy.
        assert_eq!(cache.lookup(&k).as_deref(), Some(&b"good"[..]));
        let names: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().any(|n| n.contains(".quarantine-")),
            "quarantined copy must be kept aside: {names:?}"
        );
        let log = fs::read_to_string(cache.dir().join(QUARANTINE_LOG)).unwrap();
        assert!(
            log.contains("checksum"),
            "quarantine manifest must name the reason: {log:?}"
        );
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn truncated_entry_is_quarantined_and_healed() {
        let _l = lock();
        let cache = tmp_cache("heal-torn");
        let k = key("solo:db");
        cache.store(&k, b"value-bytes");
        let path = cache.entry_path(&k);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        assert_eq!(cache.lookup(&k), None);
        assert_eq!(cache.stats().quarantined, 1);
        let healed = cache.get_or_compute(&k, || b"value-bytes".to_vec());
        assert_eq!(healed, b"value-bytes");
        assert_eq!(cache.lookup(&k).as_deref(), Some(&b"value-bytes"[..]));
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn collided_entry_is_left_alone() {
        let _l = lock();
        let cache = tmp_cache("collision");
        let a = key("pair:compress+db");
        let b = key("pair:mtrt+raytrace");
        cache.store(&a, b"a-result");
        // Simulate a content-hash collision by planting a's (valid,
        // sealed) entry at b's address.
        fs::copy(cache.entry_path(&a), cache.entry_path(&b)).unwrap();

        assert_eq!(cache.lookup(&b), None, "collision must not serve a's bytes");
        let s = cache.stats();
        assert_eq!(s.collisions, 1);
        assert_eq!(s.quarantined, 0, "a collided entry is valid, not corrupt");
        assert!(
            cache.entry_path(&b).exists(),
            "collided entry stays in place"
        );
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn injected_store_faults_are_nonfatal_and_heal_on_reread() {
        let _l = lock();
        let cache = tmp_cache("injected");
        let k = key("pair:compress+compress");

        // Write #0 fails outright: result still usable, nothing stored.
        jsmt_faults::install_spec("io-error,target=cache,nth=0").unwrap();
        let v = cache.get_or_compute(&k, || b"computed".to_vec());
        assert_eq!(v, b"computed");
        assert_eq!(cache.stats().store_errors, 1);
        assert!(!cache.entry_path(&k).exists());

        // Next write is torn mid-payload: the follow-up lookup must
        // quarantine and recompute, not trust the stump.
        jsmt_faults::install_spec("cache-torn-write,nth=0").unwrap();
        cache.store(&k, b"computed");
        jsmt_faults::clear();
        let healed = cache.get_or_compute(&k, || b"computed".to_vec());
        assert_eq!(healed, b"computed");
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(cache.lookup(&k).as_deref(), Some(&b"computed"[..]));
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn content_hash_separates_fields() {
        let base = key("w");
        let mut by_fp = base.clone();
        by_fp.fingerprint ^= 1;
        let mut by_seed = base.clone();
        by_seed.seed ^= 1;
        let by_wl = key("w2");
        let hashes = [
            base.content_hash(),
            by_fp.content_hash(),
            by_seed.content_hash(),
            by_wl.content_hash(),
        ];
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
