//! Zero-copy µop delivery.
//!
//! Workload generators (synthetic streams, kernel codegen, GC/JIT work
//! generators) used to emit into a `Vec<Uop>` that the caller then copied
//! into whatever queue actually feeds the pipeline. [`UopSink`] abstracts
//! the destination so generators write **directly** into the consuming
//! queue — the OS thread's pending `VecDeque`, or the core's fixed-capacity
//! fetch ring — and the intermediate copy disappears from the hot loop.

use std::collections::VecDeque;

use crate::Uop;

/// A destination for emitted µops.
///
/// Implementors append in order; the µop stream's semantics (sequence,
/// dependence distances) rely on FIFO delivery.
pub trait UopSink {
    /// Append one µop.
    fn push_uop(&mut self, uop: Uop);

    /// Append a batch of µops in order.
    ///
    /// The default forwards to [`UopSink::push_uop`]; destinations with a
    /// cheaper bulk path (contiguous rings, growable buffers that can
    /// reserve once) override it so replayed traces and large refills pay
    /// one dispatch instead of one per µop.
    #[inline]
    fn push_uops(&mut self, uops: &[Uop]) {
        for &u in uops {
            self.push_uop(u);
        }
    }
}

impl UopSink for Vec<Uop> {
    #[inline]
    fn push_uop(&mut self, uop: Uop) {
        self.push(uop);
    }

    #[inline]
    fn push_uops(&mut self, uops: &[Uop]) {
        self.extend_from_slice(uops);
    }
}

impl UopSink for VecDeque<Uop> {
    #[inline]
    fn push_uop(&mut self, uop: Uop) {
        self.push_back(uop);
    }

    #[inline]
    fn push_uops(&mut self, uops: &[Uop]) {
        self.extend(uops.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_and_deque_preserve_order() {
        let a = Uop::alu(0x10);
        let b = Uop::alu(0x20);
        let mut v: Vec<Uop> = Vec::new();
        v.push_uop(a);
        v.push_uop(b);
        assert_eq!(v[0].pc, 0x10);
        assert_eq!(v[1].pc, 0x20);

        let mut q: VecDeque<Uop> = VecDeque::new();
        q.push_uop(a);
        q.push_uop(b);
        assert_eq!(q.pop_front().unwrap().pc, 0x10);
        assert_eq!(q.pop_front().unwrap().pc, 0x20);
    }

    #[test]
    fn batch_emit_matches_singles() {
        let batch = [Uop::alu(1), Uop::alu(2), Uop::alu(3)];
        let mut singles: Vec<Uop> = Vec::new();
        for &u in &batch {
            singles.push_uop(u);
        }
        let mut bulk: Vec<Uop> = Vec::new();
        bulk.push_uops(&batch);
        assert_eq!(singles, bulk);

        let mut dq: VecDeque<Uop> = VecDeque::new();
        dq.push_uops(&batch);
        assert_eq!(dq.iter().copied().collect::<Vec<_>>(), batch);
    }
}
