//! Zero-copy µop delivery.
//!
//! Workload generators (synthetic streams, kernel codegen, GC/JIT work
//! generators) used to emit into a `Vec<Uop>` that the caller then copied
//! into whatever queue actually feeds the pipeline. [`UopSink`] abstracts
//! the destination so generators write **directly** into the consuming
//! queue — the OS thread's pending `VecDeque`, or the core's fixed-capacity
//! fetch ring — and the intermediate copy disappears from the hot loop.

use std::collections::VecDeque;

use crate::Uop;

/// A destination for emitted µops.
///
/// Implementors append in order; the µop stream's semantics (sequence,
/// dependence distances) rely on FIFO delivery.
pub trait UopSink {
    /// Append one µop.
    fn push_uop(&mut self, uop: Uop);
}

impl UopSink for Vec<Uop> {
    #[inline]
    fn push_uop(&mut self, uop: Uop) {
        self.push(uop);
    }
}

impl UopSink for VecDeque<Uop> {
    #[inline]
    fn push_uop(&mut self, uop: Uop) {
        self.push_back(uop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_and_deque_preserve_order() {
        let a = Uop::alu(0x10);
        let b = Uop::alu(0x20);
        let mut v: Vec<Uop> = Vec::new();
        v.push_uop(a);
        v.push_uop(b);
        assert_eq!(v[0].pc, 0x10);
        assert_eq!(v[1].pc, 0x20);

        let mut q: VecDeque<Uop> = VecDeque::new();
        q.push_uop(a);
        q.push_uop(b);
        assert_eq!(q.pop_front().unwrap().pc, 0x10);
        assert_eq!(q.pop_front().unwrap().pc, 0x20);
    }
}
