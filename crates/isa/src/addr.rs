//! Simulated virtual address-space layout.
//!
//! Every simulated process (a JVM instance running one benchmark) owns one
//! [`AddressSpace`]. The layout mirrors a 32-bit Linux process of the
//! paper's era: user code low, heap in the middle, stacks high, and the
//! kernel mapped at the top and shared between all processes.

use crate::Addr;

/// Cache line size of the modeled machine (both L1 and L2 on the P4 used in
/// the paper have 64-byte lines).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Page size used for TLB modeling (4 KiB, as on the paper's platform).
pub const PAGE_BYTES: u64 = 4096;

/// Address-space identifier distinguishing simulated processes.
///
/// Multiprogrammed experiments run two independent JVM processes; their
/// identical virtual addresses must not alias in physically-tagged or
/// flush-on-switch structures, so tags incorporate the `Asid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asid(pub u16);

impl Asid {
    /// The kernel's address space id; kernel addresses are shared by all
    /// processes, so accesses to the kernel region are re-tagged with this.
    pub const KERNEL: Asid = Asid(0);
}

/// A virtual page number (address divided by the page size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageNumber(pub u64);

impl PageNumber {
    /// Page containing `addr`.
    #[inline]
    pub fn containing(addr: Addr) -> Self {
        PageNumber(addr / PAGE_BYTES)
    }
}

/// The major regions of a simulated process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Statically generated user code: interpreter body, runtime stubs.
    Code,
    /// JIT code cache: compiled method bodies are laid out here.
    JitCode,
    /// Java heap (allocated and collected by `jsmt-jvm`).
    Heap,
    /// Native/JVM internal data (method tables, constant pools, DB pages).
    Native,
    /// Thread stacks (one slab per thread).
    Stack,
    /// Kernel code (shared across processes).
    KernelCode,
    /// Kernel data (shared across processes).
    KernelData,
}

impl Region {
    const CODE_BASE: Addr = 0x0800_0000;
    const JIT_BASE: Addr = 0x1000_0000;
    const HEAP_BASE: Addr = 0x2000_0000;
    const NATIVE_BASE: Addr = 0x8000_0000;
    const STACK_BASE: Addr = 0xB000_0000;
    const KCODE_BASE: Addr = 0xC000_0000;
    const KDATA_BASE: Addr = 0xD000_0000;
    const REGION_END: Addr = 0xF000_0000;

    /// Base address of the region.
    #[inline]
    pub fn base(self) -> Addr {
        match self {
            Region::Code => Self::CODE_BASE,
            Region::JitCode => Self::JIT_BASE,
            Region::Heap => Self::HEAP_BASE,
            Region::Native => Self::NATIVE_BASE,
            Region::Stack => Self::STACK_BASE,
            Region::KernelCode => Self::KCODE_BASE,
            Region::KernelData => Self::KDATA_BASE,
        }
    }

    /// Exclusive upper bound of the region.
    #[inline]
    pub fn end(self) -> Addr {
        match self {
            Region::Code => Self::JIT_BASE,
            Region::JitCode => Self::HEAP_BASE,
            Region::Heap => Self::NATIVE_BASE,
            Region::Native => Self::STACK_BASE,
            Region::Stack => Self::KCODE_BASE,
            Region::KernelCode => Self::KDATA_BASE,
            Region::KernelData => Self::REGION_END,
        }
    }

    /// Size of the region in bytes.
    #[inline]
    pub fn size(self) -> u64 {
        self.end() - self.base()
    }

    /// Classify an address into its region. Addresses outside all regions
    /// (which the simulator never produces) map to `Native`.
    #[inline]
    pub fn of(addr: Addr) -> Region {
        match addr {
            a if a >= Self::KDATA_BASE => Region::KernelData,
            a if a >= Self::KCODE_BASE => Region::KernelCode,
            a if a >= Self::STACK_BASE => Region::Stack,
            a if a >= Self::NATIVE_BASE => Region::Native,
            a if a >= Self::HEAP_BASE => Region::Heap,
            a if a >= Self::JIT_BASE => Region::JitCode,
            a if a >= Self::CODE_BASE => Region::Code,
            _ => Region::Native,
        }
    }

    /// Whether the address lies in kernel space.
    #[inline]
    pub fn is_kernel(addr: Addr) -> bool {
        addr >= Self::KCODE_BASE
    }
}

/// A simulated process address space: a set of bump cursors, one per region,
/// from which the JVM model and the OS carve allocations.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: Asid,
    cursors: [Addr; 5],
}

impl AddressSpace {
    const USER_REGIONS: [Region; 5] = [
        Region::Code,
        Region::JitCode,
        Region::Heap,
        Region::Native,
        Region::Stack,
    ];

    /// Create the address space for process `asid` (must be nonzero; 0 is
    /// reserved for the kernel).
    ///
    /// # Panics
    ///
    /// Panics if `asid` is 0.
    pub fn new(asid: u16) -> Self {
        assert!(asid != 0, "asid 0 is reserved for the kernel");
        AddressSpace {
            asid: Asid(asid),
            cursors: [
                Region::Code.base(),
                Region::JitCode.base(),
                Region::Heap.base(),
                Region::Native.base(),
                Region::Stack.base(),
            ],
        }
    }

    /// The process id of this address space.
    #[inline]
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Base address of `region` (identical across processes; provided here
    /// for call-site convenience).
    #[inline]
    pub fn region_base(&self, region: Region) -> Addr {
        region.base()
    }

    fn cursor_index(region: Region) -> Option<usize> {
        Self::USER_REGIONS.iter().position(|&r| r == region)
    }

    /// Carve `bytes` from `region`, aligned to `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the region is exhausted, if `align` is not a power of two,
    /// or if `region` is a kernel region (the kernel layout is fixed).
    pub fn alloc(&mut self, region: Region, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let idx = Self::cursor_index(region)
            .unwrap_or_else(|| panic!("cannot allocate in kernel region {region:?}"));
        let base = (self.cursors[idx] + align - 1) & !(align - 1);
        let end = base + bytes;
        assert!(
            end <= region.end(),
            "simulated region {region:?} exhausted: wanted {bytes} bytes at {base:#x}"
        );
        self.cursors[idx] = end;
        base
    }

    /// Bytes currently allocated in `region`.
    pub fn allocated(&self, region: Region) -> u64 {
        match Self::cursor_index(region) {
            Some(idx) => self.cursors[idx] - region.base(),
            None => 0,
        }
    }

    /// The raw bump cursors, in [`Self::USER_REGIONS`] order (snapshot
    /// encoding support; not part of the simulation API).
    pub(crate) fn cursors_ref(&self) -> &[Addr; 5] {
        &self.cursors
    }

    /// Overwrite the bump cursors from a snapshot, validating that each
    /// lies within its region (snapshot decoding support).
    pub(crate) fn set_cursors(
        &mut self,
        cursors: [Addr; 5],
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        for (i, region) in Self::USER_REGIONS.iter().enumerate() {
            if cursors[i] < region.base() || cursors[i] > region.end() {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "address-space cursor outside its region",
                ));
            }
        }
        self.cursors = cursors;
        Ok(())
    }

    /// Reset the heap cursor (used by the copying phase of the GC model when
    /// an entire semispace is recycled). Only `Region::Heap` supports this.
    pub fn reset_heap(&mut self) {
        let idx = Self::cursor_index(Region::Heap).expect("heap is a user region");
        self.cursors[idx] = Region::Heap.base();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let regions = [
            Region::Code,
            Region::JitCode,
            Region::Heap,
            Region::Native,
            Region::Stack,
            Region::KernelCode,
            Region::KernelData,
        ];
        for w in regions.windows(2) {
            assert!(w[0].end() <= w[1].base(), "{:?} overlaps {:?}", w[0], w[1]);
            assert!(w[0].base() < w[0].end());
        }
    }

    #[test]
    fn classification_round_trips() {
        for r in [
            Region::Code,
            Region::JitCode,
            Region::Heap,
            Region::Native,
            Region::Stack,
            Region::KernelCode,
            Region::KernelData,
        ] {
            assert_eq!(Region::of(r.base()), r);
            assert_eq!(Region::of(r.end() - 1), r);
        }
    }

    #[test]
    fn kernel_detection() {
        assert!(Region::is_kernel(Region::KernelCode.base()));
        assert!(Region::is_kernel(Region::KernelData.base() + 100));
        assert!(!Region::is_kernel(Region::Heap.base()));
    }

    #[test]
    fn alloc_is_aligned_and_monotonic() {
        let mut a = AddressSpace::new(1);
        let x = a.alloc(Region::Heap, 100, 64);
        let y = a.alloc(Region::Heap, 100, 64);
        assert_eq!(x % 64, 0);
        assert_eq!(y % 64, 0);
        assert!(y >= x + 100);
        assert!(a.allocated(Region::Heap) >= 200);
    }

    #[test]
    fn heap_reset_recycles_space() {
        let mut a = AddressSpace::new(1);
        let first = a.alloc(Region::Heap, 4096, 64);
        a.reset_heap();
        let second = a.alloc(Region::Heap, 4096, 64);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "reserved for the kernel")]
    fn asid_zero_rejected() {
        let _ = AddressSpace::new(0);
    }

    #[test]
    fn page_numbers() {
        assert_eq!(PageNumber::containing(0).0, 0);
        assert_eq!(PageNumber::containing(PAGE_BYTES).0, 1);
        assert_eq!(PageNumber::containing(PAGE_BYTES * 7 + 123).0, 7);
    }
}
