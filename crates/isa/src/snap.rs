//! Snapshot encodings for the ISA-level value types.
//!
//! `Uop` and friends are plain `Copy` values with public fields, but every
//! stateful crate that buffers them (fetch-queue rings, pending µop queues)
//! needs one canonical byte encoding, so it lives here next to the types.
//! [`AddressSpace`] has private bump cursors, so its save/restore is also
//! implemented in this crate.

use jsmt_snapshot::{Reader, Result, SnapshotError, Snapshotable, Writer};

use crate::addr::AddressSpace;
use crate::uop::{BranchInfo, BranchKind, Uop, UopKind};
use crate::Asid;

impl UopKind {
    /// All µop kinds in tag order (the snapshot encoding is the index).
    const TAG_ORDER: [UopKind; 12] = [
        UopKind::Alu,
        UopKind::Mul,
        UopKind::Div,
        UopKind::FpAdd,
        UopKind::FpMul,
        UopKind::FpDiv,
        UopKind::Load,
        UopKind::Store,
        UopKind::Branch,
        UopKind::AtomicRmw,
        UopKind::Fence,
        UopKind::Nop,
    ];

    /// Stable snapshot tag for this kind.
    pub fn snapshot_tag(self) -> u8 {
        Self::TAG_ORDER
            .iter()
            .position(|&k| k == self)
            .expect("kind in order") as u8
    }

    /// Decode a snapshot tag.
    pub fn from_snapshot_tag(tag: u8) -> Result<Self> {
        Self::TAG_ORDER
            .get(tag as usize)
            .copied()
            .ok_or(SnapshotError::Corrupt("uop kind tag out of domain"))
    }
}

impl BranchKind {
    const TAG_ORDER: [BranchKind; 5] = [
        BranchKind::Conditional,
        BranchKind::Direct,
        BranchKind::Indirect,
        BranchKind::Call,
        BranchKind::Return,
    ];

    /// Stable snapshot tag for this kind.
    pub fn snapshot_tag(self) -> u8 {
        Self::TAG_ORDER
            .iter()
            .position(|&k| k == self)
            .expect("kind in order") as u8
    }

    /// Decode a snapshot tag.
    pub fn from_snapshot_tag(tag: u8) -> Result<Self> {
        Self::TAG_ORDER
            .get(tag as usize)
            .copied()
            .ok_or(SnapshotError::Corrupt("branch kind tag out of domain"))
    }
}

impl Uop {
    /// Append this µop's canonical snapshot encoding to `w`.
    pub fn write_to(&self, w: &mut Writer) {
        w.put_u64(self.pc);
        w.put_u8(self.kind.snapshot_tag());
        w.put_opt_u64(self.mem);
        match self.branch {
            Some(b) => {
                w.put_bool(true);
                w.put_u64(b.target);
                w.put_bool(b.taken);
                w.put_u8(b.kind.snapshot_tag());
            }
            None => w.put_bool(false),
        }
        w.put_u8(self.dep_dist);
        w.put_bool(self.privileged);
    }

    /// Decode a µop written by [`Uop::write_to`].
    pub fn read_from(r: &mut Reader<'_>) -> Result<Self> {
        let pc = r.get_u64()?;
        let kind = UopKind::from_snapshot_tag(r.get_u8()?)?;
        let mem = r.get_opt_u64()?;
        let branch = if r.get_bool()? {
            Some(BranchInfo {
                target: r.get_u64()?,
                taken: r.get_bool()?,
                kind: BranchKind::from_snapshot_tag(r.get_u8()?)?,
            })
        } else {
            None
        };
        Ok(Uop {
            pc,
            kind,
            mem,
            branch,
            dep_dist: r.get_u8()?,
            privileged: r.get_bool()?,
        })
    }
}

impl Snapshotable for AddressSpace {
    fn save_state(&self, w: &mut Writer) {
        w.put_u16(self.asid().0);
        for &c in self.cursors() {
            w.put_u64(c);
        }
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        let asid = r.get_u16()?;
        if asid != self.asid().0 {
            return Err(SnapshotError::Corrupt("address-space asid mismatch"));
        }
        let mut cursors = [0u64; 5];
        for c in &mut cursors {
            *c = r.get_u64()?;
        }
        self.set_cursors(cursors)?;
        Ok(())
    }
}

impl AddressSpace {
    fn cursors(&self) -> &[u64; 5] {
        self.cursors_ref()
    }
}

/// The asid a restored address space must carry (used for validation by
/// callers that only have the raw bytes).
pub fn peek_asid(r: &Reader<'_>) -> Result<Asid> {
    Ok(Asid(r.clone().get_u16()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Region;
    use jsmt_snapshot::{restore_bytes, save_bytes};

    #[test]
    fn uop_round_trips() {
        let uops = [
            Uop::alu(0x0800_0000),
            Uop::load(0x0800_0010, 0x2000_0000).with_dep(3),
            Uop::store(0x0800_0020, 0x8000_0000).privileged(),
            Uop::branch(0x0800_0030, 0x0800_1000, true),
        ];
        for u in uops {
            let mut w = Writer::new();
            u.write_to(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(Uop::read_from(&mut r).unwrap(), u);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn uop_kind_tags_reject_garbage() {
        assert!(UopKind::from_snapshot_tag(12).is_err());
        assert!(BranchKind::from_snapshot_tag(5).is_err());
        for k in UopKind::TAG_ORDER {
            assert_eq!(UopKind::from_snapshot_tag(k.snapshot_tag()).unwrap(), k);
        }
    }

    #[test]
    fn address_space_round_trips() {
        let mut a = AddressSpace::new(3);
        a.alloc(Region::Heap, 4096, 64);
        a.alloc(Region::Native, 128, 8);
        let bytes = save_bytes(&a);
        let mut b = AddressSpace::new(3);
        restore_bytes(&mut b, &bytes).unwrap();
        assert_eq!(save_bytes(&b), bytes);
        assert_eq!(b.allocated(Region::Heap), a.allocated(Region::Heap));
    }

    #[test]
    fn address_space_rejects_wrong_asid_and_bad_cursor() {
        let a = AddressSpace::new(3);
        let bytes = save_bytes(&a);
        let mut b = AddressSpace::new(4);
        assert!(restore_bytes(&mut b, &bytes).is_err());

        let mut w = Writer::new();
        w.put_u16(3);
        for _ in 0..5 {
            w.put_u64(0); // cursors below their region bases
        }
        let mut c = AddressSpace::new(3);
        assert!(restore_bytes(&mut c, &w.into_bytes()).is_err());
    }
}
