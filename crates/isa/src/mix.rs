//! Instruction-mix accounting.
//!
//! Workload characterization papers always report the dynamic instruction
//! mix; we keep a cheap accumulator that classifies µops as they stream by,
//! used both by tests (to validate that a kernel's mix matches its intent —
//! e.g. `mpegaudio` is FP-heavy, `db` is load-heavy) and by the reports.

use crate::{Uop, UopKind};

/// Accumulated dynamic µop mix for one stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Integer ALU (plus nops).
    pub int_alu: u64,
    /// Integer multiply/divide.
    pub int_complex: u64,
    /// Floating point of any flavour.
    pub fp: u64,
    /// Loads (including the read half of atomics).
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Branches.
    pub branches: u64,
    /// Atomics and fences.
    pub sync: u64,
    /// µops marked privileged (kernel mode).
    pub kernel: u64,
}

impl InstrMix {
    /// A fresh, zeroed mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one µop.
    #[inline]
    pub fn record(&mut self, uop: &Uop) {
        match uop.kind {
            UopKind::Alu | UopKind::Nop => self.int_alu += 1,
            UopKind::Mul | UopKind::Div => self.int_complex += 1,
            UopKind::FpAdd | UopKind::FpMul | UopKind::FpDiv => self.fp += 1,
            UopKind::Load => self.loads += 1,
            UopKind::Store => self.stores += 1,
            UopKind::Branch => self.branches += 1,
            UopKind::AtomicRmw | UopKind::Fence => self.sync += 1,
        }
        if uop.privileged {
            self.kernel += 1;
        }
    }

    /// Total µops recorded.
    pub fn total(&self) -> u64 {
        self.int_alu
            + self.int_complex
            + self.fp
            + self.loads
            + self.stores
            + self.branches
            + self.sync
    }

    /// Fraction of µops that are memory operations.
    pub fn mem_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / t as f64
        }
    }

    /// Fraction of µops that are floating point.
    pub fn fp_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.fp as f64 / t as f64
        }
    }

    /// Fraction of µops that are branches.
    pub fn branch_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.branches as f64 / t as f64
        }
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &InstrMix) {
        self.int_alu += other.int_alu;
        self.int_complex += other.int_complex;
        self.fp += other.fp;
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.sync += other.sync;
        self.kernel += other.kernel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Uop;

    #[test]
    fn records_and_totals() {
        let mut mix = InstrMix::new();
        mix.record(&Uop::alu(0x1000));
        mix.record(&Uop::load(0x1004, 0x8000));
        mix.record(&Uop::store(0x1008, 0x8008));
        mix.record(&Uop::branch(0x100c, 0x1000, true));
        assert_eq!(mix.total(), 4);
        assert!((mix.mem_fraction() - 0.5).abs() < 1e-12);
        assert!((mix.branch_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kernel_uops_counted_separately() {
        let mut mix = InstrMix::new();
        mix.record(&Uop::alu(0xC000_0000).privileged());
        assert_eq!(mix.kernel, 1);
        assert_eq!(mix.total(), 1);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = InstrMix::new();
        let mut b = InstrMix::new();
        a.record(&Uop::alu(0x1000));
        b.record(&Uop::load(0x1004, 0x8000));
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.loads, 1);
    }

    #[test]
    fn empty_mix_has_zero_fractions() {
        let mix = InstrMix::new();
        assert_eq!(mix.mem_fraction(), 0.0);
        assert_eq!(mix.fp_fraction(), 0.0);
        assert_eq!(mix.branch_fraction(), 0.0);
    }
}
