//! The micro-operation model.

use crate::Addr;

/// Sentinel for "no producer dependence" in [`Uop::dep_dist`].
pub const DEP_NONE: u8 = u8::MAX;

/// The class of a micro-operation.
///
/// The classes are chosen to be the coarsest partition that still drives
/// every structure the paper measures: memory µops exercise the L1D/L2/DTLB
/// path, branches exercise the BTB and predictor, and the remaining classes
/// differ only in execution latency and port binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Single-cycle integer ALU operation.
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide (long latency, unpipelined).
    Div,
    /// Floating-point add/sub/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional control transfer.
    Branch,
    /// Atomic read-modify-write (lock-prefixed); serializing.
    AtomicRmw,
    /// Memory fence; serializing.
    Fence,
    /// No-operation / filler (renamed but trivially executed).
    Nop,
}

impl UopKind {
    /// Nominal execution latency in core cycles, excluding memory-hierarchy
    /// time for loads/stores (added by the memory model).
    ///
    /// Values are in the neighbourhood of the Northwood Pentium 4 pipeline
    /// latencies; the simulator is cycle-approximate, so only the relative
    /// magnitudes matter.
    #[inline]
    pub fn base_latency(self) -> u32 {
        match self {
            UopKind::Alu => 1,
            UopKind::Mul => 4,
            UopKind::Div => 23,
            UopKind::FpAdd => 4,
            UopKind::FpMul => 6,
            UopKind::FpDiv => 30,
            UopKind::Load => 2,
            UopKind::Store => 1,
            UopKind::Branch => 1,
            UopKind::AtomicRmw => 20,
            UopKind::Fence => 10,
            UopKind::Nop => 1,
        }
    }

    /// The execution-port class this µop issues to.
    #[inline]
    pub fn port(self) -> PortClass {
        match self {
            UopKind::Alu | UopKind::Nop | UopKind::Branch => PortClass::IntFast,
            UopKind::Mul | UopKind::Div => PortClass::IntSlow,
            UopKind::FpAdd | UopKind::FpMul | UopKind::FpDiv => PortClass::Fp,
            UopKind::Load => PortClass::Load,
            UopKind::Store | UopKind::AtomicRmw | UopKind::Fence => PortClass::Store,
        }
    }

    /// Whether this µop accesses data memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store | UopKind::AtomicRmw)
    }

    /// Whether this µop serializes the thread (drains the window before and
    /// after itself).
    #[inline]
    pub fn is_serializing(self) -> bool {
        matches!(self, UopKind::AtomicRmw | UopKind::Fence)
    }
}

/// Execution-port classes of the modeled core.
///
/// The Pentium 4 has two double-pumped fast ALU ports, one slow-int/complex
/// port, one FP port, one load port and one store port. The per-cycle issue
/// quota for each class is configured in `jsmt-cpu`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortClass {
    /// Fast integer ALUs (also resolves branches).
    IntFast,
    /// Slow integer: multiply/divide/shift-rotate-complex.
    IntSlow,
    /// Floating point / SIMD.
    Fp,
    /// Load port (one load AGU).
    Load,
    /// Store port (one store AGU / store data).
    Store,
}

impl PortClass {
    /// All port classes, in a fixed order usable for indexing.
    pub const ALL: [PortClass; 5] = [
        PortClass::IntFast,
        PortClass::IntSlow,
        PortClass::Fp,
        PortClass::Load,
        PortClass::Store,
    ];

    /// Stable index of this class within [`PortClass::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PortClass::IntFast => 0,
            PortClass::IntSlow => 1,
            PortClass::Fp => 2,
            PortClass::Load => 3,
            PortClass::Store => 4,
        }
    }
}

/// Static classification of a branch µop, used by the front end to decide
/// which predictor structures apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch: direction predicted by the global
    /// predictor, target by the BTB.
    Conditional,
    /// Unconditional direct jump: target from the BTB (always taken).
    Direct,
    /// Indirect jump/call through a register or memory operand (virtual
    /// dispatch in Java): target only from the BTB, frequently polymorphic.
    Indirect,
    /// Call (pushes a return address; target via BTB).
    Call,
    /// Return (target via return-address stack, which we fold into the BTB
    /// model with a high hit rate).
    Return,
}

/// Dynamic information attached to a branch µop.
///
/// The simulator is execution-driven: the workload kernel knows the actual
/// outcome when it emits the branch, and the front end compares the
/// predictor's guess against this ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Actual target of the branch when taken (fall-through otherwise).
    pub target: Addr,
    /// Actual direction.
    pub taken: bool,
    /// Static class.
    pub kind: BranchKind,
}

/// A single micro-operation as produced by a workload kernel.
///
/// `dep_dist` encodes the data dependence that gates issue: this µop may not
/// begin execution until the µop `dep_dist` positions earlier in the same
/// thread's stream has completed. [`DEP_NONE`] means the µop is independent
/// (gated only by structural resources). Kernels choose dependence
/// distances to reflect the true dataflow of the algorithm (e.g. a pointer
/// chase is a chain of loads each depending on the previous one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uop {
    /// Virtual address of the parent instruction (drives trace cache, ITLB
    /// and BTB indexing).
    pub pc: Addr,
    /// Operation class.
    pub kind: UopKind,
    /// Effective data address for memory µops.
    pub mem: Option<Addr>,
    /// Outcome information for branch µops.
    pub branch: Option<BranchInfo>,
    /// Distance (in µops, within the same thread) to the producer this µop
    /// must wait for, or [`DEP_NONE`].
    pub dep_dist: u8,
    /// True when executing in kernel mode (OS code injected by `jsmt-os`).
    pub privileged: bool,
}

impl Uop {
    /// An independent single-cycle ALU µop at `pc`.
    #[inline]
    pub fn alu(pc: Addr) -> Self {
        Uop {
            pc,
            kind: UopKind::Alu,
            mem: None,
            branch: None,
            dep_dist: DEP_NONE,
            privileged: false,
        }
    }

    /// A load from `addr`.
    #[inline]
    pub fn load(pc: Addr, addr: Addr) -> Self {
        Uop {
            pc,
            kind: UopKind::Load,
            mem: Some(addr),
            branch: None,
            dep_dist: DEP_NONE,
            privileged: false,
        }
    }

    /// A store to `addr`.
    #[inline]
    pub fn store(pc: Addr, addr: Addr) -> Self {
        Uop {
            pc,
            kind: UopKind::Store,
            mem: Some(addr),
            branch: None,
            dep_dist: DEP_NONE,
            privileged: false,
        }
    }

    /// A conditional branch at `pc` with the given actual outcome.
    #[inline]
    pub fn branch(pc: Addr, target: Addr, taken: bool) -> Self {
        Uop {
            pc,
            kind: UopKind::Branch,
            mem: None,
            branch: Some(BranchInfo {
                target,
                taken,
                kind: BranchKind::Conditional,
            }),
            dep_dist: DEP_NONE,
            privileged: false,
        }
    }

    /// Builder-style: set the producer distance.
    #[inline]
    pub fn with_dep(mut self, dist: u8) -> Self {
        self.dep_dist = dist;
        self
    }

    /// Builder-style: mark as kernel-mode.
    #[inline]
    pub fn privileged(mut self) -> Self {
        self.privileged = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_ordered_sensibly() {
        assert!(UopKind::Div.base_latency() > UopKind::Mul.base_latency());
        assert!(UopKind::Mul.base_latency() > UopKind::Alu.base_latency());
        assert!(UopKind::FpDiv.base_latency() > UopKind::FpMul.base_latency());
        assert!(UopKind::FpMul.base_latency() > UopKind::FpAdd.base_latency());
    }

    #[test]
    fn port_indices_are_a_bijection() {
        for (i, p) in PortClass::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn mem_classification() {
        assert!(UopKind::Load.is_mem());
        assert!(UopKind::Store.is_mem());
        assert!(UopKind::AtomicRmw.is_mem());
        assert!(!UopKind::Alu.is_mem());
        assert!(!UopKind::Branch.is_mem());
    }

    #[test]
    fn serializing_classification() {
        assert!(UopKind::Fence.is_serializing());
        assert!(UopKind::AtomicRmw.is_serializing());
        assert!(!UopKind::Load.is_serializing());
    }

    #[test]
    fn builders_set_fields() {
        let u = Uop::load(0x1000, 0x8000).with_dep(3);
        assert_eq!(u.dep_dist, 3);
        assert_eq!(u.mem, Some(0x8000));
        let p = Uop::alu(0x1000).privileged();
        assert!(p.privileged);
        let b = Uop::branch(0x1000, 0x2000, true);
        let info = b.branch.unwrap();
        assert!(info.taken);
        assert_eq!(info.target, 0x2000);
        assert_eq!(info.kind, BranchKind::Conditional);
    }

    #[test]
    fn branch_issues_to_fast_int_port() {
        assert_eq!(UopKind::Branch.port(), PortClass::IntFast);
        assert_eq!(UopKind::Load.port(), PortClass::Load);
        assert_eq!(UopKind::AtomicRmw.port(), PortClass::Store);
    }
}
