//! # jsmt-isa
//!
//! Instruction-set substrate for the `jsmt` simulator: the micro-operation
//! (µop) model, the simulated address-space layout, and instruction-mix
//! accounting.
//!
//! The Pentium 4 front end translates IA-32 instructions into µops and the
//! trace cache, scheduler and retirement logic all operate on µops; the
//! paper's counters ("retire up to 3 µops per clock cycle") are µop-level.
//! The simulator therefore works directly in µops: workload kernels emit
//! [`Uop`] streams and the core model in `jsmt-cpu` consumes them.
//!
//! ## Example
//!
//! ```
//! use jsmt_isa::{Uop, UopKind, AddressSpace, Region};
//!
//! let aspace = AddressSpace::new(1);
//! let pc = aspace.region_base(Region::Code);
//! let uop = Uop::alu(pc);
//! assert_eq!(uop.kind, UopKind::Alu);
//! assert!(!uop.privileged);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod mix;
mod sink;
pub mod snap;
mod uop;

pub use addr::{AddressSpace, Asid, PageNumber, Region, CACHE_LINE_BYTES, PAGE_BYTES};
pub use mix::InstrMix;
pub use sink::UopSink;
pub use uop::{BranchInfo, BranchKind, PortClass, Uop, UopKind, DEP_NONE};

/// A simulated byte address.
///
/// Addresses are virtual within a process; [`Asid`] disambiguates between
/// processes where physically-indexed structures (L2) or virtually-indexed,
/// process-private structures (trace cache tags) need it.
pub type Addr = u64;

/// A simulated cycle count (the simulator's clock domain is the CPU core
/// clock, nominally 2.8 GHz to match the paper's machine).
pub type Cycle = u64;
