//! # jsmt-core
//!
//! The system layer of the `jsmt` reproduction: assembles the SMT core
//! (`jsmt-cpu`), the OS scheduler and kernel-code generator (`jsmt-os`),
//! JVM processes with GC threads (`jsmt-jvm`), and benchmark kernels
//! (`jsmt-workloads`) into a runnable machine, and provides the
//! experiment drivers that regenerate every table and figure of
//! *Performance Characterization of Java Applications on SMT Processors*
//! (ISPASS 2005).
//!
//! ## Quick start
//!
//! ```
//! use jsmt_core::{System, SystemConfig};
//! use jsmt_workloads::{BenchmarkId, WorkloadSpec};
//!
//! // Run a tiny mpegaudio slice on the HT-enabled machine.
//! let config = SystemConfig::p4(true);
//! let spec = WorkloadSpec::single(BenchmarkId::Mpegaudio).with_scale(0.002);
//! let mut system = System::new(config);
//! system.add_process(spec);
//! let report = system.run_to_completion();
//! assert!(report.metrics.instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisect;
mod config;
mod error;
pub mod experiments;
mod system;

pub use config::SystemConfig;
pub use error::{Context, ErrorKind, JsmtError};
pub use system::{RunReport, SyncStats, System};
