//! The assembled machine: core + OS + JVM processes + kernels.

use std::collections::VecDeque;

use jsmt_cpu::{ExecTier, FetchQueue, SmtCore, TraceStats};
use jsmt_isa::Asid;
use jsmt_isa::Uop;
use jsmt_jvm::{EmitCtx, GcWorkGen, JitWorkGen, JvmProcess};
use jsmt_os::{KernelCodegen, KernelService, SchedEvent, Scheduler, ThreadId, ThreadState};
use jsmt_perfmon::{CounterBank, DerivedMetrics, Event, LogicalCpu, Sampler};
use jsmt_workloads::{
    build, jvm_config_for, BenchmarkId, BlockReason, Kernel, StepOutcome, WorkloadSpec,
};

use crate::SystemConfig;

/// What an OS thread does when scheduled.
#[derive(Debug, Clone, Copy)]
enum Role {
    /// Runs kernel-thread `ktid` of process `proc`.
    Mutator { proc: usize, ktid: usize },
    /// The GC helper thread of process `proc`.
    Gc { proc: usize },
    /// The background JIT compiler thread of process `proc` (only
    /// spawned when `JvmConfig::background_jit` is set).
    Jit { proc: usize },
}

#[derive(Debug)]
struct OsThread {
    role: Role,
    pending: VecDeque<Uop>,
    /// Base of this thread's simulated stack slab.
    stack_base: u64,
}

struct Process {
    spec: WorkloadSpec,
    jvm: JvmProcess,
    kernel: Box<dyn Kernel>,
    /// Kernel-thread index → OS thread id.
    mutators: Vec<ThreadId>,
    gc_thread: ThreadId,
    gc_requested: bool,
    gc_gen: Option<GcWorkGen>,
    parked_for_gc: Vec<ThreadId>,
    finished_threads: Vec<bool>,
    /// Whether to restart the benchmark when it completes (the paper's
    /// re-launch utility for multiprogrammed measurements, §4.2).
    relaunch: bool,
    completions: u64,
    completion_cycles: Vec<u64>,
    gc_count: u64,
    /// Background compiler thread (when background JIT is enabled).
    jit_thread: Option<ThreadId>,
    jit_gen: Option<(jsmt_jvm::MethodId, JitWorkGen)>,
    compiles_done: u64,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("spec", &self.spec)
            .field("completions", &self.completions)
            .field("gc_count", &self.gc_count)
            .finish_non_exhaustive()
    }
}

/// Everything in the system except the core (split so the core's cycle
/// callback can borrow it mutably).
struct World {
    sched: Scheduler,
    kcg: KernelCodegen,
    threads: Vec<OsThread>,
    procs: Vec<Process>,
    os_cfg: jsmt_os::OsConfig,
    extra: CounterBank,
    emit_buf: Vec<Uop>,
    now: u64,
    seed: u64,
}

impl World {
    /// Supply µops for the thread bound to `lcpu`, writing straight into
    /// the context's fetch queue (no intermediate buffer).
    fn fill(&mut self, lcpu: LogicalCpu, buf: &mut FetchQueue, max: usize) -> usize {
        // Injected starvation: the µop supply dries up from the clause's
        // trigger cycle on, livelocking the machine so forward-progress
        // watchdogs can be exercised deterministically. One relaxed
        // atomic load when disarmed.
        if jsmt_faults::starved(self.now) {
            return 0;
        }
        let Some(tid) = self.sched.running_on(lcpu.index()) else {
            return 0;
        };
        let ti = tid.0 as usize;

        if self.threads[ti].pending.is_empty() {
            self.generate(lcpu, tid);
        }
        let th = &mut self.threads[ti];
        let n = th.pending.len().min(max);
        for uop in th.pending.drain(..n) {
            buf.push_back(uop);
        }
        n
    }

    /// Emit `n` µops of a kernel service straight onto the tail of thread
    /// `ti`'s pending stream (the common append path; interrupt-style
    /// front-insertion keeps its own buffered path).
    fn push_kernel_uops(&mut self, ti: usize, service: KernelService, n: u32) {
        self.kcg.emit(service, n, &mut self.threads[ti].pending);
    }

    /// Produce the next block of the thread's stream into its pending
    /// queue.
    fn generate(&mut self, lcpu: LogicalCpu, tid: ThreadId) {
        let ti = tid.0 as usize;
        match self.threads[ti].role {
            Role::Gc { proc } => {
                let World { procs, threads, .. } = self;
                if let Some(gen) = procs[proc].gc_gen.as_mut() {
                    gen.emit(&mut threads[ti].pending, 96);
                }
                // An exhausted generator is put back to sleep by the GC
                // coordination phase.
            }
            Role::Jit { proc } => {
                let World { procs, threads, .. } = self;
                if let Some((_, gen)) = procs[proc].jit_gen.as_mut() {
                    gen.emit(&mut threads[ti].pending, 96);
                }
                // Completion is handled by the helper-thread
                // coordination phase.
            }
            Role::Mutator { proc, ktid } => {
                let p = &mut self.procs[proc];
                if p.finished_threads[ktid] {
                    return;
                }
                if p.gc_requested {
                    // Safepoint: park until the collection completes.
                    self.sched.block(tid);
                    p.parked_for_gc.push(tid);
                    return;
                }
                self.emit_buf.clear();
                let stack_base = self.threads[ti].stack_base;
                let result = {
                    let mut ctx =
                        EmitCtx::new(&mut p.jvm, &mut self.emit_buf).with_stack(stack_base);
                    p.kernel.step(ktid, &mut ctx)
                };
                let th = &mut self.threads[ti];
                th.pending.extend(self.emit_buf.drain(..));
                for &w in &result.wake {
                    self.sched.wake(p.mutators[w]);
                }
                let syscall_uops = self.os_cfg.syscall_uops;
                for _ in 0..result.syscalls {
                    self.push_kernel_uops(ti, KernelService::Syscall, syscall_uops);
                    self.extra.inc(lcpu, Event::Syscalls);
                }
                match result.outcome {
                    StepOutcome::Ran => {}
                    StepOutcome::NeedsGc => {
                        let p = &mut self.procs[proc];
                        p.gc_requested = true;
                        p.parked_for_gc.push(tid);
                        self.sched.block(tid);
                    }
                    StepOutcome::Blocked(reason) => {
                        if matches!(reason, BlockReason::Monitor(_)) {
                            self.extra.inc(lcpu, Event::MonitorContended);
                            // The contended slow path traps to the kernel
                            // futex.
                            let futex_uops = self.os_cfg.futex_uops;
                            self.push_kernel_uops(ti, KernelService::Futex, futex_uops);
                        }
                        self.sched.block(tid);
                    }
                    StepOutcome::Finished => {
                        let p = &mut self.procs[proc];
                        p.finished_threads[ktid] = true;
                        self.sched.finish(tid);
                        self.maybe_complete(proc);
                    }
                }
            }
        }
    }

    /// Record a benchmark completion and (for re-launch runs) respawn it.
    fn maybe_complete(&mut self, proc: usize) {
        let now = self.now;
        let p = &mut self.procs[proc];
        if !p.finished_threads.iter().all(|&f| f) {
            return;
        }
        p.completions += 1;
        p.completion_cycles.push(now);
        if !p.relaunch {
            return;
        }
        // Fresh JVM process (same address space id) and kernel, exactly
        // like re-executing the java command.
        let asid = p.jvm.asid();
        let old_cfg = *p.jvm.config();
        p.jvm = JvmProcess::new(asid.0, old_cfg);
        p.kernel = build(p.spec);
        p.kernel.setup(&mut p.jvm);
        p.gc_requested = false;
        p.gc_gen = None;
        p.jit_gen = None;
        p.parked_for_gc.clear();
        p.finished_threads = vec![false; p.spec.threads];
        let nthreads = p.spec.threads;
        let mut new_mutators = Vec::with_capacity(nthreads);
        for ktid in 0..nthreads {
            let tid = self.sched.spawn(asid);
            new_mutators.push(tid);
            let stack_base = self.procs[proc].jvm.alloc_stack(64 * 1024);
            self.threads.push(OsThread {
                role: Role::Mutator { proc, ktid },
                pending: VecDeque::new(),
                stack_base,
            });
            // Thread creation cost, charged to the new thread.
            let last = self.threads.len() - 1;
            let spawn_uops = self.os_cfg.thread_spawn_uops;
            self.push_kernel_uops(last, KernelService::ThreadSpawn, spawn_uops);
        }
        self.procs[proc].mutators = new_mutators;
    }

    /// Stop-the-world GC coordination, run once per cycle.
    fn gc_coordination(&mut self) {
        for proc in 0..self.procs.len() {
            // Start a collection once every mutator is parked.
            if self.procs[proc].gc_requested && self.procs[proc].gc_gen.is_none() {
                let all_parked = self.procs[proc].mutators.iter().all(|&t| {
                    matches!(
                        self.sched.state(t),
                        ThreadState::Blocked | ThreadState::Finished
                    )
                });
                if all_parked {
                    // A GC-component fault fires at the start of a
                    // collection — the most state-heavy moment of the
                    // JVM's life, and a deterministic one.
                    jsmt_faults::check_cycle("gc", self.now);
                    let p = &mut self.procs[proc];
                    let live = p.jvm.collect();
                    let heap_base = p.jvm.heap().base();
                    p.gc_gen = Some(GcWorkGen::new(
                        heap_base,
                        live,
                        self.seed ^ (p.gc_count + 1),
                    ));
                    p.gc_count += 1;
                    self.extra.inc(LogicalCpu::Lp0, Event::GcCount);
                    let gc_tid = p.gc_thread;
                    self.sched.wake(gc_tid);
                }
            }
            // Finish a collection whose work has fully drained.
            let done = match &self.procs[proc].gc_gen {
                Some(gen) => {
                    gen.is_done()
                        && self.threads[self.procs[proc].gc_thread.0 as usize]
                            .pending
                            .is_empty()
                }
                None => false,
            };
            if done {
                let gc_tid = self.procs[proc].gc_thread;
                self.procs[proc].gc_gen = None;
                self.procs[proc].gc_requested = false;
                self.sched.block(gc_tid);
                let parked = std::mem::take(&mut self.procs[proc].parked_for_gc);
                for t in parked {
                    self.sched.wake(t);
                }
            }
            // Attribute GC-thread CPU time.
            if self.procs[proc].gc_gen.is_some() {
                for l in 0..2 {
                    if self.sched.running_on(l) == Some(self.procs[proc].gc_thread) {
                        self.extra.inc(LogicalCpu::from_index(l), Event::GcCycles);
                    }
                }
            }

            // Background JIT: start queued compilations, finish drained
            // ones.
            let Some(jit_tid) = self.procs[proc].jit_thread else {
                continue;
            };
            if self.procs[proc].jit_gen.is_none() {
                if let Some(m) = self.procs[proc].jvm.methods_mut().take_compile_request() {
                    let (base, size) = self.procs[proc].jvm.methods().body_of(m);
                    self.procs[proc].jit_gen =
                        Some((m, JitWorkGen::new(base, size, self.seed ^ m.0 as u64)));
                    self.sched.wake(jit_tid);
                }
            }
            let jit_done = match &self.procs[proc].jit_gen {
                Some((_, gen)) => {
                    gen.is_done() && self.threads[jit_tid.0 as usize].pending.is_empty()
                }
                None => false,
            };
            if jit_done {
                let (m, _) = self.procs[proc].jit_gen.take().expect("checked");
                self.procs[proc].jvm.methods_mut().mark_compiled(m);
                self.procs[proc].compiles_done += 1;
                if !self.procs[proc].jvm.methods().has_pending_compiles() {
                    self.sched.block(jit_tid);
                }
            }
        }
    }

    /// Replicate [`World::gc_coordination`]'s per-cycle GC-thread CPU-time
    /// attribution for `k` fast-forwarded cycles in one step. Only valid
    /// across a span where no thread state or GC state can change — the
    /// fast-forward contract guarantees exactly that.
    fn bulk_gc_cycles(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        for p in &self.procs {
            if p.gc_gen.is_some() {
                for l in 0..2 {
                    if self.sched.running_on(l) == Some(p.gc_thread) {
                        self.extra
                            .add(LogicalCpu::from_index(l), Event::GcCycles, k);
                    }
                }
            }
        }
    }
}

/// Per-process results of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessReport {
    /// The workload that ran.
    pub spec: WorkloadSpec,
    /// Completed executions.
    pub completions: u64,
    /// Machine cycle of each completion.
    pub completion_cycles: Vec<u64>,
    /// Collections performed.
    pub gc_count: u64,
    /// Objects allocated.
    pub allocations: u64,
    /// Methods compiled by the background compiler thread.
    pub compiles_done: u64,
}

impl ProcessReport {
    /// Durations of the individual executions (differences of completion
    /// cycles; the first starts at cycle 0).
    pub fn durations(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.completion_cycles.len());
        let mut prev = 0;
        for &c in &self.completion_cycles {
            out.push(c - prev);
            prev = c;
        }
        out
    }

    /// The paper's measurement rule: average the completion times after
    /// dropping the first run (cold start) and the last (possibly
    /// truncated). Falls back to the plain mean when fewer than three
    /// runs completed.
    pub fn mean_duration(&self) -> f64 {
        let d = self.durations();
        if d.is_empty() {
            return f64::NAN;
        }
        let trimmed: &[u64] = if d.len() >= 3 {
            &d[1..d.len() - 1]
        } else {
            &d[..]
        };
        trimmed.iter().sum::<u64>() as f64 / trimmed.len() as f64
    }
}

/// Synchronization counters of a run: scheduler block/wake events plus
/// one process's monitor statistics (see [`System::sync_stats`]). The
/// litmus harness records these per seed — being pure counter reads, they
/// are part of the bit-identity surface across exec tiers and resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncStats {
    /// Scheduler block-event total (all processes).
    pub block_events: u64,
    /// Scheduler wake-event total (all processes).
    pub wake_events: u64,
    /// `Object.wait` calls in the process's monitor table.
    pub waits: u64,
    /// Threads notified in the process's monitor table.
    pub notifies: u64,
    /// Contended monitor acquisitions in the process.
    pub contended: u64,
    /// Threads currently parked in wait sets.
    pub wait_parked: usize,
    /// Threads currently in the pending-notify window.
    pub pending_notify: usize,
}

/// Results of a run: raw counters, derived metrics, per-process outcomes.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Elapsed machine cycles.
    pub cycles: u64,
    /// Merged counters (core events + system-level events).
    pub bank: CounterBank,
    /// Derived metrics over the whole run.
    pub metrics: DerivedMetrics,
    /// Per-process outcomes, in `add_process` order.
    pub processes: Vec<ProcessReport>,
}

/// The assembled machine.
pub struct System {
    cfg: SystemConfig,
    core: SmtCore,
    world: World,
    started: bool,
    jvm_override: Option<jsmt_jvm::JvmConfig>,
    sampler: Option<Sampler>,
    /// Supervision context captured from the constructing thread (see
    /// `experiments::supervise`); `None` on unsupervised runs, where
    /// every check below is a single branch.
    supervision: Option<crate::experiments::supervise::Supervision>,
    /// Forward-progress watchdog anchor: the retired-µop total last seen
    /// to increase, and the cycle at which it did.
    watch_retired: u64,
    watch_cycle: u64,
    /// Next machine cycle at which to refresh the crash-tail checkpoint
    /// (`u64::MAX` = periodic checkpointing off).
    next_tail_ckpt: u64,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cycles", &self.core.cycles())
            .field("processes", &self.world.procs.len())
            .finish_non_exhaustive()
    }
}

impl System {
    /// A machine with no processes yet. If the constructing thread is
    /// running a supervised experiment cell, the machine picks up the
    /// supervision context (cancellation flag, watchdog thresholds,
    /// crash-tail slot) and cooperates with it; otherwise behavior is
    /// exactly as before.
    pub fn new(cfg: SystemConfig) -> Self {
        let supervision = crate::experiments::supervise::current();
        let next_tail_ckpt = supervision
            .as_ref()
            .map(|s| s.checkpoint_every)
            .filter(|&every| every > 0)
            .unwrap_or(u64::MAX);
        System {
            core: SmtCore::new(cfg.core, cfg.mem),
            world: World {
                sched: Scheduler::new(cfg.os, cfg.core.ht_enabled),
                kcg: KernelCodegen::new(cfg.seed ^ 0xF00D),
                threads: Vec::new(),
                procs: Vec::new(),
                os_cfg: cfg.os,
                extra: CounterBank::new(),
                emit_buf: Vec::with_capacity(2048),
                now: 0,
                seed: cfg.seed,
            },
            cfg,
            started: false,
            jvm_override: None,
            sampler: None,
            supervision,
            watch_retired: 0,
            watch_cycle: 0,
            next_tail_ckpt,
        }
    }

    /// Attach an interval sampler: every `interval_cycles` machine cycles
    /// the counter deltas are snapshotted (the Pentium 4's event-based
    /// sampling, as Brink & Abyss exposes it). Retrieve the series with
    /// [`System::sampler`].
    pub fn attach_sampler(&mut self, interval_cycles: u64) {
        self.sampler = Some(Sampler::new(interval_cycles));
    }

    /// The attached sampler, if any.
    pub fn sampler(&self) -> Option<&Sampler> {
        self.sampler.as_ref()
    }

    /// Add a JVM process running `spec` once (no re-launch).
    pub fn add_process(&mut self, spec: WorkloadSpec) -> usize {
        self.add_process_inner(spec, false)
    }

    /// Add a JVM process that re-launches on completion (multiprogram
    /// methodology).
    pub fn add_relaunching_process(&mut self, spec: WorkloadSpec) -> usize {
        self.add_process_inner(spec, true)
    }

    /// Add a process with an explicit JVM configuration (heap-size and
    /// survival ablations).
    pub fn add_process_with_jvm(&mut self, spec: WorkloadSpec, jvm: jsmt_jvm::JvmConfig) -> usize {
        self.jvm_override = Some(jvm);
        let idx = self.add_process_inner(spec, false);
        self.jvm_override = None;
        idx
    }

    fn add_process_inner(&mut self, spec: WorkloadSpec, relaunch: bool) -> usize {
        assert!(
            !self.started,
            "processes must be added before the first cycle"
        );
        let proc_idx = self.world.procs.len();
        let asid = Asid(proc_idx as u16 + 1);
        let jvm_cfg = self.jvm_override.unwrap_or_else(|| jvm_config_for(spec.id));
        let mut jvm = JvmProcess::new(asid.0, jvm_cfg);
        let mut kernel = build(spec);
        kernel.setup(&mut jvm);

        let mut mutators = Vec::with_capacity(spec.threads);
        for ktid in 0..spec.threads {
            let tid = self.world.sched.spawn(asid);
            mutators.push(tid);
            let stack_base = jvm.alloc_stack(64 * 1024);
            self.world.threads.push(OsThread {
                role: Role::Mutator {
                    proc: proc_idx,
                    ktid,
                },
                pending: VecDeque::new(),
                stack_base,
            });
        }
        // The GC helper thread exists from JVM start but sleeps until a
        // collection is requested.
        let gc_thread = self.world.sched.spawn(asid);
        let gc_stack = jvm.alloc_stack(64 * 1024);
        self.world.threads.push(OsThread {
            role: Role::Gc { proc: proc_idx },
            pending: VecDeque::new(),
            stack_base: gc_stack,
        });
        self.world.sched.block(gc_thread);

        // The background compiler thread, when the JVM is configured for
        // it; sleeps until a method queues for compilation.
        let jit_thread = if jvm.config().background_jit {
            let t = self.world.sched.spawn(asid);
            let jit_stack = jvm.alloc_stack(64 * 1024);
            self.world.threads.push(OsThread {
                role: Role::Jit { proc: proc_idx },
                pending: VecDeque::new(),
                stack_base: jit_stack,
            });
            self.world.sched.block(t);
            Some(t)
        } else {
            None
        };

        self.world.procs.push(Process {
            spec,
            jvm,
            kernel,
            mutators,
            gc_thread,
            gc_requested: false,
            gc_gen: None,
            parked_for_gc: Vec::new(),
            finished_threads: vec![false; spec.threads],
            relaunch,
            completions: 0,
            completion_cycles: Vec::new(),
            gc_count: 0,
            jit_thread,
            jit_gen: None,
            compiles_done: 0,
        });
        proc_idx
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Elapsed machine cycles.
    pub fn cycles(&self) -> u64 {
        self.core.cycles()
    }

    /// Completions of process `idx`.
    pub fn completions(&self, idx: usize) -> u64 {
        self.world.procs[idx].completions
    }

    /// The interleaving observation of process `idx`'s kernel, if the
    /// kernel defines one (the litmus family's outcome label). Meaningful
    /// only once the process has completed.
    pub fn observation(&self, idx: usize) -> Option<String> {
        self.world.procs[idx].kernel.observation()
    }

    /// Synchronization counters of the run so far: the scheduler's
    /// block/wake event totals plus process `idx`'s monitor statistics.
    pub fn sync_stats(&self, idx: usize) -> SyncStats {
        let mons = self.world.procs[idx].jvm.monitors();
        SyncStats {
            block_events: self.world.sched.block_events(),
            wake_events: self.world.sched.wake_events(),
            waits: mons.waits_total(),
            notifies: mons.notifies_total(),
            contended: mons.contended_total(),
            wait_parked: mons.wait_parked_total(),
            pending_notify: mons.pending_notify_total(),
        }
    }

    /// Advance the machine by one cycle.
    pub fn step_cycle(&mut self) {
        self.step_span(1);
    }

    /// Enable or disable the core's event-driven fast-forward (on by
    /// default unless the `JSMT_NO_FASTFWD=1` environment variable is
    /// set). Results are bit-identical either way; disabling forces the
    /// plain cycle-by-cycle loop.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.core.set_fast_forward(enabled);
    }

    /// Enable or disable the core's compiled-trace tier (on by default
    /// unless the `JSMT_NO_TRACE_TIER=1` environment variable is set).
    /// Results are bit-identical either way; disabling falls back to the
    /// batched SoA stepper.
    pub fn set_trace_tier(&mut self, enabled: bool) {
        self.core.set_exec_tier(if enabled {
            ExecTier::Trace
        } else {
            ExecTier::Batched
        });
    }

    /// Compile/replay statistics of the core's trace tier.
    pub fn trace_stats(&self) -> TraceStats {
        self.core.trace_stats()
    }

    /// Whether a compiled-trace replay is currently sound at the system
    /// level: the span compression skips the per-cycle scheduler/GC/fault
    /// observation points, which is only exact when none of them could
    /// fire — no fault clauses armed, and every process GC- and JIT-idle.
    /// (Timed scheduler events and the sampler are handled by capping the
    /// replay span, exactly like fast-forward.)
    fn trace_replay_sound(&self) -> bool {
        jsmt_faults::active_spec().is_none()
            && self
                .world
                .procs
                .iter()
                .all(|p| !p.gc_requested && p.gc_gen.is_none() && p.jit_gen.is_none())
    }

    /// Advance by at least one and at most `max_advance` cycles, taking
    /// the core's stall fast-forward when the whole system is provably
    /// quiet: no scheduling events fired this cycle, and the jump is
    /// capped so the next timer/timeslice decision and the next sampler
    /// interval land on exactly the cycle they would have stepwise.
    /// Returns the number of cycles advanced.
    fn step_span(&mut self, max_advance: u64) -> u64 {
        self.started = true;
        self.world.now = self.core.cycles();
        // Fault and supervision hooks, once per span: a `panic` clause
        // targeting the `system` component fires here, and a supervised
        // run checks its cancellation flag and forward-progress watchdog.
        // Both are a single branch when disarmed/unsupervised.
        jsmt_faults::check_cycle("system", self.world.now);
        if self.supervision.is_some() {
            self.supervised_checks();
        }
        self.world.gc_coordination();

        let drained = [
            self.core.snapshot(LogicalCpu::Lp0).drained,
            self.core.snapshot(LogicalCpu::Lp1).drained,
        ];
        let mut events = Vec::new();
        self.world.sched.tick(self.world.now, drained, &mut events);
        let quiet = events.is_empty();
        for ev in events {
            match ev {
                SchedEvent::Bind { lcpu, thread, asid } => {
                    let l = LogicalCpu::from_index(lcpu);
                    self.core.bind(l, asid);
                    self.world.extra.inc(l, Event::ContextSwitches);
                    // Switch-in kernel cost, charged to the incoming
                    // thread's stream.
                    self.world.emit_buf.clear();
                    self.world.kcg.emit(
                        KernelService::ContextSwitch,
                        self.world.os_cfg.ctx_switch_uops,
                        &mut self.world.emit_buf,
                    );
                    let ti = thread.0 as usize;
                    // Interrupt-style: handler runs before the user stream
                    // resumes.
                    for uop in self.world.emit_buf.drain(..).rev() {
                        self.world.threads[ti].pending.push_front(uop);
                    }
                }
                SchedEvent::RequestDrain { lcpu } => {
                    self.core.request_drain(LogicalCpu::from_index(lcpu));
                }
                SchedEvent::Unbind { lcpu, .. } => {
                    self.core.unbind(LogicalCpu::from_index(lcpu));
                }
                SchedEvent::Timer { lcpu } => {
                    let l = LogicalCpu::from_index(lcpu);
                    self.world.extra.inc(l, Event::TimerInterrupts);
                    if let Some(tid) = self.world.sched.running_on(lcpu) {
                        self.world.emit_buf.clear();
                        self.world.kcg.emit(
                            KernelService::TimerInterrupt,
                            self.world.os_cfg.timer_uops,
                            &mut self.world.emit_buf,
                        );
                        let ti = tid.0 as usize;
                        for uop in self.world.emit_buf.drain(..).rev() {
                            self.world.threads[ti].pending.push_front(uop);
                        }
                    }
                }
            }
        }

        if quiet {
            let now = self.world.now;
            let mut allowed = max_advance;
            let next_timed = self.world.sched.next_timed_event(now);
            if next_timed != u64::MAX {
                allowed = allowed.min(next_timed - now);
            }
            if let Some(s) = &self.sampler {
                allowed = allowed.min(s.next_due().max(now + 1) - now);
            }
            let skipped = self.core.fast_forward(allowed);
            if skipped > 0 {
                // This step's gc_coordination covered cycle `now`; the
                // remaining skipped-over cycles get their attribution in
                // bulk.
                self.world.bulk_gc_cycles(skipped - 1);
                if let Some(sampler) = self.sampler.as_mut() {
                    sampler.tick(self.core.cycles(), self.core.counters());
                }
                return skipped;
            }
            // Fast-forward only wins on quiet cycles; the compiled-trace
            // tier compresses *busy* spans. Offer the running thread's
            // already-materialized pending µops — a replay only applies
            // when every fill in the span is a pure drain of that buffer
            // (so `World::fill` would never have called `generate`, whose
            // scheduler side effects a bulk apply cannot reproduce).
            if self.core.trace_tier_enabled() && self.trace_replay_sound() {
                let bound = [
                    self.core.snapshot(LogicalCpu::Lp0).bound,
                    self.core.snapshot(LogicalCpu::Lp1).bound,
                ];
                if let [true, false] | [false, true] = bound {
                    let lcpu = usize::from(bound[1]);
                    if let Some(tid) = self.world.sched.running_on(lcpu) {
                        let pending = &self.world.threads[tid.0 as usize].pending;
                        let (cycles, consumed) = self.core.trace_step(allowed, pending);
                        if cycles > 0 {
                            self.world.threads[tid.0 as usize].pending.drain(..consumed);
                            self.world.bulk_gc_cycles(cycles - 1);
                            if let Some(sampler) = self.sampler.as_mut() {
                                sampler.tick(self.core.cycles(), self.core.counters());
                            }
                            return cycles;
                        }
                    }
                }
            }
        }

        let world = &mut self.world;
        self.core
            .cycle(&mut |lcpu, buf, max| world.fill(lcpu, buf, max));

        if let Some(sampler) = self.sampler.as_mut() {
            sampler.tick(self.core.cycles(), self.core.counters());
        }
        1
    }

    /// The supervised run's cooperative checks, once per span:
    ///
    /// * publish the current cycle (failure attribution for panics that
    ///   carry no cycle of their own);
    /// * honor the cancellation flag (deadline monitor / external
    ///   cancel) by aborting the cell with a typed panic;
    /// * forward-progress watchdog: if the machine-wide retired-µop
    ///   total has not moved for `livelock_cycles` cycles — no
    ///   retirement on either hardware context — trip the livelock
    ///   diagnostic;
    /// * refresh the crash-tail checkpoint every `checkpoint_every`
    ///   cycles so a later failure's bundle carries recent state.
    ///
    /// Every check only *observes* the simulation; the machine's own
    /// state is never perturbed, so a supervised healthy run stays
    /// bit-identical to an unsupervised one.
    fn supervised_checks(&mut self) {
        use std::sync::atomic::Ordering;

        let Some(sup) = self.supervision.clone() else {
            return;
        };
        let now = self.core.cycles();
        sup.cycle.store(now, Ordering::Relaxed);

        use crate::experiments::supervise::{CellAbort, ABORT_CANCELLED, ABORT_DEADLINE};
        match sup.flag.load(Ordering::Relaxed) {
            ABORT_DEADLINE => std::panic::panic_any(CellAbort::Deadline { cycle: now }),
            ABORT_CANCELLED => std::panic::panic_any(CellAbort::Cancelled { cycle: now }),
            _ => {}
        }

        if sup.livelock_cycles > 0 {
            let retired = self.core.counters().total(Event::UopsRetired);
            if retired != self.watch_retired {
                self.watch_retired = retired;
                self.watch_cycle = now;
            } else if now.saturating_sub(self.watch_cycle) >= sup.livelock_cycles {
                std::panic::panic_any(CellAbort::Livelock {
                    cycle: now,
                    stalled_for: now - self.watch_cycle,
                });
            }
        }

        if now >= self.next_tail_ckpt {
            self.next_tail_ckpt = now.saturating_add(sup.checkpoint_every.max(1));
            let checkpoint = self.checkpoint();
            let mut bank = self.core.counters().clone();
            bank.merge(&self.world.extra);
            let counters = jsmt_snapshot::save_bytes(&bank);
            let mut tail = sup.tail.lock().expect("crash tail");
            tail.checkpoint = Some(checkpoint);
            tail.counters = Some(counters);
        }
    }

    /// Run until every process has completed at least `target` executions.
    ///
    /// # Panics
    ///
    /// Panics if the configured cycle cap is exceeded (indicates a
    /// deadlock or an unreasonably large workload).
    pub fn run_until_completions(&mut self, target: u64) -> RunReport {
        while self.world.procs.iter().any(|p| p.completions < target) {
            // Spans are capped at the cycle budget so a quiet deadlock
            // still trips the assertion at exactly the stepwise cycle.
            let remaining = self
                .cfg
                .max_cycles
                .saturating_sub(self.core.cycles())
                .max(1);
            self.step_span(remaining);
            assert!(
                self.core.cycles() < self.cfg.max_cycles,
                "cycle cap exceeded at {} cycles (progress: {:?})",
                self.core.cycles(),
                self.world
                    .procs
                    .iter()
                    .map(|p| p.kernel.progress())
                    .collect::<Vec<_>>()
            );
        }
        self.report()
    }

    /// Run every process to (first) completion.
    pub fn run_to_completion(&mut self) -> RunReport {
        self.run_until_completions(1)
    }

    /// Run for a fixed number of cycles (interval profiling).
    pub fn run_cycles(&mut self, cycles: u64) -> RunReport {
        let end = self.core.cycles() + cycles;
        while self.core.cycles() < end {
            self.step_span(end - self.core.cycles());
        }
        self.report()
    }

    /// Produce the report for the run so far.
    pub fn report(&self) -> RunReport {
        let mut bank = self.core.counters().clone();
        bank.merge(&self.world.extra);
        for p in &self.world.procs {
            bank.add(
                LogicalCpu::Lp0,
                Event::Allocations,
                p.jvm.heap().stats().objects,
            );
        }
        let cycles = self.core.cycles();
        RunReport {
            cycles,
            metrics: DerivedMetrics::from_bank(&bank, cycles),
            processes: self
                .world
                .procs
                .iter()
                .map(|p| ProcessReport {
                    spec: p.spec,
                    completions: p.completions,
                    completion_cycles: p.completion_cycles.clone(),
                    gc_count: p.gc_count,
                    allocations: p.jvm.heap().stats().objects,
                    compiles_done: p.compiles_done,
                })
                .collect(),
            bank,
        }
    }
}

/// Snapshot kind tag of a whole-system checkpoint file.
pub(crate) const KIND_SYSTEM: u32 = 1;

/// FNV-1a fingerprint of the machine configuration. A checkpoint is only
/// resumable on the *identical* configuration (geometry, seed, cycle
/// cap): everything not serialized is reconstructed from it.
fn config_fingerprint(cfg: &SystemConfig) -> u64 {
    jsmt_snapshot::fnv64(format!("{cfg:?}").as_bytes())
}

fn save_role(w: &mut jsmt_snapshot::Writer, role: Role) {
    let (tag, proc, ktid) = match role {
        Role::Mutator { proc, ktid } => (0u8, proc, ktid),
        Role::Gc { proc } => (1, proc, 0),
        Role::Jit { proc } => (2, proc, 0),
    };
    w.put_u8(tag);
    w.put_usize(proc);
    w.put_usize(ktid);
}

fn restore_role(
    r: &mut jsmt_snapshot::Reader<'_>,
    procs: &[Process],
) -> Result<Role, jsmt_snapshot::SnapshotError> {
    let tag = r.get_u8()?;
    let proc = r.get_usize()?;
    let ktid = r.get_usize()?;
    if proc >= procs.len() {
        return Err(jsmt_snapshot::SnapshotError::Corrupt(
            "thread role references unknown process",
        ));
    }
    match tag {
        0 => {
            if ktid >= procs[proc].spec.threads {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "mutator role kernel-thread index out of range",
                ));
            }
            Ok(Role::Mutator { proc, ktid })
        }
        1 => Ok(Role::Gc { proc }),
        2 => Ok(Role::Jit { proc }),
        _ => Err(jsmt_snapshot::SnapshotError::Corrupt(
            "unknown thread role tag",
        )),
    }
}

fn check_tid(tid: u64, nthreads: usize) -> Result<ThreadId, jsmt_snapshot::SnapshotError> {
    if tid as usize >= nthreads {
        return Err(jsmt_snapshot::SnapshotError::Corrupt(
            "process bookkeeping references unknown thread",
        ));
    }
    Ok(ThreadId(tid as u32))
}

impl Process {
    /// Mutable bookkeeping of one process (the kernel and JVM have their
    /// own sections). `spec`, `relaunch` and the JVM configuration live
    /// in the checkpoint header because they are reconstruction inputs.
    fn save_book(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.mutators.len());
        for t in &self.mutators {
            w.put_u64(u64::from(t.0));
        }
        w.put_u64(u64::from(self.gc_thread.0));
        w.put_bool(self.gc_requested);
        match &self.gc_gen {
            Some(gen) => {
                w.put_bool(true);
                gen.write_to(w);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.parked_for_gc.len());
        for t in &self.parked_for_gc {
            w.put_u64(u64::from(t.0));
        }
        for &f in &self.finished_threads {
            w.put_bool(f);
        }
        w.put_u64(self.completions);
        w.put_u64_slice(&self.completion_cycles);
        w.put_u64(self.gc_count);
        w.put_opt_u64(self.jit_thread.map(|t| u64::from(t.0)));
        match &self.jit_gen {
            Some((m, gen)) => {
                w.put_bool(true);
                w.put_u32(m.0);
                gen.write_to(w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.compiles_done);
    }

    fn restore_book(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
        nthreads: usize,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let nmut = r.get_len(8)?;
        if nmut != self.spec.threads {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "mutator count disagrees with workload spec",
            ));
        }
        let mut mutators = Vec::with_capacity(nmut);
        for _ in 0..nmut {
            mutators.push(check_tid(r.get_u64()?, nthreads)?);
        }
        self.mutators = mutators;
        self.gc_thread = check_tid(r.get_u64()?, nthreads)?;
        self.gc_requested = r.get_bool()?;
        self.gc_gen = if r.get_bool()? {
            Some(GcWorkGen::read_from(r)?)
        } else {
            None
        };
        let nparked = r.get_len(8)?;
        let mut parked = Vec::with_capacity(nparked);
        for _ in 0..nparked {
            parked.push(check_tid(r.get_u64()?, nthreads)?);
        }
        self.parked_for_gc = parked;
        for f in &mut self.finished_threads {
            *f = r.get_bool()?;
        }
        self.completions = r.get_u64()?;
        self.completion_cycles = r.get_u64_vec()?;
        self.gc_count = r.get_u64()?;
        let jit_tid = r.get_opt_u64()?;
        if jit_tid.is_some() != self.jit_thread.is_some() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "compiler-thread presence disagrees with JVM configuration",
            ));
        }
        self.jit_thread = match jit_tid {
            Some(t) => Some(check_tid(t, nthreads)?),
            None => None,
        };
        self.jit_gen = if r.get_bool()? {
            let m = jsmt_jvm::MethodId(r.get_u32()?);
            Some((m, JitWorkGen::read_from(r)?))
        } else {
            None
        };
        self.compiles_done = r.get_u64()?;
        Ok(())
    }
}

impl System {
    /// Whether any process currently has a stop-the-world collection in
    /// flight (exposed so checkpoint tests can target mid-GC cycles).
    pub fn gc_active(&self) -> bool {
        self.world.procs.iter().any(|p| p.gc_gen.is_some())
    }

    /// Serialize the complete mutable state of the machine into a
    /// versioned, checksummed snapshot. [`System::resume`] on the same
    /// [`SystemConfig`] rebuilds a machine that continues bit-identically
    /// to this one — mid-GC, mid-JIT and mid-fast-forward included.
    ///
    /// Construction inputs (configurations, cache geometry, seeds,
    /// setup-built kernel corpora) are *not* serialized: resume re-runs
    /// the deterministic construction path and then overwrites every
    /// mutable field. The header records the workload roster so resume
    /// can re-add the same processes.
    pub fn checkpoint(&self) -> Vec<u8> {
        use jsmt_snapshot::Snapshotable;
        let mut w = jsmt_snapshot::Writer::new();
        w.section("meta", |w| {
            w.put_u64(config_fingerprint(&self.cfg));
            w.put_bool(self.started);
        });
        w.section("roster", |w| {
            w.put_usize(self.world.procs.len());
            for p in &self.world.procs {
                w.put_u8(p.spec.id.tag());
                w.put_usize(p.spec.threads);
                w.put_f64(p.spec.scale);
                w.put_bool(p.relaunch);
                p.jvm.config().write_to(w);
            }
        });
        w.section("core", |w| self.core.save_state(w));
        w.section("sched", |w| self.world.sched.save_state(w));
        w.section("kcg", |w| self.world.kcg.save_state(w));
        w.section("threads", |w| {
            w.put_usize(self.world.threads.len());
            for th in &self.world.threads {
                save_role(w, th.role);
                w.put_u64(th.stack_base);
                w.put_usize(th.pending.len());
                for uop in &th.pending {
                    uop.write_to(w);
                }
            }
        });
        w.section("procs", |w| {
            for (i, p) in self.world.procs.iter().enumerate() {
                w.section(&format!("p{i}"), |w| {
                    w.section("jvm", |w| p.jvm.save_state(w));
                    w.section("kernel", |w| p.kernel.save_state(w));
                    w.section("book", |w| p.save_book(w));
                });
            }
        });
        w.section("extra", |w| self.world.extra.save_state(w));
        w.section("sampler", |w| match &self.sampler {
            Some(s) => {
                w.put_bool(true);
                s.save_state(w);
            }
            None => w.put_bool(false),
        });
        jsmt_snapshot::seal(KIND_SYSTEM, &w.into_bytes())
    }

    /// Rebuild a machine from a [`System::checkpoint`] snapshot taken on
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// Any framing, checksum, version or validation failure returns a
    /// [`jsmt_snapshot::SnapshotError`]; corrupt or truncated input never
    /// panics. A fingerprint mismatch means `cfg` differs from the
    /// checkpointed machine's configuration.
    pub fn resume(cfg: SystemConfig, bytes: &[u8]) -> Result<System, jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::{SnapshotError, Snapshotable};
        let mut r = jsmt_snapshot::open(bytes, KIND_SYSTEM)?;

        let mut meta = r.section("meta")?;
        if meta.get_u64()? != config_fingerprint(&cfg) {
            return Err(SnapshotError::Corrupt(
                "checkpoint was taken on a different machine configuration",
            ));
        }
        let started = meta.get_bool()?;
        meta.expect_end()?;

        // Re-run the deterministic construction path for the recorded
        // roster: every setup-derived address, method id and corpus comes
        // back identical, so only mutable state needs restoring.
        let mut roster = r.section("roster")?;
        let nprocs = roster.get_len(2)?;
        let mut sys = System::new(cfg);
        for _ in 0..nprocs {
            let id = BenchmarkId::from_tag(roster.get_u8()?)
                .ok_or(SnapshotError::Corrupt("unknown benchmark tag"))?;
            let threads = roster.get_usize()?;
            if threads == 0 || threads > 1024 {
                return Err(SnapshotError::Corrupt("workload thread count out of range"));
            }
            let scale = roster.get_f64()?;
            if !scale.is_finite() || scale <= 0.0 {
                return Err(SnapshotError::Corrupt("workload scale out of range"));
            }
            let relaunch = roster.get_bool()?;
            let jvm_cfg = jsmt_jvm::JvmConfig::read_from(&mut roster)?;
            sys.jvm_override = Some(jvm_cfg);
            sys.add_process_inner(WorkloadSpec { id, threads, scale }, relaunch);
            sys.jvm_override = None;
        }
        roster.expect_end()?;

        sys.core.restore_state(&mut r.section("core")?)?;
        sys.world.sched.restore_state(&mut r.section("sched")?)?;
        sys.world.kcg.restore_state(&mut r.section("kcg")?)?;

        let mut tsec = r.section("threads")?;
        let nthreads = tsec.get_len(19)?;
        let mut threads = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            let role = restore_role(&mut tsec, &sys.world.procs)?;
            let stack_base = tsec.get_u64()?;
            let npending = tsec.get_len(10)?;
            let mut pending = VecDeque::with_capacity(npending);
            for _ in 0..npending {
                pending.push_back(Uop::read_from(&mut tsec)?);
            }
            threads.push(OsThread {
                role,
                pending,
                stack_base,
            });
        }
        tsec.expect_end()?;
        if sys.world.sched.nthreads() != nthreads {
            return Err(SnapshotError::Corrupt(
                "scheduler thread table disagrees with OS thread list",
            ));
        }
        sys.world.threads = threads;

        let mut psec = r.section("procs")?;
        for i in 0..nprocs {
            let mut one = psec.section(&format!("p{i}"))?;
            let p = &mut sys.world.procs[i];
            p.jvm.restore_state(&mut one.section("jvm")?)?;
            let mut ks = one.section("kernel")?;
            p.kernel.restore_state(&mut ks)?;
            ks.expect_end()?;
            let mut bs = one.section("book")?;
            p.restore_book(&mut bs, nthreads)?;
            bs.expect_end()?;
            one.expect_end()?;
        }
        psec.expect_end()?;

        sys.world.extra.restore_state(&mut r.section("extra")?)?;

        let mut ssec = r.section("sampler")?;
        sys.sampler = if ssec.get_bool()? {
            let mut s = Sampler::new(1);
            s.restore_state(&mut ssec)?;
            Some(s)
        } else {
            None
        };
        ssec.expect_end()?;
        r.expect_end()?;

        sys.started = started;
        sys.world.now = sys.core.cycles();
        Ok(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsmt_workloads::BenchmarkId;

    fn quick(id: BenchmarkId, threads: usize, ht: bool, scale: f64) -> RunReport {
        let mut sys = System::new(SystemConfig::p4(ht).with_max_cycles(400_000_000));
        sys.add_process(WorkloadSpec { id, threads, scale });
        sys.run_to_completion()
    }

    #[test]
    fn mpegaudio_runs_to_completion() {
        let r = quick(BenchmarkId::Mpegaudio, 1, false, 0.01);
        assert_eq!(r.processes[0].completions, 1);
        assert!(r.metrics.instructions > 10_000);
        assert!(r.metrics.ipc > 0.05, "ipc {}", r.metrics.ipc);
    }

    #[test]
    fn multithreaded_kernel_completes_under_ht() {
        let r = quick(BenchmarkId::MonteCarlo, 2, true, 0.01);
        assert_eq!(r.processes[0].completions, 1);
        assert!(
            r.metrics.dual_thread_fraction > 0.3,
            "two threads should co-run: dt = {}",
            r.metrics.dual_thread_fraction
        );
    }

    #[test]
    fn eight_threads_multiplex_on_two_contexts() {
        let r = quick(BenchmarkId::MonteCarlo, 8, true, 0.01);
        assert_eq!(r.processes[0].completions, 1);
        assert!(r.bank.total(Event::ContextSwitches) > 8);
    }

    #[test]
    fn gc_happens_for_allocation_heavy_benchmarks() {
        let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(400_000_000));
        sys.add_process_with_jvm(
            WorkloadSpec::single(BenchmarkId::Jack).with_scale(0.05),
            jsmt_jvm::JvmConfig::default()
                .with_heap(512 * 1024)
                .with_survival(0.15),
        );
        let r = sys.run_to_completion();
        assert!(r.processes[0].gc_count > 0, "jack must collect");
        assert!(r.bank.total(Event::GcCycles) > 0);
    }

    #[test]
    fn os_activity_is_counted() {
        let r = quick(BenchmarkId::Javac, 1, true, 0.03);
        assert!(r.bank.total(Event::Syscalls) > 0);
        assert!(r.bank.total(Event::OsCycles) > 0);
        assert!(r.metrics.os_cycle_fraction > 0.0);
        assert!(r.metrics.os_cycle_fraction < 0.5);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(BenchmarkId::Compress, 1, true, 0.01);
        let b = quick(BenchmarkId::Compress, 1, true, 0.01);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.bank, b.bank);
    }

    #[test]
    fn relaunch_accumulates_completions() {
        let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(400_000_000));
        sys.add_relaunching_process(WorkloadSpec::single(BenchmarkId::Mpegaudio).with_scale(0.003));
        let r = sys.run_until_completions(3);
        assert!(r.processes[0].completions >= 3);
        let durations = r.processes[0].durations();
        assert_eq!(durations.len() as u64, r.processes[0].completions);
        assert!(r.processes[0].mean_duration() > 0.0);
    }

    #[test]
    fn two_processes_coschedule() {
        let mut sys = System::new(SystemConfig::p4(true).with_max_cycles(400_000_000));
        sys.add_process(WorkloadSpec::single(BenchmarkId::Compress).with_scale(0.005));
        sys.add_process(WorkloadSpec::single(BenchmarkId::Db).with_scale(0.005));
        let r = sys.run_to_completion();
        assert_eq!(r.processes.len(), 2);
        assert!(r.processes.iter().all(|p| p.completions >= 1));
        assert!(
            r.metrics.dual_thread_fraction > 0.2,
            "dt {}",
            r.metrics.dual_thread_fraction
        );
    }
}

#[cfg(test)]
mod api_contract_tests {
    use super::*;
    use jsmt_workloads::BenchmarkId;

    #[test]
    #[should_panic(expected = "before the first cycle")]
    fn processes_cannot_join_a_running_machine() {
        let mut sys = System::new(SystemConfig::p4(true));
        sys.add_process(WorkloadSpec::single(BenchmarkId::Mpegaudio).with_scale(0.01));
        sys.step_cycle();
        sys.add_process(WorkloadSpec::single(BenchmarkId::Db).with_scale(0.01));
    }

    #[test]
    fn empty_machine_idles_safely() {
        let mut sys = System::new(SystemConfig::p4(true));
        for _ in 0..1000 {
            sys.step_cycle();
        }
        let r = sys.report();
        assert_eq!(r.metrics.instructions, 0);
        assert_eq!(r.cycles, 1000);
        assert!(r.processes.is_empty());
    }

    #[test]
    fn run_cycles_is_exact() {
        let mut sys = System::new(SystemConfig::p4(false));
        sys.add_process(WorkloadSpec::single(BenchmarkId::Compress).with_scale(0.5));
        let r = sys.run_cycles(12_345);
        assert_eq!(r.cycles, 12_345);
    }

    #[test]
    fn process_report_duration_math() {
        let p = ProcessReport {
            spec: WorkloadSpec::single(BenchmarkId::Db),
            completions: 4,
            completion_cycles: vec![100, 180, 260, 400],
            gc_count: 0,
            allocations: 0,
            compiles_done: 0,
        };
        assert_eq!(p.durations(), vec![100, 80, 80, 140]);
        // Trimmed mean drops the first (100) and last (140).
        assert_eq!(p.mean_duration(), 80.0);
    }

    #[test]
    fn mean_duration_small_samples_fall_back() {
        let p = ProcessReport {
            spec: WorkloadSpec::single(BenchmarkId::Db),
            completions: 2,
            completion_cycles: vec![100, 300],
            gc_count: 0,
            allocations: 0,
            compiles_done: 0,
        };
        assert_eq!(p.mean_duration(), 150.0);
        let empty = ProcessReport {
            spec: WorkloadSpec::single(BenchmarkId::Db),
            completions: 0,
            completion_cycles: vec![],
            gc_count: 0,
            allocations: 0,
            compiles_done: 0,
        };
        assert!(empty.mean_duration().is_nan());
    }
}
