//! Crash-tolerant multi-process shard execution for pairing grids.
//!
//! In-thread supervision ([`Engine::run_supervised`]) isolates panics,
//! but a fault that takes the *process* down — SIGKILL, `abort()`, an
//! OOM kill, a wedged attempt that never reaches a span boundary — still
//! loses the whole grid. This module moves each cell into a worker
//! *process*: the parent (`repro … --workers N`) forks `N` copies of its
//! own binary in `--shard-worker` mode and feeds them shards over a
//! line-oriented stdin/stdout protocol. A worker dying takes at most one
//! in-flight cell with it; the dispatcher detects the death (pipe EOF),
//! respawns capacity, and reassigns the shard with the same
//! deterministic seeded backoff schedule as in-process retries.
//!
//! # Protocol
//!
//! Parent → worker, one request per line:
//!
//! ```text
//! shard <stage> <index> <attempt> solo <bench>
//! shard <stage> <index> <attempt> pair <a> <b> <a_solo> <b_solo>
//! exit
//! ```
//!
//! Worker → parent, one reply per request:
//!
//! ```text
//! ok <index> <hex-value-bytes>
//! err <index> <kind> <component> <cycle> <hex-message>
//! ```
//!
//! Values are hex-encoded [`super::rescache`] cell encodings (solo: u64
//! LE; pair: the checkpoint outcome layout), so the reply survives any
//! byte content. Pair requests embed the solo baselines, keeping workers
//! stateless: a shard's result is a pure function of its request line
//! plus the experiment context, no matter which worker (or respawn) runs
//! it. That purity is what makes the merged grid **bit-identical** to a
//! serial run at any worker count.
//!
//! # Failure taxonomy
//!
//! * worker replies `err` — the cell failed *inside* a live worker
//!   (panic, livelock, cooperative deadline); attributed exactly as
//!   in-thread supervision would.
//! * pipe EOF with a shard in flight — the worker *process* died
//!   ([`FailureKind::WorkerDeath`]); its exit status goes in the
//!   message.
//! * per-shard wall-clock deadline expired — the parent SIGKILLs the
//!   worker and records [`FailureKind::Deadline`]; the kill's EOF is not
//!   double-counted as a worker death.
//! * a solo baseline exhausting its attempts cancels its dependent pair
//!   cells ([`FailureKind::Cancelled`], component `dependency`) without
//!   dispatching them.
//!
//! Exhausted cells become [`CellFailure`] records in the returned
//! [`SupervisedGrid`]; the caller renders partial results plus the
//! failure manifest and exits 3 — never a panic, never silently wrong
//! data. Shard-mode failures carry no crash bundle (the tail lives in
//! the dead worker); replaying the cell's fault scope in-process
//! (`--supervised --bundle-dir`) captures one when needed.
//!
//! When a persistent result cache is attached, the parent resolves cache
//! hits *before* enqueuing, so a warm rerun dispatches zero shards, and
//! workers write each computed cell through their own handle to the same
//! cache directory — a later run heals from whatever the fleet managed
//! to finish before dying.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::panic::{self, AssertUnwindSafe};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jsmt_cache::Cache;
use jsmt_workloads::BenchmarkId;

use super::pairing::{run_pair, PairOutcome, SupervisedGrid};
use super::rescache;
use super::supervise::{
    backoff_schedule, diagnose, install, silence_supervised_panics, CellFailure, Diagnosis,
    FailureKind, Supervision, SupervisorCfg,
};
use super::ExperimentCtx;
use crate::error::{ErrorKind, JsmtError};

/// Stage names match supervised in-process runs so fault-spec scopes
/// (`scope=pair-grid/compress+db`) hit identically in both modes.
const SOLO_STAGE: &str = "solo-baselines";
const PAIR_STAGE: &str = "pair-grid";

/// Dispatch policy for a sharded grid run.
#[derive(Debug, Clone)]
pub struct ShardCfg {
    /// Worker processes kept alive while shards are pending.
    pub workers: usize,
    /// Re-dispatches granted after a failed attempt (a shard runs at
    /// most `retries + 1` times, like [`SupervisorCfg::retries`]).
    pub retries: u32,
    /// Per-shard wall-clock deadline; on expiry the worker is SIGKILLed
    /// and the attempt recorded as [`FailureKind::Deadline`]. `None`
    /// disables the parent-side deadline (workers still run their own
    /// livelock watchdog).
    pub deadline: Option<Duration>,
    /// Backoff base for re-dispatch delays (see
    /// [`backoff_schedule`]); `Duration::ZERO` disables sleeping.
    pub backoff_base: Duration,
    /// Upper clamp on any single re-dispatch delay.
    pub backoff_cap: Duration,
    /// Command line that starts one worker (`argv[0]` plus args); the
    /// CLI passes its own binary with `--shard-worker` and matching
    /// context/fault/cache flags.
    pub worker_argv: Vec<String>,
    /// Persistent result cache; hits skip dispatch entirely.
    pub cache: Option<Arc<Cache>>,
}

impl Default for ShardCfg {
    fn default() -> Self {
        let sup = SupervisorCfg::default();
        ShardCfg {
            workers: 2,
            retries: sup.retries,
            deadline: None,
            backoff_base: sup.backoff_base,
            backoff_cap: sup.backoff_cap,
            worker_argv: Vec::new(),
            cache: None,
        }
    }
}

/// One dispatchable unit of work.
#[derive(Debug, Clone)]
struct ShardJob {
    /// Grid-level index (solo: roster position; pair: `i * n + j`) —
    /// recorded in the manifest, echoed in replies.
    index: usize,
    /// Cell label (`jess`, `compress+db`), the fault-scope suffix.
    label: String,
    /// Request tail after `shard <stage> <index> <attempt>`.
    spec: String,
}

/// 9 solo baselines, then 81 pair cells, dispatched over `cfg.workers`
/// worker processes. Returns the same [`SupervisedGrid`] shape as
/// [`super::pair_matrix_supervised`]: complete grids convert via
/// [`SupervisedGrid::into_grid`] into output bit-identical to a serial
/// run; partial grids carry the cells that finished plus one
/// [`CellFailure`] per exhausted cell.
///
/// `Err` is reserved for dispatcher-level faults (cannot spawn any
/// worker, malformed worker replies); cell-level trouble never escapes
/// as an error.
pub fn pair_matrix_sharded(
    ctx: &ExperimentCtx,
    cfg: &ShardCfg,
) -> Result<SupervisedGrid, JsmtError> {
    if cfg.worker_argv.is_empty() {
        return Err(JsmtError::new(
            ErrorKind::Experiment,
            "shard dispatch needs a worker command line",
        ));
    }
    let benchmarks = BenchmarkId::SINGLE_THREADED.to_vec();
    let n = benchmarks.len();
    let mut pool = Pool::new(cfg);
    let mut failures: Vec<CellFailure> = Vec::new();

    // Stage 1: solo baselines. Cache hits resolve here; the rest fan
    // out to workers.
    let mut solo_vals: Vec<Option<u64>> = vec![None; n];
    let mut solo_jobs: Vec<ShardJob> = Vec::new();
    for (i, &b) in benchmarks.iter().enumerate() {
        if let Some(cache) = &cfg.cache {
            if let Some(bytes) = cache.lookup(&rescache::solo_key(b, ctx)) {
                if let Some(v) = rescache::decode_solo(&bytes) {
                    solo_vals[i] = Some(v);
                    continue;
                }
            }
        }
        solo_jobs.push(ShardJob {
            index: i,
            label: b.name().to_string(),
            spec: format!("solo {}", b.name()),
        });
    }
    for (job, res) in solo_jobs
        .iter()
        .zip(pool.run_stage(SOLO_STAGE, ctx, &solo_jobs)?)
    {
        match res {
            Ok(bytes) => match rescache::decode_solo(&bytes) {
                Some(v) => solo_vals[job.index] = Some(v),
                None => {
                    return Err(JsmtError::new(
                        ErrorKind::Experiment,
                        format!(
                            "shard worker returned a malformed solo value for {}",
                            job.label
                        ),
                    ))
                }
            },
            Err(f) => failures.push(f),
        }
    }

    // Stage 2: the pair grid. Cells whose baselines failed are
    // finalized as cancelled without dispatch.
    let mut cells: BTreeMap<usize, PairOutcome> = BTreeMap::new();
    let mut pair_jobs: Vec<ShardJob> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let (a, b) = (benchmarks[i], benchmarks[j]);
            let index = i * n + j;
            let label = format!("{}+{}", a.name(), b.name());
            let (Some(a_solo), Some(b_solo)) = (solo_vals[i], solo_vals[j]) else {
                failures.push(CellFailure {
                    stage: PAIR_STAGE.to_string(),
                    label,
                    index,
                    kind: FailureKind::Cancelled,
                    component: "dependency".to_string(),
                    cycle: 0,
                    message: "solo baseline unavailable; pair cell not dispatched".to_string(),
                    attempts: 0,
                    backoff_ms: Vec::new(),
                    bundle: None,
                });
                continue;
            };
            if let Some(cache) = &cfg.cache {
                if let Some(bytes) = cache.lookup(&rescache::pair_key(a, b, ctx)) {
                    if let Some(o) = rescache::decode_pair(&bytes) {
                        if o.a == a && o.b == b {
                            cells.insert(index, o);
                            continue;
                        }
                    }
                }
            }
            pair_jobs.push(ShardJob {
                index,
                label,
                spec: format!("pair {} {} {a_solo} {b_solo}", a.name(), b.name()),
            });
        }
    }
    for (job, res) in pool
        .run_stage(PAIR_STAGE, ctx, &pair_jobs)?
        .into_iter()
        .enumerate()
        .map(|(k, r)| (&pair_jobs[k], r))
    {
        match res {
            Ok(bytes) => match rescache::decode_pair(&bytes) {
                Some(o) => {
                    cells.insert(job.index, o);
                }
                None => {
                    return Err(JsmtError::new(
                        ErrorKind::Experiment,
                        format!(
                            "shard worker returned a malformed pair value for {}",
                            job.label
                        ),
                    ))
                }
            },
            Err(f) => failures.push(f),
        }
    }
    pool.shutdown();

    // Match the supervised manifest ordering: solo failures by index,
    // then pair failures by index (completion order here depends on
    // worker scheduling).
    failures.sort_by_key(|f| (if f.stage == SOLO_STAGE { 0usize } else { 1 }, f.index));
    Ok(SupervisedGrid {
        benchmarks,
        cells,
        failures,
    })
}

/// A live worker process and what it is doing.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    /// The in-flight shard, if any: `(slot, attempt, deadline)`.
    busy: Option<(usize, u32, Option<Instant>)>,
    /// Set when the parent killed this worker for a deadline, so its
    /// EOF is attributed as [`FailureKind::Deadline`], not worker death.
    timed_out: bool,
}

/// A shard waiting (or re-waiting) for dispatch.
struct Pending {
    slot: usize,
    attempt: u32,
    not_before: Instant,
}

/// The worker pool: spawns, dispatches, reaps, respawns. Workers
/// persist across stages; uids (not PIDs) key the map so a reply racing
/// a respawn can never be credited to the wrong incarnation.
struct Pool<'a> {
    cfg: &'a ShardCfg,
    workers: HashMap<u64, Worker>,
    next_uid: u64,
    tx: Sender<(u64, Option<String>)>,
    rx: Receiver<(u64, Option<String>)>,
}

impl<'a> Pool<'a> {
    fn new(cfg: &'a ShardCfg) -> Pool<'a> {
        let (tx, rx) = std::sync::mpsc::channel();
        Pool {
            cfg,
            workers: HashMap::new(),
            next_uid: 0,
            tx,
            rx,
        }
    }

    fn spawn_worker(&mut self) -> Result<(), JsmtError> {
        let argv = &self.cfg.worker_argv;
        let child = Command::new(&argv[0])
            .args(&argv[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn();
        let mut child = match child {
            Ok(c) => c,
            Err(e) => {
                return Err(JsmtError::new(
                    ErrorKind::Io,
                    format!("spawning shard worker '{}': {e}", argv[0]),
                ))
            }
        };
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let uid = self.next_uid;
        self.next_uid += 1;
        let tx = self.tx.clone();
        // One reader thread per worker; EOF (worker exit or kill) is
        // reported as a `None` line. The thread ends at EOF, so no
        // join bookkeeping is needed.
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send((uid, Some(line))).is_err() {
                    return;
                }
            }
            let _ = tx.send((uid, None));
        });
        self.workers.insert(
            uid,
            Worker {
                child,
                stdin,
                busy: None,
                timed_out: false,
            },
        );
        Ok(())
    }

    /// Run one stage of shards to completion (success or exhausted
    /// attempts per shard). Results come back in `jobs` order.
    fn run_stage(
        &mut self,
        stage: &str,
        ctx: &ExperimentCtx,
        jobs: &[ShardJob],
    ) -> Result<Vec<Result<Vec<u8>, CellFailure>>, JsmtError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let attempts = self.cfg.retries + 1;
        let schedules: Vec<Vec<Duration>> = jobs
            .iter()
            .map(|j| {
                backoff_schedule(
                    ctx.seed,
                    &format!("{stage}/{}", j.label),
                    attempts,
                    self.cfg.backoff_base,
                    self.cfg.backoff_cap,
                )
            })
            .collect();
        let mut results: Vec<Option<Result<Vec<u8>, CellFailure>>> =
            jobs.iter().map(|_| None).collect();
        let mut pending: Vec<Pending> = (0..jobs.len())
            .map(|slot| Pending {
                slot,
                attempt: 0,
                not_before: Instant::now(),
            })
            .collect();
        let mut done = 0usize;

        while done < jobs.len() {
            // Keep capacity: enough live workers for the remaining
            // work, up to the configured fleet size.
            let in_flight = self.workers.values().filter(|w| w.busy.is_some()).count();
            let target = self.cfg.workers.max(1).min(pending.len() + in_flight);
            while self.workers.len() < target {
                match self.spawn_worker() {
                    Ok(()) => {}
                    Err(e) if self.workers.is_empty() => return Err(e),
                    Err(e) => {
                        // Degraded but alive: finish on the fleet we have.
                        eprintln!(
                            "# shard: respawn failed ({e}); continuing with {} worker(s)",
                            self.workers.len()
                        );
                        break;
                    }
                }
            }

            // Dispatch every ready shard to an idle worker.
            let now = Instant::now();
            while let Some(pi) = pending.iter().position(|p| p.not_before <= now) {
                let Some(uid) = self
                    .workers
                    .iter()
                    .find(|(_, w)| w.busy.is_none())
                    .map(|(&uid, _)| uid)
                else {
                    break;
                };
                let p = pending.swap_remove(pi);
                let job = &jobs[p.slot];
                let line = format!("shard {stage} {} {} {}\n", job.index, p.attempt, job.spec);
                let w = self.workers.get_mut(&uid).expect("idle worker");
                if w.stdin
                    .write_all(line.as_bytes())
                    .and_then(|()| w.stdin.flush())
                    .is_err()
                {
                    // Worker died before accepting the shard: requeue,
                    // end this dispatch round (so the same dead worker
                    // is not re-picked), and let its EOF retire the
                    // worker entry.
                    pending.push(p);
                    w.busy = None;
                    break;
                }
                w.busy = Some((p.slot, p.attempt, self.cfg.deadline.map(|d| now + d)));
            }

            // Enforce per-shard deadlines: SIGKILL, then attribute the
            // resulting EOF as a deadline rather than a worker death.
            for w in self.workers.values_mut() {
                if let Some((_, _, Some(expiry))) = w.busy {
                    if !w.timed_out && Instant::now() >= expiry {
                        w.timed_out = true;
                        let _ = w.child.kill();
                    }
                }
            }

            // Drain worker events.
            match self.rx.recv_timeout(Duration::from_millis(5)) {
                Ok((uid, Some(line))) => self.on_reply(
                    uid,
                    &line,
                    jobs,
                    attempts,
                    &schedules,
                    stage,
                    &mut results,
                    &mut pending,
                    &mut done,
                )?,
                Ok((uid, None)) => self.on_eof(
                    uid,
                    jobs,
                    attempts,
                    &schedules,
                    stage,
                    &mut results,
                    &mut pending,
                    &mut done,
                ),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("pool holds a sender"),
            }
        }
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r.expect("stage ran to done"));
        }
        Ok(out)
    }

    /// A reply line arrived from worker `uid`.
    #[allow(clippy::too_many_arguments)]
    fn on_reply(
        &mut self,
        uid: u64,
        line: &str,
        jobs: &[ShardJob],
        attempts: u32,
        schedules: &[Vec<Duration>],
        stage: &str,
        results: &mut [Option<Result<Vec<u8>, CellFailure>>],
        pending: &mut Vec<Pending>,
        done: &mut usize,
    ) -> Result<(), JsmtError> {
        let Some(w) = self.workers.get_mut(&uid) else {
            return Ok(()); // reply from an already-retired worker
        };
        let Some((slot, attempt, _)) = w.busy.take() else {
            return Ok(()); // stray line from an idle worker
        };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let bad = || {
            JsmtError::new(
                ErrorKind::Experiment,
                format!("malformed shard worker reply: {line:?}"),
            )
        };
        match tokens.as_slice() {
            ["ok", index, hex] => {
                if index.parse::<usize>().ok() != Some(jobs[slot].index) {
                    return Err(bad());
                }
                let bytes = from_hex(hex).ok_or_else(bad)?;
                results[slot] = Some(Ok(bytes));
                *done += 1;
            }
            ["err", index, kind, component, cycle, hexmsg] => {
                if index.parse::<usize>().ok() != Some(jobs[slot].index) {
                    return Err(bad());
                }
                let d = Diagnosis {
                    kind: FailureKind::parse(kind).ok_or_else(bad)?,
                    component: (*component).to_string(),
                    cycle: cycle.parse().map_err(|_| bad())?,
                    message: String::from_utf8_lossy(&from_hex(hexmsg).ok_or_else(bad)?)
                        .into_owned(),
                };
                attempt_failed(
                    slot, attempt, d, jobs, attempts, schedules, stage, results, pending, done,
                );
            }
            _ => return Err(bad()),
        }
        Ok(())
    }

    /// Worker `uid`'s stdout closed: the process exited or was killed.
    #[allow(clippy::too_many_arguments)]
    fn on_eof(
        &mut self,
        uid: u64,
        jobs: &[ShardJob],
        attempts: u32,
        schedules: &[Vec<Duration>],
        stage: &str,
        results: &mut [Option<Result<Vec<u8>, CellFailure>>],
        pending: &mut Vec<Pending>,
        done: &mut usize,
    ) {
        let Some(mut w) = self.workers.remove(&uid) else {
            return;
        };
        let status = w
            .child
            .wait()
            .map(|s| s.to_string())
            .unwrap_or_else(|e| format!("wait failed: {e}"));
        let Some((slot, attempt, _)) = w.busy.take() else {
            return; // idle worker exited; capacity is rebuilt next loop
        };
        let d = if w.timed_out {
            Diagnosis {
                kind: FailureKind::Deadline,
                component: "worker".to_string(),
                cycle: 0,
                message: format!(
                    "shard exceeded its wall-clock deadline; worker killed ({status})"
                ),
            }
        } else {
            Diagnosis {
                kind: FailureKind::WorkerDeath,
                component: "worker".to_string(),
                cycle: 0,
                message: format!("worker process died mid-shard ({status})"),
            }
        };
        attempt_failed(
            slot, attempt, d, jobs, attempts, schedules, stage, results, pending, done,
        );
    }

    /// Politely stop the fleet: `exit` + closed stdin ends the worker
    /// loop; waiting reaps the processes.
    fn shutdown(&mut self) {
        for w in self.workers.values_mut() {
            let _ = w.stdin.write_all(b"exit\n");
            let _ = w.stdin.flush();
        }
        for (_, mut w) in self.workers.drain() {
            drop(w.stdin);
            let _ = w.child.wait();
        }
    }
}

impl Drop for Pool<'_> {
    fn drop(&mut self) {
        // Error paths reach here with workers still alive; don't leak
        // them past the dispatcher.
        for w in self.workers.values_mut() {
            let _ = w.child.kill();
        }
        for (_, mut w) in self.workers.drain() {
            let _ = w.child.wait();
        }
    }
}

/// Record one failed attempt: re-queue with the shard's deterministic
/// backoff delay, or finalize a [`CellFailure`] when attempts are
/// exhausted.
#[allow(clippy::too_many_arguments)]
fn attempt_failed(
    slot: usize,
    attempt: u32,
    d: Diagnosis,
    jobs: &[ShardJob],
    attempts: u32,
    schedules: &[Vec<Duration>],
    stage: &str,
    results: &mut [Option<Result<Vec<u8>, CellFailure>>],
    pending: &mut Vec<Pending>,
    done: &mut usize,
) {
    if attempt + 1 < attempts {
        let delay = schedules[slot]
            .get(attempt as usize)
            .copied()
            .unwrap_or(Duration::ZERO);
        pending.push(Pending {
            slot,
            attempt: attempt + 1,
            not_before: Instant::now() + delay,
        });
    } else {
        results[slot] = Some(Err(CellFailure {
            stage: stage.to_string(),
            label: jobs[slot].label.clone(),
            index: jobs[slot].index,
            kind: d.kind,
            component: d.component,
            cycle: d.cycle,
            message: d.message,
            attempts,
            backoff_ms: schedules[slot]
                .iter()
                .map(|d| d.as_millis() as u64)
                .collect(),
            bundle: None,
        }));
        *done += 1;
    }
}

/// The worker side: serve shard requests from stdin until `exit` or
/// EOF. Each shard runs under the same supervision machinery as an
/// in-process cell — fault scope, worker-kill checkpoint, livelock
/// watchdog, `catch_unwind` + [`diagnose`] attribution — so a fault
/// spec behaves identically whether the cell runs in a thread or a
/// worker process. With a cache attached, computed cells are written
/// through it (keyed identically to the parent's lookups).
pub fn shard_worker_main(
    ctx: &ExperimentCtx,
    cache: Option<Arc<Cache>>,
    livelock_cycles: u64,
) -> Result<(), JsmtError> {
    silence_supervised_panics();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(JsmtError::from)?;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            [] => continue,
            ["exit"] => break,
            ["shard", stage, index, attempt, spec @ ..] => {
                let (Ok(index), Ok(attempt)) = (index.parse::<usize>(), attempt.parse::<u32>())
                else {
                    return Err(bad_request(&line));
                };
                let reply = serve_shard(
                    stage,
                    index,
                    attempt,
                    spec,
                    ctx,
                    cache.as_deref(),
                    livelock_cycles,
                )
                .ok_or_else(|| bad_request(&line))?;
                out.write_all(reply.as_bytes()).map_err(JsmtError::from)?;
                out.flush().map_err(JsmtError::from)?;
            }
            _ => return Err(bad_request(&line)),
        }
    }
    Ok(())
}

fn bad_request(line: &str) -> JsmtError {
    JsmtError::new(
        ErrorKind::Experiment,
        format!("malformed shard request: {line:?}"),
    )
}

/// Run one shard under supervision and format the reply line. `None`
/// means the request itself was malformed (a protocol error, not a cell
/// failure).
#[allow(clippy::too_many_arguments)]
fn serve_shard(
    stage: &str,
    index: usize,
    attempt: u32,
    spec: &[&str],
    ctx: &ExperimentCtx,
    cache: Option<&Cache>,
    livelock_cycles: u64,
) -> Option<String> {
    let label = match spec {
        ["solo", name] => (*name).to_string(),
        ["pair", a, b, _, _] => format!("{a}+{b}"),
        _ => return None,
    };
    let scope_label = format!("{stage}/{label}");
    let sup = Supervision::new(&SupervisorCfg {
        livelock_cycles,
        ..SupervisorCfg::default()
    });
    let outcome = {
        let _scope = jsmt_faults::enter_scope(&scope_label, attempt);
        let _guard = install(sup.clone());
        panic::catch_unwind(AssertUnwindSafe(|| {
            // The dispatcher's worker-kill drill point: a matching
            // `worker-kill` clause aborts the whole process here, at
            // shard pickup.
            jsmt_faults::check_worker_kill();
            jsmt_faults::check_worker();
            compute_shard(spec, ctx, cache)
        }))
    };
    Some(match outcome {
        Ok(Some(bytes)) => format!("ok {index} {}\n", to_hex(&bytes)),
        Ok(None) => return None,
        Err(payload) => {
            let d = diagnose(payload, &sup);
            format!(
                "err {index} {} {} {} {}\n",
                d.kind.name(),
                // Components are single tokens today; keep the protocol
                // safe if one ever grows whitespace.
                d.component.replace(char::is_whitespace, "-"),
                d.cycle,
                to_hex(d.message.as_bytes()),
            )
        }
    })
}

/// Decode and run one shard spec; `None` = malformed spec.
fn compute_shard(spec: &[&str], ctx: &ExperimentCtx, cache: Option<&Cache>) -> Option<Vec<u8>> {
    match spec {
        ["solo", name] => {
            let id = BenchmarkId::parse(name)?;
            let cycles = match cache {
                Some(c) => rescache::cached_solo_baseline(c, id, ctx),
                None => super::solo_baseline_cycles(id, ctx),
            };
            Some(rescache::encode_solo(cycles))
        }
        ["pair", a, b, a_solo, b_solo] => {
            let a = BenchmarkId::parse(a)?;
            let b = BenchmarkId::parse(b)?;
            let a_solo: u64 = a_solo.parse().ok()?;
            let b_solo: u64 = b_solo.parse().ok()?;
            let o = match cache {
                Some(c) => rescache::cached_run_pair(c, a, b, a_solo, b_solo, ctx),
                None => run_pair(a, b, a_solo, b_solo, ctx),
            };
            Some(rescache::encode_pair(&o))
        }
        _ => None,
    }
}

fn to_hex(bytes: &[u8]) -> String {
    // An empty payload still needs a token on the line.
    if bytes.is_empty() {
        return "-".to_string();
    }
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s == "-" {
        return Some(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).ok()?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        for payload in [&b""[..], b"\x00", b"hello", &[0xff, 0x00, 0x7f]] {
            assert_eq!(from_hex(&to_hex(payload)).as_deref(), Some(payload));
        }
        assert_eq!(from_hex("xyz"), None);
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("-"), Some(Vec::new()));
    }

    #[test]
    fn compute_shard_matches_direct_calls() {
        let ctx = ExperimentCtx {
            scale: 0.02,
            repeats: 2,
            seed: 0xBEEF,
        };
        let direct = super::super::solo_baseline_cycles(BenchmarkId::Mpegaudio, &ctx);
        let via = compute_shard(&["solo", "mpegaudio"], &ctx, None).expect("valid spec");
        assert_eq!(rescache::decode_solo(&via), Some(direct));

        let pair_spec = [
            "pair",
            "compress",
            "db",
            &direct.to_string()[..],
            &direct.to_string()[..],
        ];
        let bytes = compute_shard(&pair_spec, &ctx, None).expect("valid spec");
        let o = rescache::decode_pair(&bytes).expect("decodable");
        let want = run_pair(BenchmarkId::Compress, BenchmarkId::Db, direct, direct, &ctx);
        assert_eq!(o.combined.to_bits(), want.combined.to_bits());
        assert_eq!(o.completions, want.completions);

        assert_eq!(
            compute_shard(&["solo", "not-a-benchmark"], &ctx, None),
            None
        );
        assert_eq!(compute_shard(&["pair", "db"], &ctx, None), None);
    }

    #[test]
    fn serve_shard_reports_panics_as_err_lines() {
        let ctx = ExperimentCtx {
            scale: 0.02,
            repeats: 2,
            seed: 0xBEEF,
        };
        // A malformed spec is a protocol error, not a reply.
        assert_eq!(
            serve_shard("pair-grid", 0, 0, &["bogus"], &ctx, None, 0),
            None
        );
        // A healthy solo produces an ok line carrying the exact bytes.
        let reply = serve_shard("solo-baselines", 3, 0, &["solo", "jess"], &ctx, None, 0)
            .expect("well-formed");
        let mut it = reply.split_whitespace();
        assert_eq!(it.next(), Some("ok"));
        assert_eq!(it.next(), Some("3"));
        let bytes = from_hex(it.next().expect("payload")).expect("hex");
        assert_eq!(
            rescache::decode_solo(&bytes),
            Some(super::super::solo_baseline_cycles(BenchmarkId::Jess, &ctx))
        );
    }
}
