//! §4.1 — detailed characterization of the multithreaded benchmarks:
//! Table 2 and Figures 1–7.

use jsmt_perfmon::Event;
use jsmt_report::{fmt_num, fmt_pct, series_chart, Table};
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

use super::{solo_run, Engine, ExperimentCtx};
use crate::RunReport;

/// One measured configuration of a multithreaded benchmark.
#[derive(Debug, Clone)]
pub struct MtPoint {
    /// The benchmark.
    pub id: BenchmarkId,
    /// Software threads.
    pub threads: usize,
    /// Hyper-Threading enabled.
    pub ht: bool,
    /// The full run report.
    pub report: RunReport,
}

impl MtPoint {
    /// Paper-style label, e.g. `MolDyn02`.
    pub fn label(&self) -> String {
        format!("{}{:02}", self.id.name(), self.threads)
    }
}

/// Run the four multithreaded benchmarks at the given thread counts and
/// HT settings (the data source shared by Table 2 and Figures 1–7).
/// Serial.
pub fn characterize_mt(
    threads_list: &[usize],
    ht_list: &[bool],
    ctx: &ExperimentCtx,
) -> Vec<MtPoint> {
    characterize_mt_on(&Engine::serial(), threads_list, ht_list, ctx)
}

/// The multithreaded characterization on `engine`: one job per
/// `(benchmark, threads, ht)` cell, collected in the nested-loop order
/// of the serial driver.
pub fn characterize_mt_on(
    engine: &Engine,
    threads_list: &[usize],
    ht_list: &[bool],
    ctx: &ExperimentCtx,
) -> Vec<MtPoint> {
    let cells: Vec<(BenchmarkId, usize, bool)> = BenchmarkId::MULTITHREADED
        .iter()
        .flat_map(|&id| {
            threads_list
                .iter()
                .flat_map(move |&threads| ht_list.iter().map(move |&ht| (id, threads, ht)))
        })
        .collect();
    engine.run("characterize-mt", cells, |&(id, threads, ht)| {
        let spec = WorkloadSpec::threaded(id, threads).with_scale(ctx.scale);
        let report = solo_run(spec, ht, ctx.seed);
        MtPoint {
            id,
            threads,
            ht,
            report,
        }
    })
}

/// Render Table 2: CPI, OS-cycle % and dual-thread-mode % for the
/// multithreaded benchmarks on the HT-enabled machine.
pub fn render_table2(points: &[MtPoint]) -> String {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "Thread #".into(),
        "CPI".into(),
        "OS cycle %".into(),
        "CPU DT mode %".into(),
    ])
    .with_title(
        "Table 2. Characterization of multithreaded benchmarks on Hyper-Threading processor",
    );
    for p in points.iter().filter(|p| p.ht) {
        let m = &p.report.metrics;
        t.row(vec![
            p.id.name().to_string(),
            format!("{}", p.threads),
            fmt_num(m.cpi),
            fmt_pct(m.os_cycle_fraction),
            fmt_pct(m.dual_thread_fraction),
        ]);
    }
    t.render()
}

/// Render Figure 1: IPC with HT disabled vs enabled.
pub fn render_fig1(points: &[MtPoint]) -> String {
    let rows = paired_rows(points, |p| p.report.metrics.ipc);
    series_chart(
        "Figure 1. IPCs of multithreaded benchmarks on Pentium 4 processors",
        &["HT-disabled", "HT-enabled"],
        &rows,
    )
}

/// Render Figure 2: the retirement profile (fraction of cycles retiring
/// 0/1/2/3 µops), HT off vs on.
pub fn render_fig2(points: &[MtPoint]) -> String {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "HT".into(),
        "0 uops".into(),
        "1 uop".into(),
        "2 uops".into(),
        "3 uops".into(),
    ])
    .with_title("Figure 2. Instruction retirement profile");
    for p in points {
        let r = &p.report.metrics.retirement;
        t.row(vec![
            p.label(),
            if p.ht { "on" } else { "off" }.into(),
            fmt_pct(r.retire0),
            fmt_pct(r.retire1),
            fmt_pct(r.retire2),
            fmt_pct(r.retire3),
        ]);
    }
    t.render()
}

/// Which per-kilo-instruction miss metric a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpkiKind {
    /// Figure 3: trace cache misses per 1,000 instructions.
    TraceCache,
    /// Figure 4: L1 data cache misses per 1,000 instructions.
    L1d,
    /// Figure 5: L2 misses per 1,000 instructions.
    L2,
    /// Figure 6: ITLB misses per 1,000 instructions.
    Itlb,
    /// Figure 7: BTB miss *ratio* (not per-KI).
    BtbRatio,
}

impl MpkiKind {
    /// The figure's title line.
    pub fn title(self) -> &'static str {
        match self {
            MpkiKind::TraceCache => "Figure 3. Trace cache misses per 1,000 instructions",
            MpkiKind::L1d => "Figure 4. L1 data cache misses per 1,000 instructions",
            MpkiKind::L2 => "Figure 5. L2 cache misses per 1,000 instructions",
            MpkiKind::Itlb => "Figure 6. Instruction TLB (ITLB) misses per 1,000 instructions",
            MpkiKind::BtbRatio => "Figure 7. BTB miss ratios",
        }
    }

    /// Extract the metric from a point.
    pub fn value(self, p: &MtPoint) -> f64 {
        let m = &p.report.metrics;
        match self {
            MpkiKind::TraceCache => m.tc_mpki,
            MpkiKind::L1d => m.l1d_mpki,
            MpkiKind::L2 => m.l2_mpki,
            MpkiKind::Itlb => m.itlb_mpki,
            MpkiKind::BtbRatio => m.btb_miss_ratio,
        }
    }
}

/// Render Figures 3–7 (pick the metric with `kind`).
pub fn render_fig_mpki(points: &[MtPoint], kind: MpkiKind) -> String {
    let rows = paired_rows(points, |p| kind.value(p));
    series_chart(kind.title(), &["HT-disabled", "HT-enabled"], &rows)
}

/// Group points into (label, [off, on]) rows for the two-series figures.
fn paired_rows(points: &[MtPoint], f: impl Fn(&MtPoint) -> f64) -> Vec<(String, Vec<f64>)> {
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut keys: Vec<(BenchmarkId, usize)> = Vec::new();
    for p in points {
        let key = (p.id, p.threads);
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    for (id, threads) in keys {
        let find = |ht: bool| {
            points
                .iter()
                .find(|p| p.id == id && p.threads == threads && p.ht == ht)
                .map(&f)
        };
        if let (Some(off), Some(on)) = (find(false), find(true)) {
            rows.push((format!("{}{:02}", id.name(), threads), vec![off, on]));
        }
    }
    rows
}

/// The `GcCycles`-based share of execution attributed to the collector —
/// used by the narrative sections of the report.
pub fn gc_cycle_fraction(report: &RunReport) -> f64 {
    let active = report.bank.total(Event::ActiveCycles).max(1);
    report.bank.total(Event::GcCycles) as f64 / active as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<MtPoint> {
        let ctx = ExperimentCtx {
            scale: 0.02,
            ..ExperimentCtx::quick()
        };
        let mut pts = Vec::new();
        for &id in &[BenchmarkId::MonteCarlo] {
            for &ht in &[false, true] {
                let spec = WorkloadSpec::threaded(id, 2).with_scale(ctx.scale);
                let report = solo_run(spec, ht, ctx.seed);
                pts.push(MtPoint {
                    id,
                    threads: 2,
                    ht,
                    report,
                });
            }
        }
        pts
    }

    #[test]
    fn renders_contain_labels_and_values() {
        let pts = points();
        let t2 = render_table2(&pts);
        assert!(t2.contains("MonteCarlo"));
        assert!(t2.contains("CPI"));
        let f1 = render_fig1(&pts);
        assert!(f1.contains("HT-enabled"));
        assert!(f1.contains("MonteCarlo02"));
        let f2 = render_fig2(&pts);
        assert!(f2.contains("0 uops"));
        for kind in [
            MpkiKind::TraceCache,
            MpkiKind::L1d,
            MpkiKind::L2,
            MpkiKind::Itlb,
            MpkiKind::BtbRatio,
        ] {
            let s = render_fig_mpki(&pts, kind);
            assert!(s.contains("Figure"), "{kind:?}");
        }
    }

    #[test]
    fn labels_match_paper_style() {
        let pts = points();
        assert_eq!(pts[0].label(), "MonteCarlo02");
    }
}
