//! The litmus interleaving-assertion harness.
//!
//! Runs each litmus shape (see `jsmt_workloads::litmus`) across a seed
//! sweep on the full simulated machine — real scheduler, real monitors,
//! real exec tiers — and checks every observed outcome label against the
//! shape's *allowed-outcomes table*. A label outside the table is a
//! concurrency-correctness failure of the simulator itself (a monitor
//! that lost a wakeup, a tier that replayed stale state, a scheduler
//! that double-bound a thread), so the supervised variant turns it into
//! a panic and the PR 5 supervisor seals it into a replayable crash
//! bundle.
//!
//! Seeding: sweep point `i` perturbs the workload *scale* by `i` ULP-ish
//! steps (the litmus kernels derive their RNG streams from the scale's
//! bit pattern) and the machine seed by a splitmix step, so every point
//! is a genuinely different interleaving trial while staying a pure
//! function of `(ctx, shape, i)` — which is what makes sweeps
//! bit-identical across worker counts, exec tiers, and resume.

use std::collections::BTreeMap;

use jsmt_workloads::{BenchmarkId, WorkloadSpec};

use super::supervise::CellFailure;
use super::{Engine, ExperimentCtx};
use crate::{System, SystemConfig};

/// Fault-injection target name of the observation corruptor (see
/// [`jsmt_faults::corrupt_armed`]): arming
/// `corrupt,target=litmus-observation` makes the harness append a
/// deliberately forbidden element to the observed label — the end-to-end
/// drill for the forbidden-outcome → crash-bundle path.
pub const LITMUS_CORRUPT_TARGET: &str = "litmus-observation";

/// One litmus run: shape, sweep index, observed label, and the
/// synchronization counters that label was produced under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusPoint {
    /// The litmus shape.
    pub shape: BenchmarkId,
    /// Sweep index (the "seed").
    pub seed: u64,
    /// The observed outcome label (`+`-joined elements).
    pub label: String,
    /// Machine cycles to completion.
    pub cycles: u64,
    /// Scheduler block events.
    pub blocks: u64,
    /// Scheduler wake events.
    pub wakes: u64,
    /// `Object.wait` calls.
    pub waits: u64,
    /// Threads notified.
    pub notifies: u64,
    /// Contended monitor acquisitions.
    pub contended: u64,
}

/// A completed sweep of one shape.
#[derive(Debug, Clone)]
pub struct LitmusSweep {
    /// The shape swept.
    pub shape: BenchmarkId,
    /// One point per seed, in seed order.
    pub points: Vec<LitmusPoint>,
    /// Occurrences of each label *element* across the sweep.
    pub histogram: BTreeMap<String, u64>,
    /// Seeds whose label contained an element outside the allowed table,
    /// with the offending element.
    pub forbidden: Vec<(u64, String)>,
}

impl LitmusSweep {
    /// Whether every observed outcome was in the allowed table.
    pub fn is_clean(&self) -> bool {
        self.forbidden.is_empty()
    }
}

/// The allowed-outcomes table: every label *element* a correct simulator
/// may produce for `shape`. Anything else is a correctness failure.
///
/// # Panics
///
/// Panics when `shape` is not a litmus shape.
pub fn allowed_outcomes(shape: BenchmarkId) -> &'static [&'static str] {
    match shape {
        // Elements are "<r_flag><r_data>": seeing the flag but not the
        // data ("10") would break message passing.
        BenchmarkId::LitmusMp => &["00", "01", "11"],
        // Elements are "<ra><rb>": both loads missing both stores ("00")
        // is the store-buffer relaxation, forbidden under SC.
        BenchmarkId::LitmusSb => &["01", "10", "11"],
        // One composite element; any contention bucket is fine, the
        // ok-flags are not negotiable.
        BenchmarkId::LitmusHandoff => {
            &["sum=ok,mx=ok,c=0", "sum=ok,mx=ok,c=lo", "sum=ok,mx=ok,c=hi"]
        }
        // Any thread may be the last arriver; phase agreement must hold.
        BenchmarkId::LitmusConvoy => &["l0", "l1", "l2", "viol=0"],
        // Consumers only ever see full tokens, counts balance, any
        // amount of real waiting is fine.
        BenchmarkId::LitmusPingPong => &["v=1", "bal=ok", "w=0", "w=lo", "w=hi"],
        other => panic!("{other} is not a litmus shape"),
    }
}

/// A canonical forbidden element for `shape` — what the fault-injection
/// corruptor appends to prove the detection path works end to end.
///
/// # Panics
///
/// Panics when `shape` is not a litmus shape.
pub fn forbidden_example(shape: BenchmarkId) -> &'static str {
    match shape {
        BenchmarkId::LitmusMp => "10",
        BenchmarkId::LitmusSb => "00",
        BenchmarkId::LitmusHandoff => "sum=bad,mx=ok,c=0",
        BenchmarkId::LitmusConvoy => "viol=bad",
        BenchmarkId::LitmusPingPong => "v=0",
        other => panic!("{other} is not a litmus shape"),
    }
}

/// Check a full label against the shape's allowed table.
///
/// # Errors
///
/// Returns the first offending element.
pub fn check_label(shape: BenchmarkId, label: &str) -> Result<(), String> {
    let allowed = allowed_outcomes(shape);
    for element in label.split('+') {
        if !allowed.contains(&element) {
            return Err(element.to_string());
        }
    }
    Ok(())
}

/// The workload scale encoding sweep point `i`: the litmus kernels seed
/// their RNG streams from the scale's bit pattern, so each step is a new
/// interleaving trial; the work volume barely moves (`+0.001` per step).
fn sweep_scale(ctx: &ExperimentCtx, i: u64) -> f64 {
    ctx.scale.clamp(0.02, 0.25) + i as f64 * 0.001
}

/// The machine seed of sweep point `i` (splitmix step over the master
/// seed, so OS/codegen noise varies alongside the kernel streams).
fn sweep_seed(ctx: &ExperimentCtx, i: u64) -> u64 {
    ctx.seed ^ (i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run one litmus cell: shape `shape`, sweep point `seed`, on the paper
/// machine with HT enabled. Pure function of its arguments; the returned
/// point is bit-identical across exec tiers, fast-forward, worker
/// counts, and a mid-run checkpoint round-trip.
pub fn litmus_cell(shape: BenchmarkId, seed: u64, ctx: &ExperimentCtx) -> LitmusPoint {
    let spec =
        WorkloadSpec::threaded(shape, shape.default_threads()).with_scale(sweep_scale(ctx, seed));
    let mut sys = System::new(SystemConfig::p4(true).with_seed(sweep_seed(ctx, seed)));
    sys.add_process(spec);
    let report = sys.run_to_completion();
    let stats = sys.sync_stats(0);
    let mut label = sys.observation(0).unwrap_or_else(|| "<none>".to_string());
    if jsmt_faults::corrupt_armed(LITMUS_CORRUPT_TARGET) {
        // Deliberate falsification (fault injection): append a forbidden
        // element so the detection + crash-bundle path gets exercised.
        label.push('+');
        label.push_str(forbidden_example(shape));
    }
    LitmusPoint {
        shape,
        seed,
        label,
        cycles: report.cycles,
        blocks: stats.block_events,
        wakes: stats.wake_events,
        waits: stats.waits,
        notifies: stats.notifies,
        contended: stats.contended,
    }
}

/// Sweep one shape over `seeds` points, serially.
pub fn litmus_sweep(shape: BenchmarkId, seeds: u64, ctx: &ExperimentCtx) -> LitmusSweep {
    litmus_sweep_on(&Engine::serial(), shape, seeds, ctx)
}

/// Sweep one shape over `seeds` points on `engine`: one job per seed.
pub fn litmus_sweep_on(
    engine: &Engine,
    shape: BenchmarkId,
    seeds: u64,
    ctx: &ExperimentCtx,
) -> LitmusSweep {
    let points = engine.run(
        &format!("litmus-{}", shape.name()),
        (0..seeds).collect(),
        |&i| litmus_cell(shape, i, ctx),
    );
    collect_sweep(shape, points)
}

fn collect_sweep(shape: BenchmarkId, points: Vec<LitmusPoint>) -> LitmusSweep {
    let mut histogram = BTreeMap::new();
    let mut forbidden = Vec::new();
    for p in &points {
        for element in p.label.split('+') {
            *histogram.entry(element.to_string()).or_insert(0u64) += 1;
        }
        if let Err(element) = check_label(shape, &p.label) {
            forbidden.push((p.seed, element));
        }
    }
    LitmusSweep {
        shape,
        points,
        histogram,
        forbidden,
    }
}

/// Sweep every litmus shape over `seeds` points on `engine`.
pub fn litmus_all_on(engine: &Engine, seeds: u64, ctx: &ExperimentCtx) -> Vec<LitmusSweep> {
    BenchmarkId::LITMUS
        .iter()
        .map(|&shape| litmus_sweep_on(engine, shape, seeds, ctx))
        .collect()
}

/// Result of a supervised litmus sweep: surviving points plus the
/// failure records of cells whose outcome fell outside the allowed
/// table (each carrying a crash bundle when the supervisor was
/// configured with a bundle directory).
#[derive(Debug)]
pub struct SupervisedLitmus {
    /// Sweeps of the surviving cells, one per shape.
    pub sweeps: Vec<LitmusSweep>,
    /// Cells that panicked (forbidden outcome, injected fault, …).
    pub failures: Vec<CellFailure>,
}

impl SupervisedLitmus {
    /// Whether every cell of every shape survived with an allowed
    /// outcome.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.sweeps.iter().all(LitmusSweep::is_clean)
    }
}

/// Sweep every litmus shape under the hardened supervisor: a cell whose
/// label leaves the allowed table panics with the offending element, the
/// supervisor attributes and (when configured) bundles it, and the sweep
/// carries on. Cell labels are `<shape>@s<seed>` in stage
/// `litmus-sweep`, which [`super::CrashBundle::replay`] maps back to
/// [`litmus_cell`].
pub fn litmus_supervised(
    engine: &Engine,
    seeds: u64,
    ctx: &ExperimentCtx,
    cfg: &super::supervise::SupervisorCfg,
) -> SupervisedLitmus {
    let mut sweeps = Vec::new();
    let mut failures = Vec::new();
    for &shape in &BenchmarkId::LITMUS {
        let jobs: Vec<(String, u64)> = (0..seeds)
            .map(|i| (format!("{}@s{i}", shape.name()), i))
            .collect();
        let mut points = Vec::new();
        for r in engine.run_supervised("litmus-sweep", cfg, ctx, jobs, |&i| {
            run_checked_cell(shape, i, ctx)
        }) {
            match r {
                Ok(p) => points.push(p),
                Err(f) => failures.push(f),
            }
        }
        sweeps.push(collect_sweep(shape, points));
    }
    SupervisedLitmus { sweeps, failures }
}

/// The supervised cell body: run, then enforce the allowed table.
/// Shared with bundle replay so a replayed forbidden outcome fails the
/// same way at the same place.
///
/// # Panics
///
/// Panics when the observed label contains a forbidden element.
pub(crate) fn run_checked_cell(shape: BenchmarkId, seed: u64, ctx: &ExperimentCtx) -> LitmusPoint {
    let point = litmus_cell(shape, seed, ctx);
    if let Err(element) = check_label(shape, &point.label) {
        panic!(
            "forbidden litmus outcome: shape {} seed {} observed '{}' — element '{}' is not in the allowed table {:?}",
            shape.name(),
            seed,
            point.label,
            element,
            allowed_outcomes(shape),
        );
    }
    point
}

/// Render the sweeps as a paper-style table: per shape, the seeds run,
/// the element histogram, and any forbidden outcomes.
pub fn render_litmus(sweeps: &[LitmusSweep]) -> String {
    let mut t = jsmt_report::Table::new(vec![
        "Shape".into(),
        "Seeds".into(),
        "Observed outcomes (element × count)".into(),
        "Forbidden".into(),
    ])
    .with_title("Litmus sweep: interleaving observations vs. allowed-outcome tables");
    for s in sweeps {
        let hist = s
            .histogram
            .iter()
            .map(|(k, v)| format!("{k}\u{d7}{v}"))
            .collect::<Vec<_>>()
            .join("  ");
        let forb = if s.forbidden.is_empty() {
            "none".to_string()
        } else {
            s.forbidden
                .iter()
                .map(|(seed, e)| format!("s{seed}:'{e}'"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        t.row(vec![
            s.shape.name().to_string(),
            s.points.len().to_string(),
            hist,
            forb,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentCtx {
        ExperimentCtx {
            scale: 0.02,
            repeats: 1,
            seed: 0xBEEF,
        }
    }

    #[test]
    fn every_shape_sweeps_clean_within_the_allowed_table() {
        let ctx = quick();
        for sweep in litmus_all_on(&Engine::serial(), 6, &ctx) {
            assert!(
                sweep.is_clean(),
                "{}: forbidden outcomes {:?}",
                sweep.shape.name(),
                sweep.forbidden
            );
            assert_eq!(sweep.points.len(), 6);
            assert!(!sweep.histogram.is_empty());
            // Every point carries a real label, not the placeholder.
            assert!(sweep.points.iter().all(|p| p.label != "<none>"));
        }
    }

    #[test]
    fn sweeps_are_deterministic_per_seed() {
        let ctx = quick();
        let a = litmus_cell(BenchmarkId::LitmusPingPong, 3, &ctx);
        let b = litmus_cell(BenchmarkId::LitmusPingPong, 3, &ctx);
        assert_eq!(a, b);
        let c = litmus_cell(BenchmarkId::LitmusPingPong, 4, &ctx);
        assert!(
            a.cycles != c.cycles || a.label != c.label || a.blocks != c.blocks,
            "distinct seeds should perturb the run"
        );
    }

    #[test]
    fn check_label_flags_the_offending_element() {
        assert!(check_label(BenchmarkId::LitmusMp, "00+01+11").is_ok());
        assert_eq!(
            check_label(BenchmarkId::LitmusMp, "00+10+11"),
            Err("10".to_string())
        );
        assert!(check_label(BenchmarkId::LitmusHandoff, "sum=ok,mx=ok,c=lo").is_ok());
        assert_eq!(
            check_label(BenchmarkId::LitmusHandoff, "sum=bad,mx=ok,c=0"),
            Err("sum=bad,mx=ok,c=0".to_string())
        );
    }

    #[test]
    fn forbidden_examples_are_actually_forbidden() {
        for shape in BenchmarkId::LITMUS {
            assert!(
                check_label(shape, forbidden_example(shape)).is_err(),
                "{shape}"
            );
        }
    }

    #[test]
    fn render_includes_every_shape() {
        let ctx = quick();
        let sweeps = litmus_all_on(&Engine::serial(), 2, &ctx);
        let out = render_litmus(&sweeps);
        for shape in BenchmarkId::LITMUS {
            assert!(out.contains(shape.name()), "{shape} missing from render");
        }
    }
}
