//! Experiment drivers: one module per group of tables/figures.
//!
//! Every driver is a pure function of an [`ExperimentCtx`] (scale,
//! repetition count, seed), returns structured data, and has a `render_*`
//! companion that prints the paper-style table/figure. The `repro`
//! binary in `jsmt-bench` is a thin CLI over these functions.

mod ablations;
mod bundle;
mod checkpoint;
mod csv_out;
mod engine;
mod litmus;
mod mt;
mod pairing;
mod rescache;
mod shard;
mod single;
pub mod supervise;
mod threadcount;

pub use ablations::{
    ablation_jit, ablation_jit_on, ablation_l1, ablation_l1_on, ablation_partition,
    ablation_partition_on, ablation_prefetch, ablation_prefetch_on, render_ablation_jit,
    render_ablation_l1, render_ablation_partition, render_ablation_prefetch, JitPoint, L1Point,
    PartitionPoint, PrefetchPoint,
};
pub use bundle::{CrashBundle, ReplayReport, KIND_BUNDLE};
pub use checkpoint::{pair_matrix_ckpt, CkptError, GridCheckpoint, KIND_GRID};
pub use csv_out::{
    csv_grid, csv_jit, csv_l1, csv_litmus, csv_mt, csv_partition, csv_prefetch, csv_single,
    csv_threads,
};
pub use engine::{BaselineCacheStats, Engine, JobTiming, Parallelism, StageTiming};
pub use litmus::{
    allowed_outcomes, check_label, forbidden_example, litmus_all_on, litmus_cell,
    litmus_supervised, litmus_sweep, litmus_sweep_on, render_litmus, LitmusPoint, LitmusSweep,
    SupervisedLitmus, LITMUS_CORRUPT_TARGET,
};
pub use mt::{
    characterize_mt, characterize_mt_on, gc_cycle_fraction, render_fig1, render_fig2,
    render_fig_mpki, render_table2, MpkiKind, MtPoint,
};
pub use pairing::{
    pair_matrix, pair_matrix_on, pair_matrix_supervised, pairing_analysis, pairing_prediction,
    render_fig8, render_fig9, render_pairing_analysis, render_pairing_prediction, run_pair,
    tc_misses, PairGrid, PairOutcome, PairingAnalysis, PairingPrediction, SupervisedGrid,
};
pub use shard::{pair_matrix_sharded, shard_worker_main, ShardCfg};
pub use single::{
    fig10_single_thread_impact, fig10_single_thread_impact_on, fig11_self_pairs,
    fig11_self_pairs_on, render_fig10, render_fig11, SinglePoint,
};
pub use supervise::{backoff_schedule, manifest_csv, CellFailure, FailureKind, SupervisorCfg};
pub use threadcount::{fig12_ipc_vs_threads, fig12_ipc_vs_threads_on, render_fig12, ThreadPoint};

use crate::{RunReport, System, SystemConfig};
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentCtx {
    /// Workload scale factor (1.0 = the scaled paper inputs).
    pub scale: f64,
    /// Minimum completed executions per program in multiprogrammed runs
    /// (the paper repeats each benchmark at least 12 times and drops the
    /// first and last).
    pub repeats: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentCtx {
    fn default() -> Self {
        ExperimentCtx {
            scale: 0.3,
            repeats: 6,
            seed: 0x15_9A55,
        }
    }
}

impl ExperimentCtx {
    /// A fast smoke-test configuration (used by unit tests and
    /// `repro --quick`).
    pub fn quick() -> Self {
        ExperimentCtx {
            scale: 0.05,
            repeats: 3,
            seed: 0x15_9A55,
        }
    }

    /// The paper-faithful configuration (`repro --full`): full scaled
    /// inputs and the paper's 12-repetition rule.
    pub fn full() -> Self {
        ExperimentCtx {
            scale: 1.0,
            repeats: 12,
            seed: 0x15_9A55,
        }
    }
}

/// Run `spec` alone on a machine with Hyper-Threading `ht`; returns the
/// full report (completion time is `report.cycles`).
pub fn solo_run(spec: WorkloadSpec, ht: bool, seed: u64) -> RunReport {
    let mut sys = System::new(SystemConfig::p4(ht).with_seed(seed));
    sys.add_process(spec);
    sys.run_to_completion()
}

/// Solo execution time (cycles) of a single-threaded benchmark on the
/// HT-disabled machine — the `A_S`/`B_S` baseline in the paper's combined
/// speedup definition.
///
/// Measured with the same re-launch-and-trim methodology as the co-runs
/// (repeat, drop first and last, average): the paper's wall-clock runs
/// are long enough that JVM/cache warm-up is negligible, but at
/// simulation scale the cold first execution would otherwise bias every
/// speedup upward.
pub fn solo_baseline_cycles(id: BenchmarkId, ctx: &ExperimentCtx) -> u64 {
    let spec = WorkloadSpec::single(id).with_scale(ctx.scale);
    let mut sys = System::new(SystemConfig::p4(false).with_seed(ctx.seed));
    sys.add_relaunching_process(spec);
    let report = sys.run_until_completions(ctx.repeats.min(4) + 2);
    report.processes[0].mean_duration().round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_run_completes() {
        let ctx = ExperimentCtx::quick();
        let spec = WorkloadSpec::single(BenchmarkId::Mpegaudio).with_scale(ctx.scale);
        let r = solo_run(spec, false, ctx.seed);
        assert_eq!(r.processes[0].completions, 1);
        let warm = solo_baseline_cycles(BenchmarkId::Mpegaudio, &ctx);
        assert!(warm > 0);
        assert!(
            warm <= r.cycles,
            "warm baseline ({warm}) should not exceed the cold run ({})",
            r.cycles
        );
    }
}
