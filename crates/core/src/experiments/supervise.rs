//! The supervised execution layer: panic isolation, watchdogs, and
//! failure attribution for experiment grids.
//!
//! An unsupervised grid has all-or-nothing semantics: one panicking cell
//! (a bad config, a workload edge case, a livelocked machine) unwinds
//! through the worker pool and the whole 9×9 matrix is lost. Supervised
//! execution ([`Engine::run_supervised`]) gives each cell its own blast
//! radius:
//!
//! * every attempt runs under `catch_unwind`, so a cell failure becomes
//!   a recorded [`CellFailure`] instead of a crashed process;
//! * failures are retried up to [`SupervisorCfg::retries`] times —
//!   deterministic, because a cell is a pure function of its inputs: a
//!   persistent fault fails identically every attempt, while a transient
//!   injected fault (`attempts=1` in the fault spec) clears on retry and
//!   the cell converges to its golden output;
//! * a *forward-progress watchdog* trips when no µop retires on either
//!   hardware context for [`SupervisorCfg::livelock_cycles`] machine
//!   cycles (a livelocked simulation burns cycles forever without
//!   progress — the cap in `SystemConfig::max_cycles` would catch it
//!   only after tens of billions of cycles);
//! * a *wall-clock deadline* is enforced cooperatively: a monitor thread
//!   flips the cell's cancellation flag when the attempt exceeds
//!   [`SupervisorCfg::deadline`], and `System::step_span` checks the
//!   flag between spans and aborts the cell;
//! * every failure can emit a self-contained crash-repro bundle
//!   (see [`super::bundle`]) holding the experiment fingerprint, the
//!   fault spec, the last periodic checkpoint, and the counter tail.
//!
//! The supervision context reaches the `System` through a thread-local:
//! drivers like `run_pair` construct their machines internally, and each
//! cell runs wholly on one worker thread, so `System::new` picks the
//! context up without any driver plumbing. With no supervisor installed
//! the thread-local is `None` and the system's behavior is unchanged —
//! healthy grids stay bit-identical to the goldens whether supervised or
//! not, because the watchdog checks only observe counters, never mutate
//! machine state.

use std::cell::RefCell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use super::Engine;

/// Supervision policy for one stage of cells.
#[derive(Debug, Clone)]
pub struct SupervisorCfg {
    /// Re-runs granted after a failed attempt (so a cell executes at
    /// most `retries + 1` times).
    pub retries: u32,
    /// Wall-clock budget per attempt; `None` disables the deadline
    /// monitor.
    pub deadline: Option<Duration>,
    /// Trip the livelock diagnostic after this many machine cycles with
    /// zero µops retired on either context; `0` disables the watchdog.
    pub livelock_cycles: u64,
    /// Refresh the cell's crash-tail checkpoint every this many machine
    /// cycles; `0` disables periodic checkpointing.
    pub checkpoint_every: u64,
    /// Where to write crash-repro bundles; `None` disables bundles.
    pub bundle_dir: Option<PathBuf>,
    /// Base delay of the decorrelated-jitter backoff slept between a
    /// failed attempt and its retry; `Duration::ZERO` disables sleeping
    /// (a zero schedule is still recorded in the manifest).
    pub backoff_base: Duration,
    /// Upper clamp on any single backoff delay.
    pub backoff_cap: Duration,
}

impl Default for SupervisorCfg {
    fn default() -> Self {
        SupervisorCfg {
            retries: 1,
            deadline: None,
            livelock_cycles: 2_000_000,
            checkpoint_every: 0,
            bundle_dir: None,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(400),
        }
    }
}

/// The deterministic seeded backoff schedule for a cell: `attempts - 1`
/// delays of decorrelated jitter (`d_{n+1} = uniform(base, 3·d_n)`,
/// clamped to `cap`), seeded from `(seed, label)` so every attempt
/// sequence — in this process or a respawned shard worker — sleeps the
/// same schedule. Retrying immediately after a failure is the worst
/// possible policy for the faults retries exist for (another process
/// holding a file, an overloaded host, a racing cache writer); jitter
/// decorrelates the retry storms of neighboring cells while staying
/// bit-reproducible.
pub fn backoff_schedule(
    seed: u64,
    label: &str,
    attempts: u32,
    base: Duration,
    cap: Duration,
) -> Vec<Duration> {
    let n = attempts.saturating_sub(1) as usize;
    if base.is_zero() {
        return vec![Duration::ZERO; n];
    }
    let base_ms = u64::try_from(base.as_millis()).unwrap_or(u64::MAX).max(1);
    let cap_ms = u64::try_from(cap.as_millis())
        .unwrap_or(u64::MAX)
        .max(base_ms);
    // splitmix64 over (seed, label): cheap, stateless, and good enough
    // jitter for spreading retries.
    let mut state = seed ^ jsmt_snapshot::fnv64(label.as_bytes());
    let mut mix = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut prev = base_ms;
    (0..n)
        .map(|_| {
            let hi = prev.saturating_mul(3).clamp(base_ms, cap_ms);
            let d = base_ms + mix() % (hi - base_ms + 1);
            prev = d;
            Duration::from_millis(d)
        })
        .collect()
}

/// How a supervised cell failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The cell panicked (injected fault, violated invariant, …).
    Panic,
    /// The forward-progress watchdog saw no retirement for the
    /// configured span.
    Livelock,
    /// The wall-clock deadline expired.
    Deadline,
    /// The cell was cancelled from outside.
    Cancelled,
    /// The shard worker *process* executing the cell died (SIGKILL,
    /// abort, unexpected exit) — only produced by the multi-process
    /// dispatcher; in-thread supervision turns process-safe failures
    /// into one of the kinds above instead.
    WorkerDeath,
}

impl FailureKind {
    /// Stable name used in manifests and bundles.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Livelock => "livelock",
            FailureKind::Deadline => "deadline",
            FailureKind::Cancelled => "cancelled",
            FailureKind::WorkerDeath => "worker-death",
        }
    }

    /// Inverse of [`FailureKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "panic" => FailureKind::Panic,
            "livelock" => FailureKind::Livelock,
            "deadline" => FailureKind::Deadline,
            "cancelled" => FailureKind::Cancelled,
            "worker-death" => FailureKind::WorkerDeath,
            _ => return None,
        })
    }

    /// Snapshot tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            FailureKind::Panic => 0,
            FailureKind::Livelock => 1,
            FailureKind::Deadline => 2,
            FailureKind::Cancelled => 3,
            FailureKind::WorkerDeath => 4,
        }
    }

    /// Inverse of [`FailureKind::tag`].
    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        Some(match t {
            0 => FailureKind::Panic,
            1 => FailureKind::Livelock,
            2 => FailureKind::Deadline,
            3 => FailureKind::Cancelled,
            4 => FailureKind::WorkerDeath,
            _ => return None,
        })
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The record of one cell that exhausted its attempts.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Stage the cell belongs to (`pair-grid`, `solo-baselines`).
    pub stage: String,
    /// Cell label within the stage (`compress+db`, `jess`).
    pub label: String,
    /// Submission index within the stage.
    pub index: usize,
    /// Failure classification of the final attempt.
    pub kind: FailureKind,
    /// Component attribution (`system`, `gc`, `worker`, `watchdog`,
    /// `unknown` for organic panics).
    pub component: String,
    /// Machine cycle at which the final attempt died (0 when unknown).
    pub cycle: u64,
    /// Human-readable failure message.
    pub message: String,
    /// Attempts executed (always `retries + 1` for a recorded failure).
    pub attempts: u32,
    /// The deterministic backoff schedule (milliseconds slept between
    /// consecutive attempts; `attempts - 1` entries).
    pub backoff_ms: Vec<u64>,
    /// Crash-repro bundle path, when one was written.
    pub bundle: Option<PathBuf>,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {} in '{}' at cycle {} after {} attempt(s): {}",
            self.stage,
            self.label,
            self.kind,
            self.component,
            self.cycle,
            self.attempts,
            self.message
        )
    }
}

/// Panic payload thrown out of `System::step_span` when a watchdog or
/// cancellation trips; the supervisor downcasts it back for attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellAbort {
    /// No retirement on either context for `stalled_for` cycles.
    Livelock {
        /// Cycle at which the watchdog tripped.
        cycle: u64,
        /// Length of the zero-retirement span.
        stalled_for: u64,
    },
    /// The deadline monitor flipped the cancellation flag.
    Deadline {
        /// Cycle at which the flag was observed.
        cycle: u64,
    },
    /// An external canceller flipped the flag.
    Cancelled {
        /// Cycle at which the flag was observed.
        cycle: u64,
    },
}

impl fmt::Display for CellAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellAbort::Livelock { cycle, stalled_for } => write!(
                f,
                "livelock: no retirement on either context for {stalled_for} cycles (at cycle {cycle})"
            ),
            CellAbort::Deadline { cycle } => {
                write!(f, "wall-clock deadline exceeded (at cycle {cycle})")
            }
            CellAbort::Cancelled { cycle } => write!(f, "cancelled (at cycle {cycle})"),
        }
    }
}

/// Cancellation-flag values (stored in [`Supervision::flag`]).
pub(crate) const RUNNING: u8 = 0;
pub(crate) const ABORT_DEADLINE: u8 = 1;
pub(crate) const ABORT_CANCELLED: u8 = 2;

/// The crash tail a supervised system maintains: the most recent
/// periodic checkpoint and merged counter bank, harvested into the
/// crash-repro bundle when the cell dies.
#[derive(Debug, Default)]
pub struct CrashTail {
    /// Last `System::checkpoint` bytes (sealed snapshot).
    pub checkpoint: Option<Vec<u8>>,
    /// Last merged counter bank (`jsmt_snapshot::save_bytes`).
    pub counters: Option<Vec<u8>>,
}

/// The supervision context a cell's `System` cooperates with. Installed
/// in a thread-local around each attempt; `System::new` captures it.
#[derive(Debug, Clone)]
pub struct Supervision {
    /// Cooperative cancellation flag ([`RUNNING`] / [`ABORT_DEADLINE`] /
    /// [`ABORT_CANCELLED`]), checked in `System::step_span`.
    pub(crate) flag: Arc<AtomicU8>,
    /// Most recent machine cycle the supervised system reported (for
    /// attribution of failures that carry no cycle of their own).
    pub(crate) cycle: Arc<AtomicU64>,
    /// Forward-progress watchdog threshold (0 = off).
    pub(crate) livelock_cycles: u64,
    /// Periodic checkpoint interval (0 = off).
    pub(crate) checkpoint_every: u64,
    /// Crash tail slot.
    pub(crate) tail: Arc<Mutex<CrashTail>>,
}

impl Supervision {
    pub(crate) fn new(cfg: &SupervisorCfg) -> Self {
        Supervision {
            flag: Arc::new(AtomicU8::new(RUNNING)),
            cycle: Arc::new(AtomicU64::new(0)),
            livelock_cycles: cfg.livelock_cycles,
            checkpoint_every: cfg.checkpoint_every,
            tail: Arc::new(Mutex::new(CrashTail::default())),
        }
    }

    /// Request cancellation; the supervised system aborts at its next
    /// span boundary.
    pub fn cancel(&self) {
        self.flag.store(ABORT_CANCELLED, Ordering::SeqCst);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Supervision>> = const { RefCell::new(None) };
}

/// The supervision context active on this thread, if any (captured by
/// `System::new`).
pub(crate) fn current() -> Option<Supervision> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) struct SupervisionGuard {
    prev: Option<Supervision>,
}

pub(crate) fn install(sup: Supervision) -> SupervisionGuard {
    let prev = CURRENT.with(|c| c.replace(Some(sup)));
    SupervisionGuard { prev }
}

impl Drop for SupervisionGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Quiet panic hook: supervised cells die by design (injected faults,
/// watchdog aborts), and the default hook would print a backtrace per
/// attempt. Filter exactly our typed payloads; organic panics still
/// reach the previous hook untouched.
pub(crate) fn silence_supervised_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<CellAbort>() || payload.is::<jsmt_faults::InjectedPanic>() {
                return;
            }
            previous(info);
        }));
    });
}

/// `(expiry, flag)` per in-flight attempt; slots are removed when the
/// attempt finishes.
type WatchRegistry = Arc<Mutex<Vec<(Instant, Arc<AtomicU8>)>>>;

/// Deadline monitor: one thread per supervised stage, polling the
/// registry of in-flight attempts and flipping the cancellation flag of
/// any that outlive the deadline. The supervised system notices the flag
/// cooperatively, so enforcement is graceful — no thread is killed.
struct Monitor {
    registry: WatchRegistry,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    deadline: Duration,
}

impl Monitor {
    fn start(deadline: Option<Duration>) -> Option<Monitor> {
        let deadline = deadline?;
        let registry: WatchRegistry = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    {
                        let now = Instant::now();
                        let reg = registry.lock().expect("monitor registry");
                        for (expiry, flag) in reg.iter() {
                            if now >= *expiry {
                                // Never overwrite an explicit cancel.
                                let _ = flag.compare_exchange(
                                    RUNNING,
                                    ABORT_DEADLINE,
                                    Ordering::SeqCst,
                                    Ordering::SeqCst,
                                );
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            })
        };
        Some(Monitor {
            registry,
            stop,
            handle: Some(handle),
            deadline,
        })
    }

    fn watch(&self, flag: Arc<AtomicU8>) -> MonitorSlot<'_> {
        let expiry = Instant::now() + self.deadline;
        self.registry
            .lock()
            .expect("monitor registry")
            .push((expiry, Arc::clone(&flag)));
        MonitorSlot {
            monitor: self,
            flag,
        }
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct MonitorSlot<'a> {
    monitor: &'a Monitor,
    flag: Arc<AtomicU8>,
}

impl Drop for MonitorSlot<'_> {
    fn drop(&mut self) {
        self.monitor
            .registry
            .lock()
            .expect("monitor registry")
            .retain(|(_, f)| !Arc::ptr_eq(f, &self.flag));
    }
}

/// Attribution extracted from a caught panic payload (also used by the
/// multi-process shard worker to serialize a failure over its reply
/// pipe).
pub(crate) struct Diagnosis {
    pub(crate) kind: FailureKind,
    pub(crate) component: String,
    pub(crate) cycle: u64,
    pub(crate) message: String,
}

pub(crate) fn diagnose(payload: Box<dyn std::any::Any + Send>, sup: &Supervision) -> Diagnosis {
    if let Some(abort) = payload.downcast_ref::<CellAbort>() {
        let (kind, cycle) = match *abort {
            CellAbort::Livelock { cycle, .. } => (FailureKind::Livelock, cycle),
            CellAbort::Deadline { cycle } => (FailureKind::Deadline, cycle),
            CellAbort::Cancelled { cycle } => (FailureKind::Cancelled, cycle),
        };
        return Diagnosis {
            kind,
            component: "watchdog".to_string(),
            cycle,
            message: abort.to_string(),
        };
    }
    if let Some(injected) = payload.downcast_ref::<jsmt_faults::InjectedPanic>() {
        return Diagnosis {
            kind: FailureKind::Panic,
            component: injected.component.clone(),
            cycle: injected.cycle,
            message: injected.to_string(),
        };
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    };
    Diagnosis {
        kind: FailureKind::Panic,
        component: "unknown".to_string(),
        // Best-effort: the last cycle the supervised system reported.
        cycle: sup.cycle.load(Ordering::Relaxed),
        message,
    }
}

impl Engine {
    /// Run one stage of labeled, independent jobs under supervision.
    /// Outputs come back in submission order; each is either the job's
    /// result or the [`CellFailure`] that exhausted its attempts. A
    /// failed cell never takes another cell (or the process) with it.
    ///
    /// `ctx` is the experiment fingerprint recorded into crash bundles.
    // One `CellFailure` exists per *failed* cell, not per cell; boxing it
    // would push the indirection onto every caller for no hot-path win.
    #[allow(clippy::result_large_err)]
    pub fn run_supervised<I, O, F>(
        &self,
        stage: &str,
        cfg: &SupervisorCfg,
        ctx: &super::ExperimentCtx,
        jobs: Vec<(String, I)>,
        f: F,
    ) -> Vec<Result<O, CellFailure>>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        silence_supervised_panics();
        let monitor = Monitor::start(cfg.deadline);
        let indexed: Vec<(usize, String, I)> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (label, job))| (i, label, job))
            .collect();
        self.run(stage, indexed, |(index, label, job)| {
            supervise_one(stage, cfg, ctx, monitor.as_ref(), *index, label, job, &f)
        })
    }
}

#[allow(clippy::too_many_arguments, clippy::result_large_err)]
fn supervise_one<I, O>(
    stage: &str,
    cfg: &SupervisorCfg,
    ctx: &super::ExperimentCtx,
    monitor: Option<&Monitor>,
    index: usize,
    label: &str,
    job: &I,
    f: &(impl Fn(&I) -> O + Sync),
) -> Result<O, CellFailure> {
    let scope_label = format!("{stage}/{label}");
    let mut last: Option<(Diagnosis, CrashTail)> = None;
    let attempts = cfg.retries + 1;
    let schedule = backoff_schedule(
        ctx.seed,
        &scope_label,
        attempts,
        cfg.backoff_base,
        cfg.backoff_cap,
    );
    for attempt in 0..attempts {
        let sup = Supervision::new(cfg);
        let _slot = monitor.map(|m| m.watch(Arc::clone(&sup.flag)));
        let _scope = jsmt_faults::enter_scope(&scope_label, attempt);
        let _guard = install(sup.clone());
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            jsmt_faults::check_worker();
            f(job)
        }));
        match outcome {
            Ok(v) => return Ok(v),
            Err(payload) => {
                let diagnosis = diagnose(payload, &sup);
                let tail = std::mem::take(&mut *sup.tail.lock().expect("crash tail"));
                last = Some((diagnosis, tail));
                if let Some(delay) = schedule.get(attempt as usize) {
                    if !delay.is_zero() {
                        std::thread::sleep(*delay);
                    }
                }
            }
        }
    }
    let (diagnosis, tail) = last.expect("at least one attempt ran");
    let mut failure = CellFailure {
        stage: stage.to_string(),
        label: label.to_string(),
        index,
        kind: diagnosis.kind,
        component: diagnosis.component,
        cycle: diagnosis.cycle,
        message: diagnosis.message,
        attempts,
        backoff_ms: schedule.iter().map(|d| d.as_millis() as u64).collect(),
        bundle: None,
    };
    if let Some(dir) = &cfg.bundle_dir {
        match super::bundle::CrashBundle::from_failure(ctx, cfg, &failure, tail).save_in(dir) {
            Ok(path) => failure.bundle = Some(path),
            Err(e) => {
                // Bundle emission is best-effort: a failing bundle write
                // (possibly itself fault-injected) must not lose the
                // failure record.
                failure.message = format!("{} [bundle write failed: {e}]", failure.message);
            }
        }
    }
    Err(failure)
}

/// Render the machine-readable failure manifest: one CSV row per failed
/// cell with component/cycle attribution and the bundle path. Returns
/// only the header line when `failures` is empty.
pub fn manifest_csv(failures: &[CellFailure]) -> String {
    let mut c = jsmt_report::Csv::new(vec![
        "stage".into(),
        "label".into(),
        "index".into(),
        "kind".into(),
        "component".into(),
        "cycle".into(),
        "attempts".into(),
        "backoff_ms".into(),
        "bundle".into(),
        "message".into(),
    ]);
    for f in failures {
        c.row(vec![
            f.stage.clone(),
            f.label.clone(),
            f.index.to_string(),
            f.kind.name().into(),
            f.component.clone(),
            f.cycle.to_string(),
            f.attempts.to_string(),
            // The slept schedule, `/`-separated so the CSV shape holds.
            f.backoff_ms
                .iter()
                .map(|ms| ms.to_string())
                .collect::<Vec<_>>()
                .join("/"),
            f.bundle
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_default(),
            // Keep the manifest one-row-per-failure even for multi-line
            // panic messages, and don't let commas split the field.
            f.message.replace(['\n', '\r'], " ").replace(',', ";"),
        ]);
    }
    c.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentCtx;

    fn quick_ctx() -> ExperimentCtx {
        ExperimentCtx {
            scale: 0.01,
            repeats: 1,
            seed: 0xA5,
        }
    }

    #[test]
    fn healthy_jobs_pass_through_in_order() {
        let engine = Engine::serial();
        let cfg = SupervisorCfg::default();
        let jobs: Vec<(String, u64)> = (0..8u64).map(|x| (format!("j{x}"), x)).collect();
        let out = engine.run_supervised("t", &cfg, &quick_ctx(), jobs, |&x| x * x);
        let vals: Vec<u64> = out.into_iter().map(|r| r.expect("healthy")).collect();
        assert_eq!(vals, (0..8u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_is_isolated_and_attributed() {
        let engine = Engine::new(crate::experiments::Parallelism::Threads(4));
        let cfg = SupervisorCfg {
            retries: 2,
            ..SupervisorCfg::default()
        };
        let jobs: Vec<(String, u64)> = (0..6u64).map(|x| (format!("j{x}"), x)).collect();
        let out = engine.run_supervised("t", &cfg, &quick_ctx(), jobs, |&x| {
            assert!(x != 3, "job three always dies");
            x + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let f = r.as_ref().expect_err("job 3 fails");
                assert_eq!(f.kind, FailureKind::Panic);
                assert_eq!(f.attempts, 3, "bounded retries all consumed");
                assert_eq!(f.index, 3);
                assert_eq!(f.label, "j3");
                assert!(f.message.contains("job three always dies"));
            } else {
                assert_eq!(*r.as_ref().expect("others fine"), i as u64 + 1);
            }
        }
    }

    #[test]
    fn manifest_rows_are_machine_readable() {
        let failures = vec![CellFailure {
            stage: "pair-grid".into(),
            label: "compress+db".into(),
            index: 10,
            kind: FailureKind::Livelock,
            component: "watchdog".into(),
            cycle: 123456,
            message: "no retirement,\nfor a while".into(),
            attempts: 2,
            backoff_ms: vec![31],
            bundle: Some(PathBuf::from("/tmp/b.crash")),
        }];
        let csv = manifest_csv(&failures);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "stage,label,index,kind,component,cycle,attempts,backoff_ms,bundle,message"
        );
        assert_eq!(
            lines.next().unwrap(),
            "pair-grid,compress+db,10,livelock,watchdog,123456,2,31,/tmp/b.crash,no retirement; for a while"
        );
        assert_eq!(lines.next(), None);
        assert_eq!(manifest_csv(&[]).lines().count(), 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic_bounded_and_label_keyed() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(120);
        let a = backoff_schedule(7, "pair-grid/compress+db", 5, base, cap);
        let b = backoff_schedule(7, "pair-grid/compress+db", 5, base, cap);
        assert_eq!(a, b, "same (seed, label) → same schedule");
        assert_eq!(a.len(), 4);
        for d in &a {
            assert!(
                *d >= base && *d <= cap,
                "delay {d:?} out of [{base:?}, {cap:?}]"
            );
        }
        let other = backoff_schedule(7, "pair-grid/jess+db", 5, base, cap);
        assert_ne!(a, other, "different labels decorrelate");
        let reseeded = backoff_schedule(8, "pair-grid/compress+db", 5, base, cap);
        assert_ne!(a, reseeded, "different seeds decorrelate");
        // Zero base disables sleeping but keeps the schedule shape.
        assert_eq!(
            backoff_schedule(7, "x", 3, Duration::ZERO, cap),
            vec![Duration::ZERO; 2]
        );
        assert!(backoff_schedule(7, "x", 1, base, cap).is_empty());
        assert!(backoff_schedule(7, "x", 0, base, cap).is_empty());
    }

    #[test]
    fn retries_sleep_the_recorded_schedule() {
        let engine = Engine::serial();
        let cfg = SupervisorCfg {
            retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            ..SupervisorCfg::default()
        };
        let t0 = Instant::now();
        let out = engine.run_supervised(
            "t",
            &cfg,
            &quick_ctx(),
            vec![("always-dies".to_string(), ())],
            |&()| -> () { panic!("persistent") },
        );
        let elapsed = t0.elapsed();
        let f = out[0].as_ref().expect_err("persistent failure");
        let expected = backoff_schedule(
            quick_ctx().seed,
            "t/always-dies",
            3,
            cfg.backoff_base,
            cfg.backoff_cap,
        );
        assert_eq!(
            f.backoff_ms,
            expected
                .iter()
                .map(|d| d.as_millis() as u64)
                .collect::<Vec<_>>()
        );
        let slept: Duration = expected.iter().sum();
        assert!(
            elapsed >= slept,
            "attempts must be spaced by the schedule ({elapsed:?} < {slept:?})"
        );
    }

    #[test]
    fn failure_kind_names_round_trip() {
        for k in [
            FailureKind::Panic,
            FailureKind::Livelock,
            FailureKind::Deadline,
            FailureKind::Cancelled,
            FailureKind::WorkerDeath,
        ] {
            assert_eq!(FailureKind::parse(k.name()), Some(k));
            assert_eq!(FailureKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(FailureKind::parse("nope"), None);
        assert_eq!(FailureKind::from_tag(9), None);
    }
}
