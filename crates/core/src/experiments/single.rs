//! §4.3 — impact of static partitioning on single-threaded programs:
//! Figures 10 and 11.

use jsmt_report::{bar_chart, Table};
use jsmt_stats::pct_change;
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

use super::{run_pair, solo_run, Engine, ExperimentCtx};

/// One single-threaded benchmark measured with HT off and on.
#[derive(Debug, Clone, Copy)]
pub struct SinglePoint {
    /// The benchmark.
    pub id: BenchmarkId,
    /// Execution time with Hyper-Threading disabled (cycles).
    pub cycles_ht_off: u64,
    /// Execution time with Hyper-Threading enabled (cycles).
    pub cycles_ht_on: u64,
}

impl SinglePoint {
    /// Percent increase in execution time from enabling HT (positive =
    /// slower, the paper's Figure 10 quantity).
    pub fn slowdown_pct(&self) -> f64 {
        pct_change(self.cycles_ht_off as f64, self.cycles_ht_on as f64)
    }
}

/// Figure 10: run each single-threaded benchmark alone with HT disabled
/// and enabled. Serial.
pub fn fig10_single_thread_impact(ctx: &ExperimentCtx) -> Vec<SinglePoint> {
    fig10_single_thread_impact_on(&Engine::serial(), ctx)
}

/// The Figure 10 measurement on `engine`: one job per benchmark (each
/// job runs the HT-off and HT-on configurations).
pub fn fig10_single_thread_impact_on(engine: &Engine, ctx: &ExperimentCtx) -> Vec<SinglePoint> {
    engine.run(
        "fig10-single",
        BenchmarkId::SINGLE_THREADED.to_vec(),
        |&id| {
            let spec = WorkloadSpec::single(id).with_scale(ctx.scale);
            let off = solo_run(spec, false, ctx.seed).cycles;
            let on = solo_run(spec, true, ctx.seed).cycles;
            SinglePoint {
                id,
                cycles_ht_off: off,
                cycles_ht_on: on,
            }
        },
    )
}

/// Render Figure 10.
pub fn render_fig10(points: &[SinglePoint]) -> String {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "HT-off cycles".into(),
        "HT-on cycles".into(),
        "Exec time change".into(),
    ])
    .with_title("Figure 10. Impact of Hyper-Threading technology on single-threaded Java programs");
    let mut slower = 0;
    for p in points {
        let d = p.slowdown_pct();
        if d > 0.0 {
            slower += 1;
        }
        t.row(vec![
            p.id.name().to_string(),
            format!("{}", p.cycles_ht_off),
            format!("{}", p.cycles_ht_on),
            format!("{d:+.2}%"),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\n{slower} of {} benchmarks have increased execution times with HT on\n",
        points.len()
    ));
    out
}

/// Figure 11: combined speedup of two identical copies of each
/// single-threaded benchmark running simultaneously on the HT machine.
/// Serial.
pub fn fig11_self_pairs(ctx: &ExperimentCtx) -> Vec<(BenchmarkId, f64)> {
    fig11_self_pairs_on(&Engine::serial(), ctx)
}

/// The Figure 11 measurement on `engine`: one job per benchmark, with
/// solo baselines served by the engine's memoizing cache (shared with
/// the pairing grid when one engine runs both).
pub fn fig11_self_pairs_on(engine: &Engine, ctx: &ExperimentCtx) -> Vec<(BenchmarkId, f64)> {
    let ids = BenchmarkId::SINGLE_THREADED.to_vec();
    engine.prewarm_baselines(&ids, ctx);
    engine.run("fig11-self-pairs", ids, |&id| {
        let solo = engine.solo_baseline(id, ctx);
        let o = run_pair(id, id, solo, solo, ctx);
        (id, o.combined)
    })
}

/// Render Figure 11.
pub fn render_fig11(points: &[(BenchmarkId, f64)]) -> String {
    let entries: Vec<(String, f64)> = points
        .iter()
        .map(|(id, c)| (id.name().to_string(), *c))
        .collect();
    let mut out = bar_chart(
        "Figure 11. Impact of Hyper-Threading technology on multi-programmed programs\n(combined speedup of two identical copies; 1.0 = perfect time sharing, 2.0 = perfect SMP)",
        &entries,
    );
    let below: Vec<&str> = points
        .iter()
        .filter(|(_, c)| *c < 1.05)
        .map(|(id, _)| id.name())
        .collect();
    if !below.is_empty() {
        out.push_str(&format!("\nnear-or-below unity: {}\n", below.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_math() {
        let p = SinglePoint {
            id: BenchmarkId::Compress,
            cycles_ht_off: 100,
            cycles_ht_on: 162,
        };
        assert!((p.slowdown_pct() - 62.0).abs() < 1e-12);
    }

    #[test]
    fn fig10_single_benchmark_shape() {
        // One benchmark only, to stay fast: HT on must not be *faster*
        // given static partitioning plus helper threads.
        let ctx = ExperimentCtx {
            scale: 0.02,
            repeats: 3,
            seed: 1,
        };
        let spec = WorkloadSpec::single(BenchmarkId::Db).with_scale(ctx.scale);
        let off = solo_run(spec, false, ctx.seed).cycles;
        let on = solo_run(spec, true, ctx.seed).cycles;
        let p = SinglePoint {
            id: BenchmarkId::Db,
            cycles_ht_off: off,
            cycles_ht_on: on,
        };
        assert!(
            p.slowdown_pct() > -8.0,
            "HT-on should not massively speed up a single thread: {:.2}%",
            p.slowdown_pct()
        );
        let rendered = render_fig10(&[p]);
        assert!(rendered.contains("db"));
    }
}
