//! Design-choice ablations motivated by the paper's discussion:
//!
//! * **Dynamic partitioning** (§4.3): "The hardware solution is to allow
//!   the resources to be shared dynamically instead of partitioning them
//!   statically" — we run Figure 10's workloads under that proposal.
//! * **Larger L1** (§1): "incorporating larger L1 cache may be effective
//!   to alleviate memory latency" — we sweep the L1D size under the
//!   multithreaded workloads.

use jsmt_cpu::Partition;
use jsmt_mem::MemConfig;
use jsmt_report::Table;
use jsmt_stats::pct_change;
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

use super::{Engine, ExperimentCtx};
use crate::{System, SystemConfig};

/// One benchmark under the three partitioning regimes.
#[derive(Debug, Clone, Copy)]
pub struct PartitionPoint {
    /// The benchmark (run single-threaded, HT on).
    pub id: BenchmarkId,
    /// Execution time with HT disabled (the no-SMT baseline).
    pub cycles_ht_off: u64,
    /// Execution time under the P4's static partition.
    pub cycles_static: u64,
    /// Execution time under the paper's proposed dynamic partition.
    pub cycles_dynamic: u64,
}

fn run_with(spec: WorkloadSpec, cfg: SystemConfig) -> u64 {
    let mut sys = System::new(cfg);
    sys.add_process(spec);
    sys.run_to_completion().cycles
}

/// The §4.3 ablation over the single-threaded benchmarks (serial).
pub fn ablation_partition(ctx: &ExperimentCtx) -> Vec<PartitionPoint> {
    ablation_partition_on(&Engine::serial(), ctx)
}

/// The §4.3 ablation on `engine`: one job per benchmark (each job runs
/// the three partitioning regimes).
pub fn ablation_partition_on(engine: &Engine, ctx: &ExperimentCtx) -> Vec<PartitionPoint> {
    engine.run(
        "ablation-partition",
        BenchmarkId::SINGLE_THREADED.to_vec(),
        |&id| {
            let spec = WorkloadSpec::single(id).with_scale(ctx.scale);
            PartitionPoint {
                id,
                cycles_ht_off: run_with(spec, SystemConfig::p4(false).with_seed(ctx.seed)),
                cycles_static: run_with(spec, SystemConfig::p4(true).with_seed(ctx.seed)),
                cycles_dynamic: run_with(
                    spec,
                    SystemConfig::p4(true)
                        .with_partition(Partition::Dynamic)
                        .with_seed(ctx.seed),
                ),
            }
        },
    )
}

/// Render the partitioning ablation.
pub fn render_ablation_partition(points: &[PartitionPoint]) -> String {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "HT-off".into(),
        "HT-on static".into(),
        "HT-on dynamic".into(),
        "static vs off".into(),
        "dynamic vs off".into(),
    ])
    .with_title("Ablation (§4.3): static vs. dynamic resource partitioning, single-threaded");
    for p in points {
        t.row(vec![
            p.id.name().to_string(),
            format!("{}", p.cycles_ht_off),
            format!("{}", p.cycles_static),
            format!("{}", p.cycles_dynamic),
            format!(
                "{:+.2}%",
                pct_change(p.cycles_ht_off as f64, p.cycles_static as f64)
            ),
            format!(
                "{:+.2}%",
                pct_change(p.cycles_ht_off as f64, p.cycles_dynamic as f64)
            ),
        ]);
    }
    t.render()
}

/// One benchmark at one L1D size.
#[derive(Debug, Clone, Copy)]
pub struct L1Point {
    /// The benchmark (2 threads, HT on).
    pub id: BenchmarkId,
    /// L1D capacity in KiB.
    pub l1d_kib: usize,
    /// Machine IPC.
    pub ipc: f64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
}

/// The §1 larger-L1 ablation over the multithreaded benchmarks (serial).
pub fn ablation_l1(sizes_kib: &[usize], ctx: &ExperimentCtx) -> Vec<L1Point> {
    ablation_l1_on(&Engine::serial(), sizes_kib, ctx)
}

/// The §1 larger-L1 ablation on `engine`: one job per
/// `(benchmark, L1D size)` cell.
pub fn ablation_l1_on(engine: &Engine, sizes_kib: &[usize], ctx: &ExperimentCtx) -> Vec<L1Point> {
    let cells: Vec<(BenchmarkId, usize)> = BenchmarkId::MULTITHREADED
        .iter()
        .flat_map(|&id| sizes_kib.iter().map(move |&kib| (id, kib)))
        .collect();
    engine.run("ablation-l1", cells, |&(id, kib)| {
        let cfg = SystemConfig::p4(true)
            .with_mem(MemConfig::p4(true).with_l1d_kib(kib))
            .with_seed(ctx.seed);
        let spec = WorkloadSpec::threaded(id, 2).with_scale(ctx.scale);
        let mut sys = System::new(cfg);
        sys.add_process(spec);
        let report = sys.run_to_completion();
        L1Point {
            id,
            l1d_kib: kib,
            ipc: report.metrics.ipc,
            l1d_mpki: report.metrics.l1d_mpki,
        }
    })
}

/// Render the L1 ablation.
pub fn render_ablation_l1(points: &[L1Point]) -> String {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "L1D KiB".into(),
        "IPC".into(),
        "L1D MPKI".into(),
    ])
    .with_title("Ablation (§1): larger L1 data cache, multithreaded benchmarks (2 threads, HT on)");
    for p in points {
        t.row(vec![
            p.id.name().to_string(),
            format!("{}", p.l1d_kib),
            format!("{:.3}", p.ipc),
            format!("{:.1}", p.l1d_mpki),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_l1_reduces_misses() {
        let ctx = ExperimentCtx {
            scale: 0.02,
            repeats: 3,
            seed: 1,
        };
        let pts = ablation_l1(&[8, 64], &ctx);
        let mol8 = pts
            .iter()
            .find(|p| p.id == BenchmarkId::MolDyn && p.l1d_kib == 8)
            .unwrap();
        let mol64 = pts
            .iter()
            .find(|p| p.id == BenchmarkId::MolDyn && p.l1d_kib == 64)
            .unwrap();
        assert!(
            mol64.l1d_mpki < mol8.l1d_mpki,
            "8x larger L1D must reduce MPKI: {} vs {}",
            mol8.l1d_mpki,
            mol64.l1d_mpki
        );
    }

    #[test]
    fn dynamic_partition_not_slower_than_static() {
        let ctx = ExperimentCtx {
            scale: 0.02,
            repeats: 3,
            seed: 1,
        };
        let spec = WorkloadSpec::single(BenchmarkId::Db).with_scale(ctx.scale);
        let stat = run_with(spec, SystemConfig::p4(true).with_seed(ctx.seed));
        let dynp = run_with(
            spec,
            SystemConfig::p4(true)
                .with_partition(Partition::Dynamic)
                .with_seed(ctx.seed),
        );
        assert!(
            dynp <= stat + stat / 20,
            "dynamic ({dynp}) should not lose to static ({stat})"
        );
    }
}

/// One benchmark with the L2 streaming prefetcher off vs. on.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchPoint {
    /// The benchmark (2 threads, HT on).
    pub id: BenchmarkId,
    /// IPC without the prefetcher (the baseline reproduction).
    pub ipc_off: f64,
    /// IPC with the prefetcher.
    pub ipc_on: f64,
    /// L2 MPKI without the prefetcher.
    pub l2_mpki_off: f64,
    /// L2 MPKI with the prefetcher.
    pub l2_mpki_on: f64,
}

/// Extension ablation: the P4's L2 streaming prefetcher (the baseline
/// reproduction models it off; this measures what it buys the
/// multithreaded Java workloads). Serial.
pub fn ablation_prefetch(ctx: &ExperimentCtx) -> Vec<PrefetchPoint> {
    ablation_prefetch_on(&Engine::serial(), ctx)
}

/// The prefetcher ablation on `engine`: one job per benchmark (each job
/// runs the prefetcher-off and prefetcher-on configurations).
pub fn ablation_prefetch_on(engine: &Engine, ctx: &ExperimentCtx) -> Vec<PrefetchPoint> {
    engine.run(
        "ablation-prefetch",
        BenchmarkId::MULTITHREADED.to_vec(),
        |&id| {
            let run = |prefetch: bool| {
                let cfg = SystemConfig::p4(true)
                    .with_mem(MemConfig::p4(true).with_l2_prefetch(prefetch))
                    .with_seed(ctx.seed);
                let spec = WorkloadSpec::threaded(id, 2).with_scale(ctx.scale);
                let mut sys = System::new(cfg);
                sys.add_process(spec);
                let r = sys.run_to_completion();
                (r.metrics.ipc, r.metrics.l2_mpki)
            };
            let (ipc_off, l2_mpki_off) = run(false);
            let (ipc_on, l2_mpki_on) = run(true);
            PrefetchPoint {
                id,
                ipc_off,
                ipc_on,
                l2_mpki_off,
                l2_mpki_on,
            }
        },
    )
}

/// Render the prefetcher ablation.
pub fn render_ablation_prefetch(points: &[PrefetchPoint]) -> String {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "IPC (no pf)".into(),
        "IPC (pf)".into(),
        "L2 MPKI (no pf)".into(),
        "L2 MPKI (pf)".into(),
    ])
    .with_title("Ablation (extension): L2 streaming prefetcher, 2 threads, HT on");
    for p in points {
        t.row(vec![
            p.id.name().to_string(),
            format!("{:.3}", p.ipc_off),
            format!("{:.3}", p.ipc_on),
            format!("{:.1}", p.l2_mpki_off),
            format!("{:.1}", p.l2_mpki_on),
        ]);
    }
    t.render()
}

/// One benchmark with instant (synchronous) vs. background JIT.
#[derive(Debug, Clone, Copy)]
pub struct JitPoint {
    /// The benchmark (single-threaded — the interesting case: the
    /// compiler thread lands on the sibling context).
    pub id: BenchmarkId,
    /// Execution time with instant compilation (the baseline model).
    pub cycles_instant: u64,
    /// Execution time with the background compiler thread.
    pub cycles_background: u64,
    /// Methods compiled by the background thread.
    pub compiles: u64,
}

/// Extension ablation: background JIT compilation. The paper's
/// introduction stresses that the JVM's helper threads make even
/// single-threaded Java multithreaded; this measures the compiler
/// thread's effect on the HT machine (it occupies the sibling context
/// and extends the interpreted warm-up window). Serial.
pub fn ablation_jit(ctx: &ExperimentCtx) -> Vec<JitPoint> {
    ablation_jit_on(&Engine::serial(), ctx)
}

/// The background-JIT ablation on `engine`: one job per benchmark (each
/// job runs the instant and background configurations).
pub fn ablation_jit_on(engine: &Engine, ctx: &ExperimentCtx) -> Vec<JitPoint> {
    use jsmt_workloads::jvm_config_for;
    engine.run(
        "ablation-jit",
        BenchmarkId::SINGLE_THREADED.to_vec(),
        |&id| {
            let spec = WorkloadSpec::single(id).with_scale(ctx.scale);
            let run = |background: bool| {
                let mut sys = System::new(SystemConfig::p4(true).with_seed(ctx.seed));
                sys.add_process_with_jvm(spec, jvm_config_for(id).with_background_jit(background));
                let r = sys.run_to_completion();
                (r.cycles, r.processes[0].compiles_done)
            };
            let (cycles_instant, _) = run(false);
            let (cycles_background, compiles) = run(true);
            JitPoint {
                id,
                cycles_instant,
                cycles_background,
                compiles,
            }
        },
    )
}

/// Render the background-JIT ablation.
pub fn render_ablation_jit(points: &[JitPoint]) -> String {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "instant JIT".into(),
        "background JIT".into(),
        "change".into(),
        "methods compiled".into(),
    ])
    .with_title("Ablation (extension): background JIT compiler thread, single-threaded, HT on");
    for p in points {
        t.row(vec![
            p.id.name().to_string(),
            format!("{}", p.cycles_instant),
            format!("{}", p.cycles_background),
            format!(
                "{:+.2}%",
                pct_change(p.cycles_instant as f64, p.cycles_background as f64)
            ),
            format!("{}", p.compiles),
        ]);
    }
    t.render()
}
