//! Crash-repro bundles: every supervised-cell failure, made replayable.
//!
//! When a cell exhausts its attempts the supervisor serializes everything
//! needed to re-create the failure into one sealed [`jsmt_snapshot`] file
//! ([`KIND_BUNDLE`]): the experiment fingerprint (scale/repeats/seed),
//! the cell's stage and label, the failure attribution (kind, component,
//! cycle, message), the fault spec that was armed, the supervisor knobs,
//! and the crash tail — the last periodic `System::checkpoint` and the
//! merged counter bank, for post-mortem inspection with the existing
//! snapshot tooling.
//!
//! Because every cell is a pure function of `(ctx, cell inputs, fault
//! plan)`, replaying is exact: [`CrashBundle::replay`] re-arms the
//! recorded fault spec, re-runs just that cell under a zero-retry
//! supervisor, and checks that the same failure recurs — same kind, same
//! component, same machine cycle. Wall-clock failures (`deadline`,
//! `cancelled`) are inherently nondeterministic in *cycle*, so they
//! compare by kind alone.

use std::path::{Path, PathBuf};

use jsmt_snapshot::{open, seal, SnapshotError, Writer};
use jsmt_workloads::BenchmarkId;

use super::litmus::run_checked_cell;
use super::pairing::run_pair;
use super::supervise::{CellFailure, CrashTail, FailureKind, SupervisorCfg};
use super::{solo_baseline_cycles, Engine, ExperimentCtx};
use crate::error::{Context, ErrorKind, JsmtError};

/// Snapshot kind tag for crash-repro bundle files.
pub const KIND_BUNDLE: u32 = 3;

/// A self-contained record of one supervised-cell failure.
#[derive(Debug, Clone)]
pub struct CrashBundle {
    /// `ExperimentCtx::scale` bits of the failed run.
    pub scale_bits: u64,
    /// `ExperimentCtx::repeats` of the failed run.
    pub repeats: u64,
    /// `ExperimentCtx::seed` of the failed run.
    pub seed: u64,
    /// Stage the cell belonged to (`pair-grid`, `solo-baselines`).
    pub stage: String,
    /// Cell label (`compress+db`, `jess`).
    pub label: String,
    /// Submission index within the stage.
    pub index: u64,
    /// Failure classification.
    pub kind: FailureKind,
    /// Component attribution.
    pub component: String,
    /// Machine cycle of the failure (0 when unknown).
    pub cycle: u64,
    /// Human-readable failure message.
    pub message: String,
    /// Attempts the cell consumed.
    pub attempts: u32,
    /// The fault spec armed when the cell died (empty = none).
    pub fault_spec: String,
    /// Livelock watchdog threshold in force.
    pub livelock_cycles: u64,
    /// Periodic-checkpoint interval in force.
    pub checkpoint_every: u64,
    /// Wall-clock deadline in force, in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Last periodic `System::checkpoint` (sealed snapshot; may be
    /// empty when periodic checkpointing was off).
    pub checkpoint: Vec<u8>,
    /// Last merged counter bank (`jsmt_snapshot::save_bytes` payload;
    /// may be empty).
    pub counters: Vec<u8>,
}

/// Outcome of replaying a crash bundle.
#[derive(Debug)]
pub struct ReplayReport {
    /// The recorded failure recurred (same kind; for deterministic kinds
    /// also same component and machine cycle).
    pub reproduced: bool,
    /// What the replay observed; `None` when the cell *succeeded* on
    /// replay (e.g. the bundle recorded a transient environment problem).
    pub observed: Option<CellFailure>,
}

impl CrashBundle {
    /// Assemble a bundle from a just-recorded failure. Captures the
    /// currently armed fault spec so the bundle is self-contained.
    pub(crate) fn from_failure(
        ctx: &ExperimentCtx,
        cfg: &SupervisorCfg,
        failure: &CellFailure,
        tail: CrashTail,
    ) -> Self {
        CrashBundle {
            scale_bits: ctx.scale.to_bits(),
            repeats: ctx.repeats,
            seed: ctx.seed,
            stage: failure.stage.clone(),
            label: failure.label.clone(),
            index: failure.index as u64,
            kind: failure.kind,
            component: failure.component.clone(),
            cycle: failure.cycle,
            message: failure.message.clone(),
            attempts: failure.attempts,
            fault_spec: jsmt_faults::active_spec().unwrap_or_default(),
            livelock_cycles: cfg.livelock_cycles,
            checkpoint_every: cfg.checkpoint_every,
            deadline_ms: cfg.deadline.map(|d| d.as_millis() as u64).unwrap_or(0),
            checkpoint: tail.checkpoint.unwrap_or_default(),
            counters: tail.counters.unwrap_or_default(),
        }
    }

    /// The experiment fingerprint the bundle was recorded under.
    pub fn ctx(&self) -> ExperimentCtx {
        ExperimentCtx {
            scale: f64::from_bits(self.scale_bits),
            repeats: self.repeats,
            seed: self.seed,
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.scale_bits);
        w.put_u64(self.repeats);
        w.put_u64(self.seed);
        w.put_str(&self.stage);
        w.put_str(&self.label);
        w.put_u64(self.index);
        w.put_u8(self.kind.tag());
        w.put_str(&self.component);
        w.put_u64(self.cycle);
        w.put_str(&self.message);
        w.put_u32(self.attempts);
        w.put_str(&self.fault_spec);
        w.put_u64(self.livelock_cycles);
        w.put_u64(self.checkpoint_every);
        w.put_u64(self.deadline_ms);
        w.put_usize(self.checkpoint.len());
        w.put_raw(&self.checkpoint);
        w.put_usize(self.counters.len());
        w.put_raw(&self.counters);
        seal(KIND_BUNDLE, &w.into_bytes())
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = open(bytes, KIND_BUNDLE)?;
        let scale_bits = r.get_u64()?;
        let repeats = r.get_u64()?;
        let seed = r.get_u64()?;
        let stage = r.get_str()?;
        let label = r.get_str()?;
        let index = r.get_u64()?;
        let kind = FailureKind::from_tag(r.get_u8()?)
            .ok_or(SnapshotError::Corrupt("unknown failure kind tag in bundle"))?;
        let component = r.get_str()?;
        let cycle = r.get_u64()?;
        let message = r.get_str()?;
        let attempts = r.get_u32()?;
        let fault_spec = r.get_str()?;
        let livelock_cycles = r.get_u64()?;
        let checkpoint_every = r.get_u64()?;
        let deadline_ms = r.get_u64()?;
        let cklen = r.get_len(1)?;
        let checkpoint = r.get_raw(cklen)?.to_vec();
        let colen = r.get_len(1)?;
        let counters = r.get_raw(colen)?.to_vec();
        r.expect_end()?;
        Ok(CrashBundle {
            scale_bits,
            repeats,
            seed,
            stage,
            label,
            index,
            kind,
            component,
            cycle,
            message,
            attempts,
            fault_spec,
            livelock_cycles,
            checkpoint_every,
            deadline_ms,
            checkpoint,
            counters,
        })
    }

    /// Write the bundle into `dir` (created if missing) and return its
    /// path. Goes through the durable injectable writer, so bundle
    /// emission itself participates in fault injection under the
    /// `bundle` target.
    pub fn save_in(&self, dir: &Path) -> Result<PathBuf, JsmtError> {
        std::fs::create_dir_all(dir)
            .context(format!("creating bundle directory '{}'", dir.display()))?;
        let name: String = format!("{}-{}", self.stage, self.label)
            .chars()
            .map(|c| if c == '/' || c == '\\' { '_' } else { c })
            .collect();
        let path = dir.join(format!("{name}.crash"));
        jsmt_faults::fsio::persist(&path, &self.to_bytes(), "bundle")
            .context(format!("writing crash bundle '{}'", path.display()))?;
        Ok(path)
    }

    /// Load and validate a bundle file.
    pub fn load(path: &Path) -> Result<Self, JsmtError> {
        let bytes =
            std::fs::read(path).context(format!("reading crash bundle '{}'", path.display()))?;
        Self::from_bytes(&bytes)
            .map_err(JsmtError::from)
            .context(format!("decoding crash bundle '{}'", path.display()))
    }

    /// One-line human summary of the recorded failure.
    pub fn summary(&self) -> String {
        format!(
            "{}/{}: {} in '{}' at cycle {} after {} attempt(s) (faults: {})",
            self.stage,
            self.label,
            self.kind,
            self.component,
            self.cycle,
            self.attempts,
            if self.fault_spec.is_empty() {
                "none"
            } else {
                &self.fault_spec
            }
        )
    }

    /// Re-run the recorded cell and check that the recorded failure
    /// recurs.
    ///
    /// Solo baselines are precomputed *before* the recorded fault spec is
    /// armed, mirroring the original grid run where the cell's faults
    /// fired inside the cell's own scope; the cell itself then runs under
    /// a zero-retry supervisor with the recorded watchdog thresholds.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Replay`] when the bundle's stage or label cannot be
    /// mapped back to a runnable cell, or its fault spec no longer
    /// parses.
    pub fn replay(&self) -> Result<ReplayReport, JsmtError> {
        let ctx = self.ctx();
        let cell = ReplayCell::parse(&self.stage, &self.label)?;
        // Baselines first, with no faults armed (matches the original
        // run's prewarm stage, which completed before this cell died).
        jsmt_faults::clear();
        let baselines = cell.baselines(&ctx);

        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                jsmt_faults::clear();
            }
        }
        let _disarm = Disarm;
        if !self.fault_spec.is_empty() {
            jsmt_faults::install_spec(&self.fault_spec).map_err(|e| {
                JsmtError::new(
                    ErrorKind::Replay,
                    format!(
                        "bundle fault spec '{}' no longer parses: {e}",
                        self.fault_spec
                    ),
                )
            })?;
        }

        let cfg = SupervisorCfg {
            retries: 0,
            deadline: (self.deadline_ms > 0)
                .then(|| std::time::Duration::from_millis(self.deadline_ms)),
            livelock_cycles: self.livelock_cycles,
            checkpoint_every: self.checkpoint_every,
            bundle_dir: None,
            // Replay is a single attempt; no backoff is ever slept.
            backoff_base: std::time::Duration::ZERO,
            backoff_cap: std::time::Duration::ZERO,
        };
        let engine = Engine::serial();
        let out = engine.run_supervised(
            &self.stage,
            &cfg,
            &ctx,
            vec![(self.label.clone(), cell)],
            |cell| cell.run(&ctx, &baselines),
        );
        let observed = out.into_iter().next().expect("one replay cell").err();
        let reproduced = match &observed {
            None => false,
            Some(f) => {
                f.kind == self.kind
                    && match f.kind {
                        // Deterministic failures must match exactly.
                        FailureKind::Panic | FailureKind::Livelock => {
                            f.component == self.component && f.cycle == self.cycle
                        }
                        // Wall-clock / process-environment failures
                        // reproduce by kind alone (an in-process replay
                        // cannot re-kill a worker process).
                        FailureKind::Deadline
                        | FailureKind::Cancelled
                        | FailureKind::WorkerDeath => true,
                    }
            }
        };
        Ok(ReplayReport {
            reproduced,
            observed,
        })
    }
}

/// A runnable reconstruction of the failed cell.
#[derive(Debug)]
enum ReplayCell {
    Pair(BenchmarkId, BenchmarkId),
    Solo(BenchmarkId),
    Litmus(BenchmarkId, u64),
}

impl ReplayCell {
    fn parse(stage: &str, label: &str) -> Result<Self, JsmtError> {
        let unknown = |what: &str| {
            JsmtError::new(
                ErrorKind::Replay,
                format!("bundle records unknown {what} '{label}' in stage '{stage}'"),
            )
        };
        match stage {
            "pair-grid" => {
                let (a, b) = label.split_once('+').ok_or_else(|| unknown("pair label"))?;
                Ok(ReplayCell::Pair(
                    BenchmarkId::parse(a).ok_or_else(|| unknown("benchmark"))?,
                    BenchmarkId::parse(b).ok_or_else(|| unknown("benchmark"))?,
                ))
            }
            "solo-baselines" => Ok(ReplayCell::Solo(
                BenchmarkId::parse(label).ok_or_else(|| unknown("benchmark"))?,
            )),
            "litmus-sweep" => {
                let (shape, seed) = label
                    .split_once("@s")
                    .ok_or_else(|| unknown("litmus label"))?;
                let shape = BenchmarkId::parse(shape)
                    .filter(|s| s.is_litmus())
                    .ok_or_else(|| unknown("litmus shape"))?;
                let seed = seed.parse().map_err(|_| unknown("litmus seed"))?;
                Ok(ReplayCell::Litmus(shape, seed))
            }
            _ => Err(JsmtError::new(
                ErrorKind::Replay,
                format!("bundle records unknown stage '{stage}'; cannot reconstruct the cell"),
            )),
        }
    }

    fn baselines(&self, ctx: &ExperimentCtx) -> (u64, u64) {
        match self {
            ReplayCell::Pair(a, b) => {
                (solo_baseline_cycles(*a, ctx), solo_baseline_cycles(*b, ctx))
            }
            ReplayCell::Solo(_) | ReplayCell::Litmus(..) => (0, 0),
        }
    }

    fn run(&self, ctx: &ExperimentCtx, baselines: &(u64, u64)) -> u64 {
        match self {
            ReplayCell::Pair(a, b) => {
                let o = run_pair(*a, *b, baselines.0, baselines.1, ctx);
                o.completions.0 + o.completions.1
            }
            ReplayCell::Solo(id) => solo_baseline_cycles(*id, ctx),
            // Re-runs the same checked cell body as the sweep, so a
            // forbidden outcome panics identically on replay.
            ReplayCell::Litmus(shape, seed) => run_checked_cell(*shape, *seed, ctx).cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CrashBundle {
        CrashBundle {
            scale_bits: 0.01f64.to_bits(),
            repeats: 1,
            seed: 0xA5,
            stage: "pair-grid".into(),
            label: "compress+db".into(),
            index: 1,
            kind: FailureKind::Panic,
            component: "system".into(),
            cycle: 4242,
            message: "injected fault".into(),
            attempts: 2,
            fault_spec: "panic,component=system,cycle=4000".into(),
            livelock_cycles: 2_000_000,
            checkpoint_every: 0,
            deadline_ms: 0,
            checkpoint: vec![1, 2, 3],
            counters: vec![9, 8],
        }
    }

    #[test]
    fn bundle_bytes_round_trip() {
        let b = sample();
        let back = CrashBundle::from_bytes(&b.to_bytes()).expect("round trip");
        assert_eq!(back.stage, b.stage);
        assert_eq!(back.label, b.label);
        assert_eq!(back.kind, b.kind);
        assert_eq!(back.component, b.component);
        assert_eq!(back.cycle, b.cycle);
        assert_eq!(back.fault_spec, b.fault_spec);
        assert_eq!(back.checkpoint, b.checkpoint);
        assert_eq!(back.counters, b.counters);
        assert_eq!(back.ctx().seed, 0xA5);
    }

    #[test]
    fn corrupt_bundle_is_rejected_with_snapshot_kind() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = CrashBundle::from_bytes(&bytes).expect_err("corrupt");
        let _ = err; // SnapshotError variant depends on which byte flipped
        let dir = std::env::temp_dir().join(format!("jsmt-bundle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.crash");
        std::fs::write(&path, &bytes).unwrap();
        let e = CrashBundle::load(&path).expect_err("corrupt file");
        assert_eq!(e.kind(), crate::error::ErrorKind::Snapshot);
        assert!(e.to_string().contains("decoding crash bundle"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_cell_parsing_rejects_unknown_shapes() {
        assert!(ReplayCell::parse("pair-grid", "compress+db").is_ok());
        assert!(ReplayCell::parse("solo-baselines", "jess").is_ok());
        let e = ReplayCell::parse("mystery-stage", "x").unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Replay);
        assert!(ReplayCell::parse("pair-grid", "nosuch+db").is_err());
        assert!(ReplayCell::parse("pair-grid", "noplus").is_err());
        assert!(ReplayCell::parse("litmus-sweep", "litmus-mp@s7").is_ok());
        assert!(ReplayCell::parse("litmus-sweep", "compress@s7").is_err());
        assert!(ReplayCell::parse("litmus-sweep", "litmus-mp@sseven").is_err());
        assert!(ReplayCell::parse("litmus-sweep", "litmus-mp").is_err());
    }
}
