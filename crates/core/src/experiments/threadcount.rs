//! §4.4 — impact of the software thread count on the 2-context machine:
//! Figure 12.

use jsmt_report::Table;
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

use super::{solo_run, Engine, ExperimentCtx};

/// IPC of one benchmark at one thread count (HT enabled).
#[derive(Debug, Clone, Copy)]
pub struct ThreadPoint {
    /// The benchmark.
    pub id: BenchmarkId,
    /// Software threads (multiplexed onto the two contexts when > 2).
    pub threads: usize,
    /// Machine IPC.
    pub ipc: f64,
    /// L1D misses per kilo-instruction (the paper explains MolDyn's
    /// 4-thread IPC drop with "substantially increased L1 data cache
    /// misses").
    pub l1d_mpki: f64,
}

/// The paper's Figure 12 sweep: thread counts 1–16 on the HT machine.
/// Serial.
pub fn fig12_ipc_vs_threads(threads_list: &[usize], ctx: &ExperimentCtx) -> Vec<ThreadPoint> {
    fig12_ipc_vs_threads_on(&Engine::serial(), threads_list, ctx)
}

/// The Figure 12 sweep on `engine`: one job per `(benchmark, threads)`
/// cell.
pub fn fig12_ipc_vs_threads_on(
    engine: &Engine,
    threads_list: &[usize],
    ctx: &ExperimentCtx,
) -> Vec<ThreadPoint> {
    let cells: Vec<(BenchmarkId, usize)> = BenchmarkId::MULTITHREADED
        .iter()
        .flat_map(|&id| threads_list.iter().map(move |&threads| (id, threads)))
        .collect();
    engine.run("fig12-threads", cells, |&(id, threads)| {
        let spec = WorkloadSpec::threaded(id, threads).with_scale(ctx.scale);
        let report = solo_run(spec, true, ctx.seed);
        ThreadPoint {
            id,
            threads,
            ipc: report.metrics.ipc,
            l1d_mpki: report.metrics.l1d_mpki,
        }
    })
}

/// Render Figure 12 as an IPC-vs-threads table with the L1D column that
/// explains the MolDyn anomaly.
pub fn render_fig12(points: &[ThreadPoint]) -> String {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "Threads".into(),
        "IPC".into(),
        "L1D MPKI".into(),
    ])
    .with_title("Figure 12. IPC vs. the number of threads (HT enabled)");
    for p in points {
        t.row(vec![
            p.id.name().to_string(),
            format!("{}", p.threads),
            format!("{:.3}", p.ipc),
            format!("{:.1}", p.l1d_mpki),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_a_point_per_cell() {
        let ctx = ExperimentCtx {
            scale: 0.02,
            repeats: 3,
            seed: 1,
        };
        let pts = fig12_ipc_vs_threads(&[1, 2], &ctx);
        assert_eq!(pts.len(), BenchmarkId::MULTITHREADED.len() * 2);
        let rendered = render_fig12(&pts);
        assert!(rendered.contains("MolDyn"));
        assert!(rendered.contains("PseudoJBB"));
    }

    #[test]
    fn two_threads_beat_one_for_parallel_kernels() {
        let ctx = ExperimentCtx {
            scale: 0.03,
            repeats: 3,
            seed: 1,
        };
        let run = |threads| {
            let spec =
                WorkloadSpec::threaded(BenchmarkId::MonteCarlo, threads).with_scale(ctx.scale);
            solo_run(spec, true, ctx.seed).metrics.ipc
        };
        let one = run(1);
        let two = run(2);
        assert!(
            two > one,
            "1→2 threads must raise IPC: {one:.3} vs {two:.3}"
        );
    }
}
