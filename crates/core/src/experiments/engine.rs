//! The parallel experiment engine.
//!
//! Every figure in the paper is a grid of *independent* whole-system
//! simulations (the 9×9 pairing matrix, the ablation sweeps, the
//! IPC-vs-thread-count curves). Each simulation is a pure function of
//! `(SystemConfig, workload specs, seed)`, so the grid can be fanned
//! across a worker pool with **no effect on the results**: the engine
//! collects outputs by job index, which makes the assembled result
//! independent of worker scheduling and therefore bit-identical to a
//! serial run (enforced by `tests/engine_determinism.rs`).
//!
//! The engine also memoizes the HT-off solo baselines
//! ([`super::solo_baseline_cycles`]) that the pairing experiments divide
//! by: a full pairing grid needs each benchmark's baseline in 2·N² cells
//! but simulates it exactly once (enforced by the cache's stats).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use jsmt_workloads::BenchmarkId;

use super::{solo_baseline_cycles, ExperimentCtx};

/// How an experiment's independent jobs are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run jobs one after another on the calling thread.
    Serial,
    /// Fan jobs across a fixed pool of `n` worker threads.
    Threads(usize),
}

impl Parallelism {
    /// The default for the `repro` CLI: `JSMT_JOBS` if set (0 or 1 means
    /// serial), otherwise one worker per available core. An unparseable
    /// `JSMT_JOBS` is *not* silently swallowed: it warns on stderr and
    /// falls back to the core count, so a typo degrades loudly instead
    /// of mysteriously changing the worker count.
    pub fn from_env() -> Self {
        let parsed = match std::env::var("JSMT_JOBS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) => Some(n),
                Err(_) => {
                    eprintln!(
                        "warning: JSMT_JOBS={v:?} is not a number of workers; \
                         using one worker per available core"
                    );
                    None
                }
            },
            Err(_) => None,
        };
        match parsed {
            Some(0) | Some(1) => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::Threads(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        }
    }

    /// Number of worker threads this setting uses.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// Wall-clock cost of one job, for the CLI's speedup report.
#[derive(Debug, Clone)]
pub struct JobTiming {
    /// Stage the job belongs to (e.g. `"pair-grid"`).
    pub stage: String,
    /// Index of the job within its stage's submission order.
    pub index: usize,
    /// Time spent computing the job.
    pub elapsed: Duration,
}

/// Aggregated timing of one `Engine::run` call.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// Stage label.
    pub stage: String,
    /// Number of jobs in the stage.
    pub jobs: usize,
    /// Sum of per-job compute time (serial-equivalent cost).
    pub busy: Duration,
    /// Longest single job.
    pub longest: Duration,
    /// Wall-clock time of the whole stage.
    pub wall: Duration,
}

impl StageTiming {
    /// Mean number of jobs in flight (`busy / wall`). On an idle
    /// multi-core host this approximates the speedup over serial; under
    /// CPU contention per-job elapsed time includes preemption, so it
    /// overstates it — compare `wall` across `--jobs` settings for a
    /// true speedup measurement.
    pub fn concurrency(&self) -> f64 {
        self.busy.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Hit/miss statistics of the memoized baseline cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaselineCacheStats {
    /// Total baseline requests.
    pub lookups: u64,
    /// Requests that simulated the baseline (first request per key).
    pub misses: u64,
}

impl BaselineCacheStats {
    /// Requests answered from the cache.
    pub fn hits(&self) -> u64 {
        self.lookups - self.misses
    }
}

/// Cache key: everything [`solo_baseline_cycles`] depends on. `scale` is
/// stored by bit pattern so the key is `Eq`/`Hash`.
type BaselineKey = (BenchmarkId, u64, u64, u64, bool);

fn baseline_key(id: BenchmarkId, ctx: &ExperimentCtx, ht: bool) -> BaselineKey {
    (id, ctx.scale.to_bits(), ctx.seed, ctx.repeats, ht)
}

/// Memoized solo baselines. Concurrent first requests for the same key
/// are serialized through a per-key [`OnceLock`], so each baseline is
/// simulated exactly once no matter how many workers race for it.
#[derive(Default)]
struct BaselineCache {
    slots: Mutex<HashMap<BaselineKey, Arc<OnceLock<u64>>>>,
    lookups: AtomicU64,
    misses: AtomicU64,
}

impl BaselineCache {
    fn get_or_compute(&self, key: BaselineKey, compute: impl FnOnce() -> u64) -> u64 {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut slots = self.slots.lock().expect("baseline cache poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        *slot.get_or_init(|| {
            self.misses.fetch_add(1, Ordering::Relaxed);
            compute()
        })
    }

    fn stats(&self) -> BaselineCacheStats {
        BaselineCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Serialize every *filled* slot, sorted by key for canonical bytes.
    fn export(&self, w: &mut jsmt_snapshot::Writer) {
        let mut entries: Vec<(BaselineKey, u64)> = {
            let slots = self.slots.lock().expect("baseline cache poisoned");
            slots
                .iter()
                .filter_map(|(&key, slot)| slot.get().map(|&v| (key, v)))
                .collect()
        };
        entries.sort_by_key(|&((id, scale, seed, repeats, ht), _)| {
            (id.tag(), scale, seed, repeats, ht)
        });
        w.put_usize(entries.len());
        for ((id, scale_bits, seed, repeats, ht), value) in entries {
            w.put_u8(id.tag());
            w.put_u64(scale_bits);
            w.put_u64(seed);
            w.put_u64(repeats);
            w.put_bool(ht);
            w.put_u64(value);
        }
    }

    /// Pre-fill slots from [`Self::export`] bytes. Imported entries are
    /// warm-start data, not requests: the hit/miss statistics are left
    /// untouched. A conflicting already-filled slot is an error (the
    /// snapshot disagrees with a baseline this process simulated).
    fn import(
        &self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        use jsmt_snapshot::SnapshotError;
        let n = r.get_len(34)?;
        let mut slots = self.slots.lock().expect("baseline cache poisoned");
        for _ in 0..n {
            let id = BenchmarkId::from_tag(r.get_u8()?).ok_or(SnapshotError::Corrupt(
                "unknown benchmark tag in baseline cache",
            ))?;
            let key: BaselineKey = (id, r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_bool()?);
            let value = r.get_u64()?;
            let slot = Arc::clone(slots.entry(key).or_default());
            if slot.set(value).is_err() && *slot.get().expect("slot filled") != value {
                return Err(SnapshotError::Corrupt(
                    "imported baseline contradicts a computed one",
                ));
            }
        }
        Ok(())
    }
}

/// The deterministic job-runner shared by every experiment driver.
pub struct Engine {
    par: Parallelism,
    baselines: BaselineCache,
    /// Optional persistent result cache (`--cache-dir` / `JSMT_CACHE`);
    /// cells found here are verified, never recomputed.
    result_cache: Option<Arc<jsmt_cache::Cache>>,
    job_timings: Mutex<Vec<JobTiming>>,
    stage_timings: Mutex<Vec<StageTiming>>,
}

impl Engine {
    /// An engine with the given parallelism.
    pub fn new(par: Parallelism) -> Self {
        Engine {
            par,
            baselines: BaselineCache::default(),
            result_cache: None,
            job_timings: Mutex::new(Vec::new()),
            stage_timings: Mutex::new(Vec::new()),
        }
    }

    /// A strictly serial engine (the reference execution order).
    pub fn serial() -> Self {
        Engine::new(Parallelism::Serial)
    }

    /// An engine configured from `JSMT_JOBS` / the host core count.
    pub fn from_env() -> Self {
        Engine::new(Parallelism::from_env())
    }

    /// The engine's parallelism setting.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Attach a persistent result cache: solo baselines and pair cells
    /// are looked up (and, on miss, stored) there, in addition to the
    /// in-memory memoization. A cached cell is byte-identical to a
    /// simulated one, so attaching a cache never changes output.
    pub fn set_result_cache(&mut self, cache: Arc<jsmt_cache::Cache>) {
        self.result_cache = Some(cache);
    }

    /// The attached persistent result cache, if any.
    pub fn result_cache(&self) -> Option<&jsmt_cache::Cache> {
        self.result_cache.as_deref()
    }

    /// Run one stage of independent jobs and return their outputs in
    /// submission order, regardless of worker scheduling.
    ///
    /// `f` must be a pure function of its job (all jsmt simulations
    /// are); under that contract the output vector is bit-identical for
    /// every [`Parallelism`] setting.
    pub fn run<I, O, F>(&self, stage: &str, jobs: Vec<I>, f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        let stage_start = Instant::now();
        let n = jobs.len();
        let workers = self.par.workers().min(n.max(1));
        let mut timed: Vec<(usize, Duration)> = Vec::with_capacity(n);
        let mut out: Vec<Option<O>> = Vec::with_capacity(n);

        if workers <= 1 {
            for (index, job) in jobs.iter().enumerate() {
                let t0 = Instant::now();
                out.push(Some(f(job)));
                timed.push((index, t0.elapsed()));
            }
        } else {
            out.extend((0..n).map(|_| None));
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Duration, O)>();
            let jobs = &jobs;
            let f = &f;
            let next = &next;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    scope.spawn(move || loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let t0 = Instant::now();
                        let result = f(&jobs[index]);
                        if tx.send((index, t0.elapsed(), result)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (index, elapsed, result) in rx {
                    out[index] = Some(result);
                    timed.push((index, elapsed));
                }
            });
            timed.sort_by_key(|&(index, _)| index);
        }

        let busy: Duration = timed.iter().map(|&(_, d)| d).sum();
        let longest = timed.iter().map(|&(_, d)| d).max().unwrap_or_default();
        {
            let mut jt = self.job_timings.lock().expect("timings poisoned");
            jt.extend(timed.iter().map(|&(index, elapsed)| JobTiming {
                stage: stage.into(),
                index,
                elapsed,
            }));
        }
        self.stage_timings
            .lock()
            .expect("timings poisoned")
            .push(StageTiming {
                stage: stage.into(),
                jobs: n,
                busy,
                longest,
                wall: stage_start.elapsed(),
            });

        out.into_iter()
            .map(|o| o.expect("every job index was collected"))
            .collect()
    }

    /// Memoized [`solo_baseline_cycles`]: the first request per
    /// `(benchmark, scale, seed, repeats)` consults the persistent
    /// result cache (when attached) and simulates only on a true miss;
    /// every later request (any worker) is an in-memory hit.
    pub fn solo_baseline(&self, id: BenchmarkId, ctx: &ExperimentCtx) -> u64 {
        self.baselines
            .get_or_compute(baseline_key(id, ctx, false), || match &self.result_cache {
                Some(cache) => super::rescache::cached_solo_baseline(cache, id, ctx),
                None => solo_baseline_cycles(id, ctx),
            })
    }

    /// [`super::run_pair`] through the persistent result cache (when
    /// attached): the cell is simulated only if no verified entry
    /// exists, and a fresh simulation is stored for every future run.
    pub fn run_pair_cached(
        &self,
        a: BenchmarkId,
        b: BenchmarkId,
        ctx: &ExperimentCtx,
    ) -> super::PairOutcome {
        let a_solo = self.solo_baseline(a, ctx);
        let b_solo = self.solo_baseline(b, ctx);
        match &self.result_cache {
            Some(cache) => super::rescache::cached_run_pair(cache, a, b, a_solo, b_solo, ctx),
            None => super::run_pair(a, b, a_solo, b_solo, ctx),
        }
    }

    /// Compute the baselines for `ids` as one engine stage, so that the
    /// following grid stage finds them all cached (and so baseline
    /// simulation itself is parallelized).
    pub fn prewarm_baselines(&self, ids: &[BenchmarkId], ctx: &ExperimentCtx) {
        let jobs: Vec<BenchmarkId> = ids.to_vec();
        self.run("solo-baselines", jobs, |&id| self.solo_baseline(id, ctx));
    }

    /// Baseline-cache statistics accumulated so far.
    pub fn baseline_stats(&self) -> BaselineCacheStats {
        self.baselines.stats()
    }

    /// Serialize the filled baseline-cache entries (sorted, canonical)
    /// so a later process can warm-start via [`Self::import_baselines`].
    pub fn export_baselines(&self, w: &mut jsmt_snapshot::Writer) {
        self.baselines.export(w);
    }

    /// Pre-fill the baseline cache from [`Self::export_baselines`]
    /// bytes. Imported entries do not count as lookups or misses.
    pub fn import_baselines(
        &self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        self.baselines.import(r)
    }

    /// Per-job timings accumulated so far (submission order per stage).
    pub fn job_timings(&self) -> Vec<JobTiming> {
        self.job_timings.lock().expect("timings poisoned").clone()
    }

    /// Per-stage timing summaries accumulated so far.
    pub fn stage_timings(&self) -> Vec<StageTiming> {
        self.stage_timings.lock().expect("timings poisoned").clone()
    }

    /// Human-readable timing report for the CLI (one line per stage).
    pub fn timing_report(&self) -> String {
        let stages = self.stage_timings();
        if stages.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "# engine: {:?} ({} workers)\n",
            self.par,
            self.par.workers()
        );
        for s in &stages {
            out.push_str(&format!(
                "#   {:<16} {:>4} jobs  busy {:>8.2?}  longest {:>8.2?}  wall {:>8.2?}  concurrency {:.2}x\n",
                s.stage, s.jobs, s.busy, s.longest, s.wall, s.concurrency()
            ));
        }
        let b = self.baseline_stats();
        if b.lookups > 0 {
            out.push_str(&format!(
                "#   baseline cache: {} lookups, {} simulated, {} hits\n",
                b.lookups,
                b.misses,
                b.hits()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_follow_submission_order_not_schedule() {
        let jobs: Vec<u64> = (0..64).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(8),
        ] {
            let engine = Engine::new(par);
            let got = engine.run("square", jobs.clone(), |&x| {
                // Make early jobs finish last so collection order and
                // submission order disagree under parallelism.
                if x < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
                x * x
            });
            assert_eq!(
                got,
                jobs.iter().map(|x| x * x).collect::<Vec<_>>(),
                "{par:?}"
            );
        }
    }

    #[test]
    fn empty_stage_is_fine() {
        let engine = Engine::new(Parallelism::Threads(4));
        let got: Vec<u64> = engine.run("empty", Vec::<u64>::new(), |&x| x);
        assert!(got.is_empty());
        assert_eq!(engine.stage_timings()[0].jobs, 0);
    }

    #[test]
    fn parallelism_workers_floor_at_one() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
    }

    #[test]
    fn baseline_cache_hits_and_misses_are_counted() {
        let ctx = ExperimentCtx {
            scale: 0.01,
            repeats: 2,
            seed: 7,
        };
        let engine = Engine::serial();
        let a = engine.solo_baseline(BenchmarkId::Compress, &ctx);
        let b = engine.solo_baseline(BenchmarkId::Compress, &ctx);
        assert_eq!(a, b);
        assert_eq!(
            engine.baseline_stats(),
            BaselineCacheStats {
                lookups: 2,
                misses: 1
            }
        );
        // A different key is a fresh miss…
        engine.solo_baseline(BenchmarkId::Db, &ctx);
        assert_eq!(engine.baseline_stats().misses, 2);
        // …and a different scale is too.
        let ctx2 = ExperimentCtx { scale: 0.02, ..ctx };
        engine.solo_baseline(BenchmarkId::Compress, &ctx2);
        let s = engine.baseline_stats();
        assert_eq!((s.lookups, s.misses, s.hits()), (4, 3, 1));
    }

    #[test]
    fn cached_baseline_equals_uncached() {
        let ctx = ExperimentCtx {
            scale: 0.01,
            repeats: 2,
            seed: 7,
        };
        let engine = Engine::new(Parallelism::Threads(4));
        engine.prewarm_baselines(&[BenchmarkId::Compress, BenchmarkId::Db], &ctx);
        assert_eq!(
            engine.solo_baseline(BenchmarkId::Compress, &ctx),
            solo_baseline_cycles(BenchmarkId::Compress, &ctx)
        );
        assert_eq!(
            engine.solo_baseline(BenchmarkId::Db, &ctx),
            solo_baseline_cycles(BenchmarkId::Db, &ctx)
        );
    }

    #[test]
    fn concurrent_requests_simulate_once_per_key() {
        let ctx = ExperimentCtx {
            scale: 0.01,
            repeats: 2,
            seed: 7,
        };
        let engine = Engine::new(Parallelism::Threads(8));
        // 32 jobs all demanding the same two baselines, no prewarm: the
        // per-key OnceLock must still collapse them to one simulation
        // each.
        let jobs: Vec<usize> = (0..32).collect();
        let vals = engine.run("hammer", jobs, |&i| {
            let id = if i % 2 == 0 {
                BenchmarkId::Compress
            } else {
                BenchmarkId::Db
            };
            engine.solo_baseline(id, &ctx)
        });
        assert!(vals.iter().step_by(2).all(|&v| v == vals[0]));
        assert!(vals.iter().skip(1).step_by(2).all(|&v| v == vals[1]));
        let s = engine.baseline_stats();
        assert_eq!(s.lookups, 32);
        assert_eq!(s.misses, 2, "each distinct key simulated exactly once");
    }

    #[test]
    fn baseline_export_import_round_trips() {
        let ctx = ExperimentCtx {
            scale: 0.01,
            repeats: 2,
            seed: 7,
        };
        let donor = Engine::serial();
        let a = donor.solo_baseline(BenchmarkId::Compress, &ctx);
        let b = donor.solo_baseline(BenchmarkId::Db, &ctx);
        let mut w = jsmt_snapshot::Writer::new();
        donor.export_baselines(&mut w);
        let bytes = w.into_bytes();

        // A fresh engine warm-started from the bytes answers both keys
        // without simulating (misses stay zero).
        let heir = Engine::serial();
        let mut r = jsmt_snapshot::Reader::new(&bytes);
        heir.import_baselines(&mut r).expect("import");
        r.expect_end().expect("no trailing bytes");
        assert_eq!(heir.solo_baseline(BenchmarkId::Compress, &ctx), a);
        assert_eq!(heir.solo_baseline(BenchmarkId::Db, &ctx), b);
        let s = heir.baseline_stats();
        assert_eq!((s.lookups, s.misses), (2, 0));

        // Export is canonical: re-exporting the heir gives the same bytes.
        let mut w2 = jsmt_snapshot::Writer::new();
        heir.export_baselines(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);

        // A contradictory import is rejected.
        let liar = Engine::serial();
        let real = liar.solo_baseline(BenchmarkId::Compress, &ctx);
        let mut w3 = jsmt_snapshot::Writer::new();
        w3.put_usize(1);
        w3.put_u8(BenchmarkId::Compress.tag());
        w3.put_u64(ctx.scale.to_bits());
        w3.put_u64(ctx.seed);
        w3.put_u64(ctx.repeats);
        w3.put_bool(false);
        w3.put_u64(real + 1);
        let bad = w3.into_bytes();
        assert!(liar
            .import_baselines(&mut jsmt_snapshot::Reader::new(&bad))
            .is_err());
    }

    #[test]
    fn jsmt_jobs_parsing() {
        // from_env reads the real environment; exercise the mapping via
        // the documented contract instead of mutating the process env.
        assert_eq!(Parallelism::Threads(4).workers(), 4);
        let p = Parallelism::from_env();
        assert!(p.workers() >= 1);
    }
}
