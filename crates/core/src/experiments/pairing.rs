//! §4.2 — multiprogrammed pairing: Figures 8 and 9 and the paper's
//! offline trace-cache analysis.

use jsmt_perfmon::Event;
use jsmt_report::{box_chart, heat_map, Table};
use jsmt_stats::{mean, pearson, BoxSummary};
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

use super::{Engine, ExperimentCtx};
use crate::{System, SystemConfig};

/// Result of running one A+B multiprogrammed pair on the HT machine.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Program A.
    pub a: BenchmarkId,
    /// Program B.
    pub b: BenchmarkId,
    /// `A_S / A_H` — A's share of the combined speedup.
    pub speedup_a: f64,
    /// `B_S / B_H` — B's share.
    pub speedup_b: f64,
    /// The combined speedup `C_AB`.
    pub combined: f64,
    /// Machine trace-cache MPKI during the co-run (for the offline
    /// analysis).
    pub tc_mpki: f64,
    /// Completions of (A, B) during the co-run.
    pub completions: (u64, u64),
}

/// Run the pair A+B with the paper's re-launch methodology: both programs
/// repeat until each has at least `ctx.repeats` completions, completion
/// times drop the first and last run, and the combined speedup is
/// computed against the HT-disabled solo baselines.
pub fn run_pair(
    a: BenchmarkId,
    b: BenchmarkId,
    a_solo: u64,
    b_solo: u64,
    ctx: &ExperimentCtx,
) -> PairOutcome {
    let mut sys = System::new(SystemConfig::p4(true).with_seed(ctx.seed));
    sys.add_relaunching_process(WorkloadSpec::single(a).with_scale(ctx.scale));
    sys.add_relaunching_process(WorkloadSpec::single(b).with_scale(ctx.scale));
    // +2 so that dropping first and last still leaves `repeats` samples.
    let report = sys.run_until_completions(ctx.repeats + 2);
    let a_h = report.processes[0].mean_duration();
    let b_h = report.processes[1].mean_duration();
    let speedup_a = a_solo as f64 / a_h;
    let speedup_b = b_solo as f64 / b_h;
    PairOutcome {
        a,
        b,
        speedup_a,
        speedup_b,
        combined: speedup_a + speedup_b,
        tc_mpki: report.metrics.tc_mpki,
        completions: (
            report.processes[0].completions,
            report.processes[1].completions,
        ),
    }
}

/// The full 9×9 cross product of the single-threaded benchmarks
/// (Figure 8's data, Figure 9's matrix).
#[derive(Debug, Clone)]
pub struct PairGrid {
    /// Benchmarks in row/column order.
    pub benchmarks: Vec<BenchmarkId>,
    /// `outcomes[i][j]` is the run of `benchmarks[i]` with
    /// `benchmarks[j]`.
    pub outcomes: Vec<Vec<PairOutcome>>,
}

impl PairGrid {
    /// Combined speedups of row `i` across all partners.
    pub fn row_combined(&self, i: usize) -> Vec<f64> {
        self.outcomes[i].iter().map(|o| o.combined).collect()
    }

    /// `matrix[i][j]` = row benchmark i's *own* speedup share
    /// (`A_S / A_H`) when paired with column j — the per-program view in
    /// the style of Bulpin & Pratt's color maps (reference 3 in the paper).
    pub fn share_matrix(&self) -> Vec<Vec<f64>> {
        self.outcomes
            .iter()
            .map(|row| row.iter().map(|o| o.speedup_a).collect())
            .collect()
    }

    /// Count of combinations with a combined slowdown (`C_AB < 1`).
    pub fn slowdown_count(&self) -> usize {
        self.outcomes
            .iter()
            .flatten()
            .filter(|o| o.combined < 1.0)
            .count()
    }

    /// Mean absolute asymmetry `|C_ij - C_ji|` (the paper's reflective
    /// symmetry check).
    pub fn asymmetry(&self) -> f64 {
        let n = self.benchmarks.len();
        let mut diffs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                diffs.push((self.outcomes[i][j].combined - self.outcomes[j][i].combined).abs());
            }
        }
        mean(&diffs)
    }
}

/// Run the full cross product of the nine single-threaded benchmarks
/// serially (reference execution; see [`pair_matrix_on`]).
pub fn pair_matrix(ctx: &ExperimentCtx) -> PairGrid {
    pair_matrix_on(&Engine::serial(), ctx)
}

/// Run the full cross product on `engine`: one stage computing the nine
/// solo baselines (each simulated exactly once via the engine's
/// memoizing cache), then one stage of N² independent co-run cells,
/// collected by cell index so the grid is bit-identical for every
/// [`super::Parallelism`] setting.
pub fn pair_matrix_on(engine: &Engine, ctx: &ExperimentCtx) -> PairGrid {
    let benchmarks: Vec<BenchmarkId> = BenchmarkId::SINGLE_THREADED.to_vec();
    engine.prewarm_baselines(&benchmarks, ctx);
    let n = benchmarks.len();
    let cells: Vec<(BenchmarkId, BenchmarkId)> = benchmarks
        .iter()
        .flat_map(|&a| benchmarks.iter().map(move |&b| (a, b)))
        .collect();
    let flat = engine.run("pair-grid", cells, |&(a, b)| {
        engine.run_pair_cached(a, b, ctx)
    });
    let mut outcomes = Vec::with_capacity(n);
    let mut it = flat.into_iter();
    for _ in 0..n {
        outcomes.push(it.by_ref().take(n).collect());
    }
    PairGrid {
        benchmarks,
        outcomes,
    }
}

/// A pairing grid computed under supervision: healthy cells plus the
/// failures that exhausted their attempts. Produced by
/// [`pair_matrix_supervised`]; a grid with no failures converts back to
/// a plain [`PairGrid`] via [`SupervisedGrid::into_grid`].
#[derive(Debug)]
pub struct SupervisedGrid {
    /// Benchmarks in row/column order.
    pub benchmarks: Vec<BenchmarkId>,
    /// Finished cells by flat index `i * n + j`.
    pub cells: std::collections::BTreeMap<usize, PairOutcome>,
    /// Cells (or solo baselines) that exhausted their attempts.
    pub failures: Vec<super::supervise::CellFailure>,
}

impl SupervisedGrid {
    /// Whether every cell completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.cells.len() == self.benchmarks.len().pow(2)
    }

    /// The grid's CSV, with failed cells omitted. Healthy rows are
    /// byte-identical to [`super::csv_grid`] over an unsupervised run,
    /// so downstream plotting scripts need no changes for partial grids.
    pub fn csv(&self) -> String {
        let mut c = jsmt_report::Csv::new(vec![
            "a".into(),
            "b".into(),
            "speedup_a".into(),
            "speedup_b".into(),
            "combined".into(),
            "pair_tc_mpki".into(),
        ]);
        for o in self.cells.values() {
            c.row(vec![
                o.a.name().into(),
                o.b.name().into(),
                format!("{:.4}", o.speedup_a),
                format!("{:.4}", o.speedup_b),
                format!("{:.4}", o.combined),
                format!("{:.3}", o.tc_mpki),
            ]);
        }
        c.render()
    }

    /// The machine-readable failure manifest
    /// ([`super::supervise::manifest_csv`]).
    pub fn manifest_csv(&self) -> String {
        super::supervise::manifest_csv(&self.failures)
    }

    /// Convert a complete grid into a plain [`PairGrid`].
    ///
    /// # Panics
    ///
    /// When the grid is incomplete — check [`SupervisedGrid::is_complete`]
    /// first.
    pub fn into_grid(self) -> PairGrid {
        assert!(
            self.is_complete(),
            "cannot assemble a PairGrid from a partial supervised run \
             ({} of {} cells, {} failures)",
            self.cells.len(),
            self.benchmarks.len().pow(2),
            self.failures.len()
        );
        let n = self.benchmarks.len();
        let mut it = self.cells.into_values();
        let mut outcomes = Vec::with_capacity(n);
        for _ in 0..n {
            outcomes.push(it.by_ref().take(n).collect());
        }
        PairGrid {
            benchmarks: self.benchmarks,
            outcomes,
        }
    }
}

/// [`pair_matrix_on`] with graceful degradation: both the solo-baseline
/// prewarm and the N² co-run cells execute under the supervisor, so a
/// panicking, livelocked, or deadline-blown cell is recorded (and
/// retried per `cfg`) instead of unwinding through the worker pool and
/// losing the whole grid.
///
/// A pair cell whose baseline failed during the prewarm recomputes that
/// baseline inline through the engine's memoizing cache (a panicking
/// cache init leaves the slot empty, so retrying is safe); it therefore
/// still completes unless its own faults persist. On a healthy run the
/// result is bit-identical to [`pair_matrix_on`]: supervision only
/// observes the simulation, it never perturbs it.
pub fn pair_matrix_supervised(
    engine: &Engine,
    ctx: &ExperimentCtx,
    cfg: &super::supervise::SupervisorCfg,
) -> SupervisedGrid {
    let benchmarks: Vec<BenchmarkId> = BenchmarkId::SINGLE_THREADED.to_vec();
    let mut failures = Vec::new();

    let solo_jobs: Vec<(String, BenchmarkId)> = benchmarks
        .iter()
        .map(|&id| (id.name().to_string(), id))
        .collect();
    for r in engine.run_supervised("solo-baselines", cfg, ctx, solo_jobs, |&id| {
        engine.solo_baseline(id, ctx)
    }) {
        if let Err(f) = r {
            failures.push(f);
        }
    }

    let pair_jobs: Vec<(String, (BenchmarkId, BenchmarkId))> = benchmarks
        .iter()
        .flat_map(|&a| benchmarks.iter().map(move |&b| (a, b)))
        .map(|(a, b)| (format!("{}+{}", a.name(), b.name()), (a, b)))
        .collect();
    let outcomes = engine.run_supervised("pair-grid", cfg, ctx, pair_jobs, |&(a, b)| {
        engine.run_pair_cached(a, b, ctx)
    });
    let mut cells = std::collections::BTreeMap::new();
    for (index, r) in outcomes.into_iter().enumerate() {
        match r {
            Ok(o) => {
                cells.insert(index, o);
            }
            Err(f) => failures.push(f),
        }
    }
    SupervisedGrid {
        benchmarks,
        cells,
        failures,
    }
}

/// Render Figure 8: the box-chart distribution of combined speedups per
/// benchmark (each box summarizes the benchmark's nine pairings).
pub fn render_fig8(grid: &PairGrid) -> String {
    let entries: Vec<(String, BoxSummary)> = grid
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let samples = grid.row_combined(i);
            (
                b.name().to_string(),
                BoxSummary::from_samples(&samples).expect("nonempty row"),
            )
        })
        .collect();
    let lo = entries
        .iter()
        .map(|(_, s)| s.min)
        .fold(f64::INFINITY, f64::min)
        - 0.05;
    let hi = entries
        .iter()
        .map(|(_, s)| s.max)
        .fold(f64::NEG_INFINITY, f64::max)
        + 0.05;
    let mut out = box_chart(
        "Figure 8. Distribution of combined speedup for multiprogrammed Java benchmarks",
        &entries,
        lo,
        hi,
    );
    out.push_str(&format!(
        "\n{} of {} combinations show a combined slowdown (C_AB < 1); mean |C_ij - C_ji| = {:.3}\n",
        grid.slowdown_count(),
        grid.benchmarks.len() * grid.benchmarks.len(),
        grid.asymmetry()
    ));
    out
}

/// Render Figure 9: the combined-speedup color map.
pub fn render_fig9(grid: &PairGrid) -> String {
    let labels: Vec<String> = grid
        .benchmarks
        .iter()
        .map(|b| b.name().to_string())
        .collect();
    let matrix: Vec<Vec<f64>> = grid
        .outcomes
        .iter()
        .map(|row| row.iter().map(|o| o.combined).collect())
        .collect();
    heat_map("Figure 9. Combined speedup color map", &labels, &matrix)
}

/// The paper's offline analysis (§4.2, technical report, reference 11):
/// correlate each pair's
/// trace-cache MPKI with its combined speedup. A strongly negative
/// correlation is the paper's finding that "trace cache miss rate can be
/// used to effectively predict the potential pairing performance".
#[derive(Debug, Clone, Copy)]
pub struct PairingAnalysis {
    /// Pearson correlation of (pair TC MPKI, combined speedup).
    pub tc_corr: f64,
    /// Mean combined speedup of pairs involving a bad partner.
    pub bad_partner_mean: f64,
    /// Mean combined speedup of the remaining pairs.
    pub other_mean: f64,
}

/// Run the offline analysis over a measured grid.
pub fn pairing_analysis(grid: &PairGrid) -> PairingAnalysis {
    let mut tc = Vec::new();
    let mut sp = Vec::new();
    let mut bad = Vec::new();
    let mut other = Vec::new();
    for row in &grid.outcomes {
        for o in row {
            tc.push(o.tc_mpki);
            sp.push(o.combined);
            if o.a.is_bad_partner() || o.b.is_bad_partner() {
                bad.push(o.combined);
            } else {
                other.push(o.combined);
            }
        }
    }
    PairingAnalysis {
        tc_corr: pearson(&tc, &sp),
        bad_partner_mean: mean(&bad),
        other_mean: mean(&other),
    }
}

/// Render the offline analysis summary.
pub fn render_pairing_analysis(grid: &PairGrid) -> String {
    let a = pairing_analysis(grid);
    let mut t = Table::new(vec!["Statistic".into(), "Value".into()])
        .with_title("Offline pairing analysis (§4.2, tech report [11])");
    t.row(vec![
        "corr(TC MPKI, combined speedup)".into(),
        format!("{:.3}", a.tc_corr),
    ]);
    t.row(vec![
        "mean C_AB, pairs with jack/javac/jess".into(),
        format!("{:.3}", a.bad_partner_mean),
    ]);
    t.row(vec![
        "mean C_AB, other pairs".into(),
        format!("{:.3}", a.other_mean),
    ]);
    t.render()
}

/// Machine-level sanity metric used in tests: total trace-cache misses of
/// a report.
pub fn tc_misses(report: &crate::RunReport) -> u64 {
    report.bank.total(Event::TcMisses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::solo_baseline_cycles;

    #[test]
    fn pair_runs_and_produces_positive_speedups() {
        let ctx = ExperimentCtx {
            scale: 0.02,
            repeats: 3,
            seed: 1,
        };
        let a_solo = solo_baseline_cycles(BenchmarkId::Mpegaudio, &ctx);
        let b_solo = solo_baseline_cycles(BenchmarkId::Compress, &ctx);
        let o = run_pair(
            BenchmarkId::Mpegaudio,
            BenchmarkId::Compress,
            a_solo,
            b_solo,
            &ctx,
        );
        assert!(
            o.speedup_a > 0.1 && o.speedup_a < 1.5,
            "a share {}",
            o.speedup_a
        );
        assert!(
            o.speedup_b > 0.1 && o.speedup_b < 1.5,
            "b share {}",
            o.speedup_b
        );
        assert!(
            o.combined > 0.5 && o.combined < 2.5,
            "combined {}",
            o.combined
        );
        assert!(o.completions.0 >= 5 && o.completions.1 >= 5);
    }
}

/// The paper's concluding claim, made executable: "trace cache miss rate
/// can be used to effectively predict the potential pairing performance."
/// We build the predictor the claim implies — score every pair by the sum
/// of the two programs' *solo* trace-cache MPKI (measured alone on the HT
/// machine, no co-run needed) — and validate it against the measured grid.
#[derive(Debug, Clone)]
pub struct PairingPrediction {
    /// Solo HT-on trace-cache MPKI per benchmark (the predictor's only
    /// input), in grid order.
    pub solo_tc_mpki: Vec<f64>,
    /// Spearman rank correlation between predicted badness (solo TC sum)
    /// and measured combined speedup. Strongly negative = the predictor
    /// ranks pairs correctly.
    pub rank_corr: f64,
    /// Fraction of the measured worst-quartile pairs that the predictor
    /// also places in its worst quartile (top-k overlap).
    pub worst_quartile_hit_rate: f64,
}

/// Build and validate the solo-profile pairing predictor against a
/// measured grid.
pub fn pairing_prediction(grid: &PairGrid, ctx: &ExperimentCtx) -> PairingPrediction {
    use jsmt_workloads::WorkloadSpec;
    // Solo HT-on profiles: one short run per benchmark.
    let solo_tc_mpki: Vec<f64> = grid
        .benchmarks
        .iter()
        .map(|&b| {
            let spec = WorkloadSpec::single(b).with_scale(ctx.scale);
            super::solo_run(spec, true, ctx.seed).metrics.tc_mpki
        })
        .collect();

    let n = grid.benchmarks.len();
    let mut scores = Vec::with_capacity(n * n);
    let mut measured = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            scores.push(solo_tc_mpki[i] + solo_tc_mpki[j]);
            measured.push(grid.outcomes[i][j].combined);
        }
    }
    let rank_corr = jsmt_stats::spearman(&scores, &measured);

    // Worst-quartile overlap.
    let k = (scores.len() / 4).max(1);
    let top_k = |xs: &[f64], largest: bool| -> std::collections::HashSet<usize> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaNs"));
        if largest {
            idx.reverse();
        }
        idx.into_iter().take(k).collect()
    };
    let predicted_worst = top_k(&scores, true); // highest TC sum
    let measured_worst = top_k(&measured, false); // lowest combined speedup
    let hits = predicted_worst.intersection(&measured_worst).count();
    PairingPrediction {
        solo_tc_mpki,
        rank_corr,
        worst_quartile_hit_rate: hits as f64 / k as f64,
    }
}

/// Render the predictor validation.
pub fn render_pairing_prediction(grid: &PairGrid, ctx: &ExperimentCtx) -> String {
    let p = pairing_prediction(grid, ctx);
    let mut t = Table::new(vec!["Benchmark".into(), "solo TC MPKI (HT on)".into()]).with_title(
        "Extension: predict pairing from solo trace-cache profiles (paper's conclusion)",
    );
    for (b, tc) in grid.benchmarks.iter().zip(&p.solo_tc_mpki) {
        t.row(vec![b.name().to_string(), format!("{tc:.2}")]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nSpearman(predicted badness, measured C_AB) = {:.3}\n\
         worst-quartile hit rate = {:.0}%\n\
         (prediction uses only per-program solo runs — no co-run needed)\n",
        p.rank_corr,
        p.worst_quartile_hit_rate * 100.0
    ));
    out
}
