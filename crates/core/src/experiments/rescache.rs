//! Glue between the experiment drivers and the persistent result cache
//! (`jsmt-cache`): key construction, value encoding, and the cached
//! compute wrappers.
//!
//! A cache key must capture *everything* a cell's bytes depend on. For
//! jsmt cells that is the experiment context (scale, repeats, seed) plus
//! the simulator itself: two builds whose simulation semantics differ
//! must never share entries. The latter is folded in as [`CACHE_EPOCH`],
//! bumped whenever a change alters any cell's output — the golden-CSV
//! tests are the tripwire that reminds an author to do so.

use jsmt_cache::{Cache, CacheKey};
use jsmt_snapshot::{Reader, Writer};
use jsmt_workloads::BenchmarkId;

use super::checkpoint::{read_outcome, write_outcome};
use super::pairing::{run_pair, PairOutcome};
use super::{solo_baseline_cycles, ExperimentCtx};

/// Bump when a simulator or methodology change alters cell outputs, so
/// stale caches miss instead of serving results from a different model.
pub(crate) const CACHE_EPOCH: u32 = 1;

/// The configuration fingerprint folded into every cache key: epoch,
/// scale, repeats. (The seed is a key field of its own.)
pub(crate) fn fingerprint(ctx: &ExperimentCtx) -> u64 {
    let mut bytes = Vec::with_capacity(28);
    bytes.extend_from_slice(b"jsmt-cell");
    bytes.extend_from_slice(&CACHE_EPOCH.to_le_bytes());
    bytes.extend_from_slice(&ctx.scale.to_bits().to_le_bytes());
    bytes.extend_from_slice(&ctx.repeats.to_le_bytes());
    jsmt_snapshot::fnv64(&bytes)
}

/// Key of a solo HT-off baseline cell.
pub(crate) fn solo_key(id: BenchmarkId, ctx: &ExperimentCtx) -> CacheKey {
    CacheKey {
        fingerprint: fingerprint(ctx),
        workload: format!("solo:{}", id.name()),
        seed: ctx.seed,
    }
}

/// Key of an A+B co-run cell.
pub(crate) fn pair_key(a: BenchmarkId, b: BenchmarkId, ctx: &ExperimentCtx) -> CacheKey {
    CacheKey {
        fingerprint: fingerprint(ctx),
        workload: format!("pair:{}+{}", a.name(), b.name()),
        seed: ctx.seed,
    }
}

pub(crate) fn encode_solo(cycles: u64) -> Vec<u8> {
    cycles.to_le_bytes().to_vec()
}

pub(crate) fn decode_solo(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

pub(crate) fn encode_pair(o: &PairOutcome) -> Vec<u8> {
    let mut w = Writer::new();
    write_outcome(&mut w, o);
    w.into_bytes()
}

pub(crate) fn decode_pair(bytes: &[u8]) -> Option<PairOutcome> {
    let mut r = Reader::new(bytes);
    let o = read_outcome(&mut r).ok()?;
    r.expect_end().ok()?;
    Some(o)
}

/// [`solo_baseline_cycles`] through the persistent cache. An entry that
/// fails to decode (value-layout drift without an epoch bump) is
/// recomputed and overwritten — same heal-by-recompute policy as a bad
/// seal, one layer up.
pub(crate) fn cached_solo_baseline(cache: &Cache, id: BenchmarkId, ctx: &ExperimentCtx) -> u64 {
    let key = solo_key(id, ctx);
    if let Some(bytes) = cache.lookup(&key) {
        if let Some(cycles) = decode_solo(&bytes) {
            return cycles;
        }
        eprintln!("# cache: undecodable value for {key}; recomputing");
    }
    let cycles = solo_baseline_cycles(id, ctx);
    cache.store(&key, &encode_solo(cycles));
    cycles
}

/// [`run_pair`] through the persistent cache; decode failures heal by
/// recompute like [`cached_solo_baseline`].
pub(crate) fn cached_run_pair(
    cache: &Cache,
    a: BenchmarkId,
    b: BenchmarkId,
    a_solo: u64,
    b_solo: u64,
    ctx: &ExperimentCtx,
) -> PairOutcome {
    let key = pair_key(a, b, ctx);
    if let Some(bytes) = cache.lookup(&key) {
        match decode_pair(&bytes) {
            Some(o) if o.a == a && o.b == b => return o,
            _ => eprintln!("# cache: undecodable value for {key}; recomputing"),
        }
    }
    let o = run_pair(a, b, a_solo, b_solo, ctx);
    cache.store(&key, &encode_pair(&o));
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_separate_cells_and_configs() {
        let ctx = ExperimentCtx::quick();
        let full = ExperimentCtx::full();
        let k1 = pair_key(BenchmarkId::Compress, BenchmarkId::Db, &ctx);
        let k2 = pair_key(BenchmarkId::Db, BenchmarkId::Compress, &ctx);
        assert_ne!(k1, k2, "A+B and B+A are distinct cells");
        assert_ne!(
            k1.fingerprint,
            pair_key(BenchmarkId::Compress, BenchmarkId::Db, &full).fingerprint,
            "different configs must not share entries"
        );
        assert_ne!(
            solo_key(BenchmarkId::Compress, &ctx).workload,
            pair_key(BenchmarkId::Compress, BenchmarkId::Compress, &ctx).workload
        );
    }

    #[test]
    fn pair_value_round_trips_exactly() {
        let o = PairOutcome {
            a: BenchmarkId::Jess,
            b: BenchmarkId::Jack,
            speedup_a: 0.731_234_567_89,
            speedup_b: 0.698_765_432_1,
            combined: 1.430_000_000_99,
            tc_mpki: 12.345_678,
            completions: (7, 9),
        };
        let back = decode_pair(&encode_pair(&o)).expect("round trip");
        assert_eq!(back.a, o.a);
        assert_eq!(back.b, o.b);
        // Bit-exact: cached grids must be byte-identical to simulated ones.
        assert_eq!(back.speedup_a.to_bits(), o.speedup_a.to_bits());
        assert_eq!(back.speedup_b.to_bits(), o.speedup_b.to_bits());
        assert_eq!(back.combined.to_bits(), o.combined.to_bits());
        assert_eq!(back.tc_mpki.to_bits(), o.tc_mpki.to_bits());
        assert_eq!(back.completions, o.completions);

        assert_eq!(decode_solo(&encode_solo(0xDEAD_BEEF)), Some(0xDEAD_BEEF));
        assert_eq!(decode_solo(b"short"), None);
        assert!(decode_pair(b"not an outcome").is_none());
    }
}
