//! CSV exports for external plotting of every artifact.

use jsmt_report::Csv;

use super::{
    JitPoint, L1Point, LitmusSweep, MtPoint, PairGrid, PartitionPoint, PrefetchPoint, SinglePoint,
    ThreadPoint,
};

/// CSV of the multithreaded characterization (Table 2 / Figures 1–7 data).
pub fn csv_mt(points: &[MtPoint]) -> String {
    let mut c = Csv::new(vec![
        "benchmark".into(),
        "threads".into(),
        "ht".into(),
        "cycles".into(),
        "instructions".into(),
        "ipc".into(),
        "cpi".into(),
        "os_pct".into(),
        "dt_pct".into(),
        "tc_mpki".into(),
        "l1d_mpki".into(),
        "l2_mpki".into(),
        "itlb_mpki".into(),
        "btb_miss_ratio".into(),
        "retire0".into(),
        "retire1".into(),
        "retire2".into(),
        "retire3".into(),
    ]);
    for p in points {
        let m = &p.report.metrics;
        c.row(vec![
            p.id.name().into(),
            p.threads.to_string(),
            p.ht.to_string(),
            p.report.cycles.to_string(),
            m.instructions.to_string(),
            format!("{:.4}", m.ipc),
            format!("{:.4}", m.cpi),
            format!("{:.4}", m.os_cycle_fraction),
            format!("{:.4}", m.dual_thread_fraction),
            format!("{:.3}", m.tc_mpki),
            format!("{:.3}", m.l1d_mpki),
            format!("{:.3}", m.l2_mpki),
            format!("{:.4}", m.itlb_mpki),
            format!("{:.4}", m.btb_miss_ratio),
            format!("{:.4}", m.retirement.retire0),
            format!("{:.4}", m.retirement.retire1),
            format!("{:.4}", m.retirement.retire2),
            format!("{:.4}", m.retirement.retire3),
        ]);
    }
    c.render()
}

/// CSV of the 9×9 pairing grid (Figures 8–9 data).
pub fn csv_grid(grid: &PairGrid) -> String {
    let mut c = Csv::new(vec![
        "a".into(),
        "b".into(),
        "speedup_a".into(),
        "speedup_b".into(),
        "combined".into(),
        "pair_tc_mpki".into(),
    ]);
    for row in &grid.outcomes {
        for o in row {
            c.row(vec![
                o.a.name().into(),
                o.b.name().into(),
                format!("{:.4}", o.speedup_a),
                format!("{:.4}", o.speedup_b),
                format!("{:.4}", o.combined),
                format!("{:.3}", o.tc_mpki),
            ]);
        }
    }
    c.render()
}

/// CSV of Figure 10's single-threaded HT impact.
pub fn csv_single(points: &[SinglePoint]) -> String {
    let mut c = Csv::new(vec![
        "benchmark".into(),
        "cycles_ht_off".into(),
        "cycles_ht_on".into(),
        "slowdown_pct".into(),
    ]);
    for p in points {
        c.row(vec![
            p.id.name().into(),
            p.cycles_ht_off.to_string(),
            p.cycles_ht_on.to_string(),
            format!("{:.3}", p.slowdown_pct()),
        ]);
    }
    c.render()
}

/// CSV of Figure 12's thread sweep.
pub fn csv_threads(points: &[ThreadPoint]) -> String {
    let mut c = Csv::new(vec![
        "benchmark".into(),
        "threads".into(),
        "ipc".into(),
        "l1d_mpki".into(),
    ]);
    for p in points {
        c.row(vec![
            p.id.name().into(),
            p.threads.to_string(),
            format!("{:.4}", p.ipc),
            format!("{:.3}", p.l1d_mpki),
        ]);
    }
    c.render()
}

/// CSV of the partitioning ablation.
pub fn csv_partition(points: &[PartitionPoint]) -> String {
    let mut c = Csv::new(vec![
        "benchmark".into(),
        "cycles_ht_off".into(),
        "cycles_static".into(),
        "cycles_dynamic".into(),
    ]);
    for p in points {
        c.row(vec![
            p.id.name().into(),
            p.cycles_ht_off.to_string(),
            p.cycles_static.to_string(),
            p.cycles_dynamic.to_string(),
        ]);
    }
    c.render()
}

/// CSV of the L1 ablation.
pub fn csv_l1(points: &[L1Point]) -> String {
    let mut c = Csv::new(vec![
        "benchmark".into(),
        "l1d_kib".into(),
        "ipc".into(),
        "l1d_mpki".into(),
    ]);
    for p in points {
        c.row(vec![
            p.id.name().into(),
            p.l1d_kib.to_string(),
            format!("{:.4}", p.ipc),
            format!("{:.3}", p.l1d_mpki),
        ]);
    }
    c.render()
}

/// CSV of the prefetcher ablation.
pub fn csv_prefetch(points: &[PrefetchPoint]) -> String {
    let mut c = Csv::new(vec![
        "benchmark".into(),
        "ipc_off".into(),
        "ipc_on".into(),
        "l2_mpki_off".into(),
        "l2_mpki_on".into(),
    ]);
    for p in points {
        c.row(vec![
            p.id.name().into(),
            format!("{:.4}", p.ipc_off),
            format!("{:.4}", p.ipc_on),
            format!("{:.3}", p.l2_mpki_off),
            format!("{:.3}", p.l2_mpki_on),
        ]);
    }
    c.render()
}

/// CSV of the litmus sweeps: one row per (shape, seed) with the observed
/// label and the sync counters it was produced under. This is the
/// bit-identity surface the CI litmus matrix diffs across worker counts
/// and exec tiers, and the golden file blessed in `tests/golden/`.
pub fn csv_litmus(sweeps: &[LitmusSweep]) -> String {
    let mut c = Csv::new(vec![
        "shape".into(),
        "seed".into(),
        "label".into(),
        "ok".into(),
        "cycles".into(),
        "blocks".into(),
        "wakes".into(),
        "waits".into(),
        "notifies".into(),
        "contended".into(),
    ]);
    for s in sweeps {
        for p in &s.points {
            c.row(vec![
                p.shape.name().into(),
                p.seed.to_string(),
                p.label.clone(),
                super::check_label(p.shape, &p.label).is_ok().to_string(),
                p.cycles.to_string(),
                p.blocks.to_string(),
                p.wakes.to_string(),
                p.waits.to_string(),
                p.notifies.to_string(),
                p.contended.to_string(),
            ]);
        }
    }
    c.render()
}

/// CSV of the background-JIT ablation.
pub fn csv_jit(points: &[JitPoint]) -> String {
    let mut c = Csv::new(vec![
        "benchmark".into(),
        "cycles_instant".into(),
        "cycles_background".into(),
        "compiles".into(),
    ]);
    for p in points {
        c.row(vec![
            p.id.name().into(),
            p.cycles_instant.to_string(),
            p.cycles_background.to_string(),
            p.compiles.to_string(),
        ]);
    }
    c.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentCtx, SinglePoint};
    use jsmt_workloads::BenchmarkId;

    #[test]
    fn single_csv_shape() {
        let pts = [SinglePoint {
            id: BenchmarkId::Db,
            cycles_ht_off: 100,
            cycles_ht_on: 110,
        }];
        let s = csv_single(&pts);
        let mut lines = s.lines();
        assert_eq!(
            lines.next().unwrap(),
            "benchmark,cycles_ht_off,cycles_ht_on,slowdown_pct"
        );
        assert!(lines.next().unwrap().starts_with("db,100,110,10.000"));
        let _ = ExperimentCtx::quick();
    }
}
