//! Crash-safe pairing grids: checkpoint the 9×9 matrix cell-by-cell.
//!
//! A full-scale pairing grid (`repro --full fig8`) is hours of CPU time
//! spread over 81 independent cells plus nine solo baselines. This
//! module persists the finished cells and the memoized baseline cache
//! to a snapshot file after every chunk, so a killed run resumes where
//! it stopped and still emits **bit-identical** output: each cell is a
//! pure function of `(ctx, a, b)`, so it does not matter which process
//! computed it.
//!
//! The file is a sealed [`jsmt_snapshot`] container ([`KIND_GRID`]).
//! Loading validates the experiment fingerprint (scale/repeats/seed)
//! and the benchmark roster, so a stale or foreign checkpoint is
//! rejected instead of silently mixing incompatible cells.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use jsmt_snapshot::{open, seal, Reader, SnapshotError, Writer};
use jsmt_workloads::BenchmarkId;

use super::pairing::{PairGrid, PairOutcome};
use super::{Engine, ExperimentCtx};

/// Snapshot kind tag for grid checkpoint files.
pub const KIND_GRID: u32 = 2;

/// Errors from checkpointed grid runs: file I/O or snapshot decoding.
#[derive(Debug)]
pub enum CkptError {
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// The checkpoint bytes are corrupt or incompatible.
    Snapshot(SnapshotError),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CkptError::Snapshot(e) => write!(f, "checkpoint data: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

impl From<SnapshotError> for CkptError {
    fn from(e: SnapshotError) -> Self {
        CkptError::Snapshot(e)
    }
}

/// A partially (or fully) computed pairing grid on disk.
pub struct GridCheckpoint {
    scale_bits: u64,
    repeats: u64,
    seed: u64,
    benchmarks: Vec<BenchmarkId>,
    /// Exported engine baseline cache (written before any cell runs, so
    /// even a run killed during the grid keeps its baselines).
    baselines: Vec<u8>,
    /// Finished cells by flat index `i * n + j`.
    cells: BTreeMap<usize, PairOutcome>,
}

pub(crate) fn write_outcome(w: &mut Writer, o: &PairOutcome) {
    w.put_u8(o.a.tag());
    w.put_u8(o.b.tag());
    w.put_f64(o.speedup_a);
    w.put_f64(o.speedup_b);
    w.put_f64(o.combined);
    w.put_f64(o.tc_mpki);
    w.put_u64(o.completions.0);
    w.put_u64(o.completions.1);
}

pub(crate) fn read_outcome(r: &mut Reader<'_>) -> Result<PairOutcome, SnapshotError> {
    let a = BenchmarkId::from_tag(r.get_u8()?)
        .ok_or(SnapshotError::Corrupt("unknown benchmark tag in grid cell"))?;
    let b = BenchmarkId::from_tag(r.get_u8()?)
        .ok_or(SnapshotError::Corrupt("unknown benchmark tag in grid cell"))?;
    Ok(PairOutcome {
        a,
        b,
        speedup_a: r.get_f64()?,
        speedup_b: r.get_f64()?,
        combined: r.get_f64()?,
        tc_mpki: r.get_f64()?,
        completions: (r.get_u64()?, r.get_u64()?),
    })
}

impl GridCheckpoint {
    /// An empty checkpoint for `ctx` over the standard 9-benchmark grid.
    fn new(ctx: &ExperimentCtx) -> Self {
        GridCheckpoint {
            scale_bits: ctx.scale.to_bits(),
            repeats: ctx.repeats,
            seed: ctx.seed,
            benchmarks: BenchmarkId::SINGLE_THREADED.to_vec(),
            baselines: Vec::new(),
            cells: BTreeMap::new(),
        }
    }

    /// Number of finished cells.
    pub fn done(&self) -> usize {
        self.cells.len()
    }

    /// Total cells in the grid.
    pub fn total(&self) -> usize {
        self.benchmarks.len() * self.benchmarks.len()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.scale_bits);
        w.put_u64(self.repeats);
        w.put_u64(self.seed);
        w.put_usize(self.benchmarks.len());
        for b in &self.benchmarks {
            w.put_u8(b.tag());
        }
        w.put_usize(self.baselines.len());
        w.put_raw(&self.baselines);
        w.put_usize(self.cells.len());
        for (&index, outcome) in &self.cells {
            w.put_usize(index);
            write_outcome(&mut w, outcome);
        }
        seal(KIND_GRID, &w.into_bytes())
    }

    /// Decode and validate against `ctx` (wrong scale/repeats/seed or
    /// roster → `Corrupt`; the caller should not mix incompatible cells).
    fn from_bytes(bytes: &[u8], ctx: &ExperimentCtx) -> Result<Self, SnapshotError> {
        let mut r = open(bytes, KIND_GRID)?;
        let scale_bits = r.get_u64()?;
        let repeats = r.get_u64()?;
        let seed = r.get_u64()?;
        if scale_bits != ctx.scale.to_bits() || repeats != ctx.repeats || seed != ctx.seed {
            return Err(SnapshotError::Corrupt(
                "grid checkpoint was taken with different experiment parameters",
            ));
        }
        let nbench = r.get_len(1)?;
        let mut benchmarks = Vec::with_capacity(nbench);
        for _ in 0..nbench {
            benchmarks.push(
                BenchmarkId::from_tag(r.get_u8()?).ok_or(SnapshotError::Corrupt(
                    "unknown benchmark tag in grid roster",
                ))?,
            );
        }
        if benchmarks != BenchmarkId::SINGLE_THREADED.to_vec() {
            return Err(SnapshotError::Corrupt(
                "grid checkpoint roster is not the single-threaded benchmark set",
            ));
        }
        let blen = r.get_len(1)?;
        let baselines = r.get_raw(blen)?.to_vec();
        let ncells = r.get_len(9)?;
        let total = nbench * nbench;
        let mut cells = BTreeMap::new();
        for _ in 0..ncells {
            let index = r.get_usize()?;
            if index >= total {
                return Err(SnapshotError::Corrupt("grid cell index out of range"));
            }
            let outcome = read_outcome(&mut r)?;
            // The cell's programs must agree with its grid position.
            if outcome.a != benchmarks[index / nbench] || outcome.b != benchmarks[index % nbench] {
                return Err(SnapshotError::Corrupt(
                    "grid cell programs disagree with its index",
                ));
            }
            if cells.insert(index, outcome).is_some() {
                return Err(SnapshotError::Corrupt("duplicate grid cell"));
            }
        }
        r.expect_end()?;
        Ok(GridCheckpoint {
            scale_bits,
            repeats,
            seed,
            benchmarks,
            baselines,
            cells,
        })
    }

    /// Load a checkpoint for `ctx` from `path`. `Ok(None)` when the file
    /// does not exist; `Err` when it exists but is corrupt or was taken
    /// with different experiment parameters.
    pub fn load(path: &Path, ctx: &ExperimentCtx) -> Result<Option<Self>, CkptError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(Self::from_bytes(&bytes, ctx)?))
    }

    /// Durably and atomically persist via [`jsmt_faults::fsio::persist`]:
    /// write to `<path>.tmp`, fsync it, rename over `path`, and fsync the
    /// parent directory — a kill mid-write never corrupts the previous
    /// state, and a power cut cannot lose the rename. The write is
    /// registered with the fault plan under the `checkpoint` target, so
    /// chaos runs can inject I/O errors and corruption exactly here.
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        jsmt_faults::fsio::persist(path, &self.to_bytes(), "checkpoint")?;
        Ok(())
    }
}

/// [`super::pair_matrix_on`] with crash-safe progress: finished cells
/// and the baseline cache are flushed to `path` every `every` cells.
///
/// If `path` exists it is resumed (its baselines warm-start the engine,
/// its cells are skipped); otherwise a fresh checkpoint is created. The
/// assembled grid is bit-identical to an uninterrupted
/// [`super::pair_matrix_on`] run because every cell is a pure function
/// of `(ctx, a, b)`.
///
/// `max_cells` bounds how many *new* cells this call computes (used by
/// tests to simulate an interrupted run without killing a process);
/// `Ok(None)` means the budget ran out with cells still pending.
pub fn pair_matrix_ckpt(
    engine: &Engine,
    ctx: &ExperimentCtx,
    path: &Path,
    every: usize,
    max_cells: Option<usize>,
) -> Result<Option<PairGrid>, CkptError> {
    let mut ck = match GridCheckpoint::load(path, ctx)? {
        Some(ck) => ck,
        None => GridCheckpoint::new(ctx),
    };
    if !ck.baselines.is_empty() {
        engine.import_baselines(&mut Reader::new(&ck.baselines))?;
    }
    engine.prewarm_baselines(&ck.benchmarks, ctx);
    let mut w = Writer::new();
    engine.export_baselines(&mut w);
    ck.baselines = w.into_bytes();
    ck.save(path)?;

    let n = ck.benchmarks.len();
    let pending: Vec<usize> = (0..n * n).filter(|i| !ck.cells.contains_key(i)).collect();
    let budget = max_cells.unwrap_or(usize::MAX);
    for chunk in pending
        .iter()
        .take(budget)
        .collect::<Vec<_>>()
        .chunks(every.max(1))
    {
        let jobs: Vec<(usize, BenchmarkId, BenchmarkId)> = chunk
            .iter()
            .map(|&&index| (index, ck.benchmarks[index / n], ck.benchmarks[index % n]))
            .collect();
        let outcomes = engine.run("pair-grid", jobs, |&(index, a, b)| {
            (index, engine.run_pair_cached(a, b, ctx))
        });
        for (index, outcome) in outcomes {
            ck.cells.insert(index, outcome);
        }
        ck.save(path)?;
    }

    if ck.done() < ck.total() {
        return Ok(None);
    }
    let mut it = ck.cells.into_values();
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        outcomes.push(it.by_ref().take(n).collect());
    }
    Ok(Some(PairGrid {
        benchmarks: ck.benchmarks,
        outcomes,
    }))
}
