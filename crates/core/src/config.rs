//! Whole-system configuration.

use jsmt_cpu::{CoreConfig, Partition};
use jsmt_mem::MemConfig;
use jsmt_os::OsConfig;

/// Configuration of the modeled machine + OS + measurement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Pipeline configuration (includes the Hyper-Threading switch).
    pub core: CoreConfig,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// OS model configuration.
    pub os: OsConfig,
    /// Master seed: every run is a pure function of (config, workloads).
    pub seed: u64,
    /// Safety cap on simulated cycles (a run that exceeds it panics,
    /// catching deadlocks in development).
    pub max_cycles: u64,
}

impl SystemConfig {
    /// The paper's machine: 2.8 GHz Pentium 4 with Hyper-Threading
    /// enabled or disabled in the BIOS.
    pub fn p4(ht_enabled: bool) -> Self {
        SystemConfig {
            core: CoreConfig::p4(ht_enabled),
            mem: MemConfig::p4(ht_enabled),
            os: OsConfig::default(),
            seed: 0x15_9A55,
            max_cycles: 40_000_000_000,
        }
    }

    /// Whether Hyper-Threading is on.
    pub fn ht_enabled(&self) -> bool {
        self.core.ht_enabled
    }

    /// Builder-style: set the partition policy (the §4.3 ablation).
    pub fn with_partition(mut self, p: Partition) -> Self {
        self.core.partition = p;
        self
    }

    /// Builder-style: replace the memory configuration (L1 ablation).
    pub fn with_mem(mut self, mem: MemConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the cycle cap.
    pub fn with_max_cycles(mut self, cap: u64) -> Self {
        self.max_cycles = cap;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ht_flag_is_consistent() {
        assert!(SystemConfig::p4(true).ht_enabled());
        assert!(!SystemConfig::p4(false).ht_enabled());
        let c = SystemConfig::p4(false);
        assert!(!c.mem.itlb.partitioned);
    }

    #[test]
    fn builders() {
        let c = SystemConfig::p4(true)
            .with_partition(Partition::Dynamic)
            .with_seed(7)
            .with_max_cycles(1000);
        assert_eq!(c.core.partition, Partition::Dynamic);
        assert_eq!(c.seed, 7);
        assert_eq!(c.max_cycles, 1000);
    }
}
