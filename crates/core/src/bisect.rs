//! Differential-replay bisection: find the first cycle where two
//! machine variants diverge.
//!
//! Debugging a determinism bug ("the run with `JSMT_NO_FASTFWD=1`
//! differs from the default") by eyeballing final counters is hopeless:
//! the divergence happened millions of cycles before it became visible.
//! This module runs the two variants in lockstep, comparing full-system
//! checkpoints ([`System::checkpoint`]) every `stride` cycles, and on
//! the first unequal boundary binary-searches *inside* the span —
//! rewinding both machines from their last-equal checkpoints, which is
//! exact because resume is bit-faithful — down to the precise cycle at
//! which any architectural field or counter first differs. The verdict
//! names the differing snapshot sections and performance counters.
//!
//! Comparison ignores the `meta` section (the configuration
//! fingerprint legitimately differs between, say, two seeds); every
//! other byte of the snapshot is significant.

use jsmt_perfmon::{Event, LogicalCpu};
use jsmt_snapshot::{diff_sections, open, SectionDiff, SnapshotError};
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

use crate::system::KIND_SYSTEM;
use crate::{System, SystemConfig};

/// One side of a differential replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The default machine: event-driven fast-forward enabled.
    FastForward,
    /// Fast-forward disabled (every cycle stepped structurally).
    NoFastForward,
    /// Compiled-trace execution tier enabled (hot spans bulk-replayed).
    TraceTier,
    /// Trace tier disabled (the batched stepper runs every cycle).
    NoTraceTier,
    /// The default machine under a different master seed.
    Seed(u64),
}

impl Variant {
    /// Parse a CLI spelling: `fastfwd`, `no-fastfwd`, `trace-tier`,
    /// `no-trace-tier`, or `seed=N`.
    pub fn parse(s: &str) -> Option<Variant> {
        match s {
            "fastfwd" => Some(Variant::FastForward),
            "no-fastfwd" => Some(Variant::NoFastForward),
            "trace-tier" => Some(Variant::TraceTier),
            "no-trace-tier" => Some(Variant::NoTraceTier),
            _ => s
                .strip_prefix("seed=")
                .and_then(|n| n.parse().ok())
                .map(Variant::Seed),
        }
    }

    /// CLI spelling of the variant.
    pub fn name(&self) -> String {
        match self {
            Variant::FastForward => "fastfwd".into(),
            Variant::NoFastForward => "no-fastfwd".into(),
            Variant::TraceTier => "trace-tier".into(),
            Variant::NoTraceTier => "no-trace-tier".into(),
            Variant::Seed(n) => format!("seed={n}"),
        }
    }

    fn cfg(&self, base: SystemConfig) -> SystemConfig {
        match self {
            Variant::Seed(n) => base.with_seed(*n),
            _ => base,
        }
    }

    fn post(&self, sys: &mut System) {
        match self {
            Variant::FastForward => sys.set_fast_forward(true),
            Variant::NoFastForward => sys.set_fast_forward(false),
            Variant::TraceTier => sys.set_trace_tier(true),
            Variant::NoTraceTier => sys.set_trace_tier(false),
            Variant::Seed(_) => {}
        }
    }

    fn build(&self, bench: BenchmarkId, scale: f64, base: SystemConfig) -> System {
        let mut sys = System::new(self.cfg(base));
        sys.add_relaunching_process(WorkloadSpec::single(bench).with_scale(scale));
        self.post(&mut sys);
        sys
    }

    fn resume(&self, base: SystemConfig, bytes: &[u8]) -> Result<System, SnapshotError> {
        let mut sys = System::resume(self.cfg(base), bytes)?;
        self.post(&mut sys);
        Ok(sys)
    }
}

/// A performance counter that differs between the two variants at the
/// divergence cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDiff {
    /// `Lp0`/`Lp1` plus the event name.
    pub name: String,
    /// Count in variant A.
    pub a: u64,
    /// Count in variant B.
    pub b: u64,
}

/// Result of a differential replay.
#[derive(Debug)]
pub struct BisectOutcome {
    /// CLI spelling of variant A.
    pub variant_a: String,
    /// CLI spelling of variant B.
    pub variant_b: String,
    /// Cycles actually compared (the requested horizon).
    pub horizon: u64,
    /// The first cycle at which the machine states differ; `None` if
    /// the variants stayed bit-identical through the horizon.
    pub first_divergent_cycle: Option<u64>,
    /// The last cycle at which the states were still bit-identical
    /// (only meaningful when a divergence was found after cycle 0).
    pub last_equal_cycle: u64,
    /// Snapshot sections (slash-joined paths) that differ at the
    /// divergence cycle.
    pub diffs: Vec<SectionDiff>,
    /// Performance counters that differ at the divergence cycle.
    pub counter_diffs: Vec<CounterDiff>,
}

/// Compare two sealed system snapshots, ignoring the `meta` section.
fn state_diffs(a: &[u8], b: &[u8]) -> Result<Vec<SectionDiff>, SnapshotError> {
    if a == b {
        return Ok(Vec::new());
    }
    let mut ra = open(a, KIND_SYSTEM)?;
    let mut rb = open(b, KIND_SYSTEM)?;
    let pa = ra.get_raw(ra.remaining())?;
    let pb = rb.get_raw(rb.remaining())?;
    let significant = |path: &str| path != "meta" && !path.starts_with("meta/");
    Ok(diff_sections(pa, pb)?
        .into_iter()
        .filter(|d| match d {
            SectionDiff::Differs { path, .. } => significant(path),
            SectionDiff::OnlyInA(path) | SectionDiff::OnlyInB(path) => significant(path),
        })
        .collect())
}

fn counter_diffs(a: &System, b: &System) -> Vec<CounterDiff> {
    let (ba, bb) = (a.report().bank, b.report().bank);
    let mut out = Vec::new();
    for cpu in LogicalCpu::BOTH {
        for ev in Event::ALL {
            let (va, vb) = (ba.get(cpu, ev), bb.get(cpu, ev));
            if va != vb {
                out.push(CounterDiff {
                    name: format!("{cpu:?}/{ev:?}"),
                    a: va,
                    b: vb,
                });
            }
        }
    }
    out
}

/// Replay `bench` under variants `a` and `b` for up to `horizon`
/// cycles, comparing checkpoints every `stride` cycles, and bisect the
/// first divergent span down to the exact cycle.
pub fn bisect_divergence(
    bench: BenchmarkId,
    scale: f64,
    base: SystemConfig,
    a: Variant,
    b: Variant,
    horizon: u64,
    stride: u64,
) -> Result<BisectOutcome, SnapshotError> {
    let stride = stride.max(1);
    let mut sys_a = a.build(bench, scale, base);
    let mut sys_b = b.build(bench, scale, base);
    let mut outcome = BisectOutcome {
        variant_a: a.name(),
        variant_b: b.name(),
        horizon,
        first_divergent_cycle: None,
        last_equal_cycle: 0,
        diffs: Vec::new(),
        counter_diffs: Vec::new(),
    };

    let (mut ck_a, mut ck_b) = (sys_a.checkpoint(), sys_b.checkpoint());
    let initial = state_diffs(&ck_a, &ck_b)?;
    if !initial.is_empty() {
        outcome.first_divergent_cycle = Some(0);
        outcome.diffs = initial;
        outcome.counter_diffs = counter_diffs(&sys_a, &sys_b);
        return Ok(outcome);
    }

    let mut cur = 0u64;
    while cur < horizon {
        let step = stride.min(horizon - cur);
        sys_a.run_cycles(step);
        sys_b.run_cycles(step);
        cur += step;
        let (na, nb) = (sys_a.checkpoint(), sys_b.checkpoint());
        if state_diffs(&na, &nb)?.is_empty() {
            (ck_a, ck_b) = (na, nb);
            continue;
        }

        // Divergence inside (cur - step, cur]: bisect by rewinding both
        // machines from their last-equal checkpoints (resume is exact,
        // so re-running to `mid` reproduces the original trajectory).
        let (mut lo, mut hi) = (cur - step, cur);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let mut ta = a.resume(base, &ck_a)?;
            let mut tb = b.resume(base, &ck_b)?;
            ta.run_cycles(mid - lo);
            tb.run_cycles(mid - lo);
            let (ma, mb) = (ta.checkpoint(), tb.checkpoint());
            if state_diffs(&ma, &mb)?.is_empty() {
                lo = mid;
                (ck_a, ck_b) = (ma, mb);
            } else {
                hi = mid;
            }
        }

        let mut ta = a.resume(base, &ck_a)?;
        let mut tb = b.resume(base, &ck_b)?;
        ta.run_cycles(hi - lo);
        tb.run_cycles(hi - lo);
        outcome.first_divergent_cycle = Some(hi);
        outcome.last_equal_cycle = lo;
        outcome.diffs = state_diffs(&ta.checkpoint(), &tb.checkpoint())?;
        outcome.counter_diffs = counter_diffs(&ta, &tb);
        return Ok(outcome);
    }

    outcome.last_equal_cycle = horizon;
    Ok(outcome)
}

/// Human-readable verdict for the CLI.
pub fn render_bisect(o: &BisectOutcome) -> String {
    let mut out = format!(
        "# bisect-divergence: {} vs {} over {} cycles\n",
        o.variant_a, o.variant_b, o.horizon
    );
    match o.first_divergent_cycle {
        None => {
            out.push_str(&format!(
                "states are bit-identical through cycle {}\n",
                o.last_equal_cycle
            ));
        }
        Some(c) => {
            out.push_str(&format!(
                "first divergence at cycle {c} (last equal state at cycle {})\n",
                o.last_equal_cycle
            ));
            out.push_str("differing snapshot sections:\n");
            for d in &o.diffs {
                match d {
                    SectionDiff::Differs {
                        path,
                        offset,
                        len_a,
                        len_b,
                    } => out.push_str(&format!(
                        "  {path}: first differing byte at offset {offset} (len {len_a} vs {len_b})\n"
                    )),
                    SectionDiff::OnlyInA(p) => out.push_str(&format!("  {p}: only in A\n")),
                    SectionDiff::OnlyInB(p) => out.push_str(&format!("  {p}: only in B\n")),
                }
            }
            if o.counter_diffs.is_empty() {
                out.push_str("no performance counters differ yet at that cycle\n");
            } else {
                out.push_str("differing counters:\n");
                for c in &o.counter_diffs {
                    out.push_str(&format!("  {}: {} vs {}\n", c.name, c.a, c.b));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SystemConfig {
        SystemConfig::p4(true)
            .with_seed(3)
            .with_max_cycles(600_000_000)
    }

    #[test]
    fn variant_parsing_round_trips() {
        for v in [
            Variant::FastForward,
            Variant::NoFastForward,
            Variant::TraceTier,
            Variant::NoTraceTier,
            Variant::Seed(42),
        ] {
            assert_eq!(Variant::parse(&v.name()), Some(v));
        }
        assert_eq!(Variant::parse("bogus"), None);
        assert_eq!(Variant::parse("seed=x"), None);
    }

    #[test]
    fn identical_variants_never_diverge() {
        let o = bisect_divergence(
            BenchmarkId::Compress,
            0.01,
            base(),
            Variant::FastForward,
            Variant::FastForward,
            40_000,
            10_000,
        )
        .expect("bisect");
        assert_eq!(o.first_divergent_cycle, None);
        assert_eq!(o.last_equal_cycle, 40_000);
        assert!(o.diffs.is_empty());
    }

    #[test]
    fn fast_forward_toggle_does_not_diverge() {
        // Fast-forward is a pure speed optimization; the bisector is the
        // tool that *proves* it cycle-by-cycle.
        let o = bisect_divergence(
            BenchmarkId::Compress,
            0.01,
            base(),
            Variant::FastForward,
            Variant::NoFastForward,
            60_000,
            15_000,
        )
        .expect("bisect");
        assert_eq!(
            o.first_divergent_cycle, None,
            "fast-forward changed machine state: {:?}",
            o.diffs
        );
    }

    #[test]
    fn trace_tier_toggle_does_not_diverge() {
        // Same contract as fast-forward: the compiled-trace tier must be
        // invisible in every snapshot byte, cycle by cycle.
        let o = bisect_divergence(
            BenchmarkId::Compress,
            0.01,
            base(),
            Variant::TraceTier,
            Variant::NoTraceTier,
            60_000,
            15_000,
        )
        .expect("bisect");
        assert_eq!(
            o.first_divergent_cycle, None,
            "trace tier changed machine state: {:?}",
            o.diffs
        );
    }

    #[test]
    fn different_seeds_diverge_and_the_cycle_is_exact() {
        let o = bisect_divergence(
            BenchmarkId::Compress,
            0.01,
            base(),
            Variant::Seed(3),
            Variant::Seed(4),
            60_000,
            15_000,
        )
        .expect("bisect");
        let at = o.first_divergent_cycle.expect("seeds must diverge");
        assert!(!o.diffs.is_empty(), "divergence must name a section");
        if at > 0 {
            assert_eq!(o.last_equal_cycle, at - 1, "bisection must be exact");
        }
        let text = render_bisect(&o);
        assert!(text.contains("first divergence at cycle"), "{text}");
    }
}
