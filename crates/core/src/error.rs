//! The structured error taxonomy of the harness.
//!
//! Everything that can fail on a *user-facing* path — CLI parsing,
//! experiment configuration, checkpoint and bundle I/O, snapshot
//! decoding — returns a [`JsmtError`] instead of panicking. Errors are
//! hand-rolled (no external error crates): a classified kind, a message,
//! and an optional boxed cause, so `Display` renders the full context
//! chain (`loading crash bundle 'x.crash': checkpoint data: snapshot
//! checksum mismatch: …`) and callers can still branch on [`ErrorKind`].
//!
//! Panics remain reserved for violated internal invariants; the
//! supervised engine (`experiments::supervise`) additionally converts
//! *cell* panics into recorded failures so one bad simulation cannot
//! take down a grid.

use std::fmt;

/// Classification of a [`JsmtError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed command line (unknown flag, missing value, …).
    Cli,
    /// A configuration value is out of domain (scale ≤ 0, zero repeats).
    Config,
    /// An operating-system I/O failure (read, write, rename, fsync).
    Io,
    /// Snapshot bytes failed validation (checksum, framing, version).
    Snapshot,
    /// An experiment could not produce its result.
    Experiment,
    /// A crash-replay did not behave as the bundle recorded.
    Replay,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorKind::Cli => "cli",
            ErrorKind::Config => "config",
            ErrorKind::Io => "io",
            ErrorKind::Snapshot => "snapshot",
            ErrorKind::Experiment => "experiment",
            ErrorKind::Replay => "replay",
        };
        f.write_str(name)
    }
}

/// A classified error with a chain of context messages.
#[derive(Debug)]
pub struct JsmtError {
    kind: ErrorKind,
    message: String,
    cause: Option<Box<JsmtError>>,
}

impl JsmtError {
    /// A leaf error of the given kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        JsmtError {
            kind,
            message: message.into(),
            cause: None,
        }
    }

    /// Wrap this error in an outer context message. The outer error
    /// keeps the inner kind, so classification survives wrapping.
    pub fn context(self, message: impl Into<String>) -> Self {
        JsmtError {
            kind: self.kind,
            message: message.into(),
            cause: Some(Box::new(self)),
        }
    }

    /// The error's classification (of the outermost frame).
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The innermost message of the chain (the root cause).
    pub fn root_cause(&self) -> &str {
        let mut e = self;
        while let Some(cause) = &e.cause {
            e = cause;
        }
        &e.message
    }
}

impl fmt::Display for JsmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        let mut cause = self.cause.as_deref();
        while let Some(e) = cause {
            write!(f, ": {}", e.message)?;
            cause = e.cause.as_deref();
        }
        Ok(())
    }
}

impl std::error::Error for JsmtError {}

impl From<std::io::Error> for JsmtError {
    fn from(e: std::io::Error) -> Self {
        JsmtError::new(ErrorKind::Io, e.to_string())
    }
}

impl From<jsmt_snapshot::SnapshotError> for JsmtError {
    fn from(e: jsmt_snapshot::SnapshotError) -> Self {
        JsmtError::new(ErrorKind::Snapshot, e.to_string())
    }
}

impl From<crate::experiments::CkptError> for JsmtError {
    fn from(e: crate::experiments::CkptError) -> Self {
        match e {
            crate::experiments::CkptError::Io(io) => io.into(),
            crate::experiments::CkptError::Snapshot(s) => s.into(),
        }
    }
}

/// Extension adding `.context(..)` to `Result`s whose error converts
/// into [`JsmtError`].
pub trait Context<T> {
    /// Convert the error into a [`JsmtError`] wrapped in `message`.
    fn context(self, message: impl Into<String>) -> Result<T, JsmtError>;
}

impl<T, E: Into<JsmtError>> Context<T> for Result<T, E> {
    fn context(self, message: impl Into<String>) -> Result<T, JsmtError> {
        self.map_err(|e| e.into().context(message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_the_context_chain() {
        let e = JsmtError::new(ErrorKind::Snapshot, "checksum mismatch")
            .context("checkpoint data")
            .context("loading 'grid.ck'");
        assert_eq!(
            e.to_string(),
            "loading 'grid.ck': checkpoint data: checksum mismatch"
        );
        assert_eq!(e.kind(), ErrorKind::Snapshot);
        assert_eq!(e.root_cause(), "checksum mismatch");
    }

    #[test]
    fn conversions_classify() {
        let io: JsmtError = std::io::Error::other("disk on fire").into();
        assert_eq!(io.kind(), ErrorKind::Io);
        let snap: JsmtError = jsmt_snapshot::SnapshotError::TrailingBytes(3).into();
        assert_eq!(snap.kind(), ErrorKind::Snapshot);
    }

    #[test]
    fn result_context_extension() {
        let r: Result<(), std::io::Error> = Err(std::io::Error::other("nope"));
        let e = r.context("writing manifest").unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Io);
        assert_eq!(e.to_string(), "writing manifest: nope");
    }
}
