//! The background JIT compiler's work generator.
//!
//! With [`crate::JvmConfig::background_jit`] enabled, hot methods queue
//! for a *compiler thread* — the second JVM helper thread the paper's
//! introduction points at — whose µop stream this generator produces:
//! IR construction (loads over the method's bytecode in the native
//! region, allocation-like stores), optimization passes (ALU/branch
//! work), and code emission (stores into the method's body in the JIT
//! code region).

use jsmt_isa::{Addr, Region, Uop, UopSink, DEP_NONE};

/// Compiler-thread code lives after the GC's slice of the JVM runtime.
const JIT_CODE_OFFSET: u64 = 26 * 1024;
const JIT_CODE_SPAN: u64 = 10 * 1024;
/// µops of compilation work per byte of compiled code (real JITs spend
/// thousands of instructions per bytecode; this is the scaled ratio).
const UOPS_PER_CODE_BYTE: u64 = 3;

/// Generates the µop stream for compiling one method.
#[derive(Debug, Clone)]
pub struct JitWorkGen {
    body_base: Addr,
    body_size: u64,
    emitted: u64,
    total: u64,
    code_off: u64,
    rng: u64,
}

impl JitWorkGen {
    /// A generator for compiling a method whose body is at
    /// `(body_base, body_size)`.
    pub fn new(body_base: Addr, body_size: u64, seed: u64) -> Self {
        JitWorkGen {
            body_base,
            body_size,
            emitted: 0,
            total: body_size * UOPS_PER_CODE_BYTE,
            code_off: 0,
            rng: seed | 1,
        }
    }

    /// Whether compilation work is exhausted.
    pub fn is_done(&self) -> bool {
        self.emitted >= self.total
    }

    #[inline]
    fn next_pc(&mut self) -> Addr {
        let pc = Region::Code.base() + JIT_CODE_OFFSET + (self.code_off % JIT_CODE_SPAN);
        self.code_off += 4;
        pc
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Serialize the in-flight compilation (checkpoints can land mid-JIT).
    pub fn write_to(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_u64(self.body_base);
        w.put_u64(self.body_size);
        w.put_u64(self.emitted);
        w.put_u64(self.total);
        w.put_u64(self.code_off);
        w.put_u64(self.rng);
    }

    /// Rebuild an in-flight compilation from a snapshot.
    pub fn read_from(
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<Self, jsmt_snapshot::SnapshotError> {
        Ok(JitWorkGen {
            body_base: r.get_u64()?,
            body_size: r.get_u64()?,
            emitted: r.get_u64()?,
            total: r.get_u64()?,
            code_off: r.get_u64()?,
            rng: r.get_u64()?,
        })
    }

    /// Append up to `max` µops of compilation work; returns the number
    /// emitted (0 when done). Generic over the destination so the stream
    /// lands directly in the compiler thread's pending queue (zero-copy).
    pub fn emit<S: UopSink>(&mut self, out: &mut S, max: usize) -> usize {
        let mut n = 0;
        while n + 6 <= max && !self.is_done() {
            // IR build: bytecode load + hash-table probe.
            let pc = self.next_pc();
            let bc = (Region::Native.base() + self.next_rand() % (64 * 1024)) & !3;
            out.push_uop(Uop::load(pc, bc));
            let pc = self.next_pc();
            out.push_uop(Uop {
                dep_dist: 1,
                ..Uop::alu(pc)
            });
            // Optimization: compare/branch over the IR.
            let pc = self.next_pc();
            let target = Region::Code.base() + JIT_CODE_OFFSET;
            out.push_uop(Uop::branch(pc, target, !self.next_rand().is_multiple_of(4)));
            let pc = self.next_pc();
            out.push_uop(Uop::alu(pc));
            // Code emission: sequential stores into the method body.
            let pc = self.next_pc();
            let at = self.body_base + (self.emitted / UOPS_PER_CODE_BYTE) % self.body_size.max(1);
            out.push_uop(Uop::store(pc, at & !3));
            let pc = self.next_pc();
            out.push_uop(Uop {
                dep_dist: DEP_NONE,
                ..Uop::alu(pc)
            });
            self.emitted += 6;
            n += 6;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_proportionally_to_body_size() {
        let count = |size: u64| {
            let mut g = JitWorkGen::new(Region::JitCode.base(), size, 7);
            let mut out = Vec::new();
            let mut total = 0;
            while !g.is_done() {
                out.clear();
                total += g.emit(&mut out, 96);
            }
            total
        };
        let small = count(200);
        let large = count(2000);
        assert!(
            large > small * 5,
            "compile cost scales with code size: {small} vs {large}"
        );
    }

    #[test]
    fn stores_target_the_method_body() {
        let base = Region::JitCode.base() + 4096;
        let mut g = JitWorkGen::new(base, 512, 3);
        let mut out = Vec::new();
        g.emit(&mut out, 96);
        let body_stores = out
            .iter()
            .filter(|u| u.kind == jsmt_isa::UopKind::Store)
            .filter(|u| {
                let a = u.mem.unwrap();
                a >= base && a < base + 512
            })
            .count();
        assert!(body_stores > 0, "code emission writes the body");
    }

    #[test]
    fn zero_size_body_is_trivial() {
        let mut g = JitWorkGen::new(Region::JitCode.base(), 0, 1);
        assert!(g.is_done());
        let mut out = Vec::new();
        assert_eq!(g.emit(&mut out, 64), 0);
    }
}
