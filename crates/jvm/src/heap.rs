//! The Java heap model.

use jsmt_isa::{Addr, Region};

/// Allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects allocated over the process lifetime.
    pub objects: u64,
    /// Bytes allocated over the process lifetime.
    pub bytes: u64,
    /// Collections completed.
    pub collections: u64,
}

/// A bump-pointer heap with a stop-the-world collection trigger.
///
/// The paper's JVM ran with a 512 MB heap; the simulator scales the heap
/// to the scaled workload footprints (default 16 MB) so that
/// allocation-heavy benchmarks trigger collections within simulation
/// budgets while the *ratio* of GC work to mutator work stays in a
/// realistic band.
#[derive(Debug, Clone)]
pub struct Heap {
    base: Addr,
    capacity: u64,
    used: u64,
    /// Estimated live bytes retained across a GC (set by the process's
    /// survival-rate knob at collection time).
    live: u64,
    gc_trigger: f64,
    stats: HeapStats,
}

impl Heap {
    /// A heap of `capacity` bytes that requests a collection when
    /// occupancy exceeds `gc_trigger` (fraction).
    ///
    /// # Panics
    ///
    /// Panics if the capacity exceeds the simulated heap region or the
    /// trigger is not in `(0, 1]`.
    pub fn new(capacity: u64, gc_trigger: f64) -> Self {
        assert!(
            capacity <= Region::Heap.size(),
            "heap larger than the simulated region"
        );
        assert!(
            gc_trigger > 0.0 && gc_trigger <= 1.0,
            "trigger must be in (0,1]"
        );
        Heap {
            base: Region::Heap.base(),
            capacity,
            used: 0,
            live: 0,
            gc_trigger,
            stats: HeapStats::default(),
        }
    }

    /// Allocate `bytes` (8-byte aligned). Returns `None` when a collection
    /// is needed first — the caller must reach a safepoint and let the GC
    /// run.
    pub fn alloc(&mut self, bytes: u64) -> Option<Addr> {
        let aligned = (bytes + 7) & !7;
        if self.needs_gc(aligned) {
            return None;
        }
        let addr = self.base + self.used;
        self.used += aligned;
        self.stats.objects += 1;
        self.stats.bytes += aligned;
        Some(addr)
    }

    /// Whether allocating `bytes` more would cross the GC trigger.
    pub fn needs_gc(&self, bytes: u64) -> bool {
        (self.used + bytes) as f64 > self.capacity as f64 * self.gc_trigger
    }

    /// Complete a collection: retain `survival` of the used heap as live
    /// data (compacted to the bottom). Returns the live byte count the
    /// collector had to trace.
    ///
    /// # Panics
    ///
    /// Panics if `survival` is not in `[0, 1]`.
    pub fn collect(&mut self, survival: f64) -> u64 {
        assert!((0.0..=1.0).contains(&survival), "survival must be in [0,1]");
        let live = ((self.used as f64 * survival) as u64 + 7) & !7;
        self.live = live;
        self.used = live;
        self.stats.collections += 1;
        live
    }

    /// Bytes currently allocated (including live data).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Estimated live bytes after the last collection.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Heap capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Base address of the heap.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }
}

impl jsmt_snapshot::Snapshotable for Heap {
    /// `base`, `capacity` and `gc_trigger` are construction inputs; only
    /// the bump pointer, live estimate and statistics are state.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_u64(self.used);
        w.put_u64(self.live);
        w.put_u64(self.stats.objects);
        w.put_u64(self.stats.bytes);
        w.put_u64(self.stats.collections);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let used = r.get_u64()?;
        let live = r.get_u64()?;
        if used > self.capacity || live > used {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "heap occupancy outside capacity",
            ));
        }
        self.used = used;
        self.live = live;
        self.stats.objects = r.get_u64()?;
        self.stats.bytes = r.get_u64()?;
        self.stats.collections = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_bumps_and_aligns() {
        let mut h = Heap::new(1 << 20, 0.9);
        let a = h.alloc(10).unwrap();
        let b = h.alloc(10).unwrap();
        assert_eq!(a % 8, 0);
        assert_eq!(b, a + 16, "10 rounds to 16");
        assert_eq!(h.used(), 32);
        assert_eq!(h.stats().objects, 2);
    }

    #[test]
    fn gc_trigger_fires_at_threshold() {
        let mut h = Heap::new(1000, 0.5);
        assert!(h.alloc(400).is_some());
        assert!(h.alloc(200).is_none(), "would cross 50% of 1000");
        assert!(!h.needs_gc(0));
        assert!(h.needs_gc(200));
    }

    #[test]
    fn collect_retains_survivors() {
        let mut h = Heap::new(1000, 0.5);
        h.alloc(400).unwrap();
        let live = h.collect(0.25);
        assert_eq!(live, 104, "25% of 400, 8-aligned");
        assert_eq!(h.used(), live);
        assert_eq!(h.stats().collections, 1);
        assert!(h.alloc(200).is_some(), "space reclaimed");
    }

    #[test]
    fn full_survival_makes_no_progress() {
        let mut h = Heap::new(1000, 0.5);
        h.alloc(400).unwrap();
        let live = h.collect(1.0);
        assert_eq!(live, 400);
        assert!(h.alloc(200).is_none(), "still over trigger");
    }

    #[test]
    #[should_panic(expected = "larger than")]
    fn oversized_heap_rejected() {
        let _ = Heap::new(u64::MAX, 0.9);
    }
}
