//! # jsmt-jvm
//!
//! A miniature JVM *runtime model*: everything about the Java execution
//! environment that shapes the µop streams the paper measures, without a
//! bytecode interpreter for real class files.
//!
//! The paper stresses that "in addition to normal Java application
//! threads, many helper threads exist inside the JVM", that the JVM is
//! "a multithreaded application even when the Java applications on top of
//! it are single-threaded", and that "many components of the JVM are
//! involved in executing Java bytecodes". This crate models those
//! components:
//!
//! * **Heap + GC** ([`Heap`], [`GcWorkGen`]): bump allocation with a
//!   stop-the-world collector whose mark/sweep work runs on a *separate
//!   GC thread* — the helper thread that keeps even single-threaded Java
//!   programs multithreaded.
//! * **JIT warm-up** ([`MethodTable`]): methods start *interpreted*
//!   (µops fetched from the shared interpreter loop, with indirect
//!   dispatch branches and a µop-expansion factor) and are *compiled*
//!   after a threshold, moving their fetch footprint into the JIT code
//!   cache — the mechanism behind Java's distinctive instruction-stream
//!   behaviour.
//! * **Monitors** ([`MonitorTable`]): `synchronized` blocks with
//!   uncontended fast paths (atomic µop) and contended slow paths that
//!   trap to the OS futex model.
//! * **Emission context** ([`EmitCtx`]): the API benchmark kernels use to
//!   turn their real computation into µop streams with correct code
//!   addresses, data addresses and dependence structure.
//!
//! ## Example
//!
//! ```
//! use jsmt_jvm::{JvmConfig, JvmProcess};
//!
//! let mut jvm = JvmProcess::new(1, JvmConfig::default());
//! let m = jvm.methods_mut().register("hot_loop", 400);
//! let mut out = Vec::new();
//! let mut ctx = jsmt_jvm::EmitCtx::new(&mut jvm, &mut out);
//! ctx.call(m);
//! ctx.alu(4);
//! let addr = ctx.alloc(64).expect("fresh heap never needs GC");
//! ctx.store(addr);
//! drop(ctx);
//! assert!(!out.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
mod gc;
mod heap;
mod jit;
mod methods;
mod monitor;
mod process;

pub use emit::{EmitCtx, UopRef};
pub use gc::GcWorkGen;
pub use heap::{Heap, HeapStats};
pub use jit::JitWorkGen;
pub use methods::{MethodId, MethodMode, MethodTable};
pub use monitor::{MonitorId, MonitorOutcome, MonitorTable};
pub use process::{JvmConfig, JvmProcess};
