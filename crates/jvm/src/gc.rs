//! The garbage-collector work generator.
//!
//! When a mutator's allocation trips the heap trigger, the system layer
//! stops the world and runs the *GC thread*, whose µop stream this
//! generator produces: a mark phase that pointer-chases through the live
//! data (dependent loads — the classic GC memory behaviour) and a sweep
//! phase that rewrites object headers. The stream executes GC code from
//! the JVM-runtime portion of the static code region.

use jsmt_isa::{Addr, Region, Uop, UopSink, DEP_NONE};

/// Generates the µop stream for one collection.
#[derive(Debug, Clone)]
pub struct GcWorkGen {
    heap_base: Addr,
    live_bytes: u64,
    mark_pos: u64,
    sweep_pos: u64,
    code_off: u64,
    rng: u64,
}

/// GC code lives after the interpreter in the static code region.
const GC_CODE_OFFSET: u64 = 16 * 1024;
const GC_CODE_SPAN: u64 = 8 * 1024;
/// Bytes of live data examined per mark step (one object granule).
const MARK_GRANULE: u64 = 32;
/// Bytes swept per sweep step.
const SWEEP_GRANULE: u64 = 128;

impl GcWorkGen {
    /// A generator for a collection that must trace `live_bytes` starting
    /// at `heap_base`.
    pub fn new(heap_base: Addr, live_bytes: u64, seed: u64) -> Self {
        GcWorkGen {
            heap_base,
            live_bytes,
            mark_pos: 0,
            sweep_pos: 0,
            code_off: 0,
            rng: seed | 1,
        }
    }

    /// Whether all GC work has been emitted.
    pub fn is_done(&self) -> bool {
        self.mark_pos >= self.live_bytes && self.sweep_pos >= self.live_bytes
    }

    /// Rough µop count of a collection over `live_bytes` (for tests and
    /// budget planning).
    pub fn estimate_uops(live_bytes: u64) -> u64 {
        (live_bytes / MARK_GRANULE) * 5 + (live_bytes / SWEEP_GRANULE) * 3
    }

    #[inline]
    fn next_pc(&mut self) -> Addr {
        let pc = Region::Code.base() + GC_CODE_OFFSET + (self.code_off % GC_CODE_SPAN);
        self.code_off += 4;
        pc
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Serialize the in-flight collection (checkpoints can land mid-GC).
    pub fn write_to(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_u64(self.heap_base);
        w.put_u64(self.live_bytes);
        w.put_u64(self.mark_pos);
        w.put_u64(self.sweep_pos);
        w.put_u64(self.code_off);
        w.put_u64(self.rng);
    }

    /// Rebuild an in-flight collection from a snapshot.
    pub fn read_from(
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<Self, jsmt_snapshot::SnapshotError> {
        Ok(GcWorkGen {
            heap_base: r.get_u64()?,
            live_bytes: r.get_u64()?,
            mark_pos: r.get_u64()?,
            sweep_pos: r.get_u64()?,
            code_off: r.get_u64()?,
            rng: r.get_u64()?,
        })
    }

    /// Append up to `max` µops of GC work; returns the number emitted
    /// (0 when the collection's work is exhausted). Generic over the
    /// destination so the stream lands directly in the GC thread's
    /// pending queue (zero-copy).
    pub fn emit<S: UopSink>(&mut self, out: &mut S, max: usize) -> usize {
        // GC µops are user-mode (the collector is part of the JVM, not
        // the kernel) and independent unless explicitly marked.
        fn push<S: UopSink>(out: &mut S, mut u: Uop, emitted: &mut usize) {
            if u.dep_dist == 0 {
                u.dep_dist = DEP_NONE;
            }
            out.push_uop(u);
            *emitted += 1;
        }
        let mut emitted = 0;
        while emitted + 5 <= max {
            if self.mark_pos < self.live_bytes {
                // Mark step: load the header (pointer-chase: scattered,
                // dependent), test, mark-bit store on a fraction, loop
                // branch.
                let scatter = (self.next_rand() % self.live_bytes.max(1)) & !7;
                let pc = self.next_pc();
                push(out, Uop::load(pc, self.heap_base + scatter), &mut emitted);
                let pc = self.next_pc();
                push(
                    out,
                    Uop {
                        dep_dist: 1,
                        ..Uop::alu(pc)
                    },
                    &mut emitted,
                );
                let pc = self.next_pc();
                push(
                    out,
                    Uop {
                        dep_dist: 1,
                        ..Uop::alu(pc)
                    },
                    &mut emitted,
                );
                if self.next_rand().is_multiple_of(4) {
                    let pc = self.next_pc();
                    push(
                        out,
                        Uop {
                            dep_dist: 2,
                            ..Uop::store(pc, self.heap_base + scatter)
                        },
                        &mut emitted,
                    );
                }
                let pc = self.next_pc();
                let target = Region::Code.base() + GC_CODE_OFFSET;
                push(out, Uop::branch(pc, target, true), &mut emitted);
                self.mark_pos += MARK_GRANULE;
            } else if self.sweep_pos < self.live_bytes {
                // Sweep step: sequential header rewrite.
                let pc = self.next_pc();
                push(
                    out,
                    Uop::store(pc, self.heap_base + self.sweep_pos),
                    &mut emitted,
                );
                let pc = self.next_pc();
                push(out, Uop::alu(pc), &mut emitted);
                let pc = self.next_pc();
                let target = Region::Code.base() + GC_CODE_OFFSET + 4096;
                push(out, Uop::branch(pc, target, true), &mut emitted);
                self.sweep_pos += SWEEP_GRANULE;
            } else {
                break;
            }
        }
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsmt_isa::UopKind;

    #[test]
    fn emits_until_done() {
        let mut g = GcWorkGen::new(Region::Heap.base(), 4096, 9);
        let mut out = Vec::new();
        let mut total = 0;
        loop {
            out.clear();
            let n = g.emit(&mut out, 128);
            if n == 0 {
                break;
            }
            total += n;
        }
        assert!(g.is_done());
        let est = GcWorkGen::estimate_uops(4096);
        assert!(
            (total as i64 - est as i64).unsigned_abs() < est / 2 + 64,
            "emitted {total}, estimated {est}"
        );
    }

    #[test]
    fn gc_touches_only_heap_data_and_jvm_code() {
        let mut g = GcWorkGen::new(Region::Heap.base(), 2048, 3);
        let mut out = Vec::new();
        g.emit(&mut out, 512);
        for u in &out {
            assert!(!u.privileged, "GC is user-mode JVM work");
            assert_eq!(Region::of(u.pc), Region::Code);
            if let Some(a) = u.mem {
                assert_eq!(Region::of(a), Region::Heap);
            }
        }
    }

    #[test]
    fn mark_phase_has_dependent_loads() {
        let mut g = GcWorkGen::new(Region::Heap.base(), 2048, 3);
        let mut out = Vec::new();
        g.emit(&mut out, 256);
        let chained = out
            .iter()
            .filter(|u| u.dep_dist != DEP_NONE && u.kind == UopKind::Alu)
            .count();
        assert!(chained > 0, "mark loads feed dependent work");
    }

    #[test]
    fn zero_live_heap_is_trivial() {
        let mut g = GcWorkGen::new(Region::Heap.base(), 0, 1);
        let mut out = Vec::new();
        assert_eq!(g.emit(&mut out, 100), 0);
        assert!(g.is_done());
    }
}
