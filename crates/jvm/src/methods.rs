//! Method table and JIT warm-up model.

use jsmt_isa::{Addr, Region};

/// Handle to a registered method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodId(pub u32);

/// Execution mode of a method at a given invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodMode {
    /// Bytecode executed by the shared interpreter loop: µops fetch from
    /// the (small, hot) interpreter code region, each abstract operation
    /// pays dispatch overhead with an indirect branch.
    Interpreted,
    /// Compiled: µops fetch from the method's own body in the JIT code
    /// cache (large aggregate footprint, no dispatch overhead).
    Compiled,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompileState {
    Interpreted,
    /// Hot enough; queued for the background compiler thread.
    Pending,
    Compiled,
}

#[derive(Debug, Clone)]
struct MethodInfo {
    /// Code bytes of the compiled body (proportional to bytecode size).
    code_base: Addr,
    code_size: u64,
    invocations: u64,
    state: CompileState,
}

/// The method registry with hotness-based compilation.
///
/// Registration assigns each method a body in the JIT code-cache region at
/// a stable address, so compiled methods have stable trace-cache/BTB
/// footprints. The interpreter itself is a fixed region shared by all
/// methods.
#[derive(Debug, Clone)]
pub struct MethodTable {
    methods: Vec<MethodInfo>,
    jit_cursor: Addr,
    jit_threshold: u64,
    /// Total compiled-code bytes (the process's JIT code footprint).
    code_bytes: u64,
    /// Background compilation: methods crossing the threshold are queued
    /// for a compiler thread instead of switching modes instantly.
    background: bool,
    compile_queue: Vec<MethodId>,
}

impl MethodTable {
    /// Size of the shared interpreter loop's hot code.
    pub const INTERPRETER_BYTES: u64 = 12 * 1024;

    /// A table that compiles methods after `jit_threshold` invocations.
    pub fn new(jit_threshold: u64) -> Self {
        MethodTable {
            methods: Vec::new(),
            jit_cursor: Region::JitCode.base(),
            jit_threshold,
            code_bytes: 0,
            background: false,
            compile_queue: Vec::new(),
        }
    }

    /// Switch to background compilation: hot methods queue for a
    /// compiler thread (see [`MethodTable::take_compile_request`]) and
    /// keep interpreting until [`MethodTable::mark_compiled`].
    pub fn set_background_compilation(&mut self, on: bool) {
        self.background = on;
    }

    /// Register a method with the given compiled-body size in bytes.
    /// `name` is accepted for diagnostics parity with real JVMs but not
    /// stored (method identity is the returned id).
    ///
    /// # Panics
    ///
    /// Panics if the JIT code cache region is exhausted.
    pub fn register(&mut self, name: &str, code_bytes: u64) -> MethodId {
        let _ = name;
        let size = code_bytes.max(16);
        assert!(
            self.jit_cursor + size <= Region::JitCode.end(),
            "JIT code cache exhausted"
        );
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(MethodInfo {
            code_base: self.jit_cursor,
            code_size: size,
            invocations: 0,
            state: CompileState::Interpreted,
        });
        self.jit_cursor += size;
        self.code_bytes += size;
        id
    }

    /// Record an invocation and return the mode it executes in.
    ///
    /// # Panics
    ///
    /// Panics on an unknown method id.
    pub fn invoke(&mut self, id: MethodId) -> MethodMode {
        let background = self.background;
        let threshold = self.jit_threshold;
        let m = &mut self.methods[id.0 as usize];
        m.invocations += 1;
        if !background {
            return if m.invocations > threshold {
                MethodMode::Compiled
            } else {
                MethodMode::Interpreted
            };
        }
        match m.state {
            CompileState::Compiled => MethodMode::Compiled,
            CompileState::Pending => MethodMode::Interpreted,
            CompileState::Interpreted => {
                if m.invocations > threshold {
                    m.state = CompileState::Pending;
                    self.compile_queue.push(id);
                }
                MethodMode::Interpreted
            }
        }
    }

    /// Pop the next queued compilation request (background mode).
    pub fn take_compile_request(&mut self) -> Option<MethodId> {
        if self.compile_queue.is_empty() {
            None
        } else {
            Some(self.compile_queue.remove(0))
        }
    }

    /// Background compilation of `id` finished; future invocations run
    /// compiled.
    pub fn mark_compiled(&mut self, id: MethodId) {
        self.methods[id.0 as usize].state = CompileState::Compiled;
    }

    /// Whether any compilations are queued.
    pub fn has_pending_compiles(&self) -> bool {
        !self.compile_queue.is_empty()
    }

    /// Compiled-body address range of a method.
    pub fn body_of(&self, id: MethodId) -> (Addr, u64) {
        let m = &self.methods[id.0 as usize];
        (m.code_base, m.code_size)
    }

    /// The interpreter loop's address range (shared by all methods).
    pub fn interpreter_range(&self) -> (Addr, u64) {
        (Region::Code.base(), Self::INTERPRETER_BYTES)
    }

    /// Number of invocations a method has seen.
    pub fn invocations(&self, id: MethodId) -> u64 {
        self.methods[id.0 as usize].invocations
    }

    /// Total compiled-code footprint in bytes.
    pub fn code_footprint(&self) -> u64 {
        self.code_bytes
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether no methods are registered.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

impl jsmt_snapshot::Snapshotable for MethodTable {
    /// Methods are registered at runtime, so the table length is dynamic;
    /// `jit_threshold` and `background` are construction inputs.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.methods.len());
        for m in &self.methods {
            w.put_u64(m.code_base);
            w.put_u64(m.code_size);
            w.put_u64(m.invocations);
            w.put_u8(match m.state {
                CompileState::Interpreted => 0,
                CompileState::Pending => 1,
                CompileState::Compiled => 2,
            });
        }
        w.put_u64(self.jit_cursor);
        w.put_u64(self.code_bytes);
        w.put_usize(self.compile_queue.len());
        for id in &self.compile_queue {
            w.put_u64(u64::from(id.0));
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_len(25)?;
        self.methods.clear();
        self.methods.reserve(n);
        for _ in 0..n {
            let code_base = r.get_u64()?;
            let code_size = r.get_u64()?;
            if code_base < Region::JitCode.base() || code_base + code_size > Region::JitCode.end() {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "method body outside the JIT code region",
                ));
            }
            let invocations = r.get_u64()?;
            let state = match r.get_u8()? {
                0 => CompileState::Interpreted,
                1 => CompileState::Pending,
                2 => CompileState::Compiled,
                _ => {
                    return Err(jsmt_snapshot::SnapshotError::Corrupt(
                        "compile state tag out of domain",
                    ))
                }
            };
            self.methods.push(MethodInfo {
                code_base,
                code_size,
                invocations,
                state,
            });
        }
        self.jit_cursor = r.get_u64()?;
        if self.jit_cursor < Region::JitCode.base() || self.jit_cursor > Region::JitCode.end() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "JIT cursor outside its region",
            ));
        }
        self.code_bytes = r.get_u64()?;
        let qn = r.get_len(8)?;
        self.compile_queue.clear();
        for _ in 0..qn {
            let v = r.get_u64()?;
            if v as usize >= n {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "compile queue references unknown method",
                ));
            }
            self.compile_queue.push(MethodId(v as u32));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_transitions_to_compiled() {
        let mut t = MethodTable::new(3);
        let m = t.register("f", 256);
        for _ in 0..3 {
            assert_eq!(t.invoke(m), MethodMode::Interpreted);
        }
        assert_eq!(t.invoke(m), MethodMode::Compiled);
        assert_eq!(t.invocations(m), 4);
    }

    #[test]
    fn bodies_are_disjoint_and_stable() {
        let mut t = MethodTable::new(1);
        let a = t.register("a", 100);
        let b = t.register("b", 200);
        let (base_a, size_a) = t.body_of(a);
        let (base_b, _) = t.body_of(b);
        assert!(base_a + size_a <= base_b);
        assert_eq!(t.body_of(a), (base_a, size_a), "stable across calls");
        assert_eq!(t.code_footprint(), 100 + 200);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn interpreter_lives_in_static_code() {
        let t = MethodTable::new(1);
        let (base, size) = t.interpreter_range();
        assert_eq!(Region::of(base), Region::Code);
        assert_eq!(Region::of(base + size - 1), Region::Code);
    }

    #[test]
    fn background_mode_defers_to_compiler_thread() {
        let mut t = MethodTable::new(2);
        t.set_background_compilation(true);
        let m = t.register("hot", 128);
        for _ in 0..6 {
            assert_eq!(
                t.invoke(m),
                MethodMode::Interpreted,
                "stays interpreted until compiled"
            );
        }
        assert!(t.has_pending_compiles());
        let req = t.take_compile_request().expect("queued");
        assert_eq!(req, m);
        assert!(!t.has_pending_compiles());
        t.mark_compiled(m);
        assert_eq!(t.invoke(m), MethodMode::Compiled);
    }

    #[test]
    fn zero_threshold_compiles_immediately() {
        let mut t = MethodTable::new(0);
        let m = t.register("hot", 64);
        assert_eq!(t.invoke(m), MethodMode::Compiled);
    }
}
