//! The µop emission context for workload kernels.
//!
//! Kernels run their real algorithms in Rust and *narrate* them through an
//! [`EmitCtx`]: every abstract operation becomes µops with correct code
//! addresses (interpreter loop vs JIT body, per the method's warm-up
//! state), correct data addresses (the kernel's simulated structures), and
//! explicit data dependences. Interpreted execution pays per-operation
//! dispatch overhead ending in an indirect branch — the mechanism behind
//! interpreted Java's poor branch behaviour.

use jsmt_isa::{Addr, BranchInfo, BranchKind, Uop, UopKind, DEP_NONE};

use crate::{JvmProcess, MethodMode};

/// Reference to an already-emitted µop, for expressing dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopRef(usize);

/// Emission context borrowed for one block of a thread's execution.
#[derive(Debug)]
pub struct EmitCtx<'a> {
    proc: &'a mut JvmProcess,
    out: &'a mut Vec<Uop>,
    pc_base: Addr,
    pc_span: u64,
    pc_off: u64,
    mode: MethodMode,
    stack_base: Addr,
    stack_off: u64,
    op_count: u64,
}

/// Hot stack window a thread keeps touching (locals, spills, frames).
const STACK_WINDOW: u64 = 1536;

impl<'a> EmitCtx<'a> {
    /// Begin emitting into `out` for process `proc`. Starts at the
    /// interpreter until [`EmitCtx::call`] selects a method. The stack
    /// defaults to the base of the stack region; per-thread contexts
    /// should use [`EmitCtx::with_stack`] so each software thread touches
    /// its own hot stack window (a real and significant L1 pressure
    /// source when two threads co-reside on an SMT core).
    pub fn new(proc: &'a mut JvmProcess, out: &'a mut Vec<Uop>) -> Self {
        let (base, span) = proc.methods().interpreter_range();
        let stack_base = jsmt_isa::Region::Stack.base();
        EmitCtx {
            proc,
            out,
            pc_base: base,
            pc_span: span,
            pc_off: 0,
            mode: MethodMode::Interpreted,
            stack_base,
            stack_off: 0,
            op_count: 0,
        }
    }

    /// Builder-style: set the thread's stack slab base.
    pub fn with_stack(mut self, base: Addr) -> Self {
        self.stack_base = base;
        self
    }

    /// Spill/fill traffic against the thread's hot stack window, woven in
    /// every few operations (method locals and register spills).
    #[inline]
    fn stack_traffic(&mut self) {
        self.op_count += 1;
        if !self.op_count.is_multiple_of(4) {
            return;
        }
        self.stack_off = (self.stack_off + 40) % STACK_WINDOW;
        let addr = self.stack_base + self.stack_off;
        let pc = self.next_pc();
        if self.op_count.is_multiple_of(8) {
            self.push(Uop::store(pc, addr));
        } else {
            self.push(Uop::load(pc, addr));
        }
    }

    /// Number of µops emitted so far in this block.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Reference to the most recently emitted µop.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been emitted.
    pub fn last(&self) -> UopRef {
        assert!(!self.out.is_empty(), "no µops emitted yet");
        UopRef(self.out.len() - 1)
    }

    #[inline]
    fn next_pc(&mut self) -> Addr {
        let pc = self.pc_base + (self.pc_off % self.pc_span);
        self.pc_off += 4;
        pc
    }

    #[inline]
    fn push(&mut self, uop: Uop) -> UopRef {
        self.out.push(uop);
        UopRef(self.out.len() - 1)
    }

    #[inline]
    fn dist_to(&self, r: UopRef) -> u8 {
        let d = self.out.len() - r.0;
        if d > 254 {
            DEP_NONE
        } else {
            d as u8
        }
    }

    /// Interpreter dispatch overhead: bytecode fetch, decode, and an
    /// indirect dispatch branch whose target varies per operation (the
    /// BTB-hostile part of interpreted Java).
    fn dispatch(&mut self) {
        self.stack_traffic();
        if self.mode != MethodMode::Interpreted {
            return;
        }
        let n = self.proc.config().interp_expansion;
        for i in 0..n {
            let pc = self.next_pc();
            if i + 1 == n {
                // Bytecode dispatch: opcode distributions are heavily
                // skewed, so most dispatches land on a handful of hot
                // handlers (which the BTB learns) with a tail of cold
                // ones (which it does not) — the realistic ~25-35%
                // indirect-mispredict regime of interpreters.
                let r = self.proc.next_rand();
                let target = if !r.is_multiple_of(4) {
                    self.pc_base + ((r >> 8) % 4) * 64
                } else {
                    (self.pc_base + (r % self.pc_span)) & !3
                };
                self.push(Uop {
                    pc,
                    kind: UopKind::Branch,
                    mem: None,
                    branch: Some(BranchInfo {
                        target,
                        taken: true,
                        kind: BranchKind::Indirect,
                    }),
                    dep_dist: 1,
                    privileged: false,
                });
            } else if i == 0 {
                // Bytecode fetch from the method's (native) bytecode array.
                let bc =
                    (jsmt_isa::Region::Native.base() + (self.proc.next_rand() % (64 * 1024))) & !3;
                self.push(Uop::load(pc, bc));
            } else {
                self.push(Uop {
                    dep_dist: 1,
                    ..Uop::alu(pc)
                });
            }
        }
    }

    /// Invoke a method: records the invocation (driving JIT warm-up),
    /// moves the fetch cursor to the interpreter or the compiled body, and
    /// emits the call.
    pub fn call(&mut self, m: crate::MethodId) {
        self.mode = self.proc.methods_mut().invoke(m);
        match self.mode {
            MethodMode::Interpreted => {
                let (base, span) = self.proc.methods().interpreter_range();
                self.pc_base = base;
                self.pc_span = span;
            }
            MethodMode::Compiled => {
                let (base, span) = self.proc.methods().body_of(m);
                self.pc_base = base;
                self.pc_span = span;
                // Different invocations take different paths through the
                // body: start fetch in an invocation-dependent quadrant so
                // repeated calls exercise the whole compiled footprint
                // while retaining partial trace reuse.
                let inv = self.proc.methods().invocations(m);
                self.pc_off = ((inv % 4) * (span / 4)) & !3;
            }
        }
        let pc = self.next_pc();
        let target = self.pc_base;
        self.push(Uop {
            pc,
            kind: UopKind::Branch,
            mem: None,
            branch: Some(BranchInfo {
                target,
                taken: true,
                kind: BranchKind::Call,
            }),
            dep_dist: DEP_NONE,
            privileged: false,
        });
        // Frame push: return address + saved locals.
        self.stack_off = (self.stack_off + 64) % STACK_WINDOW;
        let fp = self.stack_base + self.stack_off;
        let pc = self.next_pc();
        self.push(Uop::store(pc, fp));
    }

    /// The mode the current method executes in.
    pub fn mode(&self) -> MethodMode {
        self.mode
    }

    /// Emit `n` independent integer ALU µops.
    pub fn alu(&mut self, n: u32) {
        for _ in 0..n {
            self.dispatch();
            let pc = self.next_pc();
            self.push(Uop::alu(pc));
        }
    }

    /// Emit `n` dependent integer ALU µops (a serial chain).
    pub fn alu_chain(&mut self, n: u32) {
        for i in 0..n {
            self.dispatch();
            let pc = self.next_pc();
            let dep = if i == 0 { DEP_NONE } else { 1 };
            self.push(Uop {
                dep_dist: dep,
                ..Uop::alu(pc)
            });
        }
    }

    /// Emit `n` floating-point µops (`mul`: multiplies, else adds),
    /// pairwise dependent to model FP latency chains.
    pub fn fpu(&mut self, n: u32, mul: bool) {
        let kind = if mul { UopKind::FpMul } else { UopKind::FpAdd };
        for i in 0..n {
            self.dispatch();
            let pc = self.next_pc();
            let dep = if i % 2 == 1 { 1 } else { DEP_NONE };
            self.push(Uop {
                kind,
                dep_dist: dep,
                ..Uop::alu(pc)
            });
        }
    }

    /// Emit an independent load from `addr`.
    pub fn load(&mut self, addr: Addr) -> UopRef {
        self.dispatch();
        let pc = self.next_pc();
        self.push(Uop::load(pc, addr))
    }

    /// Emit a load from `addr` that depends on a previous µop (pointer
    /// chase).
    pub fn load_after(&mut self, addr: Addr, dep: UopRef) -> UopRef {
        self.dispatch();
        let pc = self.next_pc();
        let d = self.dist_to(dep);
        self.push(Uop {
            dep_dist: d,
            ..Uop::load(pc, addr)
        })
    }

    /// Emit a store to `addr`.
    pub fn store(&mut self, addr: Addr) -> UopRef {
        self.dispatch();
        let pc = self.next_pc();
        self.push(Uop::store(pc, addr))
    }

    /// Emit a conditional branch with the given outcome.
    ///
    /// `predictable` branches are emitted at a *stable per-method site*
    /// (the loop-back/cutoff branch of the hot loop), so the direction
    /// predictor trains on their repeating pattern; unpredictable ones
    /// walk the code like any other µop, modeling data-dependent control
    /// flow spread across many sites.
    pub fn branch(&mut self, taken: bool, predictable: bool) {
        self.dispatch();
        // Real code has few branch *sites*; what varies is the outcome.
        // Predictable branches come from the method's dedicated loop
        // site; data-dependent ones from a small set of per-method sites,
        // so the BTB learns targets while the direction predictor sees
        // the actual (noisy) outcome stream.
        let pc = if predictable {
            self.pc_base + 8
        } else {
            let slot = self.proc.next_rand() % 4;
            self.pc_base + 16 + slot * 8
        };
        let target = (self.pc_base + (pc.wrapping_mul(0x9E37) % self.pc_span)) & !3;
        self.push(Uop {
            pc,
            kind: UopKind::Branch,
            mem: None,
            branch: Some(BranchInfo {
                target,
                taken,
                kind: BranchKind::Conditional,
            }),
            dep_dist: DEP_NONE,
            privileged: false,
        });
    }

    /// Emit a dependent floating-point divide (LJ potentials, GBM steps,
    /// discriminant normalization — the x87 divider is a major latency
    /// source on the modeled machine).
    pub fn fp_div(&mut self) {
        self.dispatch();
        let pc = self.next_pc();
        self.push(Uop {
            kind: UopKind::FpDiv,
            dep_dist: 1,
            ..Uop::alu(pc)
        });
    }

    /// Emit an atomic read-modify-write to `addr` (monitor fast path,
    /// `java.util.concurrent` primitives).
    pub fn atomic(&mut self, addr: Addr) -> UopRef {
        self.dispatch();
        let pc = self.next_pc();
        self.push(Uop {
            pc,
            kind: UopKind::AtomicRmw,
            mem: Some(addr),
            branch: None,
            dep_dist: DEP_NONE,
            privileged: false,
        })
    }

    /// Allocate `bytes` on the Java heap, emitting the allocation fast
    /// path (bump, header store). Returns `None` when the heap needs a
    /// collection first — the kernel must yield so the system can run the
    /// GC, then retry.
    pub fn alloc(&mut self, bytes: u64) -> Option<Addr> {
        let addr = self.proc.heap_mut().alloc(bytes)?;
        self.dispatch();
        let pc = self.next_pc();
        self.push(Uop::alu(pc)); // bump
        let pc = self.next_pc();
        self.push(Uop {
            dep_dist: 1,
            ..Uop::store(pc, addr)
        }); // header
        Some(addr)
    }

    /// Direct access to the process (monitors, native allocation, RNG).
    pub fn process(&mut self) -> &mut JvmProcess {
        self.proc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JvmConfig;
    use jsmt_isa::Region;

    fn fresh() -> JvmProcess {
        JvmProcess::new(1, JvmConfig::default())
    }

    #[test]
    fn interpreted_ops_pay_dispatch_overhead() {
        let mut p = fresh();
        let m = p.methods_mut().register("f", 256);
        let mut out_cold = Vec::new();
        EmitCtx::new(&mut p, &mut out_cold).call(m);
        let mut ctx = EmitCtx::new(&mut p, &mut out_cold);
        ctx.alu(10);
        let cold_len = out_cold.len();

        // Warm the method past the JIT threshold.
        let mut scratch = Vec::new();
        for _ in 0..20 {
            EmitCtx::new(&mut p, &mut scratch).call(m);
        }
        let mut out_hot = Vec::new();
        let mut ctx = EmitCtx::new(&mut p, &mut out_hot);
        ctx.call(m);
        assert_eq!(ctx.mode(), MethodMode::Compiled);
        ctx.alu(10);
        assert!(
            cold_len > out_hot.len(),
            "interpreted block ({cold_len}) must be bigger than compiled ({})",
            out_hot.len()
        );
    }

    #[test]
    fn compiled_code_fetches_from_jit_region() {
        let mut p = fresh();
        let m = p.methods_mut().register("f", 256);
        let mut scratch = Vec::new();
        for _ in 0..20 {
            EmitCtx::new(&mut p, &mut scratch).call(m);
        }
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut p, &mut out);
        ctx.call(m);
        ctx.alu(5);
        for u in out.iter().skip(1) {
            assert_eq!(Region::of(u.pc), Region::JitCode, "pc {:#x}", u.pc);
        }
    }

    #[test]
    fn interpreted_code_fetches_from_interpreter() {
        let mut p = fresh();
        let m = p.methods_mut().register("f", 256);
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut p, &mut out);
        ctx.call(m);
        ctx.alu(5);
        assert!(out.iter().skip(1).any(|u| Region::of(u.pc) == Region::Code));
        let indirects = out
            .iter()
            .filter(|u| {
                matches!(
                    u.branch,
                    Some(BranchInfo {
                        kind: BranchKind::Indirect,
                        ..
                    })
                )
            })
            .count();
        assert!(
            indirects >= 5,
            "each interpreted op ends in dispatch, got {indirects}"
        );
    }

    #[test]
    fn load_after_builds_chain() {
        let mut p = fresh();
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut p, &mut out);
        let a = ctx.load(Region::Heap.base());
        let b = ctx.load_after(Region::Heap.base() + 64, a);
        let _ = ctx.load_after(Region::Heap.base() + 128, b);
        let loads: Vec<_> = out.iter().filter(|u| u.kind == UopKind::Load).collect();
        // Skip the interpreter's bytecode-fetch loads; the kernel loads
        // are the heap ones.
        let heap_loads: Vec<_> = loads
            .iter()
            .filter(|u| Region::of(u.mem.unwrap()) == Region::Heap)
            .collect();
        assert_eq!(heap_loads.len(), 3);
        assert!(heap_loads[1].dep_dist != DEP_NONE);
        assert!(heap_loads[2].dep_dist != DEP_NONE);
    }

    #[test]
    fn alloc_emits_and_signals_gc() {
        let cfg = JvmConfig::default().with_heap(4096);
        let mut p = JvmProcess::new(1, cfg);
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut p, &mut out);
        let first = ctx.alloc(1024).expect("fits");
        assert_eq!(Region::of(first), Region::Heap);
        assert!(ctx.alloc(4096).is_none(), "over trigger → GC request");
        assert!(!out.is_empty());
    }

    #[test]
    fn atomic_for_monitor_fast_path() {
        let mut p = fresh();
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut p, &mut out);
        ctx.atomic(Region::Heap.base());
        assert!(out.iter().any(|u| u.kind == UopKind::AtomicRmw));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::{JvmConfig, JvmProcess};

    #[test]
    fn fp_div_emits_dependent_divide() {
        let mut p = JvmProcess::new(1, JvmConfig::default());
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut p, &mut out);
        ctx.fp_div();
        let div = out
            .iter()
            .find(|u| u.kind == UopKind::FpDiv)
            .expect("divide emitted");
        assert_eq!(div.dep_dist, 1);
    }

    #[test]
    fn alu_chain_is_serial() {
        let mut p = JvmProcess::new(1, JvmConfig::default());
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut p, &mut out);
        ctx.alu_chain(6);
        let alus: Vec<_> = out
            .iter()
            .filter(|u| u.kind == UopKind::Alu && u.dep_dist == 1)
            .collect();
        assert!(
            alus.len() >= 4,
            "chain must carry dependences, got {}",
            alus.len()
        );
    }

    #[test]
    fn stack_traffic_targets_the_thread_stack() {
        let mut p = JvmProcess::new(1, JvmConfig::default());
        let stack_base = p.alloc_stack(16 * 1024);
        let mut out = Vec::new();
        let mut ctx = EmitCtx::new(&mut p, &mut out).with_stack(stack_base);
        ctx.alu(64);
        let stack_refs = out
            .iter()
            .filter_map(|u| u.mem)
            .filter(|&a| a >= stack_base && a < stack_base + 16 * 1024)
            .count();
        assert!(
            stack_refs > 8,
            "spill/fill traffic expected, got {stack_refs}"
        );
    }

    #[test]
    fn quadrant_offsets_spread_fetch_across_bodies() {
        let mut p = JvmProcess::new(1, JvmConfig::default().with_jit_threshold(0));
        let m = p.methods_mut().register("big", 4096);
        let mut starts = std::collections::HashSet::new();
        for _ in 0..8 {
            let mut out = Vec::new();
            let mut ctx = EmitCtx::new(&mut p, &mut out);
            ctx.call(m);
            ctx.alu(1);
            // First µop after the call+frame-push fetches at the entry
            // offset for this invocation.
            starts.insert(out.last().unwrap().pc & !1023);
        }
        assert!(
            starts.len() >= 3,
            "invocations must enter different quadrants: {starts:?}"
        );
    }
}
