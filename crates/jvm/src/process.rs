//! The per-process JVM runtime state.

use jsmt_isa::{Addr, AddressSpace, Asid, Region};

use crate::{Heap, MethodTable, MonitorTable};

/// Configuration of one JVM instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JvmConfig {
    /// Heap capacity in bytes. The paper configures 512 MB; the default
    /// here is scaled to the scaled workloads (see DESIGN.md §1).
    pub heap_bytes: u64,
    /// Heap occupancy fraction that triggers a collection.
    pub gc_trigger: f64,
    /// Fraction of the used heap that survives a collection (per-workload
    /// overrides model generational behaviour differences).
    pub survival: f64,
    /// Invocations before a method is JIT-compiled.
    pub jit_threshold: u64,
    /// Extra dispatch µops the interpreter pays per abstract operation.
    pub interp_expansion: u32,
    /// Compile hot methods on a background compiler thread instead of
    /// instantly at the threshold (the paper-era HotSpot behaviour; off
    /// by default to keep the baseline reproduction simple).
    pub background_jit: bool,
}

impl Default for JvmConfig {
    fn default() -> Self {
        JvmConfig {
            heap_bytes: 16 * 1024 * 1024,
            gc_trigger: 0.85,
            survival: 0.35,
            jit_threshold: 8,
            interp_expansion: 3,
            background_jit: false,
        }
    }
}

impl JvmConfig {
    /// Serialize the configuration (checkpoints embed it so a resumed
    /// `System` can rebuild each process identically).
    pub fn write_to(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_u64(self.heap_bytes);
        w.put_f64(self.gc_trigger);
        w.put_f64(self.survival);
        w.put_u64(self.jit_threshold);
        w.put_u32(self.interp_expansion);
        w.put_bool(self.background_jit);
    }

    /// Rebuild a configuration from a snapshot, rejecting values a live
    /// process could never have been constructed with.
    pub fn read_from(
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<Self, jsmt_snapshot::SnapshotError> {
        let cfg = JvmConfig {
            heap_bytes: r.get_u64()?,
            gc_trigger: r.get_f64()?,
            survival: r.get_f64()?,
            jit_threshold: r.get_u64()?,
            interp_expansion: r.get_u32()?,
            background_jit: r.get_bool()?,
        };
        if cfg.heap_bytes > Region::Heap.size() {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "heap larger than the simulated region",
            ));
        }
        if !(cfg.gc_trigger > 0.0 && cfg.gc_trigger <= 1.0) {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "GC trigger outside (0, 1]",
            ));
        }
        if !(0.0..=1.0).contains(&cfg.survival) {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "survival fraction outside [0, 1]",
            ));
        }
        Ok(cfg)
    }

    /// Builder-style: set the heap size.
    pub fn with_heap(mut self, bytes: u64) -> Self {
        self.heap_bytes = bytes;
        self
    }

    /// Builder-style: set the survival fraction.
    pub fn with_survival(mut self, s: f64) -> Self {
        self.survival = s.clamp(0.0, 1.0);
        self
    }

    /// Builder-style: set the JIT compilation threshold.
    pub fn with_jit_threshold(mut self, t: u64) -> Self {
        self.jit_threshold = t;
        self
    }

    /// Builder-style: enable the background compiler thread.
    pub fn with_background_jit(mut self, on: bool) -> Self {
        self.background_jit = on;
        self
    }
}

/// One simulated JVM process: address space, heap, methods, monitors.
#[derive(Debug, Clone)]
pub struct JvmProcess {
    aspace: AddressSpace,
    heap: Heap,
    methods: MethodTable,
    monitors: MonitorTable,
    cfg: JvmConfig,
    rng_state: u64,
}

impl JvmProcess {
    /// Create a JVM process with address-space id `asid`.
    ///
    /// # Panics
    ///
    /// Panics if `asid` is 0 (reserved for the kernel).
    pub fn new(asid: u16, cfg: JvmConfig) -> Self {
        let mut methods = MethodTable::new(cfg.jit_threshold);
        methods.set_background_compilation(cfg.background_jit);
        JvmProcess {
            aspace: AddressSpace::new(asid),
            heap: Heap::new(cfg.heap_bytes, cfg.gc_trigger),
            methods,
            monitors: MonitorTable::new(),
            cfg,
            rng_state: (asid as u64) << 32 | 0x5DEE_CE66,
        }
    }

    /// The process's address-space id.
    pub fn asid(&self) -> Asid {
        self.aspace.asid()
    }

    /// The configuration.
    pub fn config(&self) -> &JvmConfig {
        &self.cfg
    }

    /// The heap (read-only).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The heap (mutable; used by [`crate::EmitCtx::alloc`] and the GC
    /// protocol).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The method table (read-only).
    pub fn methods(&self) -> &MethodTable {
        &self.methods
    }

    /// The method table (mutable; for registration and invocation).
    pub fn methods_mut(&mut self) -> &mut MethodTable {
        &mut self.methods
    }

    /// The monitor table (mutable).
    pub fn monitors_mut(&mut self) -> &mut MonitorTable {
        &mut self.monitors
    }

    /// The monitor table (read-only).
    pub fn monitors(&self) -> &MonitorTable {
        &self.monitors
    }

    /// Carve static (non-collected) storage from the native region —
    /// benchmark input tables, DB pages, constant pools.
    pub fn alloc_native(&mut self, bytes: u64, align: u64) -> Addr {
        self.aspace.alloc(Region::Native, bytes, align)
    }

    /// Carve a thread stack slab.
    pub fn alloc_stack(&mut self, bytes: u64) -> Addr {
        self.aspace.alloc(Region::Stack, bytes, 4096)
    }

    /// Run a collection with the configured survival rate; returns the
    /// live bytes the collector traced (the GC thread's work input).
    pub fn collect(&mut self) -> u64 {
        self.heap.collect(self.cfg.survival)
    }

    /// Process-local deterministic random value (used for data-dependent
    /// but reproducible choices in emission).
    pub fn next_rand(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl jsmt_snapshot::Snapshotable for JvmProcess {
    /// `cfg` is a construction input (the system layer embeds it in the
    /// process header of a checkpoint); everything else is state.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.section("aspace", |w| self.aspace.save_state(w));
        w.section("heap", |w| self.heap.save_state(w));
        w.section("methods", |w| self.methods.save_state(w));
        w.section("monitors", |w| self.monitors.save_state(w));
        w.section("rng", |w| w.put_u64(self.rng_state));
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        self.aspace.restore_state(&mut r.section("aspace")?)?;
        self.heap.restore_state(&mut r.section("heap")?)?;
        self.methods.restore_state(&mut r.section("methods")?)?;
        self.monitors.restore_state(&mut r.section("monitors")?)?;
        self.rng_state = r.section("rng")?.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_wires_components() {
        let mut p = JvmProcess::new(3, JvmConfig::default());
        assert_eq!(p.asid(), Asid(3));
        let m = p.methods_mut().register("f", 128);
        assert_eq!(p.methods().invocations(m), 0);
        let a = p.heap_mut().alloc(64).unwrap();
        assert_eq!(Region::of(a), Region::Heap);
        let n = p.alloc_native(100, 64);
        assert_eq!(Region::of(n), Region::Native);
        let s = p.alloc_stack(8192);
        assert_eq!(Region::of(s), Region::Stack);
    }

    #[test]
    fn collection_uses_configured_survival() {
        let cfg = JvmConfig::default().with_heap(1 << 20).with_survival(0.5);
        let mut p = JvmProcess::new(1, cfg);
        p.heap_mut().alloc(1000).unwrap();
        let live = p.collect();
        assert_eq!(
            live, 504,
            "half of the 1000 (1000->1000 used, 8-aligned halves)"
        );
    }

    #[test]
    fn rand_is_deterministic_per_asid() {
        let mut a = JvmProcess::new(1, JvmConfig::default());
        let mut b = JvmProcess::new(1, JvmConfig::default());
        assert_eq!(a.next_rand(), b.next_rand());
        let mut c = JvmProcess::new(2, JvmConfig::default());
        assert_ne!(a.next_rand(), c.next_rand());
    }
}
