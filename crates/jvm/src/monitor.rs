//! Java monitor (lock + condition) model.
//!
//! A `synchronized` block on the paper's JVM takes an uncontended fast
//! path (an atomic compare-and-swap in user mode) or, when contended,
//! traps to the kernel to block — which is how Java synchronization turns
//! into OS time in Table 2. The table tracks ownership, entry queues and
//! `Object.wait`/`notify` wait sets; the caller (system layer) emits the
//! fast-path atomic µop and routes contended outcomes to the OS futex
//! model.
//!
//! Wake-ups are *handoff-based*: `exit` (and the releasing half of
//! `wait`) pops the front of the entry queue and makes it the owner
//! before the caller is told whom to wake, so there is no window in
//! which a woken thread can lose the race to a barging newcomer. A
//! notified thread is moved from the wait set to the back of the entry
//! queue with its saved recursion depth; it re-acquires the monitor in
//! FIFO order with plain contenders and resumes at its pre-`wait`
//! depth. The interval between `notify` and the notifier's `exit` — the
//! *pending-notify* window — is first-class state here (the `notified`
//! flag on an entry-queue node), which is what lets a checkpoint land
//! inside it and resume exactly.

use std::collections::VecDeque;

/// Handle to a monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MonitorId(pub u32);

/// Result of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorOutcome {
    /// Fast path: the monitor was free (or already owned by the thread —
    /// Java monitors are reentrant).
    Acquired,
    /// Slow path: another thread owns it; the caller must block.
    Contended,
}

/// One node of a monitor's entry queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryNode {
    thread: u32,
    /// Recursion depth to restore when this node is handed ownership
    /// (1 for a plain contender, the saved depth for a notified waiter).
    restore: u32,
    /// True when this node got here via `notify` — i.e. the thread is in
    /// the pending-notify window until ownership is handed to it.
    notified: bool,
}

/// One parked thread in a monitor's wait set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WaitNode {
    thread: u32,
    /// Recursion depth held at the time of `wait`, restored on wake-up.
    saved: u32,
}

#[derive(Debug, Clone, Default)]
struct MonitorState {
    owner: Option<u32>,
    recursion: u32,
    waiters: VecDeque<EntryNode>,
    wait_set: VecDeque<WaitNode>,
    contended_count: u64,
    wait_count: u64,
    notify_count: u64,
}

impl MonitorState {
    /// Hand ownership to the next entry-queue node, restoring its saved
    /// recursion depth. Returns the thread to wake.
    fn handoff(&mut self) -> Option<u32> {
        match self.waiters.pop_front() {
            Some(next) => {
                self.owner = Some(next.thread);
                self.recursion = next.restore;
                Some(next.thread)
            }
            None => {
                self.owner = None;
                self.recursion = 0;
                None
            }
        }
    }
}

/// All monitors of one JVM process. Threads are identified by the system
/// layer's thread keys.
#[derive(Debug, Clone, Default)]
pub struct MonitorTable {
    monitors: Vec<MonitorState>,
}

impl MonitorTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a monitor.
    pub fn create(&mut self) -> MonitorId {
        self.monitors.push(MonitorState::default());
        MonitorId(self.monitors.len() as u32 - 1)
    }

    /// Attempt to acquire `mon` for `thread`. On contention the thread is
    /// queued and the caller must block it.
    ///
    /// # Panics
    ///
    /// Panics on an unknown monitor id.
    pub fn enter(&mut self, mon: MonitorId, thread: u32) -> MonitorOutcome {
        let m = &mut self.monitors[mon.0 as usize];
        match m.owner {
            None => {
                m.owner = Some(thread);
                m.recursion = 1;
                MonitorOutcome::Acquired
            }
            Some(o) if o == thread => {
                m.recursion += 1;
                MonitorOutcome::Acquired
            }
            Some(_) => {
                if !m.waiters.iter().any(|n| n.thread == thread) {
                    m.waiters.push_back(EntryNode {
                        thread,
                        restore: 1,
                        notified: false,
                    });
                }
                m.contended_count += 1;
                MonitorOutcome::Contended
            }
        }
    }

    /// Release `mon`. Returns the next waiter to wake (now the owner), if
    /// any.
    ///
    /// # Panics
    ///
    /// Panics if `thread` does not own the monitor.
    pub fn exit(&mut self, mon: MonitorId, thread: u32) -> Option<u32> {
        let m = &mut self.monitors[mon.0 as usize];
        assert_eq!(m.owner, Some(thread), "exit by non-owner");
        m.recursion -= 1;
        if m.recursion > 0 {
            return None;
        }
        m.handoff()
    }

    /// `Object.wait`: park the owning `thread` on `mon`'s wait set,
    /// releasing the monitor entirely (its recursion depth is saved and
    /// restored on re-acquisition). Returns the next entry-queue thread
    /// to wake, exactly like [`MonitorTable::exit`]; the caller must
    /// then block the waiting thread.
    ///
    /// # Panics
    ///
    /// Panics if `thread` does not own the monitor.
    pub fn wait(&mut self, mon: MonitorId, thread: u32) -> Option<u32> {
        let m = &mut self.monitors[mon.0 as usize];
        assert_eq!(m.owner, Some(thread), "wait by non-owner");
        let saved = m.recursion;
        m.wait_set.push_back(WaitNode { thread, saved });
        m.wait_count += 1;
        m.handoff()
    }

    /// `Object.notify`: move the longest-waiting thread (if any) from the
    /// wait set to the back of the entry queue. The notified thread does
    /// not run yet — it re-acquires the monitor when its entry-queue turn
    /// comes (usually at the notifier's `exit`). Returns the notified
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if `thread` does not own the monitor.
    pub fn notify(&mut self, mon: MonitorId, thread: u32) -> Option<u32> {
        let m = &mut self.monitors[mon.0 as usize];
        assert_eq!(m.owner, Some(thread), "notify by non-owner");
        let node = m.wait_set.pop_front()?;
        m.waiters.push_back(EntryNode {
            thread: node.thread,
            restore: node.saved,
            notified: true,
        });
        m.notify_count += 1;
        Some(node.thread)
    }

    /// `Object.notifyAll`: move every wait-set thread to the entry queue
    /// in wait order. Returns how many were notified.
    ///
    /// # Panics
    ///
    /// Panics if `thread` does not own the monitor.
    pub fn notify_all(&mut self, mon: MonitorId, thread: u32) -> usize {
        let m = &mut self.monitors[mon.0 as usize];
        assert_eq!(m.owner, Some(thread), "notify by non-owner");
        let n = m.wait_set.len();
        while let Some(node) = m.wait_set.pop_front() {
            m.waiters.push_back(EntryNode {
                thread: node.thread,
                restore: node.saved,
                notified: true,
            });
            m.notify_count += 1;
        }
        n
    }

    /// Current owner of a monitor.
    pub fn owner(&self, mon: MonitorId) -> Option<u32> {
        self.monitors[mon.0 as usize].owner
    }

    /// Whether `thread` is parked in `mon`'s wait set (between `wait`
    /// and its `notify`).
    pub fn in_wait_set(&self, mon: MonitorId, thread: u32) -> bool {
        self.monitors[mon.0 as usize]
            .wait_set
            .iter()
            .any(|n| n.thread == thread)
    }

    /// Whether `thread` is queued for entry on `mon` (blocked on enter,
    /// or notified and awaiting handoff).
    pub fn entry_queued(&self, mon: MonitorId, thread: u32) -> bool {
        self.monitors[mon.0 as usize]
            .waiters
            .iter()
            .any(|n| n.thread == thread)
    }

    /// Contended acquisitions recorded on one monitor.
    pub fn contended(&self, mon: MonitorId) -> u64 {
        self.monitors[mon.0 as usize].contended_count
    }

    /// Threads currently parked in `mon`'s wait set.
    pub fn wait_parked(&self, mon: MonitorId) -> usize {
        self.monitors[mon.0 as usize].wait_set.len()
    }

    /// Threads parked in any wait set of this table.
    pub fn wait_parked_total(&self) -> usize {
        self.monitors.iter().map(|m| m.wait_set.len()).sum()
    }

    /// Threads in the pending-notify window: notified, re-queued for
    /// entry, but not yet handed ownership.
    pub fn pending_notify_total(&self) -> usize {
        self.monitors
            .iter()
            .map(|m| m.waiters.iter().filter(|n| n.notified).count())
            .sum()
    }

    /// Total contended acquisitions across all monitors.
    pub fn contended_total(&self) -> u64 {
        self.monitors.iter().map(|m| m.contended_count).sum()
    }

    /// Total `wait` calls across all monitors.
    pub fn waits_total(&self) -> u64 {
        self.monitors.iter().map(|m| m.wait_count).sum()
    }

    /// Total threads notified across all monitors.
    pub fn notifies_total(&self) -> u64 {
        self.monitors.iter().map(|m| m.notify_count).sum()
    }
}

impl jsmt_snapshot::Snapshotable for MonitorTable {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.monitors.len());
        for m in &self.monitors {
            w.put_opt_u64(m.owner.map(u64::from));
            w.put_u32(m.recursion);
            w.put_usize(m.waiters.len());
            for n in &m.waiters {
                w.put_u32(n.thread);
                w.put_u32(n.restore);
                w.put_bool(n.notified);
            }
            w.put_usize(m.wait_set.len());
            for n in &m.wait_set {
                w.put_u32(n.thread);
                w.put_u32(n.saved);
            }
            w.put_u64(m.contended_count);
            w.put_u64(m.wait_count);
            w.put_u64(m.notify_count);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_len(29)?;
        self.monitors.clear();
        self.monitors.reserve(n);
        for _ in 0..n {
            let owner = match r.get_opt_u64()? {
                None => None,
                Some(v) => Some(u32::try_from(v).map_err(|_| {
                    jsmt_snapshot::SnapshotError::Corrupt("monitor owner out of range")
                })?),
            };
            let recursion = r.get_u32()?;
            if owner.is_none() != (recursion == 0) {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "monitor recursion disagrees with ownership",
                ));
            }
            let wn = r.get_len(9)?;
            let mut waiters = VecDeque::with_capacity(wn);
            for _ in 0..wn {
                let thread = r.get_u32()?;
                let restore = r.get_u32()?;
                let notified = r.get_bool()?;
                if restore == 0 {
                    return Err(jsmt_snapshot::SnapshotError::Corrupt(
                        "entry-queue node with zero restore depth",
                    ));
                }
                waiters.push_back(EntryNode {
                    thread,
                    restore,
                    notified,
                });
            }
            let pn = r.get_len(8)?;
            let mut wait_set = VecDeque::with_capacity(pn);
            for _ in 0..pn {
                let thread = r.get_u32()?;
                let saved = r.get_u32()?;
                if saved == 0 {
                    return Err(jsmt_snapshot::SnapshotError::Corrupt(
                        "wait-set node with zero saved depth",
                    ));
                }
                wait_set.push_back(WaitNode { thread, saved });
            }
            let contended_count = r.get_u64()?;
            let wait_count = r.get_u64()?;
            let notify_count = r.get_u64()?;
            self.monitors.push(MonitorState {
                owner,
                recursion,
                waiters,
                wait_set,
                contended_count,
                wait_count,
                notify_count,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_fast_path() {
        let mut t = MonitorTable::new();
        let m = t.create();
        assert_eq!(t.enter(m, 1), MonitorOutcome::Acquired);
        assert_eq!(t.exit(m, 1), None);
        assert_eq!(t.owner(m), None);
    }

    #[test]
    fn reentrancy() {
        let mut t = MonitorTable::new();
        let m = t.create();
        assert_eq!(t.enter(m, 1), MonitorOutcome::Acquired);
        assert_eq!(t.enter(m, 1), MonitorOutcome::Acquired);
        assert_eq!(t.exit(m, 1), None, "still held once");
        assert_eq!(t.owner(m), Some(1));
        assert_eq!(t.exit(m, 1), None);
        assert_eq!(t.owner(m), None);
    }

    #[test]
    fn contention_queues_and_hands_off() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        assert_eq!(t.enter(m, 2), MonitorOutcome::Contended);
        assert_eq!(t.enter(m, 3), MonitorOutcome::Contended);
        assert_eq!(t.contended_total(), 2);
        assert_eq!(t.exit(m, 1), Some(2), "FIFO handoff");
        assert_eq!(t.owner(m), Some(2));
        assert_eq!(t.exit(m, 2), Some(3));
        assert_eq!(t.exit(m, 3), None);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn exit_requires_ownership() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        let _ = t.exit(m, 2);
    }

    #[test]
    fn wait_releases_and_hands_off() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        assert_eq!(t.enter(m, 2), MonitorOutcome::Contended);
        // Thread 1 waits: the monitor is handed straight to thread 2.
        assert_eq!(t.wait(m, 1), Some(2));
        assert_eq!(t.owner(m), Some(2));
        assert!(t.in_wait_set(m, 1));
        assert_eq!(t.wait_parked(m), 1);
        // Thread 2 notifies: 1 moves to the entry queue (pending).
        assert_eq!(t.notify(m, 2), Some(1));
        assert!(!t.in_wait_set(m, 1));
        assert_eq!(t.pending_notify_total(), 1);
        // 2's exit hands ownership back to 1.
        assert_eq!(t.exit(m, 2), Some(1));
        assert_eq!(t.owner(m), Some(1));
        assert_eq!(t.pending_notify_total(), 0);
        assert_eq!(t.exit(m, 1), None);
    }

    #[test]
    fn wait_restores_recursion_depth() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        t.enter(m, 1);
        t.enter(m, 1); // depth 3
        assert_eq!(t.wait(m, 1), None, "nobody queued: monitor goes free");
        assert_eq!(t.owner(m), None);
        t.enter(m, 2);
        assert_eq!(t.notify(m, 2), Some(1));
        assert_eq!(t.exit(m, 2), Some(1));
        // 1 resumes at its saved depth: three exits to release.
        assert_eq!(t.exit(m, 1), None);
        assert_eq!(t.exit(m, 1), None);
        assert_eq!(t.owner(m), Some(1));
        assert_eq!(t.exit(m, 1), None);
        assert_eq!(t.owner(m), None);
    }

    #[test]
    fn notify_without_waiters_is_a_no_op() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        assert_eq!(t.notify(m, 1), None);
        assert_eq!(t.notifies_total(), 0);
    }

    #[test]
    fn notify_all_drains_the_wait_set_in_fifo_order() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        assert_eq!(t.wait(m, 1), None);
        t.enter(m, 2);
        assert_eq!(t.wait(m, 2), None);
        t.enter(m, 3);
        assert_eq!(t.notify_all(m, 3), 2);
        assert_eq!(t.wait_parked(m), 0);
        assert_eq!(t.exit(m, 3), Some(1), "wait order preserved");
        assert_eq!(t.exit(m, 1), Some(2));
        assert_eq!(t.exit(m, 2), None);
    }

    #[test]
    fn notified_thread_queues_behind_existing_contenders() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        assert_eq!(t.wait(m, 1), None);
        t.enter(m, 2);
        assert_eq!(t.enter(m, 3), MonitorOutcome::Contended);
        assert_eq!(t.notify(m, 2), Some(1));
        // Entry queue is now [3, 1]: FIFO with plain contenders.
        assert_eq!(t.exit(m, 2), Some(3));
        assert_eq!(t.exit(m, 3), Some(1));
        assert_eq!(t.exit(m, 1), None);
    }

    #[test]
    #[should_panic(expected = "wait by non-owner")]
    fn wait_requires_ownership() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        let _ = t.wait(m, 2);
    }

    #[test]
    #[should_panic(expected = "notify by non-owner")]
    fn notify_requires_ownership() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        let _ = t.notify(m, 2);
    }
}
