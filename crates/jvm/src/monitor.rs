//! Java monitor (lock) model.
//!
//! A `synchronized` block on the paper's JVM takes an uncontended fast
//! path (an atomic compare-and-swap in user mode) or, when contended,
//! traps to the kernel to block — which is how Java synchronization turns
//! into OS time in Table 2. The table tracks ownership and wait queues;
//! the caller (system layer) emits the fast-path atomic µop and routes
//! contended outcomes to the OS futex model.

use std::collections::VecDeque;

/// Handle to a monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MonitorId(pub u32);

/// Result of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorOutcome {
    /// Fast path: the monitor was free (or already owned by the thread —
    /// Java monitors are reentrant).
    Acquired,
    /// Slow path: another thread owns it; the caller must block.
    Contended,
}

#[derive(Debug, Clone, Default)]
struct MonitorState {
    owner: Option<u32>,
    recursion: u32,
    waiters: VecDeque<u32>,
    contended_count: u64,
}

/// All monitors of one JVM process. Threads are identified by the system
/// layer's thread keys.
#[derive(Debug, Clone, Default)]
pub struct MonitorTable {
    monitors: Vec<MonitorState>,
}

impl MonitorTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a monitor.
    pub fn create(&mut self) -> MonitorId {
        self.monitors.push(MonitorState::default());
        MonitorId(self.monitors.len() as u32 - 1)
    }

    /// Attempt to acquire `mon` for `thread`. On contention the thread is
    /// queued and the caller must block it.
    ///
    /// # Panics
    ///
    /// Panics on an unknown monitor id.
    pub fn enter(&mut self, mon: MonitorId, thread: u32) -> MonitorOutcome {
        let m = &mut self.monitors[mon.0 as usize];
        match m.owner {
            None => {
                m.owner = Some(thread);
                m.recursion = 1;
                MonitorOutcome::Acquired
            }
            Some(o) if o == thread => {
                m.recursion += 1;
                MonitorOutcome::Acquired
            }
            Some(_) => {
                if !m.waiters.contains(&thread) {
                    m.waiters.push_back(thread);
                }
                m.contended_count += 1;
                MonitorOutcome::Contended
            }
        }
    }

    /// Release `mon`. Returns the next waiter to wake (now the owner), if
    /// any.
    ///
    /// # Panics
    ///
    /// Panics if `thread` does not own the monitor.
    pub fn exit(&mut self, mon: MonitorId, thread: u32) -> Option<u32> {
        let m = &mut self.monitors[mon.0 as usize];
        assert_eq!(m.owner, Some(thread), "exit by non-owner");
        m.recursion -= 1;
        if m.recursion > 0 {
            return None;
        }
        match m.waiters.pop_front() {
            Some(next) => {
                m.owner = Some(next);
                m.recursion = 1;
                Some(next)
            }
            None => {
                m.owner = None;
                None
            }
        }
    }

    /// Current owner of a monitor.
    pub fn owner(&self, mon: MonitorId) -> Option<u32> {
        self.monitors[mon.0 as usize].owner
    }

    /// Total contended acquisitions across all monitors.
    pub fn contended_total(&self) -> u64 {
        self.monitors.iter().map(|m| m.contended_count).sum()
    }
}

impl jsmt_snapshot::Snapshotable for MonitorTable {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.monitors.len());
        for m in &self.monitors {
            w.put_opt_u64(m.owner.map(u64::from));
            w.put_u32(m.recursion);
            w.put_usize(m.waiters.len());
            for &t in &m.waiters {
                w.put_u64(u64::from(t));
            }
            w.put_u64(m.contended_count);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_len(21)?;
        self.monitors.clear();
        self.monitors.reserve(n);
        for _ in 0..n {
            let owner = match r.get_opt_u64()? {
                None => None,
                Some(v) => Some(u32::try_from(v).map_err(|_| {
                    jsmt_snapshot::SnapshotError::Corrupt("monitor owner out of range")
                })?),
            };
            let recursion = r.get_u32()?;
            if owner.is_none() != (recursion == 0) {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "monitor recursion disagrees with ownership",
                ));
            }
            let wn = r.get_len(8)?;
            let mut waiters = VecDeque::with_capacity(wn);
            for _ in 0..wn {
                let v = r.get_u64()?;
                waiters.push_back(u32::try_from(v).map_err(|_| {
                    jsmt_snapshot::SnapshotError::Corrupt("monitor waiter out of range")
                })?);
            }
            let contended_count = r.get_u64()?;
            self.monitors.push(MonitorState {
                owner,
                recursion,
                waiters,
                contended_count,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_fast_path() {
        let mut t = MonitorTable::new();
        let m = t.create();
        assert_eq!(t.enter(m, 1), MonitorOutcome::Acquired);
        assert_eq!(t.exit(m, 1), None);
        assert_eq!(t.owner(m), None);
    }

    #[test]
    fn reentrancy() {
        let mut t = MonitorTable::new();
        let m = t.create();
        assert_eq!(t.enter(m, 1), MonitorOutcome::Acquired);
        assert_eq!(t.enter(m, 1), MonitorOutcome::Acquired);
        assert_eq!(t.exit(m, 1), None, "still held once");
        assert_eq!(t.owner(m), Some(1));
        assert_eq!(t.exit(m, 1), None);
        assert_eq!(t.owner(m), None);
    }

    #[test]
    fn contention_queues_and_hands_off() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        assert_eq!(t.enter(m, 2), MonitorOutcome::Contended);
        assert_eq!(t.enter(m, 3), MonitorOutcome::Contended);
        assert_eq!(t.contended_total(), 2);
        assert_eq!(t.exit(m, 1), Some(2), "FIFO handoff");
        assert_eq!(t.owner(m), Some(2));
        assert_eq!(t.exit(m, 2), Some(3));
        assert_eq!(t.exit(m, 3), None);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn exit_requires_ownership() {
        let mut t = MonitorTable::new();
        let m = t.create();
        t.enter(m, 1);
        let _ = t.exit(m, 2);
    }
}
