//! Snapshot round-trip properties for the JVM runtime: a process
//! restored mid-execution is byte-canonical and emits exactly the same
//! µop stream (and RNG/GC observables) as its uninterrupted twin.

use jsmt_isa::Uop;
use jsmt_jvm::{JvmConfig, JvmProcess};
use jsmt_snapshot::{restore_bytes, save_bytes};
use proptest::prelude::*;

/// One scripted runtime action: `(kind % 6, value)`.
type Op = (u32, u64);

fn arb_script(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u32..6, any::<u64>()), 1..max)
}

fn cfg() -> JvmConfig {
    JvmConfig::default()
        .with_heap(512 * 1024)
        .with_survival(0.3)
        .with_jit_threshold(3)
}

fn mk() -> (JvmProcess, Vec<jsmt_jvm::MethodId>) {
    let mut p = JvmProcess::new(1, cfg());
    let mids = (0..3)
        .map(|i| p.methods_mut().register(&format!("m{i}"), 100 + 70 * i))
        .collect();
    (p, mids)
}

/// Drive one process through a script slice, returning everything an
/// observer could see: the emitted µops and the scalar observables
/// (RNG draws, GC live bytes, allocation addresses).
fn drive(p: &mut JvmProcess, mids: &[jsmt_jvm::MethodId], script: &[Op]) -> (Vec<Uop>, Vec<u64>) {
    let mut uops = Vec::new();
    let mut obs = Vec::new();
    for &(kind, v) in script {
        match kind {
            0 => {
                let mut ctx = jsmt_jvm::EmitCtx::new(p, &mut uops);
                ctx.alu((v % 16) as u32 + 1);
            }
            1 => {
                let mut ctx = jsmt_jvm::EmitCtx::new(p, &mut uops);
                if let Some(a) = ctx.alloc(v % 512 + 8) {
                    obs.push(a);
                    ctx.store(a);
                    ctx.load(a);
                }
            }
            2 => {
                let mut ctx = jsmt_jvm::EmitCtx::new(p, &mut uops);
                ctx.branch(v % 2 == 0, v % 3 == 0);
            }
            3 => {
                let mut ctx = jsmt_jvm::EmitCtx::new(p, &mut uops);
                ctx.call(mids[(v % 3) as usize]);
            }
            4 => obs.push(p.next_rand()),
            _ => obs.push(p.collect()),
        }
    }
    (uops, obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interrupt a process mid-script, restore into a fresh one, replay
    /// the suffix on both: µop streams, observables, and final snapshot
    /// bytes must be identical.
    #[test]
    fn process_round_trip_continues_identically(script in arb_script(120), cut_frac in 0.0f64..1.0) {
        let cut = ((script.len() as f64) * cut_frac) as usize;
        let (mut twin, mids) = mk();
        let (mut donor, _) = mk();
        drive(&mut twin, &mids, &script[..cut]);
        drive(&mut donor, &mids, &script[..cut]);

        let bytes = save_bytes(&donor);
        // Restore rebuilds the method table, heap, monitors, and RNG, so
        // the target process starts empty (no pre-registered methods).
        let mut restored = JvmProcess::new(1, cfg());
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(save_bytes(&restored), bytes, "re-save not canonical");

        let (u_twin, o_twin) = drive(&mut twin, &mids, &script[cut..]);
        let (u_rest, o_rest) = drive(&mut restored, &mids, &script[cut..]);
        prop_assert_eq!(u_twin, u_rest, "µop streams diverged");
        prop_assert_eq!(o_twin, o_rest, "observables diverged");
        prop_assert_eq!(save_bytes(&twin), save_bytes(&restored));
    }

    /// Every truncation of a process snapshot errors instead of
    /// panicking.
    #[test]
    fn process_truncations_error_cleanly(script in arb_script(40)) {
        let (mut p, mids) = mk();
        drive(&mut p, &mids, &script);
        let bytes = save_bytes(&p);
        for cut in (0..bytes.len()).step_by(23) {
            let mut victim = JvmProcess::new(1, cfg());
            prop_assert!(restore_bytes(&mut victim, &bytes[..cut]).is_err(),
                         "truncation at {cut} must error");
        }
    }
}
