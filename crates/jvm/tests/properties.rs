//! Property-based tests on JVM runtime invariants.

use jsmt_isa::Region;
use jsmt_jvm::{GcWorkGen, Heap, JvmConfig, JvmProcess, MonitorOutcome, MonitorTable};
use proptest::prelude::*;

proptest! {
    /// Allocations are disjoint, aligned, and within the heap.
    #[test]
    fn heap_allocations_disjoint(sizes in prop::collection::vec(1u64..4096, 1..100)) {
        let mut h = Heap::new(4 << 20, 0.9);
        let mut prev_end = h.base();
        for s in sizes {
            match h.alloc(s) {
                Some(a) => {
                    prop_assert_eq!(a % 8, 0);
                    prop_assert!(a >= prev_end, "bump allocation is monotonic");
                    prop_assert!(a + s <= h.base() + h.capacity());
                    prev_end = a + ((s + 7) & !7);
                }
                None => break,
            }
        }
    }

    /// Collection frees exactly (1 - survival) of the used heap, modulo
    /// alignment, and used() never exceeds capacity.
    #[test]
    fn collect_conserves_bytes(allocs in prop::collection::vec(8u64..2048, 1..50),
                               survival in 0.0f64..1.0) {
        let mut h = Heap::new(1 << 20, 0.9);
        for s in &allocs {
            if h.alloc(*s).is_none() {
                break;
            }
        }
        let used = h.used();
        let live = h.collect(survival);
        prop_assert!(live <= used + 8);
        prop_assert_eq!(h.used(), live);
        prop_assert!(h.used() <= h.capacity());
    }

    /// Monitors: any sequence of enter/exit by two threads preserves the
    /// mutual-exclusion invariant (owner is always unique and exits only
    /// by the owner are performed).
    #[test]
    fn monitor_mutual_exclusion(script in prop::collection::vec((0u32..2, any::<bool>()), 1..100)) {
        let mut t = MonitorTable::new();
        let m = t.create();
        let mut held: Option<u32> = None;
        let mut want: Vec<u32> = Vec::new();
        for (thread, is_enter) in script {
            if is_enter && held != Some(thread) && !want.contains(&thread) {
                match t.enter(m, thread) {
                    MonitorOutcome::Acquired => {
                        prop_assert!(held.is_none() || held == Some(thread));
                        held = Some(thread);
                    }
                    MonitorOutcome::Contended => {
                        prop_assert!(held.is_some() && held != Some(thread));
                        want.push(thread);
                    }
                }
            } else if !is_enter && held == Some(thread) {
                let next = t.exit(m, thread);
                held = next;
                if let Some(n) = next {
                    prop_assert!(want.contains(&n), "woken thread must have been waiting");
                    want.retain(|&w| w != n);
                }
            }
            prop_assert_eq!(t.owner(m), held);
        }
    }

    /// GC work generation terminates and touches only heap data.
    #[test]
    fn gc_emission_terminates(live in 0u64..100_000, seed in any::<u64>()) {
        let mut g = GcWorkGen::new(Region::Heap.base(), live, seed);
        let mut out = Vec::new();
        let mut total = 0usize;
        for _ in 0..1_000_000 {
            out.clear();
            let n = g.emit(&mut out, 128);
            if n == 0 {
                break;
            }
            total += n;
            for u in &out {
                if let Some(a) = u.mem {
                    prop_assert_eq!(Region::of(a), Region::Heap);
                }
            }
        }
        prop_assert!(g.is_done(), "GC of {live} live bytes must terminate (emitted {total})");
    }

    /// Method registration gives stable, disjoint bodies regardless of
    /// sizes.
    #[test]
    fn method_bodies_disjoint(sizes in prop::collection::vec(1u64..8000, 1..100)) {
        let mut p = JvmProcess::new(1, JvmConfig::default());
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            let m = p.methods_mut().register(&format!("m{i}"), *s);
            let (base, len) = p.methods().body_of(m);
            for &(b2, l2) in &ranges {
                prop_assert!(base + len <= b2 || b2 + l2 <= base, "bodies overlap");
            }
            ranges.push((base, len));
        }
    }
}
