//! Property-based tests of the monitor's wait/notify/handoff protocol.
//!
//! A reference model (plain sets and queues, no clever bookkeeping)
//! interprets random thread scripts alongside the real [`MonitorTable`];
//! every observable — owner, wake targets, queue membership, counters —
//! must agree at every step. The model makes the three litmus-critical
//! properties executable:
//!
//! 1. **No lost wakeups**: draining the system (owners exit, waiters are
//!    notified) always frees every thread — nobody is left parked with
//!    no wake in flight.
//! 2. **FIFO handoff fairness**: ownership is handed to entry-queue
//!    threads (plain contenders and notified waiters alike) strictly in
//!    queue order; a barging newcomer can never overtake a woken thread.
//! 3. **Balanced enter/exit**: after any legal script is unwound, every
//!    monitor is free with zero recursion, and the wait/notify/contended
//!    counters match the model's tally exactly.
//!
//! A fourth property checks that a snapshot taken at *any* cut point —
//! including inside the pending-notify window — restores to a table that
//! behaves identically for the rest of the script.

use std::collections::VecDeque;

use jsmt_jvm::{MonitorId, MonitorOutcome, MonitorTable};
use jsmt_snapshot::{restore_bytes, save_bytes};
use proptest::prelude::*;

const THREADS: u32 = 4;
/// One extra thread the drain may use when every scripted thread parked
/// itself in the wait set (a legal schedule: the last `wait` leaves the
/// monitor free with nobody to notify). It plays the role of the
/// scheduler's next runnable thread.
const DRIVER: u32 = THREADS;

/// Where a model thread is, from the monitor's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Spot {
    /// Running, holding nothing.
    Free,
    /// Owner at some recursion depth.
    Owner(u32),
    /// In the entry queue (blocked enter, or notified and pending).
    Queued,
    /// Parked in the wait set.
    Waiting,
}

/// Reference interpreter: one monitor, `THREADS` threads, plain state.
#[derive(Debug)]
struct Model {
    spot: [Spot; THREADS as usize + 1],
    /// Entry queue order (who gets ownership next, front first), with
    /// the recursion depth to restore.
    queue: VecDeque<(u32, u32)>,
    /// Wait-set order with saved depths.
    wait_set: VecDeque<(u32, u32)>,
    contended: u64,
    waits: u64,
    notifies: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            spot: [Spot::Free; THREADS as usize + 1],
            queue: VecDeque::new(),
            wait_set: VecDeque::new(),
            contended: 0,
            waits: 0,
            notifies: 0,
        }
    }

    fn owner(&self) -> Option<u32> {
        (0..=DRIVER).find(|&t| matches!(self.spot[t as usize], Spot::Owner(_)))
    }

    /// Hand ownership to the queue front, mirroring the table's handoff.
    fn handoff(&mut self) -> Option<u32> {
        match self.queue.pop_front() {
            Some((t, depth)) => {
                self.spot[t as usize] = Spot::Owner(depth);
                Some(t)
            }
            None => None,
        }
    }
}

/// Apply one scripted `(thread, action)` to both the model and the real
/// table, checking every observable agrees. Illegal actions for the
/// thread's current spot are skipped (the script is a schedule, not a
/// program — a parked thread simply cannot act).
fn step(model: &mut Model, table: &mut MonitorTable, mon: MonitorId, thread: u32, action: u32) {
    let spot = model.spot[thread as usize];
    match action {
        // enter
        0 => {
            if matches!(spot, Spot::Queued | Spot::Waiting) {
                return;
            }
            let outcome = table.enter(mon, thread);
            match spot {
                Spot::Owner(d) => {
                    prop_assert_eq!(outcome, MonitorOutcome::Acquired, "reentrant");
                    model.spot[thread as usize] = Spot::Owner(d + 1);
                }
                Spot::Free if model.owner().is_none() => {
                    prop_assert_eq!(outcome, MonitorOutcome::Acquired);
                    model.spot[thread as usize] = Spot::Owner(1);
                }
                Spot::Free => {
                    prop_assert_eq!(outcome, MonitorOutcome::Contended);
                    model.spot[thread as usize] = Spot::Queued;
                    model.queue.push_back((thread, 1));
                    model.contended += 1;
                }
                _ => unreachable!(),
            }
        }
        // exit
        1 => {
            let Spot::Owner(d) = spot else { return };
            let woken = table.exit(mon, thread);
            if d > 1 {
                prop_assert_eq!(woken, None, "inner exit releases nothing");
                model.spot[thread as usize] = Spot::Owner(d - 1);
            } else {
                model.spot[thread as usize] = Spot::Free;
                prop_assert_eq!(woken, model.handoff(), "FIFO handoff order");
            }
        }
        // wait
        2 => {
            let Spot::Owner(d) = spot else { return };
            let woken = table.wait(mon, thread);
            model.spot[thread as usize] = Spot::Waiting;
            model.wait_set.push_back((thread, d));
            model.waits += 1;
            prop_assert_eq!(woken, model.handoff(), "wait hands off like exit");
        }
        // notify
        3 => {
            let Spot::Owner(_) = spot else { return };
            let woken = table.notify(mon, thread);
            let expect = model.wait_set.pop_front();
            if let Some((t, depth)) = expect {
                model.spot[t as usize] = Spot::Queued;
                model.queue.push_back((t, depth));
                model.notifies += 1;
            }
            prop_assert_eq!(woken, expect.map(|(t, _)| t), "notify wakes wait-set front");
        }
        // notify_all
        _ => {
            let Spot::Owner(_) = spot else { return };
            let n = table.notify_all(mon, thread);
            prop_assert_eq!(n, model.wait_set.len(), "notify_all count");
            while let Some((t, depth)) = model.wait_set.pop_front() {
                model.spot[t as usize] = Spot::Queued;
                model.queue.push_back((t, depth));
                model.notifies += 1;
            }
        }
    }
    check_observables(model, table, mon);
}

/// Every observable the table exposes must match the model.
fn check_observables(model: &Model, table: &MonitorTable, mon: MonitorId) {
    prop_assert_eq!(table.owner(mon), model.owner(), "unique owner agrees");
    for t in 0..=DRIVER {
        prop_assert_eq!(
            table.in_wait_set(mon, t),
            model.spot[t as usize] == Spot::Waiting,
            "wait-set membership of thread {t}"
        );
        prop_assert_eq!(
            table.entry_queued(mon, t),
            model.spot[t as usize] == Spot::Queued,
            "entry-queue membership of thread {t}"
        );
    }
    prop_assert_eq!(table.wait_parked(mon), model.wait_set.len());
    prop_assert_eq!(table.contended_total(), model.contended);
    prop_assert_eq!(table.waits_total(), model.waits);
    prop_assert_eq!(table.notifies_total(), model.notifies);
}

/// Unwind to quiescence: the owner notifies everyone then fully exits,
/// and each handed-off thread does the same. Every thread MUST end
/// `Free` — a thread stuck `Waiting` or `Queued` here is a lost wakeup.
fn drain(model: &mut Model, table: &mut MonitorTable, mon: MonitorId) {
    // Handoff always assigns a new owner, so the queue can only be
    // non-empty while somebody owns the monitor.
    prop_assert!(
        model.owner().is_some() || model.queue.is_empty(),
        "ownerless monitor must have an empty entry queue"
    );
    for _ in 0..10_000 {
        match model.owner() {
            Some(t) => {
                step(model, table, mon, t, 4); // notify_all
                let before = model.owner();
                while model.owner() == before {
                    let front = model.queue.front().copied();
                    step(model, table, mon, t, 1); // exit
                    if model.owner() != before {
                        if let Some((next, _)) = front {
                            prop_assert_eq!(model.owner(), Some(next), "handoff is FIFO");
                        }
                        break;
                    }
                }
            }
            None if !model.wait_set.is_empty() => {
                // Somebody must lock and notify the stragglers, as the
                // scheduler's next runnable thread would; when every
                // scripted thread parked itself, the DRIVER steps in.
                let t = (0..=DRIVER)
                    .find(|&t| model.spot[t as usize] == Spot::Free)
                    .expect("the DRIVER never parks, so somebody is free");
                step(model, table, mon, t, 0); // uncontended enter
            }
            None => break,
        }
    }
    for t in 0..=DRIVER {
        prop_assert_eq!(
            model.spot[t as usize],
            Spot::Free,
            "thread {t} never freed: lost wakeup"
        );
    }
    prop_assert_eq!(table.owner(mon), None);
    prop_assert_eq!(table.wait_parked(mon), 0);
    prop_assert_eq!(table.pending_notify_total(), 0);
}

fn arb_script(max: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..THREADS, 0u32..5), 1..max)
}

proptest! {
    /// Properties 1–3: agreement with the reference model at every step,
    /// FIFO handoffs, and a drain that frees every thread with balanced
    /// final state.
    #[test]
    fn monitor_agrees_with_reference_model(script in arb_script(120)) {
        let mut table = MonitorTable::new();
        let mon = table.create();
        let mut model = Model::new();
        for &(thread, action) in &script {
            step(&mut model, &mut table, mon, thread, action);
        }
        drain(&mut model, &mut table, mon);
    }

    /// Property 4: a snapshot cut anywhere in the script — including the
    /// pending-notify window — restores to a table whose remaining
    /// behavior is identical to the uninterrupted original.
    #[test]
    fn snapshot_cut_anywhere_preserves_behavior(
        script in arb_script(80),
        cut in 0usize..80,
    ) {
        let cut = cut.min(script.len());
        let mut table = MonitorTable::new();
        let mon = table.create();
        let mut model = Model::new();
        for &(thread, action) in &script[..cut] {
            step(&mut model, &mut table, mon, thread, action);
        }
        // Round-trip through bytes; byte-canonical re-save.
        let bytes = save_bytes(&table);
        let mut restored = MonitorTable::new();
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(save_bytes(&restored), bytes, "canonical bytes");
        check_observables(&model, &restored, mon);
        // The restored table must track the model (and hence the
        // original table) through the rest of the script and the drain.
        for &(thread, action) in &script[cut..] {
            step(&mut model, &mut restored, mon, thread, action);
        }
        drain(&mut model, &mut restored, mon);
    }

    /// Wait always releases the whole recursion depth and restores it on
    /// re-acquisition, whatever depth the script reached.
    #[test]
    fn wait_round_trips_recursion_depth(depth in 1u32..6) {
        let mut table = MonitorTable::new();
        let mon = table.create();
        for _ in 0..depth {
            prop_assert_eq!(table.enter(mon, 0), MonitorOutcome::Acquired);
        }
        prop_assert_eq!(table.wait(mon, 0), None);
        prop_assert_eq!(table.owner(mon), None, "wait releases fully");
        prop_assert_eq!(table.enter(mon, 1), MonitorOutcome::Acquired);
        prop_assert_eq!(table.notify(mon, 1), Some(0));
        prop_assert_eq!(table.exit(mon, 1), Some(0));
        // Thread 0 is back at its full saved depth.
        for i in 0..depth {
            prop_assert!(table.owner(mon) == Some(0), "still owner before exit {i}");
            prop_assert_eq!(table.exit(mon, 0), None);
        }
        prop_assert_eq!(table.owner(mon), None);
    }
}
