//! One Criterion bench per table/figure of the paper: measures the cost
//! of regenerating each artifact at smoke scale. `cargo bench -p
//! jsmt-bench --bench figures` doubles as an end-to-end exercise of every
//! experiment driver.

use criterion::{criterion_group, criterion_main, Criterion};
use jsmt_bench::run_experiment;
use jsmt_core::experiments::ExperimentCtx;

/// Tiny inputs: these benches track harness cost, not paper numbers.
fn ctx() -> ExperimentCtx {
    ExperimentCtx {
        scale: 0.02,
        repeats: 2,
        seed: 0x15_9A55,
    }
}

fn bench_tables_and_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    // Everything except the 81-pair grid experiments, which get a
    // dedicated group below.
    for name in [
        "table2",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig10",
        "fig11",
        "fig12",
        "ablation-partition",
        "ablation-l1",
    ] {
        g.bench_function(name, |b| b.iter(|| run_experiment(name, &ctx()).len()));
    }
    g.finish();
}

fn bench_pair_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro-grid");
    g.sample_size(10);
    // One representative pair instead of the 81-pair sweep per iteration.
    g.bench_function("one_pair", |b| {
        b.iter(|| {
            let c = ctx();
            let a = jsmt_workloads::BenchmarkId::Compress;
            let p = jsmt_workloads::BenchmarkId::Db;
            let a_solo = jsmt_core::experiments::solo_baseline_cycles(a, &c);
            let p_solo = jsmt_core::experiments::solo_baseline_cycles(p, &c);
            jsmt_core::experiments::run_pair(a, p, a_solo, p_solo, &c).combined
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables_and_figures, bench_pair_grid);
criterion_main!(benches);
