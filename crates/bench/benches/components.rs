//! Component throughput benches: how fast the simulator's structural
//! models run, per operation. These guard the simulator's own performance
//! (the experiments need hundreds of millions of modeled cycles).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jsmt_core::{System, SystemConfig};
use jsmt_cpu::synth::SyntheticStream;
use jsmt_cpu::{CoreConfig, SmtCore};
use jsmt_isa::Asid;
use jsmt_mem::{
    Btb, BtbConfig, CacheConfig, DirectionPredictor, MemConfig, PredictorConfig, SetAssocCache,
    Tlb, TlbConfig, TraceCache, TraceCacheConfig,
};
use jsmt_os::{KernelCodegen, KernelService};
use jsmt_perfmon::LogicalCpu;
use jsmt_workloads::{build, jvm_config_for, BenchmarkId, WorkloadSpec};

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem");
    g.throughput(Throughput::Elements(1));

    let mut l1 = SetAssocCache::new(CacheConfig::p4_l1d());
    let mut addr = 0u64;
    g.bench_function("l1d_access", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(0x239) & 0xF_FFFF;
            l1.access(0x2000_0000 + addr, Asid(1), LogicalCpu::Lp0)
        })
    });

    let mut l2 = SetAssocCache::new(CacheConfig::p4_l2());
    g.bench_function("l2_access_phys_indexed", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(0x1239) & 0xFF_FFFF;
            l2.access(0x2000_0000 + addr, Asid(1), LogicalCpu::Lp0)
        })
    });

    let mut tc = TraceCache::new(TraceCacheConfig::p4(true));
    g.bench_function("trace_cache_fetch", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(16) & 0xF_FFFF;
            tc.fetch(0x0800_0000 + addr, Asid(1), LogicalCpu::Lp0)
        })
    });

    let mut itlb = Tlb::new(TlbConfig::p4_itlb(true));
    g.bench_function("itlb_access", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(4096) & 0xFF_FFFF;
            itlb.access(0x0800_0000 + addr, Asid(1), LogicalCpu::Lp0)
        })
    });

    let mut btb = Btb::new(BtbConfig::p4(true));
    g.bench_function("btb_lookup", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(4) & 0xFFFF;
            btb.lookup(0x0800_0000 + addr, Asid(1), LogicalCpu::Lp0)
        })
    });

    let mut pred = DirectionPredictor::new(PredictorConfig::p4());
    let mut i = 0u64;
    g.bench_function("predictor_predict_update", |b| {
        b.iter(|| {
            i += 1;
            pred.predict_and_update(
                0x0800_0000 + (i % 512) * 4,
                LogicalCpu::Lp0,
                jsmt_isa::BranchKind::Conditional,
                !i.is_multiple_of(3),
            )
        })
    });
    g.finish();
}

fn bench_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu");
    g.throughput(Throughput::Elements(1));
    let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
    let mut s0 = SyntheticStream::builder(1).build();
    let mut s1 = SyntheticStream::builder(2).build();
    core.bind(LogicalCpu::Lp0, Asid(1));
    core.bind(LogicalCpu::Lp1, Asid(1));
    g.bench_function("smt_core_cycle_dual_thread", |b| {
        b.iter(|| {
            core.cycle(&mut |l, buf, max| match l {
                LogicalCpu::Lp0 => s0.fill(buf, max),
                LogicalCpu::Lp1 => s1.fill(buf, max),
            })
        })
    });
    g.finish();
}

fn bench_kernel_codegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("os");
    let mut kcg = KernelCodegen::new(7);
    let mut out = Vec::with_capacity(2048);
    g.throughput(Throughput::Elements(900));
    g.bench_function("kernel_ctx_switch_emit", |b| {
        b.iter(|| {
            out.clear();
            kcg.emit(KernelService::ContextSwitch, 900, &mut out);
            out.len()
        })
    });
    g.finish();
}

fn bench_workload_emission(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    for id in [
        BenchmarkId::Compress,
        BenchmarkId::MolDyn,
        BenchmarkId::PseudoJbb,
    ] {
        // Single-threaded so stepping thread 0 alone never parks on a
        // barrier (this bench measures emission cost, not scheduling).
        let spec = WorkloadSpec {
            id,
            threads: 1,
            scale: 1.0,
        };
        let mut jvm = jsmt_jvm::JvmProcess::new(1, jvm_config_for(id));
        let mut k = build(spec);
        k.setup(&mut jvm);
        let mut out = Vec::with_capacity(4096);
        g.bench_function(format!("step_{id}"), |b| {
            b.iter(|| {
                out.clear();
                let outcome = {
                    let mut ctx = jsmt_jvm::EmitCtx::new(&mut jvm, &mut out);
                    k.step(0, &mut ctx).outcome
                };
                match outcome {
                    // Keep the kernel busy for the whole measurement:
                    // collect on GC pressure, relaunch on completion,
                    // single-step any blocked thread back to life.
                    jsmt_workloads::StepOutcome::NeedsGc => {
                        jvm.collect();
                    }
                    jsmt_workloads::StepOutcome::Finished => {
                        jvm = jsmt_jvm::JvmProcess::new(1, jvm_config_for(id));
                        k = build(spec);
                        k.setup(&mut jvm);
                    }
                    _ => {}
                }
                out.len()
            })
        });
    }
    g.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.throughput(Throughput::Elements(10_000));
    let mut sys = System::new(SystemConfig::p4(true));
    sys.add_relaunching_process(WorkloadSpec::single(BenchmarkId::Compress).with_scale(0.05));
    g.bench_function("system_10k_cycles", |b| {
        b.iter(|| {
            for _ in 0..10_000 {
                sys.step_cycle();
            }
            sys.cycles()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_caches,
    bench_core,
    bench_kernel_codegen,
    bench_workload_emission,
    bench_system
);
criterion_main!(benches);
