//! Simulator cycle-loop throughput: simulated megacycles per wall-clock
//! second, with the event-driven stall fast-forward on vs. off.
//!
//! Not a criterion bench: the quantity of interest is the end-to-end
//! speed of the hot loop on realistic stall profiles, and the self-check
//! that both modes retire the identical µop stream. Results land in
//! `BENCH_cycle_loop.json` at the repository root so CI can archive the
//! trend. Set `JSMT_BENCH_QUICK=1` for a fast smoke run (CI).
//!
//! Three core-level stall profiles bracket the design space:
//! - `dram_bound`: independent DRAM misses (high MLP) — the window fills
//!   with executing loads and the front end alloc-stalls for hundreds of
//!   cycles at a time; the fast-forward's best case.
//! - `tc_miss_bound`: a code footprint far beyond the trace cache — the
//!   front end spends most cycles in fetch stalls waiting on trace
//!   rebuilds from L2/DRAM.
//! - `balanced`: a well-behaved integer mix that rarely stalls; guards
//!   against the fast-forward *slowing down* the common case.
//!
//! A fourth, system-level run (`system_quick`) exercises the full
//! machine — scheduler, kernel streams, GC — through `System::run_cycles`.

use std::time::Instant;

use jsmt_core::{System, SystemConfig};
use jsmt_cpu::synth::SyntheticStream;
use jsmt_cpu::{CoreConfig, SmtCore};
use jsmt_isa::Asid;
use jsmt_mem::MemConfig;
use jsmt_perfmon::{Event, LogicalCpu};
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

struct ModeResult {
    wall_secs: f64,
    mcycles_per_sec: f64,
    uops_retired: u64,
}

struct WorkloadResult {
    name: &'static str,
    level: &'static str,
    sim_cycles: u64,
    baseline: ModeResult,
    fast_forward: ModeResult,
    speedup: f64,
}

fn dram_bound(seed: u64) -> SyntheticStream {
    SyntheticStream::builder(seed)
        .code_footprint(2 * 1024)
        .data_footprint(16 * 1024 * 1024)
        .mem_fraction(0.45)
        .dep_chain(0.05)
        .branch_fraction(0.02)
        .build()
}

fn tc_miss_bound(seed: u64) -> SyntheticStream {
    SyntheticStream::builder(seed)
        .code_footprint(8 * 1024 * 1024)
        .data_footprint(32 * 1024)
        .mem_fraction(0.15)
        .dep_chain(0.2)
        .branch_fraction(0.05)
        .build()
}

fn balanced(seed: u64) -> SyntheticStream {
    SyntheticStream::builder(seed).build()
}

/// Drive a single-context core for `n` simulated cycles, fast-forward on
/// or off, and report wall time plus the retired-µop self-check value.
fn run_core(stream: &SyntheticStream, n: u64, fastfwd: bool) -> ModeResult {
    let mut s = stream.clone();
    let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
    core.set_fast_forward(fastfwd);
    core.bind(LogicalCpu::Lp0, Asid(1));
    let t0 = Instant::now();
    while core.cycles() < n {
        if !fastfwd || core.fast_forward(n - core.cycles()) == 0 {
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    ModeResult {
        wall_secs: wall,
        mcycles_per_sec: n as f64 / wall / 1e6,
        uops_retired: core.counters().total(Event::UopsRetired),
    }
}

/// Drive a full system for `n` simulated cycles (the `System` layer does
/// its own fast-forward dispatch inside `run_cycles`).
fn run_system(n: u64, fastfwd: bool) -> ModeResult {
    let mut sys = System::new(
        SystemConfig::p4(true)
            .with_seed(3)
            .with_max_cycles(u64::MAX),
    );
    sys.set_fast_forward(fastfwd);
    sys.add_process(WorkloadSpec::threaded(BenchmarkId::MonteCarlo, 2).with_scale(1.0));
    let t0 = Instant::now();
    let r = sys.run_cycles(n);
    let wall = t0.elapsed().as_secs_f64();
    ModeResult {
        wall_secs: wall,
        mcycles_per_sec: n as f64 / wall / 1e6,
        uops_retired: r.bank.total(Event::UopsRetired),
    }
}

fn measure(
    name: &'static str,
    level: &'static str,
    sim_cycles: u64,
    run: impl Fn(bool) -> ModeResult,
) -> WorkloadResult {
    let baseline = run(false);
    let fast_forward = run(true);
    assert_eq!(
        baseline.uops_retired, fast_forward.uops_retired,
        "{name}: fast-forward changed the retired µop count"
    );
    assert!(
        fast_forward.uops_retired > 0,
        "{name}: no µops retired — the workload never ran"
    );
    let speedup = baseline.wall_secs / fast_forward.wall_secs;
    println!(
        "{name:>14} [{level}]: {:.1} -> {:.1} sim Mcycles/s ({speedup:.2}x), {} µops retired",
        baseline.mcycles_per_sec, fast_forward.mcycles_per_sec, fast_forward.uops_retired
    );
    WorkloadResult {
        name,
        level,
        sim_cycles,
        baseline,
        fast_forward,
        speedup,
    }
}

fn json_mode(m: &ModeResult) -> String {
    format!(
        "{{\"wall_secs\": {:.6}, \"sim_mcycles_per_sec\": {:.3}, \"uops_retired\": {}}}",
        m.wall_secs, m.mcycles_per_sec, m.uops_retired
    )
}

fn main() {
    let quick = std::env::var_os("JSMT_BENCH_QUICK").is_some_and(|v| v == "1");
    let (core_n, sys_n) = if quick {
        (300_000u64, 150_000u64)
    } else {
        (3_000_000u64, 1_000_000u64)
    };

    let results = [
        measure("dram_bound", "core", core_n, |ff| {
            run_core(&dram_bound(9), core_n, ff)
        }),
        measure("tc_miss_bound", "core", core_n, |ff| {
            run_core(&tc_miss_bound(17), core_n, ff)
        }),
        measure("balanced", "core", core_n, |ff| {
            run_core(&balanced(25), core_n, ff)
        }),
        measure("system_quick", "system", sys_n, |ff| run_system(sys_n, ff)),
    ];

    let mut body = String::from("{\n  \"bench\": \"cycle_loop\",\n");
    body.push_str(&format!("  \"quick\": {quick},\n  \"workloads\": [\n"));
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"level\": \"{}\", \"sim_cycles\": {},\n     \
             \"baseline\": {},\n     \"fast_forward\": {},\n     \"speedup\": {:.3}}}{}\n",
            r.name,
            r.level,
            r.sim_cycles,
            json_mode(&r.baseline),
            json_mode(&r.fast_forward),
            r.speedup,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cycle_loop.json");
    std::fs::write(path, &body).expect("write BENCH_cycle_loop.json");
    println!("wrote {path}");

    let best = results
        .iter()
        .filter(|r| r.level == "core")
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    assert!(
        quick || best >= 2.0,
        "acceptance: expected >= 2x on at least one stall-heavy workload, best {best:.2}x"
    );
}
