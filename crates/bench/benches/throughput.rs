//! Simulator cycle-loop throughput: simulated megacycles per wall-clock
//! second, baseline vs. optimized hot loop.
//!
//! Not a criterion bench: the quantity of interest is the end-to-end
//! speed of the hot loop on realistic stall profiles, and the self-check
//! that both modes retire the identical µop stream. Results land in
//! `BENCH_cycle_loop.json` at the repository root so CI can archive the
//! trend. Set `JSMT_BENCH_QUICK=1` for a fast smoke run (CI).
//!
//! The A/B contrast is the full optimization stack: *baseline* runs the
//! scalar interpreter tier with the stall fast-forward disabled;
//! *optimized* runs the trace tier (batched SoA issue/retire plus
//! compiled-trace replay) with the fast-forward enabled. Both sides are
//! driven through the same pending-buffer harness, so µop deliveries are
//! identical by construction and the retired-µop self-check is exact.
//!
//! Core-level stall profiles bracket the design space:
//! - `dram_bound`: independent DRAM misses (high MLP) — the window fills
//!   with executing loads and the front end alloc-stalls for hundreds of
//!   cycles at a time; the fast-forward's best case.
//! - `tc_miss_bound`: a code footprint far beyond the trace cache — the
//!   front end spends most cycles in fetch stalls waiting on trace
//!   rebuilds from L2/DRAM.
//! - `balanced`: a well-behaved integer mix that rarely stalls; the
//!   batched tier has to carry this one, since neither the fast-forward
//!   nor trace replay gets much traction on it.
//! - `balanced_dense` / `fp_dense`: tight pure-compute loops (2 KiB of
//!   hot code, no memory traffic) — the compiled-trace tier's home turf,
//!   analogous to a JIT-compiled inner loop in steady state.
//!
//! A final system-level run (`system_quick`) exercises the full machine
//! — scheduler, kernel streams, GC — through `System::run_cycles`.

use std::collections::VecDeque;
use std::time::Instant;

use jsmt_core::{System, SystemConfig};
use jsmt_cpu::synth::SyntheticStream;
use jsmt_cpu::{CoreConfig, ExecTier, SmtCore};
use jsmt_isa::{Asid, Uop};
use jsmt_mem::MemConfig;
use jsmt_perfmon::{Event, LogicalCpu};
use jsmt_workloads::{BenchmarkId, WorkloadSpec};

struct ModeResult {
    wall_secs: f64,
    mcycles_per_sec: f64,
    uops_retired: u64,
}

struct WorkloadResult {
    name: &'static str,
    level: &'static str,
    sim_cycles: u64,
    baseline: ModeResult,
    optimized: ModeResult,
    speedup: f64,
}

fn dram_bound(seed: u64) -> SyntheticStream {
    SyntheticStream::builder(seed)
        .code_footprint(2 * 1024)
        .data_footprint(16 * 1024 * 1024)
        .mem_fraction(0.45)
        .dep_chain(0.05)
        .branch_fraction(0.02)
        .build()
}

fn tc_miss_bound(seed: u64) -> SyntheticStream {
    SyntheticStream::builder(seed)
        .code_footprint(8 * 1024 * 1024)
        .data_footprint(32 * 1024)
        .mem_fraction(0.15)
        .dep_chain(0.2)
        .branch_fraction(0.05)
        .build()
}

fn balanced(seed: u64) -> SyntheticStream {
    SyntheticStream::builder(seed).build()
}

fn dense(seed: u64, fp: f64) -> SyntheticStream {
    SyntheticStream::builder(seed)
        .code_footprint(2 * 1024)
        .data_footprint(64 * 1024)
        .mem_fraction(0.0)
        .branch_fraction(0.0)
        .dep_chain(0.0)
        .fp_fraction(fp)
        .build()
}

/// Drive a single-context core for `n` simulated cycles and report wall
/// time plus the retired-µop self-check value. Baseline is the scalar
/// tier with fast-forward off; optimized is the trace tier with
/// fast-forward on. Both use the same pending-buffer supply, mirroring
/// how the system layer feeds the core, so trace replays can engage.
fn run_core(stream: &SyntheticStream, n: u64, optimized: bool) -> ModeResult {
    let mut s = stream.clone();
    let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
    core.set_exec_tier(if optimized {
        ExecTier::Trace
    } else {
        ExecTier::Scalar
    });
    core.set_fast_forward(optimized);
    core.bind(LogicalCpu::Lp0, Asid(1));
    let mut pending: VecDeque<Uop> = VecDeque::new();
    let t0 = Instant::now();
    while core.cycles() < n {
        // Deeper than the longest possible trace fill (fetch_width ×
        // 1024-cycle trace cap) so replays are never starved.
        while pending.len() < 4096 {
            s.fill(&mut pending, 48);
        }
        let left = n - core.cycles();
        if optimized {
            let (cycles, consumed) = core.trace_step(left, &pending);
            if cycles > 0 {
                pending.drain(..consumed);
                continue;
            }
            if core.fast_forward(left) > 0 {
                continue;
            }
        }
        core.cycle(&mut |lcpu, buf, max| {
            if lcpu != LogicalCpu::Lp0 {
                return 0;
            }
            let take = max.min(pending.len());
            for u in pending.drain(..take) {
                buf.push_back(u);
            }
            take
        });
    }
    let wall = t0.elapsed().as_secs_f64();
    ModeResult {
        wall_secs: wall,
        mcycles_per_sec: n as f64 / wall / 1e6,
        uops_retired: core.counters().total(Event::UopsRetired),
    }
}

/// Drive a full system for `n` simulated cycles (the `System` layer does
/// its own fast-forward and trace-replay dispatch inside `run_cycles`).
fn run_system(n: u64, optimized: bool) -> ModeResult {
    let mut sys = System::new(
        SystemConfig::p4(true)
            .with_seed(3)
            .with_max_cycles(u64::MAX),
    );
    sys.set_fast_forward(optimized);
    sys.set_trace_tier(optimized);
    sys.add_process(WorkloadSpec::threaded(BenchmarkId::MonteCarlo, 2).with_scale(1.0));
    let t0 = Instant::now();
    let r = sys.run_cycles(n);
    let wall = t0.elapsed().as_secs_f64();
    ModeResult {
        wall_secs: wall,
        mcycles_per_sec: n as f64 / wall / 1e6,
        uops_retired: r.bank.total(Event::UopsRetired),
    }
}

fn measure(
    name: &'static str,
    level: &'static str,
    sim_cycles: u64,
    run: impl Fn(bool) -> ModeResult,
) -> WorkloadResult {
    let baseline = run(false);
    let optimized = run(true);
    assert_eq!(
        baseline.uops_retired, optimized.uops_retired,
        "{name}: optimized hot loop changed the retired µop count"
    );
    assert!(
        optimized.uops_retired > 0,
        "{name}: no µops retired — the workload never ran"
    );
    let speedup = baseline.wall_secs / optimized.wall_secs;
    println!(
        "{name:>14} [{level}]: {:.1} -> {:.1} sim Mcycles/s ({speedup:.2}x), {} µops retired",
        baseline.mcycles_per_sec, optimized.mcycles_per_sec, optimized.uops_retired
    );
    WorkloadResult {
        name,
        level,
        sim_cycles,
        baseline,
        optimized,
        speedup,
    }
}

fn json_mode(m: &ModeResult) -> String {
    format!(
        "{{\"wall_secs\": {:.6}, \"sim_mcycles_per_sec\": {:.3}, \"uops_retired\": {}}}",
        m.wall_secs, m.mcycles_per_sec, m.uops_retired
    )
}

fn main() {
    let quick = std::env::var_os("JSMT_BENCH_QUICK").is_some_and(|v| v == "1");
    let (core_n, sys_n) = if quick {
        (300_000u64, 150_000u64)
    } else {
        (3_000_000u64, 1_000_000u64)
    };

    let results = [
        measure("dram_bound", "core", core_n, |opt| {
            run_core(&dram_bound(9), core_n, opt)
        }),
        measure("tc_miss_bound", "core", core_n, |opt| {
            run_core(&tc_miss_bound(17), core_n, opt)
        }),
        measure("balanced", "core", core_n, |opt| {
            run_core(&balanced(25), core_n, opt)
        }),
        measure("balanced_dense", "core", core_n, |opt| {
            run_core(&dense(31, 0.25), core_n, opt)
        }),
        measure("fp_dense", "core", core_n, |opt| {
            run_core(&dense(43, 0.7), core_n, opt)
        }),
        measure("system_quick", "system", sys_n, |opt| {
            run_system(sys_n, opt)
        }),
    ];

    let mut body = String::from("{\n  \"bench\": \"cycle_loop\",\n");
    body.push_str(&format!("  \"quick\": {quick},\n  \"workloads\": [\n"));
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"level\": \"{}\", \"sim_cycles\": {},\n     \
             \"baseline\": {},\n     \"optimized\": {},\n     \"speedup\": {:.3}}}{}\n",
            r.name,
            r.level,
            r.sim_cycles,
            json_mode(&r.baseline),
            json_mode(&r.optimized),
            r.speedup,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cycle_loop.json");
    std::fs::write(path, &body).expect("write BENCH_cycle_loop.json");
    println!("wrote {path}");

    // Acceptance floors (full runs only — quick runs are too noisy).
    //
    // `balanced` is the honest hard case: its fast-forwardable fraction
    // is ~37 % of cycles (every other cycle genuinely moves µops and must
    // be re-executed bit-identically), so Amdahl caps the full-stack win
    // near 1.8x no matter how fast the skip path is. The committed floor
    // leaves noise margin under that measured ceiling. The >= 3x tier
    // wins land where the tiers structurally apply: stall-heavy profiles
    // (fast-forward) and dense compute loops (compiled-trace replay).
    let find = |n: &str| results.iter().find(|r| r.name == n).unwrap().speedup;
    let stall_best = find("dram_bound").max(find("tc_miss_bound"));
    let dense_best = find("balanced_dense").max(find("fp_dense"));
    assert!(
        quick || find("balanced") >= 1.4,
        "acceptance: balanced must hold >= 1.4x, got {:.2}x",
        find("balanced")
    );
    assert!(
        quick || stall_best >= 3.0,
        "acceptance: expected >= 3x on at least one stall-heavy workload, best {stall_best:.2}x"
    );
    assert!(
        quick || dense_best >= 3.0,
        "acceptance: expected >= 3x on at least one dense-compute workload, best {dense_best:.2}x"
    );
}
