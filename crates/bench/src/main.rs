//! The `repro` binary: regenerate any table or figure of the paper.

use jsmt_bench::{parse_args, run_all, run_experiment_fmt, usage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cli) => {
            eprintln!(
                "# jsmt repro: experiment={} scale={} repeats={} seed={:#x}",
                cli.experiment, cli.ctx.scale, cli.ctx.repeats, cli.ctx.seed
            );
            let out = if cli.experiment == "all" {
                run_all(&cli.ctx)
            } else {
                run_experiment_fmt(&cli.experiment, &cli.ctx, cli.csv)
            };
            println!("{out}");
        }
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}
