//! The `repro` binary: regenerate any table or figure of the paper.

use jsmt_bench::{
    parse_args, run_all_on, run_bisect, run_experiment_ckpt, run_experiment_on, usage,
};
use jsmt_core::experiments::Engine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cli) => {
            let engine = Engine::new(cli.parallelism());
            eprintln!(
                "# jsmt repro: experiment={} scale={} repeats={} seed={:#x} parallelism={:?}",
                cli.experiment,
                cli.ctx.scale,
                cli.ctx.repeats,
                cli.ctx.seed,
                engine.parallelism()
            );
            let out = if cli.experiment == "all" {
                run_all_on(&engine, &cli.ctx)
            } else if cli.experiment == "bisect-divergence" {
                run_bisect(&cli.bisect, &cli.ctx)
            } else if let Some(path) = &cli.checkpoint {
                let path = std::path::Path::new(path);
                if cli.resume && !path.exists() {
                    eprintln!("--resume: no such checkpoint: {}", path.display());
                    std::process::exit(2);
                }
                match run_experiment_ckpt(
                    &engine,
                    &cli.experiment,
                    &cli.ctx,
                    cli.csv,
                    path,
                    cli.checkpoint_every,
                ) {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            } else {
                run_experiment_on(&engine, &cli.experiment, &cli.ctx, cli.csv)
            };
            println!("{out}");
            // Per-stage timing + baseline-cache stats, so the --jobs
            // speedup is observable without external tooling.
            eprint!("{}", engine.timing_report());
        }
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}
