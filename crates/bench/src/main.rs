//! The `repro` binary: regenerate any table or figure of the paper.
//!
//! Exit codes: 0 = success, 1 = runtime error (or a `replay-crash`
//! that did not reproduce), 2 = usage error, 3 = supervised run
//! completed with failed cells (partial results were emitted).

use jsmt_bench::{
    parse_args, resolve_cache, run_all_on, run_bisect, run_experiment_ckpt, run_experiment_on,
    run_experiment_sharded, run_experiment_supervised, run_litmus, run_litmus_supervised,
    run_replay_crash, shard_cfg, usage, Cli, CHECKPOINTABLE,
};
use jsmt_core::experiments::Engine;
use jsmt_core::JsmtError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    match run(&cli) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Arm the fault plan requested by `--faults` or `JSMT_FAULTS` (flag
/// wins). Returns whether a plan is active.
fn arm_faults(cli: &Cli) -> Result<bool, JsmtError> {
    let spec = cli
        .supervise
        .faults
        .clone()
        .or_else(|| std::env::var("JSMT_FAULTS").ok().filter(|s| !s.is_empty()));
    match spec {
        Some(spec) => {
            jsmt_faults::install_spec(&spec).map_err(|e| {
                JsmtError::new(
                    jsmt_core::ErrorKind::Config,
                    format!("bad fault spec {spec:?}: {e}"),
                )
            })?;
            eprintln!("# jsmt repro: fault plan armed: {spec}");
            Ok(true)
        }
        None => Ok(false),
    }
}

fn run(cli: &Cli) -> Result<i32, JsmtError> {
    if cli.experiment == "replay-crash" {
        let path = cli.bundle.as_deref().expect("validated at parse time");
        let (report, reproduced) = run_replay_crash(std::path::Path::new(path))?;
        print!("{report}");
        return Ok(if reproduced { 0 } else { 1 });
    }

    if cli.shard_worker {
        // Service mode: arm faults, attach the cache, serve shard
        // requests on stdin until the dispatcher says exit.
        arm_faults(cli)?;
        let cache = resolve_cache(cli.cache_dir.as_deref())?;
        jsmt_core::experiments::shard_worker_main(&cli.ctx, cache, cli.supervise.livelock_cycles)?;
        return Ok(0);
    }

    let faults_armed = arm_faults(cli)?;
    let mut engine = Engine::new(cli.parallelism());
    // The persistent result cache serves every pairing-grid execution
    // mode; other experiments have no cacheable cells yet.
    let cache = if CHECKPOINTABLE.contains(&cli.experiment.as_str()) {
        resolve_cache(cli.cache_dir.as_deref())?
    } else {
        None
    };
    if let Some(cache) = &cache {
        engine.set_result_cache(std::sync::Arc::clone(cache));
    }
    eprintln!(
        "# jsmt repro: experiment={} scale={} repeats={} seed={:#x} parallelism={:?}",
        cli.experiment,
        cli.ctx.scale,
        cli.ctx.repeats,
        cli.ctx.seed,
        engine.parallelism()
    );

    let mut exit = 0;
    let out = if cli.experiment == "all" {
        run_all_on(&engine, &cli.ctx)
    } else if cli.experiment == "bisect-divergence" {
        run_bisect(&cli.bisect, &cli.ctx)
    } else if cli.supervise.enabled {
        let outcome = if cli.experiment == "litmus" {
            run_litmus_supervised(&engine, &cli.ctx, cli.seeds, cli.csv, &cli.supervise.cfg())
        } else {
            run_experiment_supervised(
                &engine,
                &cli.experiment,
                &cli.ctx,
                cli.csv,
                &cli.supervise.cfg(),
            )
        };
        if let Some(path) = &cli.supervise.manifest {
            std::fs::write(path, &outcome.manifest).map_err(|e| {
                JsmtError::from(e).context(format!("writing failure manifest '{path}'"))
            })?;
        }
        for f in &outcome.failures {
            eprintln!("# cell failed: {f}");
        }
        if !outcome.failures.is_empty() {
            eprintln!(
                "# jsmt repro: {} cell(s) failed; emitting partial results",
                outcome.failures.len()
            );
            exit = 3;
        }
        outcome.output
    } else if cli.workers.is_some() {
        let scfg = shard_cfg(cli, cache.clone())?;
        eprintln!(
            "# jsmt repro: dispatching over {} worker process(es)",
            scfg.workers
        );
        let outcome = run_experiment_sharded(&cli.experiment, &cli.ctx, cli.csv, &scfg)?;
        if let Some(path) = &cli.supervise.manifest {
            std::fs::write(path, &outcome.manifest).map_err(|e| {
                JsmtError::from(e).context(format!("writing failure manifest '{path}'"))
            })?;
        }
        for f in &outcome.failures {
            eprintln!("# cell failed: {f}");
        }
        if !outcome.failures.is_empty() {
            eprintln!(
                "# jsmt repro: {} cell(s) failed; emitting partial results",
                outcome.failures.len()
            );
            exit = 3;
        }
        outcome.output
    } else if let Some(path) = &cli.checkpoint {
        let path = std::path::Path::new(path);
        if cli.resume && !path.exists() {
            eprintln!("--resume: no such checkpoint: {}", path.display());
            std::process::exit(2);
        }
        run_experiment_ckpt(
            &engine,
            &cli.experiment,
            &cli.ctx,
            cli.csv,
            path,
            cli.checkpoint_every,
        )?
    } else if cli.experiment == "litmus" {
        run_litmus(&engine, &cli.ctx, cli.seeds, cli.csv)
    } else {
        run_experiment_on(&engine, &cli.experiment, &cli.ctx, cli.csv)
    };
    println!("{out}");
    // Per-stage timing + baseline-cache stats, so the --jobs speedup is
    // observable without external tooling.
    eprint!("{}", engine.timing_report());
    // Cache hit/miss/quarantine accounting (the CI determinism job
    // asserts `misses=0` on a warm rerun from this line).
    if let Some(cache) = &cache {
        eprintln!("{}", cache.report());
    }
    if faults_armed {
        jsmt_faults::clear();
    }
    Ok(exit)
}
