//! The `repro` binary: regenerate any table or figure of the paper.

use jsmt_bench::{parse_args, run_all_on, run_experiment_on, usage};
use jsmt_core::experiments::Engine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cli) => {
            let engine = Engine::new(cli.parallelism());
            eprintln!(
                "# jsmt repro: experiment={} scale={} repeats={} seed={:#x} parallelism={:?}",
                cli.experiment,
                cli.ctx.scale,
                cli.ctx.repeats,
                cli.ctx.seed,
                engine.parallelism()
            );
            let out = if cli.experiment == "all" {
                run_all_on(&engine, &cli.ctx)
            } else {
                run_experiment_on(&engine, &cli.experiment, &cli.ctx, cli.csv)
            };
            println!("{out}");
            // Per-stage timing + baseline-cache stats, so the --jobs
            // speedup is observable without external tooling.
            eprint!("{}", engine.timing_report());
        }
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}
