//! # jsmt-bench
//!
//! The reproduction harness: the `repro` binary regenerates every table
//! and figure of the paper's evaluation, and the Criterion benches under
//! `benches/` measure the simulator's own component throughput plus each
//! experiment's cost.
//!
//! ```text
//! repro [--quick|--full] [--scale X] [--repeats N] <experiment>
//! experiments: table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!              fig10 fig11 fig12 pairing-analysis ablation-partition
//!              ablation-l1 all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;

use jsmt_core::bisect::{bisect_divergence, render_bisect, Variant};
use jsmt_core::experiments::{self as exp, Engine, ExperimentCtx, MpkiKind, Parallelism};
use jsmt_core::{ErrorKind, JsmtError, SystemConfig};
use jsmt_workloads::BenchmarkId;

/// All experiment names, in paper order. `pairing-suite` renders
/// Figures 8, 9 and the offline analysis from a single grid pass;
/// `bisect-divergence` is the differential-replay debugging tool.
pub const EXPERIMENTS: [&str; 22] = [
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "pairing-analysis",
    "pairing-suite",
    "pairing-prediction",
    "ablation-partition",
    "ablation-l1",
    "ablation-prefetch",
    "ablation-jit",
    "bisect-divergence",
    "litmus",
];

/// Default litmus seed-sweep width (`--seeds`): wide enough that every
/// shape exercises its contended and wait-heavy interleavings.
pub const DEFAULT_LITMUS_SEEDS: u64 = 64;

/// The experiments that support `--checkpoint` (cell-level crash-safe
/// progress): everything driven by the pairing grid.
pub const CHECKPOINTABLE: [&str; 5] = [
    "fig8",
    "fig9",
    "pairing-analysis",
    "pairing-suite",
    "pairing-prediction",
];

/// Parameters of a `bisect-divergence` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectOpts {
    /// Variant A (default `fastfwd`).
    pub a: Variant,
    /// Variant B (default `no-fastfwd`).
    pub b: Variant,
    /// Benchmark to replay (default compress).
    pub bench: BenchmarkId,
    /// Cycles to compare before concluding "no divergence".
    pub horizon: u64,
    /// Checkpoint-compare spacing during the lockstep scan.
    pub stride: u64,
}

impl Default for BisectOpts {
    fn default() -> Self {
        BisectOpts {
            a: Variant::FastForward,
            b: Variant::NoFastForward,
            bench: BenchmarkId::Compress,
            horizon: 200_000,
            stride: 20_000,
        }
    }
}

/// Supervised-execution options (`--supervised` and friends).
#[derive(Debug, Clone, PartialEq)]
pub struct SuperOpts {
    /// `--supervised`: run the grid under the hardened supervisor
    /// (per-cell panic isolation, retries, watchdogs, partial results).
    pub enabled: bool,
    /// `--retries N`: re-runs granted after a failed cell attempt.
    pub retries: u32,
    /// `--deadline-secs N`: wall-clock budget per cell attempt (0 =
    /// none).
    pub deadline_secs: u64,
    /// `--livelock-cycles N`: forward-progress watchdog threshold (0 =
    /// off).
    pub livelock_cycles: u64,
    /// `--cell-checkpoint-every N`: crash-tail checkpoint interval in
    /// machine cycles (0 = off).
    pub cell_checkpoint_every: u64,
    /// `--bundle-dir PATH`: where failed cells write crash-repro
    /// bundles.
    pub bundle_dir: Option<String>,
    /// `--manifest PATH`: where to write the failure-manifest CSV.
    pub manifest: Option<String>,
    /// `--faults SPEC`: fault plan to arm (overrides `JSMT_FAULTS`).
    pub faults: Option<String>,
    /// `--backoff-ms N`: base delay of the deterministic retry backoff
    /// (0 disables sleeping; the zero schedule is still recorded).
    pub backoff_ms: u64,
    /// `--backoff-cap-ms N`: upper clamp on any single retry delay.
    pub backoff_cap_ms: u64,
}

impl Default for SuperOpts {
    fn default() -> Self {
        SuperOpts {
            enabled: false,
            retries: 1,
            deadline_secs: 0,
            livelock_cycles: 2_000_000,
            cell_checkpoint_every: 0,
            bundle_dir: None,
            manifest: None,
            faults: None,
            backoff_ms: 25,
            backoff_cap_ms: 400,
        }
    }
}

impl SuperOpts {
    /// The supervisor policy these options describe.
    pub fn cfg(&self) -> exp::SupervisorCfg {
        exp::SupervisorCfg {
            retries: self.retries,
            deadline: (self.deadline_secs > 0)
                .then(|| std::time::Duration::from_secs(self.deadline_secs)),
            livelock_cycles: self.livelock_cycles,
            checkpoint_every: self.cell_checkpoint_every,
            bundle_dir: self.bundle_dir.as_ref().map(std::path::PathBuf::from),
            backoff_base: std::time::Duration::from_millis(self.backoff_ms),
            backoff_cap: std::time::Duration::from_millis(self.backoff_cap_ms.max(self.backoff_ms)),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Experiment name (one of [`EXPERIMENTS`], `all`, or
    /// `replay-crash`).
    pub experiment: String,
    /// Experiment parameters.
    pub ctx: ExperimentCtx,
    /// Emit machine-readable CSV instead of the paper-style rendering.
    pub csv: bool,
    /// Worker count from `--jobs N` (`None` = resolve from `JSMT_JOBS`
    /// or the host core count at run time).
    pub jobs: Option<usize>,
    /// Checkpoint file from `--checkpoint PATH` / `--resume PATH`
    /// (resumed if it exists, created otherwise).
    pub checkpoint: Option<String>,
    /// `--resume` was used: the checkpoint file must already exist.
    pub resume: bool,
    /// Flush the checkpoint every N finished grid cells
    /// (`--checkpoint-every N`, default 8).
    pub checkpoint_every: usize,
    /// `bisect-divergence` parameters.
    pub bisect: BisectOpts,
    /// Supervised-execution options.
    pub supervise: SuperOpts,
    /// Crash-bundle path of the `replay-crash` subcommand.
    pub bundle: Option<String>,
    /// Seeds per litmus shape (`--seeds N`, litmus only).
    pub seeds: u64,
    /// `--workers N`: fan the pairing grid over N worker *processes*
    /// (crash-tolerant shard dispatch; `None` = in-process execution).
    pub workers: Option<usize>,
    /// `--cache-dir PATH`: persistent result-cache directory (overrides
    /// the `JSMT_CACHE` environment variable).
    pub cache_dir: Option<String>,
    /// `--shard-worker`: run as a shard worker serving requests on
    /// stdin (internal; spawned by the `--workers` dispatcher).
    pub shard_worker: bool,
}

impl Cli {
    /// Resolve the parallelism this invocation asked for.
    pub fn parallelism(&self) -> Parallelism {
        match self.jobs {
            Some(0) | Some(1) => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::from_env(),
        }
    }
}

fn cli_err(msg: impl Into<String>) -> JsmtError {
    JsmtError::new(ErrorKind::Cli, msg)
}

/// Parse arguments (without the program name).
///
/// # Errors
///
/// Returns [`ErrorKind::Cli`] on unknown flags, experiments, or
/// malformed values, and [`ErrorKind::Config`] when the experiment
/// parameters are out of range (non-finite scale, zero repeats).
pub fn parse_args(args: &[String]) -> Result<Cli, JsmtError> {
    let mut ctx = ExperimentCtx::default();
    let mut experiment: Option<String> = None;
    let mut csv = false;
    let mut jobs = None;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;
    let mut checkpoint_every = 8usize;
    let mut bisect = BisectOpts::default();
    let mut supervise = SuperOpts::default();
    let mut bundle: Option<String> = None;
    let mut seeds = DEFAULT_LITMUS_SEEDS;
    let mut workers: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut shard_worker = false;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => ctx = ExperimentCtx::quick(),
            "--full" => ctx = ExperimentCtx::full(),
            "--csv" => csv = true,
            "--supervised" => supervise.enabled = true,
            "--shard-worker" => shard_worker = true,
            "--workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--workers needs a value"))?;
                workers = Some(
                    v.parse::<usize>()
                        .map_err(|e| cli_err(format!("bad --workers: {e}")))?
                        .max(1),
                );
            }
            "--cache-dir" => {
                cache_dir = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--cache-dir needs a path"))?
                        .clone(),
                );
            }
            "--backoff-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--backoff-ms needs a value"))?;
                supervise.backoff_ms = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --backoff-ms: {e}")))?;
            }
            "--backoff-cap-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--backoff-cap-ms needs a value"))?;
                supervise.backoff_cap_ms = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --backoff-cap-ms: {e}")))?;
            }
            "--jobs" => {
                let v = it.next().ok_or_else(|| cli_err("--jobs needs a value"))?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|e| cli_err(format!("bad --jobs: {e}")))?,
                );
            }
            "--checkpoint" => {
                checkpoint = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--checkpoint needs a path"))?
                        .clone(),
                );
            }
            "--resume" => {
                checkpoint = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--resume needs a path"))?
                        .clone(),
                );
                resume = true;
            }
            "--checkpoint-every" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--checkpoint-every needs a value"))?;
                checkpoint_every = v
                    .parse::<usize>()
                    .map_err(|e| cli_err(format!("bad --checkpoint-every: {e}")))?
                    .max(1);
            }
            "--retries" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--retries needs a value"))?;
                supervise.retries = v
                    .parse::<u32>()
                    .map_err(|e| cli_err(format!("bad --retries: {e}")))?;
            }
            "--deadline-secs" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--deadline-secs needs a value"))?;
                supervise.deadline_secs = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --deadline-secs: {e}")))?;
            }
            "--livelock-cycles" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--livelock-cycles needs a value"))?;
                supervise.livelock_cycles = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --livelock-cycles: {e}")))?;
            }
            "--cell-checkpoint-every" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--cell-checkpoint-every needs a value"))?;
                supervise.cell_checkpoint_every = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --cell-checkpoint-every: {e}")))?;
            }
            "--bundle-dir" => {
                supervise.bundle_dir = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--bundle-dir needs a path"))?
                        .clone(),
                );
            }
            "--manifest" => {
                supervise.manifest = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--manifest needs a path"))?
                        .clone(),
                );
            }
            "--faults" => {
                supervise.faults = Some(
                    it.next()
                        .ok_or_else(|| cli_err("--faults needs a spec"))?
                        .clone(),
                );
            }
            "--a" | "--b" => {
                let flag = arg.as_str();
                let v = it
                    .next()
                    .ok_or_else(|| cli_err(format!("{flag} needs a variant")))?;
                let variant = Variant::parse(v).ok_or_else(|| {
                    cli_err(format!(
                        "bad {flag} '{v}' (fastfwd | no-fastfwd | trace-tier | no-trace-tier | seed=N)"
                    ))
                })?;
                if flag == "--a" {
                    bisect.a = variant;
                } else {
                    bisect.b = variant;
                }
            }
            "--bench" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--bench needs a benchmark name"))?;
                bisect.bench = BenchmarkId::parse(v)
                    .ok_or_else(|| cli_err(format!("unknown benchmark '{v}'")))?;
            }
            "--horizon" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--horizon needs a value"))?;
                bisect.horizon = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --horizon: {e}")))?;
            }
            "--stride" => {
                let v = it.next().ok_or_else(|| cli_err("--stride needs a value"))?;
                bisect.stride = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --stride: {e}")))?
                    .max(1);
            }
            "--scale" => {
                let v = it.next().ok_or_else(|| cli_err("--scale needs a value"))?;
                ctx.scale = v
                    .parse::<f64>()
                    .map_err(|e| cli_err(format!("bad --scale: {e}")))?;
            }
            "--repeats" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--repeats needs a value"))?;
                ctx.repeats = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --repeats: {e}")))?;
            }
            "--seed" => {
                let v = it.next().ok_or_else(|| cli_err("--seed needs a value"))?;
                ctx.seed = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --seed: {e}")))?;
            }
            "--seeds" => {
                let v = it.next().ok_or_else(|| cli_err("--seeds needs a value"))?;
                seeds = v
                    .parse::<u64>()
                    .map_err(|e| cli_err(format!("bad --seeds: {e}")))?
                    .max(1);
            }
            name if !name.starts_with('-') => match &experiment {
                None => experiment = Some(name.to_string()),
                Some(cmd) if cmd == "replay-crash" && bundle.is_none() => {
                    bundle = Some(name.to_string());
                }
                Some(_) => return Err(cli_err(format!("unexpected extra argument: {name}"))),
            },
            other => return Err(cli_err(format!("unknown flag: {other}"))),
        }
    }
    // `--shard-worker` is a service mode: no experiment argument, and
    // no driver flags to cross-validate (the dispatcher builds the
    // worker command line itself).
    if shard_worker {
        if experiment.is_some() {
            return Err(cli_err("--shard-worker takes no experiment argument"));
        }
        if !ctx.scale.is_finite() || ctx.scale <= 0.0 || ctx.repeats == 0 {
            return Err(JsmtError::new(
                ErrorKind::Config,
                "shard worker needs a valid --scale/--repeats",
            ));
        }
        return Ok(Cli {
            experiment: "shard-worker".to_string(),
            ctx,
            csv,
            jobs,
            checkpoint: None,
            resume: false,
            checkpoint_every,
            bisect,
            supervise,
            bundle: None,
            seeds,
            workers: None,
            cache_dir,
            shard_worker: true,
        });
    }
    let experiment = experiment.ok_or_else(|| cli_err(usage()))?;
    if experiment == "replay-crash" {
        if bundle.is_none() {
            return Err(cli_err("replay-crash needs a bundle path"));
        }
    } else if experiment != "all" && !EXPERIMENTS.contains(&experiment.as_str()) {
        return Err(cli_err(format!(
            "unknown experiment '{experiment}'\n{}",
            usage()
        )));
    }
    if checkpoint.is_some() && !CHECKPOINTABLE.contains(&experiment.as_str()) {
        return Err(cli_err(format!(
            "--checkpoint/--resume only applies to the pairing-grid experiments ({})",
            CHECKPOINTABLE.join(" ")
        )));
    }
    if supervise.enabled && experiment != "litmus" && !CHECKPOINTABLE.contains(&experiment.as_str())
    {
        return Err(cli_err(format!(
            "--supervised only applies to the pairing-grid experiments ({}) and litmus",
            CHECKPOINTABLE.join(" ")
        )));
    }
    if supervise.enabled && checkpoint.is_some() {
        return Err(cli_err(
            "--supervised and --checkpoint/--resume are mutually exclusive",
        ));
    }
    if workers.is_some() {
        if !CHECKPOINTABLE.contains(&experiment.as_str()) {
            return Err(cli_err(format!(
                "--workers only applies to the pairing-grid experiments ({})",
                CHECKPOINTABLE.join(" ")
            )));
        }
        if supervise.enabled || checkpoint.is_some() {
            return Err(cli_err(
                "--workers is its own execution mode; drop --supervised/--checkpoint/--resume",
            ));
        }
    }
    if !ctx.scale.is_finite() || ctx.scale <= 0.0 {
        return Err(JsmtError::new(
            ErrorKind::Config,
            format!(
                "--scale must be a finite positive number, got {}",
                ctx.scale
            ),
        ));
    }
    if ctx.repeats == 0 {
        return Err(JsmtError::new(
            ErrorKind::Config,
            "--repeats must be at least 1",
        ));
    }
    Ok(Cli {
        experiment,
        ctx,
        csv,
        jobs,
        checkpoint,
        resume,
        checkpoint_every,
        bisect,
        supervise,
        bundle,
        seeds,
        workers,
        cache_dir,
        shard_worker: false,
    })
}

/// The usage string.
pub fn usage() -> String {
    format!(
        "usage: repro [--quick|--full] [--csv] [--scale X] [--repeats N] [--seed S] [--jobs N]\n\
         \x20            [--checkpoint PATH | --resume PATH] [--checkpoint-every N]\n\
         \x20            [--supervised [--retries N] [--deadline-secs N] [--livelock-cycles N]\n\
         \x20             [--cell-checkpoint-every N] [--bundle-dir DIR] [--manifest PATH]\n\
         \x20             [--faults SPEC]] [--backoff-ms N] [--backoff-cap-ms N]\n\
         \x20            [--workers N] [--cache-dir DIR] [--seeds N] <experiment>\n\
         \x20      repro replay-crash <bundle.crash>\n\
         experiments: {} all\n\
         --jobs N fans independent simulations over N worker threads (0/1 = serial;\n\
         default: JSMT_JOBS or all cores). Results are bit-identical at any job count.\n\
         --checkpoint PATH makes the pairing-grid experiments crash-safe: finished cells\n\
         are flushed to PATH every --checkpoint-every N cells (default 8) and a rerun\n\
         resumes from them, emitting bit-identical output. --resume PATH additionally\n\
         requires the file to exist already.\n\
         --supervised runs the pairing-grid experiments under the hardened supervisor:\n\
         a panicking, livelocked or over-deadline cell is isolated, retried --retries\n\
         times (default 1), and on final failure recorded in the --manifest CSV with a\n\
         crash-repro bundle in --bundle-dir; surviving cells render normally (exit 3\n\
         when any cell failed). --faults SPEC (or JSMT_FAULTS) arms the deterministic\n\
         fault-injection plan, e.g. 'panic,component=system,cycle=5000,scope=pair-grid/db+jack'.\n\
         --workers N fans the pairing-grid experiments over N worker *processes*: a\n\
         worker dying (kill, abort, OOM) loses at most its in-flight cell, which is\n\
         reassigned with deterministic seeded backoff (--backoff-ms/--backoff-cap-ms,\n\
         shared with --supervised retries); exhausted cells degrade to partial results\n\
         plus the --manifest CSV and exit 3. Output is bit-identical to a serial run\n\
         at any worker count.\n\
         --cache-dir DIR (or JSMT_CACHE) attaches the persistent result cache to the\n\
         pairing-grid experiments: finished cells are stored content-addressed and\n\
         sealed; a rerun verifies every entry, quarantines corrupt ones (healing by\n\
         recompute), and simulates only what is missing.\n\
         replay-crash <bundle.crash> re-executes a recorded failure deterministically\n\
         and exits 0 when it reproduces.\n\
         litmus [--seeds N] sweeps the sync-bound litmus shapes (message passing,\n\
         store buffer, lock handoff, barrier convoy, wait/notify ping-pong) over N\n\
         seeds each (default 64) and checks every observed interleaving against the\n\
         shape's allowed-outcome table; --supervised turns a forbidden outcome into\n\
         an isolated, bundled, replayable cell failure.\n\
         bisect-divergence [--a V] [--b V] [--bench NAME] [--horizon N] [--stride N]\n\
         replays two variants (fastfwd | no-fastfwd | trace-tier | no-trace-tier | seed=N)\n\
         in lockstep and reports\n\
         the first cycle at which their machine states diverge.",
        EXPERIMENTS.join(" ")
    )
}

/// Run one experiment serially and return its rendered output.
pub fn run_experiment(name: &str, ctx: &ExperimentCtx) -> String {
    run_experiment_fmt(name, ctx, false)
}

/// Run one experiment serially, rendering either the paper-style
/// artifact or CSV.
pub fn run_experiment_fmt(name: &str, ctx: &ExperimentCtx, csv: bool) -> String {
    run_experiment_on(&Engine::serial(), name, ctx, csv)
}

/// Run one experiment on `engine`, rendering either the paper-style
/// artifact or CSV. The rendered bytes are bit-identical for every
/// [`Parallelism`] setting (enforced by `tests/engine_determinism.rs`).
pub fn run_experiment_on(engine: &Engine, name: &str, ctx: &ExperimentCtx, csv: bool) -> String {
    match name {
        "table2" => {
            let pts = exp::characterize_mt_on(engine, &[2, 8], &[true], ctx);
            if csv {
                exp::csv_mt(&pts)
            } else {
                exp::render_table2(&pts)
            }
        }
        "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" => {
            let pts = exp::characterize_mt_on(engine, &[2], &[false, true], ctx);
            if csv {
                exp::csv_mt(&pts)
            } else {
                render_mt_figure(name, &pts)
            }
        }
        "fig8" | "fig9" | "pairing-analysis" | "pairing-suite" | "pairing-prediction" => {
            let grid = exp::pair_matrix_on(engine, ctx);
            render_grid_experiment(name, &grid, ctx, csv)
        }
        "bisect-divergence" => run_bisect(&BisectOpts::default(), ctx),
        "fig10" => {
            let pts = exp::fig10_single_thread_impact_on(engine, ctx);
            if csv {
                exp::csv_single(&pts)
            } else {
                exp::render_fig10(&pts)
            }
        }
        "fig11" => {
            let pts = exp::fig11_self_pairs_on(engine, ctx);
            if csv {
                let mut c = jsmt_report::Csv::new(vec!["benchmark".into(), "combined".into()]);
                for (id, v) in &pts {
                    c.row(vec![id.name().into(), format!("{v:.4}")]);
                }
                c.render()
            } else {
                exp::render_fig11(&pts)
            }
        }
        "fig12" => {
            let pts = exp::fig12_ipc_vs_threads_on(engine, &[1, 2, 4, 8, 16], ctx);
            if csv {
                exp::csv_threads(&pts)
            } else {
                exp::render_fig12(&pts)
            }
        }
        "ablation-partition" => {
            let pts = exp::ablation_partition_on(engine, ctx);
            if csv {
                exp::csv_partition(&pts)
            } else {
                exp::render_ablation_partition(&pts)
            }
        }
        "ablation-l1" => {
            let pts = exp::ablation_l1_on(engine, &[8, 16, 32, 64], ctx);
            if csv {
                exp::csv_l1(&pts)
            } else {
                exp::render_ablation_l1(&pts)
            }
        }
        "ablation-prefetch" => {
            let pts = exp::ablation_prefetch_on(engine, ctx);
            if csv {
                exp::csv_prefetch(&pts)
            } else {
                exp::render_ablation_prefetch(&pts)
            }
        }
        "ablation-jit" => {
            let pts = exp::ablation_jit_on(engine, ctx);
            if csv {
                exp::csv_jit(&pts)
            } else {
                exp::render_ablation_jit(&pts)
            }
        }
        "litmus" => run_litmus(engine, ctx, DEFAULT_LITMUS_SEEDS, csv),
        other => panic!("unknown experiment {other} (validated at parse time)"),
    }
}

/// Run the litmus interleaving sweep: every shape over `seeds` seeds,
/// checked against the allowed-outcome tables. Bit-identical at any job
/// count, exec-tier setting, and fast-forward setting.
pub fn run_litmus(engine: &Engine, ctx: &ExperimentCtx, seeds: u64, csv: bool) -> String {
    let sweeps = exp::litmus_all_on(engine, seeds, ctx);
    if csv {
        exp::csv_litmus(&sweeps)
    } else {
        exp::render_litmus(&sweeps)
    }
}

/// Run the litmus sweep under the hardened supervisor: a cell whose
/// outcome leaves its allowed table panics, is isolated, and (when
/// `cfg.bundle_dir` is set) leaves a replayable crash bundle; surviving
/// cells render normally. Mirrors [`run_experiment_supervised`] for the
/// pairing grid.
pub fn run_litmus_supervised(
    engine: &Engine,
    ctx: &ExperimentCtx,
    seeds: u64,
    csv: bool,
    cfg: &exp::SupervisorCfg,
) -> SupervisedOutcome {
    let sl = exp::litmus_supervised(engine, seeds, ctx, cfg);
    let manifest = exp::manifest_csv(&sl.failures);
    let output = if sl.failures.is_empty() && !csv {
        exp::render_litmus(&sl.sweeps)
    } else {
        // Partial (or machine-readable) results: surviving rows only,
        // byte-identical to the corresponding rows of a clean run.
        exp::csv_litmus(&sl.sweeps)
    };
    SupervisedOutcome {
        output,
        manifest,
        failures: sl.failures,
    }
}

/// Render one of the pairing-grid experiments from a measured grid.
pub fn render_grid_experiment(
    name: &str,
    grid: &exp::PairGrid,
    ctx: &ExperimentCtx,
    csv: bool,
) -> String {
    if csv {
        return exp::csv_grid(grid);
    }
    match name {
        "fig8" => exp::render_fig8(grid),
        "fig9" => exp::render_fig9(grid),
        "pairing-analysis" => exp::render_pairing_analysis(grid),
        "pairing-prediction" => exp::render_pairing_prediction(grid, ctx),
        _ => format!(
            "{}\n{}\n{}\n{}",
            exp::render_fig8(grid),
            exp::render_fig9(grid),
            exp::render_pairing_analysis(grid),
            exp::render_pairing_prediction(grid, ctx)
        ),
    }
}

/// Run a pairing-grid experiment with crash-safe progress: finished
/// cells and the solo-baseline cache are flushed to `path` every
/// `every` cells, and an existing file is resumed. The output is
/// bit-identical to an uninterrupted [`run_experiment_on`].
///
/// # Errors
///
/// Returns a typed [`JsmtError`] when the checkpoint file is corrupt,
/// was taken with different experiment parameters, or cannot be
/// written.
pub fn run_experiment_ckpt(
    engine: &Engine,
    name: &str,
    ctx: &ExperimentCtx,
    csv: bool,
    path: &Path,
    every: usize,
) -> Result<String, JsmtError> {
    let grid = exp::pair_matrix_ckpt(engine, ctx, path, every, None)
        .map_err(|e| JsmtError::from(e).context(format!("checkpoint '{}'", path.display())))?
        .ok_or_else(|| {
            JsmtError::new(
                ErrorKind::Experiment,
                "checkpointed run stopped with grid cells still pending",
            )
        })?;
    Ok(render_grid_experiment(name, &grid, ctx, csv))
}

/// Outcome of a supervised pairing-grid run.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// Rendered experiment output: the normal rendering when every cell
    /// survived, otherwise the partial-results CSV (healthy rows only,
    /// byte-identical to the corresponding rows of a clean run).
    pub output: String,
    /// Failure manifest CSV (header only when the run was clean).
    pub manifest: String,
    /// Per-cell failure records, in grid order.
    pub failures: Vec<exp::CellFailure>,
}

/// Run a pairing-grid experiment under the hardened supervisor: cells
/// that panic, livelock, or overrun the deadline are isolated, retried
/// per `cfg`, and reported in the manifest instead of aborting the
/// grid. A clean supervised run renders byte-identically to
/// [`run_experiment_on`].
pub fn run_experiment_supervised(
    engine: &Engine,
    name: &str,
    ctx: &ExperimentCtx,
    csv: bool,
    cfg: &exp::SupervisorCfg,
) -> SupervisedOutcome {
    let sg = exp::pair_matrix_supervised(engine, ctx, cfg);
    let manifest = sg.manifest_csv();
    if sg.is_complete() {
        let grid = sg.into_grid();
        SupervisedOutcome {
            output: render_grid_experiment(name, &grid, ctx, csv),
            manifest,
            failures: Vec::new(),
        }
    } else {
        // The paper-style renderings need every cell; degrade to the
        // machine-readable partial CSV so surviving work is not lost.
        SupervisedOutcome {
            output: sg.csv(),
            manifest,
            failures: sg.failures,
        }
    }
}

/// Resolve the persistent result-cache directory: the `--cache-dir`
/// flag wins over the `JSMT_CACHE` environment variable; neither means
/// no cache.
///
/// # Errors
///
/// Returns a typed [`JsmtError`] when the directory cannot be created.
pub fn resolve_cache(
    flag: Option<&str>,
) -> Result<Option<std::sync::Arc<jsmt_cache::Cache>>, JsmtError> {
    let dir = flag
        .map(str::to_string)
        .or_else(|| std::env::var("JSMT_CACHE").ok().filter(|s| !s.is_empty()));
    match dir {
        Some(dir) => {
            let cache = jsmt_cache::Cache::open(&dir)
                .map_err(|e| JsmtError::from(e).context(format!("opening result cache '{dir}'")))?;
            Ok(Some(std::sync::Arc::new(cache)))
        }
        None => Ok(None),
    }
}

/// Build the shard-dispatch policy for this invocation, including the
/// worker command line (this binary in `--shard-worker` mode with the
/// same context, fault plan, and cache directory).
///
/// # Errors
///
/// Returns a typed [`JsmtError`] when the current executable path
/// cannot be determined.
pub fn shard_cfg(
    cli: &Cli,
    cache: Option<std::sync::Arc<jsmt_cache::Cache>>,
) -> Result<exp::ShardCfg, JsmtError> {
    let exe = std::env::current_exe()
        .map_err(|e| JsmtError::from(e).context("locating the worker binary"))?;
    let mut argv = vec![
        exe.display().to_string(),
        "--shard-worker".to_string(),
        "--scale".to_string(),
        cli.ctx.scale.to_string(),
        "--repeats".to_string(),
        cli.ctx.repeats.to_string(),
        "--seed".to_string(),
        cli.ctx.seed.to_string(),
        "--livelock-cycles".to_string(),
        cli.supervise.livelock_cycles.to_string(),
    ];
    // Workers arm the same fault plan as the parent (flag beats env,
    // like the parent's own resolution) and write through the same
    // cache directory.
    if let Some(spec) = cli
        .supervise
        .faults
        .clone()
        .or_else(|| std::env::var("JSMT_FAULTS").ok().filter(|s| !s.is_empty()))
    {
        argv.push("--faults".to_string());
        argv.push(spec);
    }
    if let Some(cache) = &cache {
        argv.push("--cache-dir".to_string());
        argv.push(cache.dir().display().to_string());
    }
    Ok(exp::ShardCfg {
        workers: cli.workers.unwrap_or(2),
        retries: cli.supervise.retries,
        deadline: (cli.supervise.deadline_secs > 0)
            .then(|| std::time::Duration::from_secs(cli.supervise.deadline_secs)),
        backoff_base: std::time::Duration::from_millis(cli.supervise.backoff_ms),
        backoff_cap: std::time::Duration::from_millis(
            cli.supervise.backoff_cap_ms.max(cli.supervise.backoff_ms),
        ),
        worker_argv: argv,
        cache,
    })
}

/// Run a pairing-grid experiment over crash-tolerant worker processes
/// (`--workers N`). Same outcome contract as
/// [`run_experiment_supervised`]: a fully-finished grid renders
/// byte-identically to a serial run; a degraded one returns the
/// partial-results CSV plus the failure manifest.
///
/// # Errors
///
/// Returns a typed [`JsmtError`] only for dispatcher-level faults (no
/// worker could be spawned, a worker broke the protocol); cell-level
/// failures degrade instead.
pub fn run_experiment_sharded(
    name: &str,
    ctx: &ExperimentCtx,
    csv: bool,
    cfg: &exp::ShardCfg,
) -> Result<SupervisedOutcome, JsmtError> {
    let sg = exp::pair_matrix_sharded(ctx, cfg)?;
    let manifest = sg.manifest_csv();
    if sg.is_complete() {
        let grid = sg.into_grid();
        Ok(SupervisedOutcome {
            output: render_grid_experiment(name, &grid, ctx, csv),
            manifest,
            failures: Vec::new(),
        })
    } else {
        Ok(SupervisedOutcome {
            output: sg.csv(),
            manifest,
            failures: sg.failures,
        })
    }
}

/// Replay a crash-repro bundle and render a human-readable report.
/// Returns the report text and whether the recorded failure reproduced.
///
/// # Errors
///
/// Returns a typed [`JsmtError`] when the bundle cannot be read,
/// decoded, or describes a cell this binary cannot reconstruct.
pub fn run_replay_crash(path: &Path) -> Result<(String, bool), JsmtError> {
    let bundle = exp::CrashBundle::load(path)?;
    let mut out = bundle.summary();
    let report = bundle.replay()?;
    match &report.observed {
        Some(f) => {
            out.push_str(&format!("replay observed: {f}\n"));
        }
        None => out.push_str("replay observed: cell completed without failing\n"),
    }
    out.push_str(if report.reproduced {
        "verdict: REPRODUCED\n"
    } else {
        "verdict: NOT REPRODUCED\n"
    });
    Ok((out, report.reproduced))
}

/// Run the differential-replay bisection with the paper machine as the
/// base configuration.
pub fn run_bisect(opts: &BisectOpts, ctx: &ExperimentCtx) -> String {
    let base = SystemConfig::p4(true).with_seed(ctx.seed);
    match bisect_divergence(
        opts.bench,
        ctx.scale,
        base,
        opts.a,
        opts.b,
        opts.horizon,
        opts.stride,
    ) {
        Ok(outcome) => render_bisect(&outcome),
        Err(e) => format!("bisect failed: {e}\n"),
    }
}

/// Render one of the shared-data multithreaded figures from
/// already-measured points (used by `all` to avoid re-running).
pub fn render_mt_figure(name: &str, pts: &[exp::MtPoint]) -> String {
    match name {
        "fig1" => exp::render_fig1(pts),
        "fig2" => exp::render_fig2(pts),
        "fig3" => exp::render_fig_mpki(pts, MpkiKind::TraceCache),
        "fig4" => exp::render_fig_mpki(pts, MpkiKind::L1d),
        "fig5" => exp::render_fig_mpki(pts, MpkiKind::L2),
        "fig6" => exp::render_fig_mpki(pts, MpkiKind::Itlb),
        "fig7" => exp::render_fig_mpki(pts, MpkiKind::BtbRatio),
        other => panic!("not a shared multithreaded figure: {other}"),
    }
}

/// Run every experiment serially, sharing measurement passes where the
/// paper's figures share data.
pub fn run_all(ctx: &ExperimentCtx) -> String {
    run_all_on(&Engine::serial(), ctx)
}

/// Run every experiment on `engine`, sharing measurement passes where
/// the paper's figures share data (and solo baselines across the
/// pairing grid and Figure 11 via the engine's cache).
pub fn run_all_on(engine: &Engine, ctx: &ExperimentCtx) -> String {
    let mut out = String::new();
    let mut emit = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };

    // Table 2 (2 and 8 threads, HT on).
    emit(run_experiment_on(engine, "table2", ctx, false));
    // Figures 1-7 share one characterization pass.
    let pts = exp::characterize_mt_on(engine, &[2], &[false, true], ctx);
    for fig in ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"] {
        emit(render_mt_figure(fig, &pts));
    }
    // Figures 8-9 + offline analysis share the pairing grid.
    let grid = exp::pair_matrix_on(engine, ctx);
    emit(exp::render_fig8(&grid));
    emit(exp::render_fig9(&grid));
    emit(exp::render_pairing_analysis(&grid));
    emit(exp::render_pairing_prediction(&grid, ctx));
    // The rest.
    emit(run_experiment_on(engine, "fig10", ctx, false));
    emit(run_experiment_on(engine, "fig11", ctx, false));
    emit(run_experiment_on(engine, "fig12", ctx, false));
    emit(run_experiment_on(engine, "ablation-partition", ctx, false));
    emit(run_experiment_on(engine, "ablation-l1", ctx, false));
    emit(run_experiment_on(engine, "ablation-prefetch", ctx, false));
    emit(run_experiment_on(engine, "ablation-jit", ctx, false));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_experiment_and_flags() {
        let cli = parse_args(&s(&["--quick", "fig3"])).unwrap();
        assert_eq!(cli.experiment, "fig3");
        assert_eq!(cli.ctx, ExperimentCtx::quick());

        let cli = parse_args(&s(&["--scale", "0.7", "--repeats", "9", "table2"])).unwrap();
        assert_eq!(cli.ctx.scale, 0.7);
        assert_eq!(cli.ctx.repeats, 9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&s(&["fig99"])).is_err());
        assert!(parse_args(&s(&["--scale"])).is_err());
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["--bogus", "fig1"])).is_err());
        assert!(parse_args(&s(&["fig1", "fig2"])).is_err());
    }

    #[test]
    fn jobs_flag_maps_to_parallelism() {
        let cli = parse_args(&s(&["--jobs", "4", "fig1"])).unwrap();
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.parallelism(), Parallelism::Threads(4));
        // 0 and 1 both mean serial.
        for v in ["0", "1"] {
            let cli = parse_args(&s(&["--jobs", v, "fig1"])).unwrap();
            assert_eq!(cli.parallelism(), Parallelism::Serial);
        }
        assert!(parse_args(&s(&["--jobs", "x", "fig1"])).is_err());
        assert!(parse_args(&s(&["--jobs"])).is_err());
    }

    #[test]
    fn all_is_accepted() {
        let cli = parse_args(&s(&["all"])).unwrap();
        assert_eq!(cli.experiment, "all");
    }

    #[test]
    fn checkpoint_flags_parse() {
        let cli = parse_args(&s(&["--checkpoint", "grid.ck", "fig8"])).unwrap();
        assert_eq!(cli.checkpoint.as_deref(), Some("grid.ck"));
        assert!(!cli.resume);
        assert_eq!(cli.checkpoint_every, 8);

        let cli = parse_args(&s(&[
            "--resume",
            "grid.ck",
            "--checkpoint-every",
            "3",
            "fig9",
        ]))
        .unwrap();
        assert_eq!(cli.checkpoint.as_deref(), Some("grid.ck"));
        assert!(cli.resume);
        assert_eq!(cli.checkpoint_every, 3);

        // Checkpointing is grid-only.
        assert!(parse_args(&s(&["--checkpoint", "x.ck", "fig1"])).is_err());
        assert!(parse_args(&s(&["--checkpoint"])).is_err());
    }

    #[test]
    fn bisect_flags_parse() {
        let cli = parse_args(&s(&["bisect-divergence"])).unwrap();
        assert_eq!(cli.bisect, BisectOpts::default());

        let cli = parse_args(&s(&[
            "--a",
            "seed=3",
            "--b",
            "seed=4",
            "--bench",
            "jess",
            "--horizon",
            "9000",
            "--stride",
            "100",
            "bisect-divergence",
        ]))
        .unwrap();
        assert_eq!(cli.bisect.a, Variant::Seed(3));
        assert_eq!(cli.bisect.b, Variant::Seed(4));
        assert_eq!(cli.bisect.bench, BenchmarkId::Jess);
        assert_eq!(cli.bisect.horizon, 9000);
        assert_eq!(cli.bisect.stride, 100);

        assert!(parse_args(&s(&["--a", "bogus", "bisect-divergence"])).is_err());
        assert!(parse_args(&s(&["--bench", "nosuch", "bisect-divergence"])).is_err());
    }

    #[test]
    fn every_experiment_name_is_routable() {
        for e in EXPERIMENTS {
            assert!(parse_args(&s(&[e])).is_ok(), "{e}");
        }
    }

    #[test]
    fn supervised_flags_parse() {
        let cli = parse_args(&s(&[
            "--supervised",
            "--retries",
            "2",
            "--deadline-secs",
            "30",
            "--livelock-cycles",
            "500000",
            "--cell-checkpoint-every",
            "10000",
            "--bundle-dir",
            "crashes",
            "--manifest",
            "failures.csv",
            "--faults",
            "panic,component=gc,cycle=100",
            "fig8",
        ]))
        .unwrap();
        assert!(cli.supervise.enabled);
        assert_eq!(cli.supervise.retries, 2);
        assert_eq!(cli.supervise.deadline_secs, 30);
        assert_eq!(cli.supervise.livelock_cycles, 500_000);
        assert_eq!(cli.supervise.cell_checkpoint_every, 10_000);
        assert_eq!(cli.supervise.bundle_dir.as_deref(), Some("crashes"));
        assert_eq!(cli.supervise.manifest.as_deref(), Some("failures.csv"));
        assert_eq!(
            cli.supervise.faults.as_deref(),
            Some("panic,component=gc,cycle=100")
        );
        let cfg = cli.supervise.cfg();
        assert_eq!(cfg.retries, 2);
        assert_eq!(cfg.deadline, Some(std::time::Duration::from_secs(30)));

        // Supervision is grid-only and incompatible with --checkpoint.
        assert!(parse_args(&s(&["--supervised", "fig1"])).is_err());
        assert!(parse_args(&s(&["--supervised", "--checkpoint", "x.ck", "fig8"])).is_err());
    }

    #[test]
    fn shard_and_cache_flags_parse() {
        let cli = parse_args(&s(&[
            "--workers",
            "4",
            "--cache-dir",
            "cells",
            "--retries",
            "2",
            "--backoff-ms",
            "10",
            "--backoff-cap-ms",
            "80",
            "fig8",
        ]))
        .unwrap();
        assert_eq!(cli.workers, Some(4));
        assert_eq!(cli.cache_dir.as_deref(), Some("cells"));
        assert!(!cli.shard_worker);
        assert_eq!(cli.supervise.backoff_ms, 10);
        assert_eq!(cli.supervise.backoff_cap_ms, 80);
        let scfg = shard_cfg(&cli, None).unwrap();
        assert_eq!(scfg.workers, 4);
        assert_eq!(scfg.retries, 2);
        assert_eq!(scfg.backoff_base, std::time::Duration::from_millis(10));
        assert!(scfg.worker_argv.contains(&"--shard-worker".to_string()));
        assert!(scfg.worker_argv.contains(&"--seed".to_string()));

        // Zero workers clamps to one; garbage is rejected.
        assert_eq!(
            parse_args(&s(&["--workers", "0", "fig8"])).unwrap().workers,
            Some(1)
        );
        assert!(parse_args(&s(&["--workers", "x", "fig8"])).is_err());
        // Shard dispatch is grid-only and its own execution mode.
        assert!(parse_args(&s(&["--workers", "2", "fig1"])).is_err());
        assert!(parse_args(&s(&["--workers", "2", "--supervised", "fig8"])).is_err());
        assert!(parse_args(&s(&["--workers", "2", "--checkpoint", "x.ck", "fig8"])).is_err());

        // The supervisor picks up the backoff knobs too.
        let cfg = cli.supervise.cfg();
        assert_eq!(cfg.backoff_base, std::time::Duration::from_millis(10));
        assert_eq!(cfg.backoff_cap, std::time::Duration::from_millis(80));
    }

    #[test]
    fn shard_worker_mode_parses_standalone() {
        let cli = parse_args(&s(&[
            "--shard-worker",
            "--scale",
            "0.05",
            "--repeats",
            "3",
            "--seed",
            "7",
            "--cache-dir",
            "cells",
        ]))
        .unwrap();
        assert!(cli.shard_worker);
        assert_eq!(cli.ctx.scale, 0.05);
        assert_eq!(cli.ctx.seed, 7);
        assert_eq!(cli.cache_dir.as_deref(), Some("cells"));
        // No experiment argument is accepted in worker mode.
        assert!(parse_args(&s(&["--shard-worker", "fig8"])).is_err());
        assert!(parse_args(&s(&["--shard-worker", "--scale", "0"])).is_err());
    }

    #[test]
    fn litmus_flags_parse() {
        let cli = parse_args(&s(&["litmus"])).unwrap();
        assert_eq!(cli.experiment, "litmus");
        assert_eq!(cli.seeds, DEFAULT_LITMUS_SEEDS);

        let cli = parse_args(&s(&["--seeds", "12", "litmus"])).unwrap();
        assert_eq!(cli.seeds, 12);
        // Zero is clamped to one, garbage rejected.
        assert_eq!(
            parse_args(&s(&["--seeds", "0", "litmus"])).unwrap().seeds,
            1
        );
        assert!(parse_args(&s(&["--seeds", "x", "litmus"])).is_err());
        assert!(parse_args(&s(&["--seeds"])).is_err());

        // Supervision extends to litmus; cell checkpointing does not.
        assert!(parse_args(&s(&["--supervised", "litmus"])).is_ok());
        assert!(parse_args(&s(&["--checkpoint", "x.ck", "litmus"])).is_err());
    }

    #[test]
    fn replay_crash_takes_a_bundle_path() {
        let cli = parse_args(&s(&["replay-crash", "crashes/pair-grid-db+jack.crash"])).unwrap();
        assert_eq!(cli.experiment, "replay-crash");
        assert_eq!(
            cli.bundle.as_deref(),
            Some("crashes/pair-grid-db+jack.crash")
        );
        // The bundle path is mandatory, and only one is accepted.
        assert!(parse_args(&s(&["replay-crash"])).is_err());
        assert!(parse_args(&s(&["replay-crash", "a.crash", "b.crash"])).is_err());
    }

    #[test]
    fn out_of_range_parameters_are_config_errors() {
        for bad in [
            &["--scale", "0", "fig1"][..],
            &["--scale", "-1.5", "fig1"],
            &["--scale", "inf", "fig1"],
            &["--scale", "NaN", "fig1"],
            &["--repeats", "0", "fig1"],
        ] {
            let err = parse_args(&s(bad)).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Config, "{bad:?}");
        }
        // Unknown flags stay CLI errors.
        let err = parse_args(&s(&["--bogus", "fig1"])).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Cli);
    }
}
