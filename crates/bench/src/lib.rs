//! # jsmt-bench
//!
//! The reproduction harness: the `repro` binary regenerates every table
//! and figure of the paper's evaluation, and the Criterion benches under
//! `benches/` measure the simulator's own component throughput plus each
//! experiment's cost.
//!
//! ```text
//! repro [--quick|--full] [--scale X] [--repeats N] <experiment>
//! experiments: table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!              fig10 fig11 fig12 pairing-analysis ablation-partition
//!              ablation-l1 all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;

use jsmt_core::bisect::{bisect_divergence, render_bisect, Variant};
use jsmt_core::experiments::{self as exp, Engine, ExperimentCtx, MpkiKind, Parallelism};
use jsmt_core::SystemConfig;
use jsmt_workloads::BenchmarkId;

/// All experiment names, in paper order. `pairing-suite` renders
/// Figures 8, 9 and the offline analysis from a single grid pass;
/// `bisect-divergence` is the differential-replay debugging tool.
pub const EXPERIMENTS: [&str; 21] = [
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "pairing-analysis",
    "pairing-suite",
    "pairing-prediction",
    "ablation-partition",
    "ablation-l1",
    "ablation-prefetch",
    "ablation-jit",
    "bisect-divergence",
];

/// The experiments that support `--checkpoint` (cell-level crash-safe
/// progress): everything driven by the pairing grid.
pub const CHECKPOINTABLE: [&str; 5] = [
    "fig8",
    "fig9",
    "pairing-analysis",
    "pairing-suite",
    "pairing-prediction",
];

/// Parameters of a `bisect-divergence` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectOpts {
    /// Variant A (default `fastfwd`).
    pub a: Variant,
    /// Variant B (default `no-fastfwd`).
    pub b: Variant,
    /// Benchmark to replay (default compress).
    pub bench: BenchmarkId,
    /// Cycles to compare before concluding "no divergence".
    pub horizon: u64,
    /// Checkpoint-compare spacing during the lockstep scan.
    pub stride: u64,
}

impl Default for BisectOpts {
    fn default() -> Self {
        BisectOpts {
            a: Variant::FastForward,
            b: Variant::NoFastForward,
            bench: BenchmarkId::Compress,
            horizon: 200_000,
            stride: 20_000,
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Experiment name (one of [`EXPERIMENTS`] or `all`).
    pub experiment: String,
    /// Experiment parameters.
    pub ctx: ExperimentCtx,
    /// Emit machine-readable CSV instead of the paper-style rendering.
    pub csv: bool,
    /// Worker count from `--jobs N` (`None` = resolve from `JSMT_JOBS`
    /// or the host core count at run time).
    pub jobs: Option<usize>,
    /// Checkpoint file from `--checkpoint PATH` / `--resume PATH`
    /// (resumed if it exists, created otherwise).
    pub checkpoint: Option<String>,
    /// `--resume` was used: the checkpoint file must already exist.
    pub resume: bool,
    /// Flush the checkpoint every N finished grid cells
    /// (`--checkpoint-every N`, default 8).
    pub checkpoint_every: usize,
    /// `bisect-divergence` parameters.
    pub bisect: BisectOpts,
}

impl Cli {
    /// Resolve the parallelism this invocation asked for.
    pub fn parallelism(&self) -> Parallelism {
        match self.jobs {
            Some(0) | Some(1) => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::from_env(),
        }
    }
}

/// Parse arguments (without the program name).
///
/// # Errors
///
/// Returns a usage string on unknown flags or experiments.
pub fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut ctx = ExperimentCtx::default();
    let mut experiment: Option<String> = None;
    let mut csv = false;
    let mut jobs = None;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;
    let mut checkpoint_every = 8usize;
    let mut bisect = BisectOpts::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => ctx = ExperimentCtx::quick(),
            "--full" => ctx = ExperimentCtx::full(),
            "--csv" => csv = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}"))?);
            }
            "--checkpoint" => {
                checkpoint = Some(it.next().ok_or("--checkpoint needs a path")?.clone());
            }
            "--resume" => {
                checkpoint = Some(it.next().ok_or("--resume needs a path")?.clone());
                resume = true;
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs a value")?;
                checkpoint_every = v
                    .parse::<usize>()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?
                    .max(1);
            }
            "--a" | "--b" => {
                let flag = arg.as_str();
                let v = it.next().ok_or_else(|| format!("{flag} needs a variant"))?;
                let variant = Variant::parse(v)
                    .ok_or_else(|| format!("bad {flag} '{v}' (fastfwd | no-fastfwd | seed=N)"))?;
                if flag == "--a" {
                    bisect.a = variant;
                } else {
                    bisect.b = variant;
                }
            }
            "--bench" => {
                let v = it.next().ok_or("--bench needs a benchmark name")?;
                bisect.bench =
                    BenchmarkId::parse(v).ok_or_else(|| format!("unknown benchmark '{v}'"))?;
            }
            "--horizon" => {
                let v = it.next().ok_or("--horizon needs a value")?;
                bisect.horizon = v
                    .parse::<u64>()
                    .map_err(|e| format!("bad --horizon: {e}"))?;
            }
            "--stride" => {
                let v = it.next().ok_or("--stride needs a value")?;
                bisect.stride = v
                    .parse::<u64>()
                    .map_err(|e| format!("bad --stride: {e}"))?
                    .max(1);
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                ctx.scale = v.parse::<f64>().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--repeats" => {
                let v = it.next().ok_or("--repeats needs a value")?;
                ctx.repeats = v
                    .parse::<u64>()
                    .map_err(|e| format!("bad --repeats: {e}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                ctx.seed = v.parse::<u64>().map_err(|e| format!("bad --seed: {e}"))?;
            }
            name if !name.starts_with('-') => {
                if experiment.is_some() {
                    return Err(format!("unexpected extra argument: {name}"));
                }
                experiment = Some(name.to_string());
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    let experiment = experiment.ok_or_else(usage)?;
    if experiment != "all" && !EXPERIMENTS.contains(&experiment.as_str()) {
        return Err(format!("unknown experiment '{experiment}'\n{}", usage()));
    }
    if checkpoint.is_some() && !CHECKPOINTABLE.contains(&experiment.as_str()) {
        return Err(format!(
            "--checkpoint/--resume only applies to the pairing-grid experiments ({})",
            CHECKPOINTABLE.join(" ")
        ));
    }
    Ok(Cli {
        experiment,
        ctx,
        csv,
        jobs,
        checkpoint,
        resume,
        checkpoint_every,
        bisect,
    })
}

/// The usage string.
pub fn usage() -> String {
    format!(
        "usage: repro [--quick|--full] [--csv] [--scale X] [--repeats N] [--seed S] [--jobs N]\n\
         \x20            [--checkpoint PATH | --resume PATH] [--checkpoint-every N] <experiment>\n\
         experiments: {} all\n\
         --jobs N fans independent simulations over N worker threads (0/1 = serial;\n\
         default: JSMT_JOBS or all cores). Results are bit-identical at any job count.\n\
         --checkpoint PATH makes the pairing-grid experiments crash-safe: finished cells\n\
         are flushed to PATH every --checkpoint-every N cells (default 8) and a rerun\n\
         resumes from them, emitting bit-identical output. --resume PATH additionally\n\
         requires the file to exist already.\n\
         bisect-divergence [--a V] [--b V] [--bench NAME] [--horizon N] [--stride N]\n\
         replays two variants (fastfwd | no-fastfwd | seed=N) in lockstep and reports\n\
         the first cycle at which their machine states diverge.",
        EXPERIMENTS.join(" ")
    )
}

/// Run one experiment serially and return its rendered output.
pub fn run_experiment(name: &str, ctx: &ExperimentCtx) -> String {
    run_experiment_fmt(name, ctx, false)
}

/// Run one experiment serially, rendering either the paper-style
/// artifact or CSV.
pub fn run_experiment_fmt(name: &str, ctx: &ExperimentCtx, csv: bool) -> String {
    run_experiment_on(&Engine::serial(), name, ctx, csv)
}

/// Run one experiment on `engine`, rendering either the paper-style
/// artifact or CSV. The rendered bytes are bit-identical for every
/// [`Parallelism`] setting (enforced by `tests/engine_determinism.rs`).
pub fn run_experiment_on(engine: &Engine, name: &str, ctx: &ExperimentCtx, csv: bool) -> String {
    match name {
        "table2" => {
            let pts = exp::characterize_mt_on(engine, &[2, 8], &[true], ctx);
            if csv {
                exp::csv_mt(&pts)
            } else {
                exp::render_table2(&pts)
            }
        }
        "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" => {
            let pts = exp::characterize_mt_on(engine, &[2], &[false, true], ctx);
            if csv {
                exp::csv_mt(&pts)
            } else {
                render_mt_figure(name, &pts)
            }
        }
        "fig8" | "fig9" | "pairing-analysis" | "pairing-suite" | "pairing-prediction" => {
            let grid = exp::pair_matrix_on(engine, ctx);
            render_grid_experiment(name, &grid, ctx, csv)
        }
        "bisect-divergence" => run_bisect(&BisectOpts::default(), ctx),
        "fig10" => {
            let pts = exp::fig10_single_thread_impact_on(engine, ctx);
            if csv {
                exp::csv_single(&pts)
            } else {
                exp::render_fig10(&pts)
            }
        }
        "fig11" => {
            let pts = exp::fig11_self_pairs_on(engine, ctx);
            if csv {
                let mut c = jsmt_report::Csv::new(vec!["benchmark".into(), "combined".into()]);
                for (id, v) in &pts {
                    c.row(vec![id.name().into(), format!("{v:.4}")]);
                }
                c.render()
            } else {
                exp::render_fig11(&pts)
            }
        }
        "fig12" => {
            let pts = exp::fig12_ipc_vs_threads_on(engine, &[1, 2, 4, 8, 16], ctx);
            if csv {
                exp::csv_threads(&pts)
            } else {
                exp::render_fig12(&pts)
            }
        }
        "ablation-partition" => {
            let pts = exp::ablation_partition_on(engine, ctx);
            if csv {
                exp::csv_partition(&pts)
            } else {
                exp::render_ablation_partition(&pts)
            }
        }
        "ablation-l1" => {
            let pts = exp::ablation_l1_on(engine, &[8, 16, 32, 64], ctx);
            if csv {
                exp::csv_l1(&pts)
            } else {
                exp::render_ablation_l1(&pts)
            }
        }
        "ablation-prefetch" => {
            let pts = exp::ablation_prefetch_on(engine, ctx);
            if csv {
                exp::csv_prefetch(&pts)
            } else {
                exp::render_ablation_prefetch(&pts)
            }
        }
        "ablation-jit" => {
            let pts = exp::ablation_jit_on(engine, ctx);
            if csv {
                exp::csv_jit(&pts)
            } else {
                exp::render_ablation_jit(&pts)
            }
        }
        other => panic!("unknown experiment {other} (validated at parse time)"),
    }
}

/// Render one of the pairing-grid experiments from a measured grid.
pub fn render_grid_experiment(
    name: &str,
    grid: &exp::PairGrid,
    ctx: &ExperimentCtx,
    csv: bool,
) -> String {
    if csv {
        return exp::csv_grid(grid);
    }
    match name {
        "fig8" => exp::render_fig8(grid),
        "fig9" => exp::render_fig9(grid),
        "pairing-analysis" => exp::render_pairing_analysis(grid),
        "pairing-prediction" => exp::render_pairing_prediction(grid, ctx),
        _ => format!(
            "{}\n{}\n{}\n{}",
            exp::render_fig8(grid),
            exp::render_fig9(grid),
            exp::render_pairing_analysis(grid),
            exp::render_pairing_prediction(grid, ctx)
        ),
    }
}

/// Run a pairing-grid experiment with crash-safe progress: finished
/// cells and the solo-baseline cache are flushed to `path` every
/// `every` cells, and an existing file is resumed. The output is
/// bit-identical to an uninterrupted [`run_experiment_on`].
///
/// # Errors
///
/// Returns a message when the checkpoint file is corrupt, was taken
/// with different experiment parameters, or cannot be written.
pub fn run_experiment_ckpt(
    engine: &Engine,
    name: &str,
    ctx: &ExperimentCtx,
    csv: bool,
    path: &Path,
    every: usize,
) -> Result<String, String> {
    let grid = exp::pair_matrix_ckpt(engine, ctx, path, every, None)
        .map_err(|e| e.to_string())?
        .expect("a run without a cell budget completes the grid");
    Ok(render_grid_experiment(name, &grid, ctx, csv))
}

/// Run the differential-replay bisection with the paper machine as the
/// base configuration.
pub fn run_bisect(opts: &BisectOpts, ctx: &ExperimentCtx) -> String {
    let base = SystemConfig::p4(true).with_seed(ctx.seed);
    match bisect_divergence(
        opts.bench,
        ctx.scale,
        base,
        opts.a,
        opts.b,
        opts.horizon,
        opts.stride,
    ) {
        Ok(outcome) => render_bisect(&outcome),
        Err(e) => format!("bisect failed: {e}\n"),
    }
}

/// Render one of the shared-data multithreaded figures from
/// already-measured points (used by `all` to avoid re-running).
pub fn render_mt_figure(name: &str, pts: &[exp::MtPoint]) -> String {
    match name {
        "fig1" => exp::render_fig1(pts),
        "fig2" => exp::render_fig2(pts),
        "fig3" => exp::render_fig_mpki(pts, MpkiKind::TraceCache),
        "fig4" => exp::render_fig_mpki(pts, MpkiKind::L1d),
        "fig5" => exp::render_fig_mpki(pts, MpkiKind::L2),
        "fig6" => exp::render_fig_mpki(pts, MpkiKind::Itlb),
        "fig7" => exp::render_fig_mpki(pts, MpkiKind::BtbRatio),
        other => panic!("not a shared multithreaded figure: {other}"),
    }
}

/// Run every experiment serially, sharing measurement passes where the
/// paper's figures share data.
pub fn run_all(ctx: &ExperimentCtx) -> String {
    run_all_on(&Engine::serial(), ctx)
}

/// Run every experiment on `engine`, sharing measurement passes where
/// the paper's figures share data (and solo baselines across the
/// pairing grid and Figure 11 via the engine's cache).
pub fn run_all_on(engine: &Engine, ctx: &ExperimentCtx) -> String {
    let mut out = String::new();
    let mut emit = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };

    // Table 2 (2 and 8 threads, HT on).
    emit(run_experiment_on(engine, "table2", ctx, false));
    // Figures 1-7 share one characterization pass.
    let pts = exp::characterize_mt_on(engine, &[2], &[false, true], ctx);
    for fig in ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"] {
        emit(render_mt_figure(fig, &pts));
    }
    // Figures 8-9 + offline analysis share the pairing grid.
    let grid = exp::pair_matrix_on(engine, ctx);
    emit(exp::render_fig8(&grid));
    emit(exp::render_fig9(&grid));
    emit(exp::render_pairing_analysis(&grid));
    emit(exp::render_pairing_prediction(&grid, ctx));
    // The rest.
    emit(run_experiment_on(engine, "fig10", ctx, false));
    emit(run_experiment_on(engine, "fig11", ctx, false));
    emit(run_experiment_on(engine, "fig12", ctx, false));
    emit(run_experiment_on(engine, "ablation-partition", ctx, false));
    emit(run_experiment_on(engine, "ablation-l1", ctx, false));
    emit(run_experiment_on(engine, "ablation-prefetch", ctx, false));
    emit(run_experiment_on(engine, "ablation-jit", ctx, false));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_experiment_and_flags() {
        let cli = parse_args(&s(&["--quick", "fig3"])).unwrap();
        assert_eq!(cli.experiment, "fig3");
        assert_eq!(cli.ctx, ExperimentCtx::quick());

        let cli = parse_args(&s(&["--scale", "0.7", "--repeats", "9", "table2"])).unwrap();
        assert_eq!(cli.ctx.scale, 0.7);
        assert_eq!(cli.ctx.repeats, 9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&s(&["fig99"])).is_err());
        assert!(parse_args(&s(&["--scale"])).is_err());
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["--bogus", "fig1"])).is_err());
        assert!(parse_args(&s(&["fig1", "fig2"])).is_err());
    }

    #[test]
    fn jobs_flag_maps_to_parallelism() {
        let cli = parse_args(&s(&["--jobs", "4", "fig1"])).unwrap();
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.parallelism(), Parallelism::Threads(4));
        // 0 and 1 both mean serial.
        for v in ["0", "1"] {
            let cli = parse_args(&s(&["--jobs", v, "fig1"])).unwrap();
            assert_eq!(cli.parallelism(), Parallelism::Serial);
        }
        assert!(parse_args(&s(&["--jobs", "x", "fig1"])).is_err());
        assert!(parse_args(&s(&["--jobs"])).is_err());
    }

    #[test]
    fn all_is_accepted() {
        let cli = parse_args(&s(&["all"])).unwrap();
        assert_eq!(cli.experiment, "all");
    }

    #[test]
    fn checkpoint_flags_parse() {
        let cli = parse_args(&s(&["--checkpoint", "grid.ck", "fig8"])).unwrap();
        assert_eq!(cli.checkpoint.as_deref(), Some("grid.ck"));
        assert!(!cli.resume);
        assert_eq!(cli.checkpoint_every, 8);

        let cli = parse_args(&s(&[
            "--resume",
            "grid.ck",
            "--checkpoint-every",
            "3",
            "fig9",
        ]))
        .unwrap();
        assert_eq!(cli.checkpoint.as_deref(), Some("grid.ck"));
        assert!(cli.resume);
        assert_eq!(cli.checkpoint_every, 3);

        // Checkpointing is grid-only.
        assert!(parse_args(&s(&["--checkpoint", "x.ck", "fig1"])).is_err());
        assert!(parse_args(&s(&["--checkpoint"])).is_err());
    }

    #[test]
    fn bisect_flags_parse() {
        let cli = parse_args(&s(&["bisect-divergence"])).unwrap();
        assert_eq!(cli.bisect, BisectOpts::default());

        let cli = parse_args(&s(&[
            "--a",
            "seed=3",
            "--b",
            "seed=4",
            "--bench",
            "jess",
            "--horizon",
            "9000",
            "--stride",
            "100",
            "bisect-divergence",
        ]))
        .unwrap();
        assert_eq!(cli.bisect.a, Variant::Seed(3));
        assert_eq!(cli.bisect.b, Variant::Seed(4));
        assert_eq!(cli.bisect.bench, BenchmarkId::Jess);
        assert_eq!(cli.bisect.horizon, 9000);
        assert_eq!(cli.bisect.stride, 100);

        assert!(parse_args(&s(&["--a", "bogus", "bisect-divergence"])).is_err());
        assert!(parse_args(&s(&["--bench", "nosuch", "bisect-divergence"])).is_err());
    }

    #[test]
    fn every_experiment_name_is_routable() {
        for e in EXPERIMENTS {
            assert!(parse_args(&s(&[e])).is_ok(), "{e}");
        }
    }
}
