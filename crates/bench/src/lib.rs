//! # jsmt-bench
//!
//! The reproduction harness: the `repro` binary regenerates every table
//! and figure of the paper's evaluation, and the Criterion benches under
//! `benches/` measure the simulator's own component throughput plus each
//! experiment's cost.
//!
//! ```text
//! repro [--quick|--full] [--scale X] [--repeats N] <experiment>
//! experiments: table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!              fig10 fig11 fig12 pairing-analysis ablation-partition
//!              ablation-l1 all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jsmt_core::experiments::{self as exp, Engine, ExperimentCtx, MpkiKind, Parallelism};

/// All experiment names, in paper order. `pairing-suite` renders
/// Figures 8, 9 and the offline analysis from a single grid pass.
pub const EXPERIMENTS: [&str; 20] = [
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "pairing-analysis",
    "pairing-suite",
    "pairing-prediction",
    "ablation-partition",
    "ablation-l1",
    "ablation-prefetch",
    "ablation-jit",
];

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Experiment name (one of [`EXPERIMENTS`] or `all`).
    pub experiment: String,
    /// Experiment parameters.
    pub ctx: ExperimentCtx,
    /// Emit machine-readable CSV instead of the paper-style rendering.
    pub csv: bool,
    /// Worker count from `--jobs N` (`None` = resolve from `JSMT_JOBS`
    /// or the host core count at run time).
    pub jobs: Option<usize>,
}

impl Cli {
    /// Resolve the parallelism this invocation asked for.
    pub fn parallelism(&self) -> Parallelism {
        match self.jobs {
            Some(0) | Some(1) => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::from_env(),
        }
    }
}

/// Parse arguments (without the program name).
///
/// # Errors
///
/// Returns a usage string on unknown flags or experiments.
pub fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut ctx = ExperimentCtx::default();
    let mut experiment: Option<String> = None;
    let mut csv = false;
    let mut jobs = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => ctx = ExperimentCtx::quick(),
            "--full" => ctx = ExperimentCtx::full(),
            "--csv" => csv = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}"))?);
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                ctx.scale = v.parse::<f64>().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--repeats" => {
                let v = it.next().ok_or("--repeats needs a value")?;
                ctx.repeats = v
                    .parse::<u64>()
                    .map_err(|e| format!("bad --repeats: {e}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                ctx.seed = v.parse::<u64>().map_err(|e| format!("bad --seed: {e}"))?;
            }
            name if !name.starts_with('-') => {
                if experiment.is_some() {
                    return Err(format!("unexpected extra argument: {name}"));
                }
                experiment = Some(name.to_string());
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    let experiment = experiment.ok_or_else(usage)?;
    if experiment != "all" && !EXPERIMENTS.contains(&experiment.as_str()) {
        return Err(format!("unknown experiment '{experiment}'\n{}", usage()));
    }
    Ok(Cli {
        experiment,
        ctx,
        csv,
        jobs,
    })
}

/// The usage string.
pub fn usage() -> String {
    format!(
        "usage: repro [--quick|--full] [--csv] [--scale X] [--repeats N] [--seed S] [--jobs N] <experiment>\n\
         experiments: {} all\n\
         --jobs N fans independent simulations over N worker threads (0/1 = serial;\n\
         default: JSMT_JOBS or all cores). Results are bit-identical at any job count.",
        EXPERIMENTS.join(" ")
    )
}

/// Run one experiment serially and return its rendered output.
pub fn run_experiment(name: &str, ctx: &ExperimentCtx) -> String {
    run_experiment_fmt(name, ctx, false)
}

/// Run one experiment serially, rendering either the paper-style
/// artifact or CSV.
pub fn run_experiment_fmt(name: &str, ctx: &ExperimentCtx, csv: bool) -> String {
    run_experiment_on(&Engine::serial(), name, ctx, csv)
}

/// Run one experiment on `engine`, rendering either the paper-style
/// artifact or CSV. The rendered bytes are bit-identical for every
/// [`Parallelism`] setting (enforced by `tests/engine_determinism.rs`).
pub fn run_experiment_on(engine: &Engine, name: &str, ctx: &ExperimentCtx, csv: bool) -> String {
    match name {
        "table2" => {
            let pts = exp::characterize_mt_on(engine, &[2, 8], &[true], ctx);
            if csv {
                exp::csv_mt(&pts)
            } else {
                exp::render_table2(&pts)
            }
        }
        "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" => {
            let pts = exp::characterize_mt_on(engine, &[2], &[false, true], ctx);
            if csv {
                exp::csv_mt(&pts)
            } else {
                render_mt_figure(name, &pts)
            }
        }
        "fig8" | "fig9" | "pairing-analysis" | "pairing-suite" | "pairing-prediction" => {
            let grid = exp::pair_matrix_on(engine, ctx);
            if csv {
                return exp::csv_grid(&grid);
            }
            match name {
                "fig8" => exp::render_fig8(&grid),
                "fig9" => exp::render_fig9(&grid),
                "pairing-analysis" => exp::render_pairing_analysis(&grid),
                "pairing-prediction" => exp::render_pairing_prediction(&grid, ctx),
                _ => format!(
                    "{}\n{}\n{}\n{}",
                    exp::render_fig8(&grid),
                    exp::render_fig9(&grid),
                    exp::render_pairing_analysis(&grid),
                    exp::render_pairing_prediction(&grid, ctx)
                ),
            }
        }
        "fig10" => {
            let pts = exp::fig10_single_thread_impact_on(engine, ctx);
            if csv {
                exp::csv_single(&pts)
            } else {
                exp::render_fig10(&pts)
            }
        }
        "fig11" => {
            let pts = exp::fig11_self_pairs_on(engine, ctx);
            if csv {
                let mut c = jsmt_report::Csv::new(vec!["benchmark".into(), "combined".into()]);
                for (id, v) in &pts {
                    c.row(vec![id.name().into(), format!("{v:.4}")]);
                }
                c.render()
            } else {
                exp::render_fig11(&pts)
            }
        }
        "fig12" => {
            let pts = exp::fig12_ipc_vs_threads_on(engine, &[1, 2, 4, 8, 16], ctx);
            if csv {
                exp::csv_threads(&pts)
            } else {
                exp::render_fig12(&pts)
            }
        }
        "ablation-partition" => {
            let pts = exp::ablation_partition_on(engine, ctx);
            if csv {
                exp::csv_partition(&pts)
            } else {
                exp::render_ablation_partition(&pts)
            }
        }
        "ablation-l1" => {
            let pts = exp::ablation_l1_on(engine, &[8, 16, 32, 64], ctx);
            if csv {
                exp::csv_l1(&pts)
            } else {
                exp::render_ablation_l1(&pts)
            }
        }
        "ablation-prefetch" => {
            let pts = exp::ablation_prefetch_on(engine, ctx);
            if csv {
                exp::csv_prefetch(&pts)
            } else {
                exp::render_ablation_prefetch(&pts)
            }
        }
        "ablation-jit" => {
            let pts = exp::ablation_jit_on(engine, ctx);
            if csv {
                exp::csv_jit(&pts)
            } else {
                exp::render_ablation_jit(&pts)
            }
        }
        other => panic!("unknown experiment {other} (validated at parse time)"),
    }
}

/// Render one of the shared-data multithreaded figures from
/// already-measured points (used by `all` to avoid re-running).
pub fn render_mt_figure(name: &str, pts: &[exp::MtPoint]) -> String {
    match name {
        "fig1" => exp::render_fig1(pts),
        "fig2" => exp::render_fig2(pts),
        "fig3" => exp::render_fig_mpki(pts, MpkiKind::TraceCache),
        "fig4" => exp::render_fig_mpki(pts, MpkiKind::L1d),
        "fig5" => exp::render_fig_mpki(pts, MpkiKind::L2),
        "fig6" => exp::render_fig_mpki(pts, MpkiKind::Itlb),
        "fig7" => exp::render_fig_mpki(pts, MpkiKind::BtbRatio),
        other => panic!("not a shared multithreaded figure: {other}"),
    }
}

/// Run every experiment serially, sharing measurement passes where the
/// paper's figures share data.
pub fn run_all(ctx: &ExperimentCtx) -> String {
    run_all_on(&Engine::serial(), ctx)
}

/// Run every experiment on `engine`, sharing measurement passes where
/// the paper's figures share data (and solo baselines across the
/// pairing grid and Figure 11 via the engine's cache).
pub fn run_all_on(engine: &Engine, ctx: &ExperimentCtx) -> String {
    let mut out = String::new();
    let mut emit = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };

    // Table 2 (2 and 8 threads, HT on).
    emit(run_experiment_on(engine, "table2", ctx, false));
    // Figures 1-7 share one characterization pass.
    let pts = exp::characterize_mt_on(engine, &[2], &[false, true], ctx);
    for fig in ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"] {
        emit(render_mt_figure(fig, &pts));
    }
    // Figures 8-9 + offline analysis share the pairing grid.
    let grid = exp::pair_matrix_on(engine, ctx);
    emit(exp::render_fig8(&grid));
    emit(exp::render_fig9(&grid));
    emit(exp::render_pairing_analysis(&grid));
    emit(exp::render_pairing_prediction(&grid, ctx));
    // The rest.
    emit(run_experiment_on(engine, "fig10", ctx, false));
    emit(run_experiment_on(engine, "fig11", ctx, false));
    emit(run_experiment_on(engine, "fig12", ctx, false));
    emit(run_experiment_on(engine, "ablation-partition", ctx, false));
    emit(run_experiment_on(engine, "ablation-l1", ctx, false));
    emit(run_experiment_on(engine, "ablation-prefetch", ctx, false));
    emit(run_experiment_on(engine, "ablation-jit", ctx, false));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_experiment_and_flags() {
        let cli = parse_args(&s(&["--quick", "fig3"])).unwrap();
        assert_eq!(cli.experiment, "fig3");
        assert_eq!(cli.ctx, ExperimentCtx::quick());

        let cli = parse_args(&s(&["--scale", "0.7", "--repeats", "9", "table2"])).unwrap();
        assert_eq!(cli.ctx.scale, 0.7);
        assert_eq!(cli.ctx.repeats, 9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&s(&["fig99"])).is_err());
        assert!(parse_args(&s(&["--scale"])).is_err());
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["--bogus", "fig1"])).is_err());
        assert!(parse_args(&s(&["fig1", "fig2"])).is_err());
    }

    #[test]
    fn jobs_flag_maps_to_parallelism() {
        let cli = parse_args(&s(&["--jobs", "4", "fig1"])).unwrap();
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.parallelism(), Parallelism::Threads(4));
        // 0 and 1 both mean serial.
        for v in ["0", "1"] {
            let cli = parse_args(&s(&["--jobs", v, "fig1"])).unwrap();
            assert_eq!(cli.parallelism(), Parallelism::Serial);
        }
        assert!(parse_args(&s(&["--jobs", "x", "fig1"])).is_err());
        assert!(parse_args(&s(&["--jobs"])).is_err());
    }

    #[test]
    fn all_is_accepted() {
        let cli = parse_args(&s(&["all"])).unwrap();
        assert_eq!(cli.experiment, "all");
    }

    #[test]
    fn every_experiment_name_is_routable() {
        for e in EXPERIMENTS {
            assert!(parse_args(&s(&[e])).is_ok(), "{e}");
        }
    }
}
