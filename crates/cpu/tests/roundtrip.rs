//! Snapshot round-trip properties for the SMT core: a core restored
//! mid-execution is byte-canonical and, driven by the same µop supply,
//! retires cycle-for-cycle identically to its uninterrupted twin.

use jsmt_cpu::synth::SyntheticStream;
use jsmt_cpu::{CoreConfig, SmtCore};
use jsmt_isa::Asid;
use jsmt_mem::MemConfig;
use jsmt_perfmon::LogicalCpu;
use jsmt_snapshot::{restore_bytes, save_bytes};
use proptest::prelude::*;

fn stream(seed: u64, mem: f64, br: f64) -> SyntheticStream {
    SyntheticStream::builder(seed)
        .code_footprint(4 * 1024)
        .data_footprint(64 * 1024)
        .mem_fraction(mem)
        .branch_fraction(br)
        .build()
}

fn run(
    core: &mut SmtCore,
    s0: &mut SyntheticStream,
    s1: &mut Option<SyntheticStream>,
    cycles: u64,
) {
    for _ in 0..cycles {
        core.cycle(&mut |lcpu, buf, max| match (lcpu, &mut *s1) {
            (LogicalCpu::Lp0, _) => s0.fill(buf, max),
            (LogicalCpu::Lp1, Some(s)) => s.fill(buf, max),
            (LogicalCpu::Lp1, None) => 0,
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interrupt a (possibly dual-thread) core mid-run, restore into a
    /// fresh core, and continue both with identical µop supplies: cycle
    /// counts, counters, and final snapshot bytes must all match.
    #[test]
    fn core_round_trip_continues_identically(
        ht in any::<bool>(),
        dual in any::<bool>(),
        mem in 0.0f64..0.5,
        br in 0.0f64..0.3,
        warm in 100u64..4000,
        tail in 100u64..3000,
    ) {
        let dual = dual && ht;
        let mk = || {
            let mut core = SmtCore::new(CoreConfig::p4(ht), MemConfig::p4(ht));
            core.bind(LogicalCpu::Lp0, Asid(1));
            if dual {
                core.bind(LogicalCpu::Lp1, Asid(2));
            }
            let s0 = stream(11, mem, br);
            let s1 = dual.then(|| stream(23, br, mem));
            (core, s0, s1)
        };

        // Twin runs uninterrupted; the donor is checkpointed at `warm`.
        let (mut twin, mut t0, mut t1) = mk();
        let (mut donor, mut d0, mut d1) = mk();
        run(&mut twin, &mut t0, &mut t1, warm);
        run(&mut donor, &mut d0, &mut d1, warm);

        let bytes = save_bytes(&donor);
        let mut restored = SmtCore::new(CoreConfig::p4(ht), MemConfig::p4(ht));
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(save_bytes(&restored), bytes.clone(), "re-save not canonical");
        prop_assert_eq!(restored.cycles(), twin.cycles());

        // Continue the twin and the restored core (with the donor's
        // stream state, which the same warmup reproduces in d0/d1).
        run(&mut twin, &mut t0, &mut t1, tail);
        run(&mut restored, &mut d0, &mut d1, tail);
        prop_assert_eq!(restored.cycles(), twin.cycles());
        prop_assert_eq!(restored.counters(), twin.counters());
        prop_assert_eq!(save_bytes(&restored), save_bytes(&twin));
    }

    /// Every truncation of a core snapshot errors instead of panicking.
    #[test]
    fn core_truncations_error_cleanly(warm in 50u64..500) {
        let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        core.bind(LogicalCpu::Lp0, Asid(1));
        let mut s = stream(7, 0.3, 0.15);
        let mut none = None;
        run(&mut core, &mut s, &mut none, warm);
        let bytes = save_bytes(&core);
        // Stride keeps the case count sane; cut points cover all regions.
        for cut in (0..bytes.len()).step_by(61) {
            let mut victim = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
            prop_assert!(restore_bytes(&mut victim, &bytes[..cut]).is_err(),
                         "truncation at {cut} must error");
        }
    }

    /// A snapshot taken under HT refuses to restore into a non-HT core
    /// (context geometry differs).
    #[test]
    fn ht_snapshot_rejected_by_single_thread_core(warm in 50u64..500) {
        let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        core.bind(LogicalCpu::Lp0, Asid(1));
        core.bind(LogicalCpu::Lp1, Asid(2));
        let mut s0 = stream(3, 0.2, 0.1);
        let mut s1 = Some(stream(5, 0.1, 0.2));
        run(&mut core, &mut s0, &mut s1, warm);
        let bytes = save_bytes(&core);
        let mut st = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        prop_assert!(restore_bytes(&mut st, &bytes).is_err());
    }
}
