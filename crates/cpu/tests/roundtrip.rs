//! Snapshot round-trip properties for the SMT core: a core restored
//! mid-execution is byte-canonical and, driven by the same µop supply,
//! retires cycle-for-cycle identically to its uninterrupted twin.

use std::collections::VecDeque;

use jsmt_cpu::synth::SyntheticStream;
use jsmt_cpu::{CoreConfig, ExecTier, SmtCore};
use jsmt_isa::{Asid, Uop};
use jsmt_mem::MemConfig;
use jsmt_perfmon::LogicalCpu;
use jsmt_snapshot::{restore_bytes, save_bytes};
use proptest::prelude::*;

const TIERS: [ExecTier; 3] = [ExecTier::Scalar, ExecTier::Batched, ExecTier::Trace];

fn stream(seed: u64, mem: f64, br: f64) -> SyntheticStream {
    SyntheticStream::builder(seed)
        .code_footprint(4 * 1024)
        .data_footprint(64 * 1024)
        .mem_fraction(mem)
        .branch_fraction(br)
        .build()
}

fn run(
    core: &mut SmtCore,
    s0: &mut SyntheticStream,
    s1: &mut Option<SyntheticStream>,
    cycles: u64,
) {
    for _ in 0..cycles {
        core.cycle(&mut |lcpu, buf, max| match (lcpu, &mut *s1) {
            (LogicalCpu::Lp0, _) => s0.fill(buf, max),
            (LogicalCpu::Lp1, Some(s)) => s.fill(buf, max),
            (LogicalCpu::Lp1, None) => 0,
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interrupt a (possibly dual-thread) core mid-run, restore into a
    /// fresh core, and continue both with identical µop supplies: cycle
    /// counts, counters, and final snapshot bytes must all match.
    #[test]
    fn core_round_trip_continues_identically(
        ht in any::<bool>(),
        dual in any::<bool>(),
        tier_ix in 0usize..3,
        mem in 0.0f64..0.5,
        br in 0.0f64..0.3,
        warm in 100u64..4000,
        tail in 100u64..3000,
    ) {
        let dual = dual && ht;
        // The checkpoint lands at an arbitrary cycle, so under the batched
        // and trace tiers this covers mid-batch (partially issued window,
        // arena waiting list mid-flight) state round-tripping.
        let tier = TIERS[tier_ix];
        let mk = || {
            let mut core = SmtCore::new(CoreConfig::p4(ht), MemConfig::p4(ht));
            core.set_exec_tier(tier);
            core.bind(LogicalCpu::Lp0, Asid(1));
            if dual {
                core.bind(LogicalCpu::Lp1, Asid(2));
            }
            let s0 = stream(11, mem, br);
            let s1 = dual.then(|| stream(23, br, mem));
            (core, s0, s1)
        };

        // Twin runs uninterrupted; the donor is checkpointed at `warm`.
        let (mut twin, mut t0, mut t1) = mk();
        let (mut donor, mut d0, mut d1) = mk();
        run(&mut twin, &mut t0, &mut t1, warm);
        run(&mut donor, &mut d0, &mut d1, warm);

        let bytes = save_bytes(&donor);
        let mut restored = SmtCore::new(CoreConfig::p4(ht), MemConfig::p4(ht));
        restore_bytes(&mut restored, &bytes).expect("restore");
        prop_assert_eq!(save_bytes(&restored), bytes.clone(), "re-save not canonical");
        prop_assert_eq!(restored.cycles(), twin.cycles());

        // Continue the twin and the restored core (with the donor's
        // stream state, which the same warmup reproduces in d0/d1).
        run(&mut twin, &mut t0, &mut t1, tail);
        run(&mut restored, &mut d0, &mut d1, tail);
        prop_assert_eq!(restored.cycles(), twin.cycles());
        prop_assert_eq!(restored.counters(), twin.counters());
        prop_assert_eq!(save_bytes(&restored), save_bytes(&twin));
    }

    /// Checkpoint a trace-tier core mid-run — between replays of a hot
    /// compiled trace — restore into a fresh core whose trace cache is
    /// cold, and continue both. The restored core must re-profile and
    /// re-compile from scratch yet stay bit-identical to its
    /// uninterrupted twin: the trace cache is pure memoization, so its
    /// loss may cost wall-clock but never a counter bit.
    #[test]
    fn trace_tier_checkpoint_resumes_identically(
        seed in 0u64..100_000,
        fp in 0.0f64..0.8,
        // First replay of a compiled trace lands around cycle 16-17k on
        // these dense streams (profile threshold, then a full recording
        // pass, then cache warm-up), so warm past 20k guarantees the
        // checkpoint interrupts an established replay cadence.
        warm in 20_000u64..50_000,
        tail in 5_000u64..40_000,
    ) {
        // Dense pure-compute stream: the shape the trace tier compiles
        // and replays, so the checkpoint lands inside its replay cadence.
        let dense = |salt: u64| {
            SyntheticStream::builder(seed ^ salt)
                .code_footprint(2 * 1024)
                .data_footprint(64 * 1024)
                .mem_fraction(0.0)
                .branch_fraction(0.0)
                .fp_fraction(fp)
                .dep_chain(0.0)
                .build()
        };
        // Drive a core to exactly cycle `t` the way the system layer
        // does: stock a pending buffer deeper than the longest possible
        // trace fill, prefer bulk replay, fall back to single cycles.
        let advance = |core: &mut SmtCore,
                       s: &mut SyntheticStream,
                       pending: &mut VecDeque<Uop>,
                       t: u64| {
            while core.cycles() < t {
                while pending.len() < 4096 {
                    s.fill(pending, 48);
                }
                let left = t - core.cycles();
                let (cycles, consumed) = core.trace_step(left, pending);
                if cycles > 0 {
                    pending.drain(..consumed);
                    continue;
                }
                core.cycle(&mut |lcpu, buf, max| {
                    if lcpu != LogicalCpu::Lp0 {
                        return 0;
                    }
                    let take = max.min(pending.len());
                    for u in pending.drain(..take) {
                        buf.push_back(u);
                    }
                    take
                });
            }
        };
        let mk = || {
            let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
            core.set_exec_tier(ExecTier::Trace);
            core.bind(LogicalCpu::Lp0, Asid(1));
            (core, dense(0), VecDeque::new())
        };

        let (mut twin, mut ts, mut tp) = mk();
        let (mut donor, mut ds, mut dp) = mk();
        advance(&mut twin, &mut ts, &mut tp, warm);
        advance(&mut donor, &mut ds, &mut dp, warm);
        prop_assert!(donor.trace_stats().replayed > 0,
                     "warmup never replayed a trace: {:?}", donor.trace_stats());

        let bytes = save_bytes(&donor);
        let mut restored = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        restore_bytes(&mut restored, &bytes).expect("restore");
        restored.set_exec_tier(ExecTier::Trace);
        prop_assert_eq!(restored.trace_stats().compiled, 0, "trace cache must restore cold");

        // Continue the restored core with the donor's stream *and* its
        // already-drawn pending µops — exactly what resuming from a
        // system checkpoint looks like.
        advance(&mut twin, &mut ts, &mut tp, warm + tail);
        advance(&mut restored, &mut ds, &mut dp, warm + tail);
        prop_assert_eq!(restored.cycles(), twin.cycles());
        prop_assert_eq!(restored.counters(), twin.counters());
        prop_assert_eq!(save_bytes(&restored), save_bytes(&twin),
            "restored trace-tier core diverged ({:?} vs {:?})",
            restored.trace_stats(), twin.trace_stats());
    }

    /// Every truncation of a core snapshot errors instead of panicking.
    #[test]
    fn core_truncations_error_cleanly(warm in 50u64..500) {
        let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        core.bind(LogicalCpu::Lp0, Asid(1));
        let mut s = stream(7, 0.3, 0.15);
        let mut none = None;
        run(&mut core, &mut s, &mut none, warm);
        let bytes = save_bytes(&core);
        // Stride keeps the case count sane; cut points cover all regions.
        for cut in (0..bytes.len()).step_by(61) {
            let mut victim = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
            prop_assert!(restore_bytes(&mut victim, &bytes[..cut]).is_err(),
                         "truncation at {cut} must error");
        }
    }

    /// A snapshot taken under HT refuses to restore into a non-HT core
    /// (context geometry differs).
    #[test]
    fn ht_snapshot_rejected_by_single_thread_core(warm in 50u64..500) {
        let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        core.bind(LogicalCpu::Lp0, Asid(1));
        core.bind(LogicalCpu::Lp1, Asid(2));
        let mut s0 = stream(3, 0.2, 0.1);
        let mut s1 = Some(stream(5, 0.1, 0.2));
        run(&mut core, &mut s0, &mut s1, warm);
        let bytes = save_bytes(&core);
        let mut st = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        prop_assert!(restore_bytes(&mut st, &bytes).is_err());
    }
}
