//! Property-based tests on pipeline invariants: for arbitrary synthetic
//! µop streams, the core must preserve program order at retirement, never
//! lose or duplicate µops, and keep its counters consistent.

use jsmt_cpu::synth::SyntheticStream;
use jsmt_cpu::{CoreConfig, Partition, SmtCore};
use jsmt_isa::Asid;
use jsmt_mem::MemConfig;
use jsmt_perfmon::{Event, LogicalCpu};
use proptest::prelude::*;

fn arb_stream(seed: u64) -> impl Strategy<Value = SyntheticStream> {
    (0.0f64..0.6, 0.0f64..0.3, 0.0f64..1.0, 0.0f64..0.8, 1u64..6).prop_map(
        move |(mem, br, bias, dep, code_kb)| {
            SyntheticStream::builder(seed)
                .code_footprint(code_kb * 1024)
                .data_footprint(32 * 1024)
                .mem_fraction(mem)
                .branch_fraction(br)
                .branch_bias(bias)
                .dep_chain(dep)
                .build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the stream looks like, the machine retires every µop it
    /// fetched (conservation), and the retirement histogram accounts for
    /// every cycle.
    #[test]
    fn uops_are_conserved(mut stream in arb_stream(11), ht in any::<bool>()) {
        let mut core = SmtCore::new(CoreConfig::p4(ht), MemConfig::p4(ht));
        core.bind(LogicalCpu::Lp0, Asid(1));
        let mut supplied = 0u64;
        for _ in 0..6000 {
            core.cycle(&mut |_l, buf, max| {
                let n = stream.fill(buf, max);
                supplied += n as u64;
                n
            });
        }
        let b = core.counters();
        let retired = b.total(Event::UopsRetired);
        prop_assert!(retired <= supplied, "retired {retired} > supplied {supplied}");
        // Everything supplied is either retired or still in flight
        // (window + fetch queue ≤ a few hundred µops).
        prop_assert!(supplied - retired < 512, "lost µops: {}", supplied - retired);
        let hist = b.total(Event::CyclesRetire0)
            + b.total(Event::CyclesRetire1)
            + b.total(Event::CyclesRetire2)
            + b.total(Event::CyclesRetire3);
        prop_assert_eq!(hist, core.cycles());
        // Per-cycle retirement never exceeds the configured width.
        prop_assert!(retired <= core.cycles() * 3);
    }

    /// Counter consistency holds for any stream.
    #[test]
    fn counters_stay_consistent(mut stream in arb_stream(23)) {
        let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..4000 {
            core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
        }
        let b = core.counters();
        prop_assert!(b.total(Event::TcMisses) <= b.total(Event::TcLookups));
        prop_assert!(b.total(Event::L1dMisses) <= b.total(Event::L1dLookups));
        prop_assert!(b.total(Event::BtbMisses) <= b.total(Event::BtbLookups));
        prop_assert!(b.total(Event::LoadsRetired) <= b.total(Event::UopsRetired));
        prop_assert!(b.total(Event::BranchesRetired) <= b.total(Event::UopsRetired));
        prop_assert_eq!(b.get(LogicalCpu::Lp1, Event::UopsRetired), 0);
    }

    /// The stall fast-forward is an *optimization*, not a model change:
    /// for any synthetic stream and either HT mode, driving the core with
    /// `fast_forward` + `cycle` produces bit-identical elapsed cycles and
    /// a bit-identical counter bank compared to pure cycle-by-cycle
    /// stepping.
    #[test]
    fn fast_forward_is_bit_identical(mut s_step in arb_stream(47), ht in any::<bool>()) {
        let mut s_ff = s_step.clone();
        let n = 20_000u64;

        let mut step = SmtCore::new(CoreConfig::p4(ht), MemConfig::p4(ht));
        step.set_fast_forward(false);
        step.bind(LogicalCpu::Lp0, Asid(1));
        while step.cycles() < n {
            step.cycle(&mut |_l, buf, max| s_step.fill(buf, max));
        }

        let mut ff = SmtCore::new(CoreConfig::p4(ht), MemConfig::p4(ht));
        ff.set_fast_forward(true);
        ff.bind(LogicalCpu::Lp0, Asid(1));
        while ff.cycles() < n {
            if ff.fast_forward(n - ff.cycles()) == 0 {
                ff.cycle(&mut |_l, buf, max| s_ff.fill(buf, max));
            }
        }

        prop_assert_eq!(step.cycles(), ff.cycles());
        prop_assert_eq!(step.counters(), ff.counters());
    }

    /// Same equivalence with two independent streams sharing the core
    /// (the SMT case: skips are only legal when *both* contexts are
    /// provably idle, so this exercises the two-context analysis).
    #[test]
    fn fast_forward_is_bit_identical_dual_thread(
        mut a_step in arb_stream(53),
        mut b_step in arb_stream(59),
    ) {
        let mut a_ff = a_step.clone();
        let mut b_ff = b_step.clone();
        let n = 20_000u64;

        let mut step = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        step.set_fast_forward(false);
        step.bind(LogicalCpu::Lp0, Asid(1));
        step.bind(LogicalCpu::Lp1, Asid(2));
        while step.cycles() < n {
            step.cycle(&mut |l, buf, max| match l {
                LogicalCpu::Lp0 => a_step.fill(buf, max),
                LogicalCpu::Lp1 => b_step.fill(buf, max),
            });
        }

        let mut ff = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        ff.set_fast_forward(true);
        ff.bind(LogicalCpu::Lp0, Asid(1));
        ff.bind(LogicalCpu::Lp1, Asid(2));
        while ff.cycles() < n {
            if ff.fast_forward(n - ff.cycles()) == 0 {
                ff.cycle(&mut |l, buf, max| match l {
                    LogicalCpu::Lp0 => a_ff.fill(buf, max),
                    LogicalCpu::Lp1 => b_ff.fill(buf, max),
                });
            }
        }

        prop_assert_eq!(step.cycles(), ff.cycles());
        prop_assert_eq!(step.counters(), ff.counters());
    }

    /// Dynamic partitioning never makes a lone thread slower than static.
    #[test]
    fn dynamic_partition_dominates_static_for_one_thread(mut s1 in arb_stream(31)) {
        let mut s2 = s1.clone();
        let run = |stream: &mut SyntheticStream, partition| {
            let cfg = CoreConfig::p4(true).with_partition(partition);
            let mut core = SmtCore::new(cfg, MemConfig::p4(true));
            core.bind(LogicalCpu::Lp0, Asid(1));
            for _ in 0..5000 {
                core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
            }
            core.counters().total(Event::UopsRetired)
        };
        let st = run(&mut s1, Partition::Static);
        let dy = run(&mut s2, Partition::Dynamic);
        // Allow a tiny tolerance: replacement-order noise can shave a few
        // µops either way.
        prop_assert!(dy * 100 >= st * 97, "dynamic {dy} much worse than static {st}");
    }
}
