//! # jsmt-cpu
//!
//! The two-context SMT core model: a cycle-approximate, window-based
//! out-of-order pipeline with Pentium 4 "Hyper-Threading"-style resource
//! management:
//!
//! * fetch delivers up to 3 µops/cycle from the trace cache, for one
//!   logical CPU per cycle (round-robin when both are active);
//! * the reorder window and load/store buffers are **statically
//!   partitioned** between the two contexts when Hyper-Threading is
//!   enabled — the design decision the paper blames for single-threaded
//!   slowdowns (§4.3) — with a `Dynamic` policy available as the paper's
//!   proposed-fix ablation;
//! * execution ports are fully shared each cycle;
//! * retirement commits up to 3 µops/cycle, alternating between contexts
//!   when both are active, and records the 0/1/2/3-µop retirement
//!   histogram of Figure 2.
//!
//! The core is *execution-driven*: software threads (bound to contexts by
//! the OS model) supply [`jsmt_isa::Uop`] streams through a fill callback,
//! and every structural event lands in a [`jsmt_perfmon::CounterBank`].
//!
//! ## Example
//!
//! ```
//! use jsmt_cpu::{CoreConfig, SmtCore, synth::SyntheticStream};
//! use jsmt_mem::MemConfig;
//! use jsmt_isa::Asid;
//! use jsmt_perfmon::{Event, LogicalCpu};
//!
//! let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
//! let mut stream = SyntheticStream::builder(7).build();
//! core.bind(LogicalCpu::Lp0, Asid(1));
//! for _ in 0..10_000 {
//!     core.cycle(&mut |_lcpu, buf, max| stream.fill(buf, max));
//! }
//! assert!(core.counters().total(Event::UopsRetired) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod config;
mod core_model;
mod fetch_queue;
pub mod synth;
mod trace_tier;

pub use config::{CoreConfig, Partition};
pub use core_model::{ContextSnapshot, ExecTier, FillFn, SmtCore};
pub use fetch_queue::FetchQueue;
pub use trace_tier::TraceStats;
