//! The compiled-trace execution tier.
//!
//! Mirrors a tiered JIT: the core profiles *anchor states* (cheap,
//! recognizable pipeline configurations) at fetch, and when one gets hot
//! it records the next span of real cycles as a **compiled trace** — the
//! entry state, every µop the fill callback delivered, every trace-cache
//! probe, the exact per-counter delta, and the end state. When the same
//! entry state is seen again the whole span is replayed with one bulk
//! apply instead of stepping cycle by cycle.
//!
//! Bit-identity is enforced structurally, not probabilistically:
//!
//! * a replay requires the *full* entry state (fetch queue + window
//!   contents with relative completion times) to compare equal — the
//!   64-bit key is only an index, never trusted;
//! * the µops the trace would consume must equal the pending µops the
//!   caller is about to supply, compared element-wise before anything is
//!   mutated (mismatch ⇒ the trace is dropped and the caller falls back
//!   to stepping — no state was touched);
//! * recording **aborts** on anything whose replay we cannot prove
//!   exact: a trace-cache miss, a branch allocation (predictor/BTB state),
//!   issue of a memory or serializing µop (cache state and latency), a
//!   partial or empty fill (the source consulted more than its pending
//!   buffer), or a fast-forward skip. Keys that keep aborting are
//!   poisoned so steady state pays nothing for unprofilable code;
//! * any structural event — bind, unbind, drain request, snapshot
//!   restore, tier change — invalidates every trace and the recorder.
//!
//! What survives those rules is a span of pure compute µops (ALU/FP)
//! fed by full fills and hitting the trace cache every probe: exactly
//! the dense busy loops the interpreted stepper is slowest on.

#[cfg(test)]
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
#[cfg(test)]
use std::hash::Hash;
use std::hash::{BuildHasherDefault, Hasher};

use jsmt_isa::Uop;
use jsmt_perfmon::{CounterBank, Event, LogicalCpu};

/// Minimum cycles a recording must span before it may finalize.
pub(crate) const MIN_TRACE: u64 = 16;
/// Recording longer than this aborts (the state never re-anchored).
pub(crate) const MAX_TRACE: u64 = 1024;
/// Anchor sightings before recording starts (record on sighting
/// `THRESHOLD + 1`, like a JIT compile trigger).
pub(crate) const THRESHOLD: u32 = 2;
/// Aborted recordings before a key is poisoned (never profiled again).
pub(crate) const ABORT_LIMIT: u32 = 4;
/// Maximum resident compiled traces (LRU-evicted beyond this).
pub(crate) const CACHE_CAP: usize = 32;
/// Maximum profiled keys; the profile is cleared on overflow.
pub(crate) const PROFILE_CAP: usize = 2048;

/// The complete architectural state of one context at a trace boundary,
/// with clock-relative completion times so recurring pipeline
/// configurations compare equal across absolute cycles.
///
/// Sequence numbers are elided: the window invariant
/// `next_seq == base_seq + len` makes them pure relabelings, and the
/// fetch-stall deadline is elided because an anchor requires it expired
/// (all expired deadlines are behaviorally equivalent and replay never
/// writes it).
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct EntryState {
    /// Which hardware context (the sibling must be unbound and empty).
    pub ctx: u8,
    /// Bound address space.
    pub asid: u16,
    /// Kernel-mode flag (drives `OsCycles` accounting).
    pub in_kernel: bool,
    /// Scheduler-visible starvation flag.
    pub starved: bool,
    /// Fetch-queue contents, front to back.
    pub queue: Vec<Uop>,
    /// Window contents, oldest first: `(µop, None)` for a slot still
    /// waiting to issue, `(µop, Some(done_at - now))` (wrapping) for an
    /// executing or completed slot.
    pub window: Vec<(Uop, Option<u64>)>,
}

impl EntryState {
    /// 64-bit digest of the full state (test helper; the hot path keys
    /// traces by the core's O(1) cheap key and resolves collisions with
    /// the exact equality check at replay).
    #[cfg(test)]
    pub(crate) fn key(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// A recorded, replayable span of cycles.
pub(crate) struct CompiledTrace {
    /// The state the machine must be in for this trace to apply.
    pub entry: EntryState,
    /// Cycles the span consumes.
    pub cycles: u64,
    /// Every µop delivered by the fill callback during the span, in
    /// delivery order. Replay requires the caller's pending µops to match
    /// element-wise, then consumes exactly this many.
    pub fill_uops: Vec<Uop>,
    /// Trace-cache probes as `(pc, repeat_count)` runs; all hits.
    pub probes: Vec<(u64, u64)>,
    /// Exact counter delta of the span.
    pub delta: Vec<(LogicalCpu, Event, u64)>,
    /// End state; window completion times relative to the *entry* cycle.
    pub end: EntryState,
    /// How far `next_seq` advanced (µops allocated during the span).
    pub next_seq_advance: u64,
}

/// An in-progress recording. The machine steps normally while this is
/// active; the recorder only observes.
pub(crate) struct Recorder {
    /// Cache key of the entry state.
    pub key: u64,
    /// Context being recorded.
    pub ctx: usize,
    /// Full entry state (stored into the trace on finalize).
    pub entry: EntryState,
    /// Counter bank at entry (finalize takes the delta).
    pub entry_bank: CounterBank,
    /// Clock at entry (end-state completion times are made relative to
    /// this).
    pub entry_now: u64,
    /// `next_seq` at entry.
    pub entry_next_seq: u64,
    /// Completed cycles since entry.
    pub cycles: u64,
    /// Fill deliveries so far, flattened.
    pub fill_uops: Vec<Uop>,
    /// Probe runs so far.
    pub probes: Vec<(u64, u64)>,
}

impl Recorder {
    /// Append one probe (run-length compressed).
    pub(crate) fn note_probe(&mut self, pc: u64) {
        match self.probes.last_mut() {
            Some((last, n)) if *last == pc => *n += 1,
            _ => self.probes.push((pc, 1)),
        }
    }
}

/// Replay/compile statistics, for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces compiled (recordings finalized).
    pub compiled: u64,
    /// Successful bulk replays.
    pub replayed: u64,
    /// Simulated cycles covered by replays.
    pub replayed_cycles: u64,
    /// Recordings aborted (unreplayable event observed).
    pub aborts: u64,
    /// Replay attempts rejected by the exact entry/fill comparison
    /// (the trace was dropped; the machine stepped instead).
    pub mismatches: u64,
}

#[derive(Default)]
struct ProfileEntry {
    hits: u32,
    aborts: u32,
}

/// Pass-through hasher for the profile and trace maps. Their keys are
/// already FNV-mixed 64-bit digests (`SmtCore::cheap_key`), and replay
/// never trusts the key — the exact [`EntryState`] comparison resolves
/// collisions — so SipHash on the per-stepped-cycle probe path buys
/// nothing.
#[derive(Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached for non-u64 keys (none today); FNV keeps it sound.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type KeyMap<V> = HashMap<u64, V, BuildHasherDefault<KeyHasher>>;

/// Profiler + trace cache + recorder bookkeeping for one core.
pub(crate) struct TraceEngine {
    profile: KeyMap<ProfileEntry>,
    traces: KeyMap<CompiledTrace>,
    /// LRU order of `traces` keys, most recent last.
    lru: Vec<u64>,
    pub(crate) recorder: Option<Recorder>,
    pub(crate) stats: TraceStats,
}

impl TraceEngine {
    pub(crate) fn new() -> Self {
        TraceEngine {
            profile: KeyMap::default(),
            traces: KeyMap::default(),
            lru: Vec::new(),
            recorder: None,
            stats: TraceStats::default(),
        }
    }

    /// Whether no traces are compiled at all — the O(1) reason for
    /// [`SmtCore::trace_step`] to skip keying/probing entirely on
    /// workloads the recorder can never cover.
    ///
    /// [`SmtCore::trace_step`]: crate::SmtCore::trace_step
    pub(crate) fn no_traces(&self) -> bool {
        self.traces.is_empty()
    }

    /// Whether a compiled trace exists for `key`.
    pub(crate) fn has_trace(&self, key: u64) -> bool {
        self.traces.contains_key(&key)
    }

    /// Take the trace for `key` out of the cache (the caller reinserts on
    /// successful replay; a rejected trace stays out — natural
    /// invalidation).
    pub(crate) fn take(&mut self, key: u64) -> Option<CompiledTrace> {
        self.traces.remove(&key)
    }

    /// (Re)insert a trace and mark it most-recently used; evicts the
    /// coldest trace beyond [`CACHE_CAP`].
    pub(crate) fn insert(&mut self, key: u64, trace: CompiledTrace) {
        self.lru.retain(|&k| k != key);
        self.lru.push(key);
        self.traces.insert(key, trace);
        if self.lru.len() > CACHE_CAP {
            let cold = self.lru.remove(0);
            self.traces.remove(&cold);
        }
    }

    /// Record an anchor sighting of `key`. Returns `true` when the key is
    /// hot, unpoisoned, and not yet compiled — i.e. recording should start.
    pub(crate) fn profile_hit(&mut self, key: u64) -> bool {
        if self.profile.len() >= PROFILE_CAP && !self.profile.contains_key(&key) {
            // Bounded memory: forget and re-learn rather than grow.
            self.profile.clear();
        }
        let e = self.profile.entry(key).or_default();
        e.hits = e.hits.saturating_add(1);
        e.hits > THRESHOLD && e.aborts < ABORT_LIMIT && !self.traces.contains_key(&key)
    }

    /// Abort the active recording (if any), charging the key's abort
    /// budget toward poisoning.
    pub(crate) fn abort_recording(&mut self) {
        if let Some(rec) = self.recorder.take() {
            self.stats.aborts += 1;
            if let Some(e) = self.profile.get_mut(&rec.key) {
                e.aborts = e.aborts.saturating_add(1);
            }
        }
    }

    /// Drop a trace after a replay-time mismatch (hash collision or a
    /// changed µop stream).
    pub(crate) fn note_mismatch(&mut self, key: u64) {
        self.stats.mismatches += 1;
        self.lru.retain(|&k| k != key);
        // The trace was already taken out by `take`; nothing else holds it.
    }

    /// Invalidate everything: traces, profile, and any active recording.
    /// Called on every structural event (bind/unbind/drain/restore/tier
    /// change) — correctness never depends on *which* events could have
    /// perturbed a trace.
    pub(crate) fn invalidate_all(&mut self) {
        self.traces.clear();
        self.lru.clear();
        self.profile.clear();
        self.recorder = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_state(tag: u64) -> EntryState {
        EntryState {
            ctx: 0,
            asid: 1,
            in_kernel: false,
            starved: false,
            queue: vec![Uop::alu(tag)],
            window: vec![(Uop::alu(tag + 4), Some(3)), (Uop::alu(tag + 8), None)],
        }
    }

    fn dummy_trace(tag: u64) -> CompiledTrace {
        CompiledTrace {
            entry: dummy_state(tag),
            cycles: 20,
            fill_uops: Vec::new(),
            probes: Vec::new(),
            delta: Vec::new(),
            end: dummy_state(tag + 100),
            next_seq_advance: 0,
        }
    }

    #[test]
    fn keys_distinguish_states_and_match_recurrences() {
        let a = dummy_state(0x400);
        let b = dummy_state(0x800);
        assert_eq!(a.key(), dummy_state(0x400).key());
        assert_ne!(a.key(), b.key());
        // Waiting vs executing-at-rel-0 must not collide.
        let mut c = dummy_state(0x400);
        c.window[1].1 = Some(0);
        assert_ne!(a.key(), c.key());
        assert!(a == dummy_state(0x400) && a != c);
    }

    #[test]
    fn threshold_then_record_then_poison() {
        let mut eng = TraceEngine::new();
        let key = 42;
        assert!(!eng.profile_hit(key));
        assert!(!eng.profile_hit(key));
        assert!(eng.profile_hit(key), "third sighting is hot");
        // Keep aborting: after ABORT_LIMIT the key is poisoned.
        for _ in 0..ABORT_LIMIT {
            eng.recorder = Some(Recorder {
                key,
                ctx: 0,
                entry: dummy_state(1),
                entry_bank: CounterBank::new(),
                entry_now: 0,
                entry_next_seq: 0,
                cycles: 0,
                fill_uops: Vec::new(),
                probes: Vec::new(),
            });
            eng.abort_recording();
        }
        assert!(!eng.profile_hit(key), "poisoned key never records again");
        assert_eq!(eng.stats.aborts, ABORT_LIMIT as u64);
    }

    #[test]
    fn lru_evicts_coldest_beyond_cap() {
        let mut eng = TraceEngine::new();
        for k in 0..(CACHE_CAP as u64 + 3) {
            eng.insert(k, dummy_trace(k));
        }
        assert!(!eng.has_trace(0) && !eng.has_trace(1) && !eng.has_trace(2));
        assert!(eng.has_trace(3) && eng.has_trace(CACHE_CAP as u64 + 2));
        // Touch key 3 (take + reinsert), then overflow once more: key 4 is
        // now the coldest.
        let t = eng.take(3).unwrap();
        eng.insert(3, t);
        eng.insert(999, dummy_trace(999));
        assert!(eng.has_trace(3) && !eng.has_trace(4));
    }

    #[test]
    fn probe_runs_compress() {
        let mut rec = Recorder {
            key: 0,
            ctx: 0,
            entry: dummy_state(1),
            entry_bank: CounterBank::new(),
            entry_now: 0,
            entry_next_seq: 0,
            cycles: 0,
            fill_uops: Vec::new(),
            probes: Vec::new(),
        };
        for pc in [16, 16, 16, 32, 16] {
            rec.note_probe(pc);
        }
        assert_eq!(rec.probes, vec![(16, 3), (32, 1), (16, 1)]);
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut eng = TraceEngine::new();
        eng.insert(7, dummy_trace(7));
        eng.profile_hit(7);
        eng.invalidate_all();
        assert!(!eng.has_trace(7));
        assert!(eng.recorder.is_none());
        // Profile restarts from zero.
        assert!(!eng.profile_hit(7));
    }
}
