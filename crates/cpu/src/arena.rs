//! Structure-of-arrays window arena.
//!
//! The instruction window used to be a `VecDeque<Slot>` of fat structs;
//! the issue-stage scan — the hottest loop in the whole simulator —
//! chased `Slot`s through two deque slabs and re-derived the port class,
//! base latency and memory flags of every µop on every cycle. The arena
//! stores the window as parallel arrays over a power-of-two ring:
//!
//! * `uops` keeps the full µop for snapshot fidelity and retirement
//!   accounting;
//! * `done_at` holds the completion cycle, with [`WAITING`] (`u64::MAX`)
//!   as the not-yet-issued sentinel so "is this slot done?" is a single
//!   unsigned compare;
//! * `flags`/`port`/`base_lat`/`dep_dist`/`addr` are the issue-stage
//!   columns, precomputed once at allocation;
//! * `next_w`/`prev_w` form an intrusive doubly-linked list threading
//!   exactly the *waiting* slots in age order, so the batched issue path
//!   visits schedulable µops only, never the executing majority.
//!
//! Invariants the pipeline relies on:
//!
//! * slot sequence numbers are contiguous — `seq(i) = base_seq + i` —
//!   because µops enter at the back and leave only from the front (there
//!   is no mid-window squash in this model);
//! * the waiting list is in age order: links are appended at the tail on
//!   allocation and only ever unlinked on issue, and a waiting front slot
//!   cannot retire, so retirement never touches a linked slot.

use jsmt_isa::{Uop, UopKind};

/// `done_at` sentinel: the slot has not issued yet.
pub(crate) const WAITING: u64 = u64::MAX;

/// Null link in the waiting list.
pub(crate) const NIL: u16 = u16::MAX;

/// Flag bits (see [`WindowArena::flags_at`]).
pub(crate) const F_LOAD: u8 = 1 << 0;
pub(crate) const F_STORE: u8 = 1 << 1;
pub(crate) const F_SER: u8 = 1 << 2;
pub(crate) const F_PRIV: u8 = 1 << 3;
pub(crate) const F_BRANCH: u8 = 1 << 4;

/// Compute the flag byte for a µop.
#[inline]
pub(crate) fn flags_of(uop: &Uop) -> u8 {
    let mut f = 0;
    if matches!(uop.kind, UopKind::Load | UopKind::AtomicRmw) {
        f |= F_LOAD;
    }
    if matches!(uop.kind, UopKind::Store | UopKind::AtomicRmw) {
        f |= F_STORE;
    }
    if uop.kind.is_serializing() {
        f |= F_SER;
    }
    if uop.privileged {
        f |= F_PRIV;
    }
    if uop.kind == UopKind::Branch {
        f |= F_BRANCH;
    }
    f
}

/// The SoA instruction window of one hardware context.
pub(crate) struct WindowArena {
    uops: Vec<Uop>,
    done_at: Vec<u64>,
    flags: Vec<u8>,
    port: Vec<u8>,
    base_lat: Vec<u32>,
    dep_dist: Vec<u8>,
    addr: Vec<u64>,
    next_w: Vec<u16>,
    prev_w: Vec<u16>,
    head_w: u16,
    tail_w: u16,
    head: usize,
    len: usize,
    mask: usize,
    base_seq: u64,
    waiting: usize,
}

impl WindowArena {
    /// An empty arena able to hold at least `capacity` µops.
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        assert!(cap < NIL as usize, "window capacity exceeds u16 links");
        WindowArena {
            uops: vec![Uop::alu(0); cap],
            done_at: vec![0; cap],
            flags: vec![0; cap],
            port: vec![0; cap],
            base_lat: vec![0; cap],
            dep_dist: vec![0; cap],
            addr: vec![0; cap],
            next_w: vec![NIL; cap],
            prev_w: vec![NIL; cap],
            head_w: NIL,
            tail_w: NIL,
            head: 0,
            len: 0,
            mask: cap - 1,
            base_seq: 0,
            waiting: 0,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sequence number of the front slot (meaningless when empty).
    #[inline]
    pub(crate) fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Slots still waiting to issue.
    #[inline]
    pub(crate) fn waiting(&self) -> usize {
        self.waiting
    }

    /// Ring slot of logical index `i` (front = 0).
    #[inline]
    pub(crate) fn ring(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        (self.head + i) & self.mask
    }

    /// Logical index of ring slot `r`.
    #[inline]
    pub(crate) fn logical_of(&self, r: u16) -> usize {
        (r as usize).wrapping_sub(self.head) & self.mask
    }

    #[inline]
    pub(crate) fn uop(&self, i: usize) -> &Uop {
        &self.uops[self.ring(i)]
    }

    /// Completion cycle of logical slot `i` ([`WAITING`] if unissued).
    #[inline]
    pub(crate) fn done_at(&self, i: usize) -> u64 {
        self.done_at[self.ring(i)]
    }

    /// Whether logical slot `i` has completed by `now`. The sentinel makes
    /// this a single compare: a waiting slot's `u64::MAX` is never `<= now`.
    #[inline]
    pub(crate) fn is_done(&self, i: usize, now: u64) -> bool {
        self.done_at[self.ring(i)] <= now
    }

    /// Whether the front slot exists and has completed by `now`.
    #[inline]
    pub(crate) fn front_done(&self, now: u64) -> bool {
        self.len > 0 && self.done_at[self.head] <= now
    }

    // Column accessors by ring slot, for the batched issue walk.

    #[inline]
    pub(crate) fn flags_at(&self, r: u16) -> u8 {
        self.flags[r as usize]
    }

    #[inline]
    pub(crate) fn port_at(&self, r: u16) -> u8 {
        self.port[r as usize]
    }

    #[inline]
    pub(crate) fn base_lat_at(&self, r: u16) -> u32 {
        self.base_lat[r as usize]
    }

    #[inline]
    pub(crate) fn dep_dist_at(&self, r: u16) -> u8 {
        self.dep_dist[r as usize]
    }

    #[inline]
    pub(crate) fn addr_at(&self, r: u16) -> u64 {
        self.addr[r as usize]
    }

    #[inline]
    pub(crate) fn done_at_ring(&self, r: u16) -> u64 {
        self.done_at[r as usize]
    }

    /// First waiting ring slot in age order ([`NIL`] if none).
    #[inline]
    pub(crate) fn first_waiting(&self) -> u16 {
        self.head_w
    }

    /// Waiting-list successor of ring slot `r`.
    #[inline]
    pub(crate) fn next_waiting(&self, r: u16) -> u16 {
        self.next_w[r as usize]
    }

    /// Append a µop (entering in the waiting state) with sequence `seq`.
    pub(crate) fn push_back(&mut self, uop: Uop, seq: u64) {
        debug_assert!(self.len <= self.mask, "window arena overflow");
        if self.len == 0 {
            self.base_seq = seq;
        } else {
            debug_assert_eq!(seq, self.base_seq + self.len as u64, "non-contiguous seq");
        }
        let r = (self.head + self.len) & self.mask;
        self.uops[r] = uop;
        self.done_at[r] = WAITING;
        self.flags[r] = flags_of(&uop);
        self.port[r] = uop.kind.port().index() as u8;
        self.base_lat[r] = uop.kind.base_latency();
        self.dep_dist[r] = uop.dep_dist;
        self.addr[r] = uop.mem.unwrap_or(uop.pc);
        // Link at the tail of the waiting list (youngest).
        let r16 = r as u16;
        self.next_w[r] = NIL;
        self.prev_w[r] = self.tail_w;
        if self.tail_w != NIL {
            self.next_w[self.tail_w as usize] = r16;
        } else {
            self.head_w = r16;
        }
        self.tail_w = r16;
        self.len += 1;
        self.waiting += 1;
    }

    /// Remove and return the front µop. The caller must have checked it is
    /// done (a waiting front cannot retire), so the slot is never linked.
    pub(crate) fn pop_front(&mut self) -> Uop {
        debug_assert!(self.len > 0);
        debug_assert_ne!(self.done_at[self.head], WAITING, "popping a waiting slot");
        let u = self.uops[self.head];
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        self.base_seq += 1;
        u
    }

    /// Drop the front µop without materializing it (the batched retire
    /// path classifies from the flag column and never reads the µop).
    /// Same preconditions as [`WindowArena::pop_front`].
    #[inline]
    pub(crate) fn drop_front(&mut self) {
        debug_assert!(self.len > 0);
        debug_assert_ne!(self.done_at[self.head], WAITING, "popping a waiting slot");
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        self.base_seq += 1;
    }

    /// Mark logical slot `i` as issued, completing at `done_at`.
    #[inline]
    pub(crate) fn mark_issued(&mut self, i: usize, done_at: u64) {
        let r = self.ring(i) as u16;
        self.mark_issued_ring(r, done_at);
    }

    /// Mark ring slot `r` as issued, completing at `done_at`; unlinks it
    /// from the waiting list.
    pub(crate) fn mark_issued_ring(&mut self, r: u16, done_at: u64) {
        let ri = r as usize;
        debug_assert_eq!(self.done_at[ri], WAITING, "double issue");
        debug_assert_ne!(done_at, WAITING, "completion cycle collides with sentinel");
        self.done_at[ri] = done_at;
        let (p, n) = (self.prev_w[ri], self.next_w[ri]);
        if p != NIL {
            self.next_w[p as usize] = n;
        } else {
            self.head_w = n;
        }
        if n != NIL {
            self.prev_w[n as usize] = p;
        } else {
            self.tail_w = p;
        }
        self.next_w[ri] = NIL;
        self.prev_w[ri] = NIL;
        self.waiting -= 1;
    }

    /// Drop every slot (used by snapshot restore and trace apply).
    pub(crate) fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.base_seq = 0;
        self.waiting = 0;
        self.head_w = NIL;
        self.tail_w = NIL;
        for r in 0..self.next_w.len() {
            self.next_w[r] = NIL;
            self.prev_w[r] = NIL;
        }
    }
}

impl std::fmt::Debug for WindowArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowArena")
            .field("len", &self.len)
            .field("waiting", &self.waiting)
            .field("base_seq", &self.base_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiting_list_tracks_issue_order() {
        let mut a = WindowArena::new(16);
        for i in 0..5u64 {
            a.push_back(Uop::alu(i * 4), i);
        }
        assert_eq!(a.waiting(), 5);
        // Age-ordered walk visits logical 0..5.
        let mut seen = Vec::new();
        let mut r = a.first_waiting();
        while r != NIL {
            seen.push(a.logical_of(r));
            r = a.next_waiting(r);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);

        // Issue the middle one; the walk skips it.
        a.mark_issued(2, 100);
        let mut seen = Vec::new();
        let mut r = a.first_waiting();
        while r != NIL {
            seen.push(a.logical_of(r));
            r = a.next_waiting(r);
        }
        assert_eq!(seen, vec![0, 1, 3, 4]);
        assert_eq!(a.waiting(), 4);
        assert!(a.is_done(2, 100));
        assert!(!a.is_done(2, 99));
        assert!(!a.is_done(0, u64::MAX - 1), "waiting sentinel never done");
    }

    #[test]
    fn ring_wraps_and_seqs_stay_contiguous() {
        let mut a = WindowArena::new(8);
        let mut seq = 0u64;
        // Push/pop enough to wrap the ring several times.
        for round in 0..10 {
            for _ in 0..6 {
                a.push_back(Uop::alu(seq * 4), seq);
                seq += 1;
            }
            for k in 0..6 {
                a.mark_issued(k, round);
            }
            for _ in 0..6 {
                a.pop_front();
            }
            assert!(a.is_empty());
        }
        assert_eq!(a.base_seq() + a.len() as u64, seq);
    }

    #[test]
    fn columns_precompute_issue_facts() {
        let mut a = WindowArena::new(8);
        a.push_back(Uop::load(0x40, 0x9000).with_dep(2), 7);
        let r = a.ring(0) as u16;
        assert_eq!(a.flags_at(r) & F_LOAD, F_LOAD);
        assert_eq!(a.port_at(r) as usize, UopKind::Load.port().index());
        assert_eq!(a.base_lat_at(r), UopKind::Load.base_latency());
        assert_eq!(a.dep_dist_at(r), 2);
        assert_eq!(a.addr_at(r), 0x9000);
        assert_eq!(a.done_at_ring(r), WAITING);
    }
}
