//! Synthetic µop streams.
//!
//! A configurable, deterministic µop generator used by the core's unit
//! tests, the calibration tests, and the component benchmarks. Real
//! benchmark streams come from `jsmt-workloads`; the synthetic stream
//! isolates one microarchitectural stimulus at a time (code footprint,
//! data footprint, branchiness, dependence depth), which is exactly what
//! is needed to validate the pipeline and cache models against intuition
//! before trusting them with whole programs.

use jsmt_isa::{Addr, Region, Uop, UopKind, UopSink, DEP_NONE};

/// Deterministic 64-bit PRNG (splitmix64), dependency-free.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Builder for [`SyntheticStream`].
#[derive(Debug, Clone)]
pub struct SyntheticStreamBuilder {
    seed: u64,
    code_footprint: u64,
    data_footprint: u64,
    mem_fraction: f64,
    store_fraction: f64,
    branch_fraction: f64,
    branch_bias: f64,
    fp_fraction: f64,
    dep_chain: f64,
    privileged: bool,
}

impl SyntheticStreamBuilder {
    /// Typical "integer application" defaults: 32 KB code, 256 KB data,
    /// 35 % memory µops, 12 % branches, well-predicted.
    pub fn new(seed: u64) -> Self {
        SyntheticStreamBuilder {
            seed,
            code_footprint: 32 * 1024,
            data_footprint: 256 * 1024,
            mem_fraction: 0.35,
            store_fraction: 0.3,
            branch_fraction: 0.12,
            branch_bias: 0.95,
            fp_fraction: 0.0,
            dep_chain: 0.4,
            privileged: false,
        }
    }

    /// Static code footprint in bytes (drives trace cache and ITLB).
    pub fn code_footprint(mut self, bytes: u64) -> Self {
        self.code_footprint = bytes.max(64);
        self
    }

    /// Data working set in bytes (drives L1D/L2/DTLB).
    pub fn data_footprint(mut self, bytes: u64) -> Self {
        self.data_footprint = bytes.max(64);
        self
    }

    /// Fraction of µops that access memory.
    pub fn mem_fraction(mut self, f: f64) -> Self {
        self.mem_fraction = f.clamp(0.0, 0.9);
        self
    }

    /// Fraction of µops that are branches.
    pub fn branch_fraction(mut self, f: f64) -> Self {
        self.branch_fraction = f.clamp(0.0, 0.5);
        self
    }

    /// Probability that a branch follows its bias (1.0 = perfectly
    /// predictable, 0.5 = coin flip).
    pub fn branch_bias(mut self, p: f64) -> Self {
        self.branch_bias = p.clamp(0.0, 1.0);
        self
    }

    /// Fraction of non-memory µops that are floating point.
    pub fn fp_fraction(mut self, f: f64) -> Self {
        self.fp_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Probability that a µop depends on a recent producer (higher = less
    /// ILP).
    pub fn dep_chain(mut self, f: f64) -> Self {
        self.dep_chain = f.clamp(0.0, 1.0);
        self
    }

    /// Mark all µops privileged (kernel-mode stream).
    pub fn privileged(mut self, p: bool) -> Self {
        self.privileged = p;
        self
    }

    /// Finalize the stream.
    pub fn build(self) -> SyntheticStream {
        let code_base = if self.privileged {
            Region::KernelCode.base()
        } else {
            Region::Code.base()
        };
        let data_base = if self.privileged {
            Region::KernelData.base()
        } else {
            Region::Heap.base()
        };
        // Resolve every static (per-pc) draw once. `next_uop` runs a few
        // times per simulated cycle on both sides of every benchmark; the
        // two splitmix rounds and float conversions per call were a top-5
        // profile entry. Values are identical to the on-the-fly draws.
        let slots = self.code_footprint.div_ceil(4) as usize;
        let mut sites = Vec::with_capacity(slots);
        let unit = |x: u64| (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let branch_cut = self.mem_fraction + (1.0 - self.mem_fraction) * self.branch_fraction;
        let fp_cut = branch_cut + (1.0 - branch_cut) * self.fp_fraction;
        for s in 0..slots {
            let pc = code_base + s as u64 * 4;
            let mut site = SplitMix::new(pc.wrapping_mul(0xA24B_AED4_963E_E407));
            let r_kind = unit(site.next_u64());
            let site_word = site.next_u64();
            sites.push(if r_kind < self.mem_fraction {
                if unit(site_word) < self.store_fraction {
                    Site::Store
                } else {
                    Site::Load
                }
            } else if r_kind < branch_cut {
                let biased = unit(site_word) < self.branch_bias;
                let target = code_base + site.next_u64() % self.code_footprint;
                Site::Branch { biased, target }
            } else if r_kind < fp_cut {
                Site::Fp
            } else {
                Site::Alu
            });
        }
        SyntheticStream {
            rng: SplitMix::new(self.seed),
            cfg: self,
            pc_off: 0,
            code_base,
            data_base,
            sites,
        }
    }
}

/// Precomputed static classification of one code site (see
/// [`SyntheticStreamBuilder::build`]).
#[derive(Debug, Clone, Copy)]
enum Site {
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Branch site with its bias class and (static) target.
    Branch {
        /// Strongly biased site (taken except rare flips).
        biased: bool,
        /// Static branch target.
        target: Addr,
    },
    /// Floating-point µop.
    Fp,
    /// Plain ALU µop.
    Alu,
}

/// An infinite synthetic µop stream.
///
/// The program counter walks sequentially through the configured code
/// footprint and loops back with a taken branch, so trace-cache behaviour
/// matches a program whose hot code is `code_footprint` bytes. Data
/// addresses are drawn uniformly from the data footprint.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    rng: SplitMix,
    cfg: SyntheticStreamBuilder,
    pc_off: u64,
    code_base: Addr,
    data_base: Addr,
    sites: Vec<Site>,
}

impl SyntheticStream {
    /// Start configuring a stream.
    pub fn builder(seed: u64) -> SyntheticStreamBuilder {
        SyntheticStreamBuilder::new(seed)
    }

    #[inline]
    fn next_slot(&mut self) -> usize {
        let slot = (self.pc_off >> 2) as usize;
        self.pc_off += 4;
        if self.pc_off >= self.cfg.code_footprint {
            self.pc_off = 0;
        }
        slot
    }

    /// Generate one µop.
    ///
    /// The µop *kind*, a branch's *target* and its *bias class* are stable
    /// functions of the pc — static program properties, resolved once at
    /// build time into the site table — while data addresses, dependence
    /// distances and branch outcomes vary per visit, as in real execution.
    /// This is what lets the BTB and direction predictor learn, and the
    /// trace cache see a stable code footprint.
    pub fn next_uop(&mut self) -> Uop {
        let slot = self.next_slot();
        let pc = self.code_base + slot as u64 * 4;
        let dep = if self.rng.chance(self.cfg.dep_chain) {
            1 + self.rng.below(4) as u8
        } else {
            DEP_NONE
        };

        let mut uop = match self.sites[slot] {
            Site::Load => {
                let addr = self.data_base + (self.rng.below(self.cfg.data_footprint) & !7);
                Uop::load(pc, addr)
            }
            Site::Store => {
                let addr = self.data_base + (self.rng.below(self.cfg.data_footprint) & !7);
                Uop::store(pc, addr)
            }
            Site::Branch { biased, target } => {
                let taken = if biased {
                    // Biased sites still flip occasionally (loop exits).
                    !self.rng.chance(0.02)
                } else {
                    self.rng.chance(0.5)
                };
                Uop::branch(pc, target, taken)
            }
            Site::Fp => Uop {
                kind: UopKind::FpMul,
                ..Uop::alu(pc)
            },
            Site::Alu => Uop::alu(pc),
        };
        uop.dep_dist = dep;
        uop.privileged = self.cfg.privileged;
        uop
    }

    /// Append up to `max` µops to `buf`; always delivers (infinite stream).
    /// Generic over the destination so the core's fetch ring, a `Vec`, or
    /// a `VecDeque` all work without an intermediate copy.
    pub fn fill<S: UopSink>(&mut self, buf: &mut S, max: usize) -> usize {
        for _ in 0..max {
            let u = self.next_uop();
            buf.push_uop(u);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsmt_isa::InstrMix;

    #[test]
    fn stream_is_deterministic() {
        let mut a = SyntheticStream::builder(42).build();
        let mut b = SyntheticStream::builder(42).build();
        for _ in 0..1000 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn mix_tracks_configuration() {
        let mut s = SyntheticStream::builder(1)
            .mem_fraction(0.5)
            .branch_fraction(0.2)
            .build();
        let mut mix = InstrMix::new();
        for _ in 0..20_000 {
            mix.record(&s.next_uop());
        }
        assert!(
            (mix.mem_fraction() - 0.5).abs() < 0.03,
            "mem {}",
            mix.mem_fraction()
        );
        // Branch draw happens only on the non-memory path: 0.5 * 0.2 = 0.1.
        assert!(
            (mix.branch_fraction() - 0.1).abs() < 0.02,
            "br {}",
            mix.branch_fraction()
        );
    }

    #[test]
    fn pc_stays_in_footprint_and_wraps() {
        let mut s = SyntheticStream::builder(1).code_footprint(1024).build();
        let base = jsmt_isa::Region::Code.base();
        let mut wrapped = false;
        let mut last = 0;
        for _ in 0..600 {
            let u = s.next_uop();
            assert!(u.pc >= base && u.pc < base + 1024);
            if u.pc < last {
                wrapped = true;
            }
            last = u.pc;
        }
        assert!(
            wrapped,
            "600 µops at 4 bytes each must wrap a 1 KB footprint"
        );
    }

    #[test]
    fn privileged_stream_uses_kernel_addresses() {
        let mut s = SyntheticStream::builder(1).privileged(true).build();
        for _ in 0..200 {
            let u = s.next_uop();
            assert!(u.privileged);
            assert!(jsmt_isa::Region::is_kernel(u.pc));
            if let Some(a) = u.mem {
                assert!(jsmt_isa::Region::is_kernel(a));
            }
        }
    }

    #[test]
    fn fill_delivers_exactly_max() {
        let mut s = SyntheticStream::builder(1).build();
        let mut buf = Vec::new();
        assert_eq!(s.fill(&mut buf, 17), 17);
        assert_eq!(buf.len(), 17);
    }
}
