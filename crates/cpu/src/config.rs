//! Core (pipeline) configuration.

/// How window/buffer resources are divided between the two contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// The Pentium 4 design: when Hyper-Threading is enabled, each context
    /// owns exactly half of the window and load/store buffers, whether or
    /// not the sibling context is running anything. This is the design the
    /// paper identifies as the cause of single-threaded slowdowns (§4.3).
    Static,
    /// The paper's proposed hardware fix: a context may use the whole
    /// window when the sibling is idle; capacity is split only while both
    /// contexts are bound.
    Dynamic,
}

/// Structural parameters of the modeled core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Whether Hyper-Threading is enabled (two usable contexts).
    pub ht_enabled: bool,
    /// Resource-division policy under Hyper-Threading.
    pub partition: Partition,
    /// Total reorder-window capacity in µops (P4: 126).
    pub window_uops: usize,
    /// Total load-buffer entries (P4: 48).
    pub load_buffers: usize,
    /// Total store-buffer entries (P4: 24).
    pub store_buffers: usize,
    /// µops fetched per cycle from the trace cache (P4: 3).
    pub fetch_width: usize,
    /// µops retired per cycle (P4: 3).
    pub retire_width: usize,
    /// Total µops that may begin execution per cycle.
    pub issue_width: usize,
    /// Per-cycle issue quota per [`jsmt_isa::PortClass`], indexed by
    /// `PortClass::index()`: `[IntFast, IntSlow, Fp, Load, Store]`.
    pub port_quota: [u8; 5],
    /// Cycles from mispredicted-branch resolution to useful fetch (the
    /// P4's famously long pipeline makes this ~20).
    pub redirect_penalty: u32,
    /// Maximum window slots the scheduler examines per context per cycle
    /// (models finite scheduler bandwidth and bounds simulation cost).
    pub scheduler_scan: usize,
}

impl CoreConfig {
    /// A Pentium 4 (Northwood, 2.8 GHz)-like core.
    pub fn p4(ht_enabled: bool) -> Self {
        CoreConfig {
            ht_enabled,
            partition: Partition::Static,
            window_uops: 126,
            load_buffers: 48,
            store_buffers: 24,
            fetch_width: 3,
            retire_width: 3,
            issue_width: 6,
            // Two double-pumped fast ALUs, one slow int, one FP, one load
            // AGU, one store AGU.
            port_quota: [4, 1, 2, 1, 1],
            redirect_penalty: 20,
            scheduler_scan: 48,
        }
    }

    /// Builder-style: set the partition policy.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// Capacity of one context's window given whether the sibling context
    /// is currently bound.
    pub fn window_share(&self, sibling_bound: bool) -> usize {
        self.share(self.window_uops, sibling_bound)
    }

    /// Capacity of one context's load buffers.
    pub fn load_share(&self, sibling_bound: bool) -> usize {
        self.share(self.load_buffers, sibling_bound)
    }

    /// Capacity of one context's store buffers.
    pub fn store_share(&self, sibling_bound: bool) -> usize {
        self.share(self.store_buffers, sibling_bound)
    }

    fn share(&self, total: usize, sibling_bound: bool) -> usize {
        if !self.ht_enabled {
            return total;
        }
        match self.partition {
            Partition::Static => total / 2,
            Partition::Dynamic => {
                if sibling_bound {
                    total / 2
                } else {
                    total
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ht_off_gives_full_resources() {
        let c = CoreConfig::p4(false);
        assert_eq!(c.window_share(false), 126);
        assert_eq!(c.load_share(false), 48);
        assert_eq!(c.store_share(false), 24);
    }

    #[test]
    fn static_partition_halves_even_when_sibling_idle() {
        let c = CoreConfig::p4(true);
        assert_eq!(c.window_share(false), 63);
        assert_eq!(c.window_share(true), 63);
        assert_eq!(c.store_share(false), 12);
    }

    #[test]
    fn dynamic_partition_recombines_when_idle() {
        let c = CoreConfig::p4(true).with_partition(Partition::Dynamic);
        assert_eq!(c.window_share(false), 126);
        assert_eq!(c.window_share(true), 63);
    }

    #[test]
    fn p4_widths() {
        let c = CoreConfig::p4(true);
        assert_eq!(c.fetch_width, 3);
        assert_eq!(c.retire_width, 3);
        assert!(c.port_quota.iter().map(|&q| q as usize).sum::<usize>() >= c.issue_width);
    }
}
