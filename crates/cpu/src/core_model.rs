//! The SMT core pipeline model.

use std::collections::VecDeque;

use jsmt_isa::{Asid, Uop, UopKind, DEP_NONE};
use jsmt_mem::{AccessKind, MemConfig, MemoryHierarchy};
use jsmt_perfmon::{CounterBank, Event, LogicalCpu};

use crate::{CoreConfig, FetchQueue};

/// µop supply callback: append up to `max` µops of the software thread
/// currently bound to `lcpu` directly into the context's fetch queue,
/// returning how many were added (zero-copy delivery — there is no
/// intermediate staging buffer). Returning 0 means the thread cannot
/// supply µops now (blocked or finished); the OS layer reacts by
/// unbinding it.
pub type FillFn<'a> = dyn FnMut(LogicalCpu, &mut FetchQueue, usize) -> usize + 'a;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Waiting,
    Executing { done_at: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    uop: Uop,
    seq: u64,
    state: SlotState,
}

impl Slot {
    #[inline]
    fn done(&self, now: u64) -> bool {
        matches!(self.state, SlotState::Executing { done_at } if done_at <= now)
    }
}

#[derive(Debug)]
struct Context {
    bound: bool,
    draining: bool,
    asid: Asid,
    fetch_queue: FetchQueue,
    window: VecDeque<Slot>,
    loads_in_window: usize,
    stores_in_window: usize,
    /// Window slots in [`SlotState::Waiting`], maintained incrementally
    /// (+1 on allocation, −1 on issue; retirement only removes completed
    /// slots). Lets both the issue-stage scan and the fast-forward
    /// quietness check short-circuit in O(1) when nothing can issue.
    waiting: usize,
    fetch_stall_until: u64,
    /// Sequence number of an unresolved mispredicted branch; fetch is
    /// halted until it resolves (we never fetch down the wrong path, so
    /// the full redirect cost is modeled as a fetch bubble).
    redirect_pending: Option<u64>,
    next_seq: u64,
    in_kernel: bool,
    starved: bool,
}

impl Context {
    fn new() -> Self {
        Context {
            bound: false,
            draining: false,
            asid: Asid(1),
            fetch_queue: FetchQueue::new(),
            window: VecDeque::with_capacity(130),
            loads_in_window: 0,
            stores_in_window: 0,
            waiting: 0,
            fetch_stall_until: 0,
            redirect_pending: None,
            next_seq: 0,
            in_kernel: false,
            starved: false,
        }
    }

    #[inline]
    fn front_seq(&self) -> u64 {
        self.window.front().map(|s| s.seq).unwrap_or(self.next_seq)
    }

    #[inline]
    fn drained(&self) -> bool {
        self.window.is_empty() && self.fetch_queue.is_empty()
    }
}

/// Observable state of one context, for the OS scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextSnapshot {
    /// A software thread is bound.
    pub bound: bool,
    /// The bound thread's address space.
    pub asid: Asid,
    /// µops currently in the window.
    pub window_occupancy: usize,
    /// The source failed to supply µops at the last fetch attempt.
    pub starved: bool,
    /// A drain has been requested and is not yet complete.
    pub draining: bool,
    /// Window and fetch queue are both empty.
    pub drained: bool,
}

/// The two-context SMT core.
#[derive(Debug)]
pub struct SmtCore {
    cfg: CoreConfig,
    mem: MemoryHierarchy,
    ctxs: [Context; 2],
    bank: CounterBank,
    now: u64,
    fill_chunk: usize,
    /// Whether [`SmtCore::fast_forward`] may skip quiet cycles. Purely a
    /// wall-clock optimization: results are bit-identical either way.
    fastfwd: bool,
}

impl SmtCore {
    /// Build a core from pipeline and memory configurations.
    ///
    /// The stall fast-forward path is enabled unless the
    /// `JSMT_NO_FASTFWD=1` environment variable is set (the escape hatch
    /// for A/B-ing the optimization; see [`SmtCore::fast_forward`]).
    pub fn new(core_cfg: CoreConfig, mem_cfg: MemConfig) -> Self {
        SmtCore {
            cfg: core_cfg,
            mem: MemoryHierarchy::new(mem_cfg),
            ctxs: [Context::new(), Context::new()],
            bank: CounterBank::new(),
            now: 0,
            fill_chunk: 48,
            fastfwd: std::env::var_os("JSMT_NO_FASTFWD").is_none_or(|v| v != "1"),
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The memory hierarchy (read-only; for diagnostics).
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Elapsed machine cycles.
    pub fn cycles(&self) -> u64 {
        self.now
    }

    /// The raw event counters.
    pub fn counters(&self) -> &CounterBank {
        &self.bank
    }

    /// Bind a software thread (identified only by its address space here;
    /// thread identity lives in the OS layer) to a context.
    ///
    /// # Panics
    ///
    /// Panics if the context is already bound or not yet drained, or if
    /// `lcpu` is `Lp1` while Hyper-Threading is disabled.
    pub fn bind(&mut self, lcpu: LogicalCpu, asid: Asid) {
        assert!(
            self.cfg.ht_enabled || lcpu == LogicalCpu::Lp0,
            "logical CPU 1 does not exist with Hyper-Threading disabled"
        );
        let ctx = &mut self.ctxs[lcpu.index()];
        assert!(!ctx.bound, "context {lcpu:?} already bound");
        assert!(ctx.drained(), "context {lcpu:?} not drained before bind");
        debug_assert_eq!(ctx.waiting, 0, "drained context has waiting µops");
        ctx.bound = true;
        ctx.draining = false;
        ctx.asid = asid;
        ctx.starved = false;
        ctx.in_kernel = false;
        ctx.fetch_stall_until = self.now;
        ctx.redirect_pending = None;
    }

    /// Request that a context stop fetching so it can be unbound. The
    /// in-flight µops continue to execute and retire.
    pub fn request_drain(&mut self, lcpu: LogicalCpu) {
        self.ctxs[lcpu.index()].draining = true;
    }

    /// Detach the thread from a context.
    ///
    /// # Panics
    ///
    /// Panics if the context still has µops in flight (request a drain and
    /// wait for [`ContextSnapshot::drained`] first).
    pub fn unbind(&mut self, lcpu: LogicalCpu) {
        let ctx = &mut self.ctxs[lcpu.index()];
        assert!(ctx.bound, "context {lcpu:?} not bound");
        assert!(
            ctx.drained(),
            "unbinding context {lcpu:?} with µops in flight"
        );
        ctx.bound = false;
        ctx.draining = false;
        ctx.starved = false;
    }

    /// Snapshot a context's scheduling-relevant state.
    pub fn snapshot(&self, lcpu: LogicalCpu) -> ContextSnapshot {
        let ctx = &self.ctxs[lcpu.index()];
        ContextSnapshot {
            bound: ctx.bound,
            asid: ctx.asid,
            window_occupancy: ctx.window.len(),
            starved: ctx.starved,
            draining: ctx.draining,
            drained: ctx.drained(),
        }
    }

    /// Whether both contexts currently have threads bound.
    pub fn dual_thread(&self) -> bool {
        self.ctxs[0].bound && self.ctxs[1].bound
    }

    /// Enable or disable the stall fast-forward path (default: enabled,
    /// unless `JSMT_NO_FASTFWD=1` is set in the environment). The setting
    /// never changes simulated results — only wall-clock speed.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fastfwd = enabled;
    }

    /// Whether the stall fast-forward path is enabled.
    pub fn fast_forward_enabled(&self) -> bool {
        self.fastfwd
    }

    /// Try to advance the machine by up to `max` cycles in one jump,
    /// without a fill callback. Returns the number of cycles skipped;
    /// `0` means the next cycle may do real work (or fast-forward is
    /// disabled) and the caller must run [`SmtCore::cycle`] instead.
    ///
    /// A span of cycles is skippable only when every per-cycle effect of
    /// the step-by-step machine is *provably replayable in bulk*:
    ///
    /// * no window slot is waiting to issue (in-order retirement means
    ///   mid-window completions cannot unblock anything either),
    /// * no window head completes inside the span (no retirement),
    /// * no pending redirect resolves inside the span,
    /// * no context is draining (drain completion must be observed
    ///   cycle-exactly by the OS scheduler), and
    /// * at most one context could fetch — and then only when its fetch
    ///   stage provably repeats the same alloc-stalled, trace-cache-hit
    ///   probe every cycle (the queue is above the refill threshold, the
    ///   head µop is blocked on a window/load/store share, and the probe
    ///   would hit).
    ///
    /// The horizon is the earliest "interesting" cycle: the minimum over
    /// window-head completion times, redirect resolution times, and
    /// fetch-stall expiries, capped at `max`. Every counter the skipped
    /// cycles would have touched (`ClockCycles`, `ActiveCycles`,
    /// `DualThreadCycles`, `OsCycles`, `CyclesRetire0`, and — for the
    /// alloc-stalled replay — `TcLookups`/`AllocStallCycles` plus the
    /// trace-cache LRU touch) is bulk-added, keeping the machine state
    /// bit-identical to stepping cycle by cycle.
    pub fn fast_forward(&mut self, max: u64) -> u64 {
        if !self.fastfwd || max == 0 {
            return 0;
        }
        let now = self.now;
        let mut next_event = u64::MAX;
        let mut fetcher = None;
        for i in 0..2 {
            let c = &self.ctxs[i];
            if c.draining || c.waiting > 0 {
                return 0;
            }
            if let Some(front) = c.window.front() {
                match front.state {
                    SlotState::Executing { done_at } if done_at > now => {
                        next_event = next_event.min(done_at);
                    }
                    // Head done (retire acts) or waiting (can't happen
                    // with waiting == 0, but never skip on it).
                    _ => return 0,
                }
            }
            if let Some(seq) = c.redirect_pending {
                let front = c.front_seq();
                if seq < front {
                    return 0; // resolves this cycle (branch retired)
                }
                match c.window.get((seq - front) as usize).map(|s| s.state) {
                    Some(SlotState::Executing { done_at }) if done_at > now => {
                        next_event = next_event.min(done_at);
                    }
                    _ => return 0, // resolves this cycle
                }
            } else if c.bound {
                if c.fetch_stall_until > now {
                    next_event = next_event.min(c.fetch_stall_until);
                } else if fetcher.replace(i).is_some() {
                    // Two eligible fetchers would interleave trace-cache
                    // probes by cycle parity; not worth replaying.
                    return 0;
                }
            }
        }

        // Mode check for the lone eligible fetcher: its fetch stage must
        // repeat the identical alloc-stalled, TC-hit probe each cycle.
        let mut alloc_stalled = None;
        if let Some(i) = fetcher {
            let c = &self.ctxs[i];
            let want = self.fill_chunk.saturating_sub(c.fetch_queue.len());
            if want >= self.cfg.fetch_width {
                return 0; // a refill would consult the µop source
            }
            let Some(&head) = c.fetch_queue.front() else {
                return 0; // unreachable below the refill threshold
            };
            let sibling_bound = self.ctxs[1 - i].bound;
            let is_load = matches!(head.kind, UopKind::Load | UopKind::AtomicRmw);
            let is_store = matches!(head.kind, UopKind::Store | UopKind::AtomicRmw);
            let blocked = c.window.len() >= self.cfg.window_share(sibling_bound)
                || (is_load && c.loads_in_window >= self.cfg.load_share(sibling_bound))
                || (is_store && c.stores_in_window >= self.cfg.store_share(sibling_bound));
            if !blocked {
                return 0; // allocation would make progress
            }
            let lcpu = LogicalCpu::from_index(i);
            if !self.mem.fetch_would_hit(head.pc, c.asid, lcpu) {
                return 0; // a TC miss starts a new stall: step it
            }
            alloc_stalled = Some((i, head.pc));
        }

        if next_event <= now {
            return 0;
        }
        let span = (next_event - now).min(max);

        // Bulk-replay the per-cycle accounting of `span` quiet cycles.
        if self.ctxs[0].bound && self.ctxs[1].bound {
            self.bank
                .add(LogicalCpu::Lp0, Event::DualThreadCycles, span);
        }
        for i in 0..2 {
            if self.ctxs[i].bound {
                let lcpu = LogicalCpu::from_index(i);
                self.bank.add(lcpu, Event::ClockCycles, span);
                self.bank.add(lcpu, Event::ActiveCycles, span);
                if self.ctxs[i].in_kernel {
                    self.bank.add(lcpu, Event::OsCycles, span);
                }
            }
        }
        // Every skipped cycle is a zero-retirement cycle.
        self.bank.add(LogicalCpu::Lp0, Event::CyclesRetire0, span);
        if let Some((i, pc)) = alloc_stalled {
            let lcpu = LogicalCpu::from_index(i);
            let asid = self.ctxs[i].asid;
            self.mem
                .fetch_repeat_hit(pc, asid, lcpu, span, &mut self.bank);
            self.bank.add(lcpu, Event::AllocStallCycles, span);
            // What the recomputed starvation flag would be each cycle
            // (queue nonempty, nothing delivered).
            self.ctxs[i].starved = false;
        }

        self.now = now + span;
        span
    }

    /// Advance the machine by one cycle. `fill` supplies µops for bound,
    /// fetching contexts.
    pub fn cycle(&mut self, fill: &mut FillFn<'_>) {
        let now = self.now;

        // --- per-cycle accounting -------------------------------------
        let both = self.dual_thread();
        if both {
            self.bank.inc(LogicalCpu::Lp0, Event::DualThreadCycles);
        }
        for lcpu in LogicalCpu::BOTH {
            let ctx = &self.ctxs[lcpu.index()];
            if ctx.bound {
                self.bank.inc(lcpu, Event::ClockCycles);
                self.bank.inc(lcpu, Event::ActiveCycles);
                if ctx.in_kernel {
                    self.bank.inc(lcpu, Event::OsCycles);
                }
            }
        }

        self.resolve_redirects(now);
        self.fetch_stage(now, fill);
        self.issue_stage(now);
        self.retire_stage(now);

        self.now = now + 1;
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch_candidate(&self, now: u64) -> Option<usize> {
        let can_fetch = |i: usize| {
            let c = &self.ctxs[i];
            c.bound && c.fetch_stall_until <= now && c.redirect_pending.is_none()
        };
        let first = (now & 1) as usize;
        let order = [first, 1 - first];
        order.into_iter().find(|&i| can_fetch(i))
    }

    fn fetch_stage(&mut self, now: u64, fill: &mut FillFn<'_>) {
        let Some(i) = self.fetch_candidate(now) else {
            return;
        };
        let lcpu = LogicalCpu::from_index(i);

        // Refill the fetch queue from the thread's µop source, which
        // writes directly into the context's ring buffer (zero-copy).
        let want = self
            .fill_chunk
            .saturating_sub(self.ctxs[i].fetch_queue.len());
        let mut delivered = 0;
        if want >= self.cfg.fetch_width && !self.ctxs[i].draining {
            let before = self.ctxs[i].fetch_queue.len();
            let got = fill(lcpu, &mut self.ctxs[i].fetch_queue, want);
            delivered = self.ctxs[i].fetch_queue.len() - before;
            debug_assert!(
                got <= want && delivered <= want,
                "source overfilled the fetch buffer"
            );
            let _ = got;
        }
        // Recompute starvation unconditionally: skipping the refill (queue
        // above threshold, or draining) must not leave a stale flag for
        // the scheduler to observe.
        self.ctxs[i].starved = delivered == 0 && self.ctxs[i].fetch_queue.is_empty();
        if self.ctxs[i].fetch_queue.is_empty() {
            return;
        }

        // One trace-cache probe per fetch cycle, at the group's leading pc.
        let asid = self.ctxs[i].asid;
        let first_pc = self.ctxs[i].fetch_queue.front().expect("nonempty").pc;
        let outcome = self.mem.fetch(first_pc, asid, lcpu, &mut self.bank);
        if !outcome.tc_hit {
            self.ctxs[i].fetch_stall_until = now + outcome.penalty as u64;
            self.bank
                .add(lcpu, Event::FetchStallCycles, outcome.penalty as u64);
            return;
        }

        // Allocate up to fetch_width µops into the window.
        let sibling_bound = self.ctxs[1 - i].bound;
        let window_cap = self.cfg.window_share(sibling_bound);
        let load_cap = self.cfg.load_share(sibling_bound);
        let store_cap = self.cfg.store_share(sibling_bound);

        let mut fetched = 0;
        while fetched < self.cfg.fetch_width {
            let ctx = &mut self.ctxs[i];
            let Some(&uop) = ctx.fetch_queue.front() else {
                break;
            };
            if ctx.window.len() >= window_cap {
                self.bank.inc(lcpu, Event::AllocStallCycles);
                break;
            }
            let is_load = matches!(uop.kind, UopKind::Load | UopKind::AtomicRmw);
            let is_store = matches!(uop.kind, UopKind::Store | UopKind::AtomicRmw);
            if (is_load && ctx.loads_in_window >= load_cap)
                || (is_store && ctx.stores_in_window >= store_cap)
            {
                self.bank.inc(lcpu, Event::AllocStallCycles);
                break;
            }

            let ctx = &mut self.ctxs[i];
            ctx.fetch_queue.pop_front();
            ctx.in_kernel = uop.privileged;
            if is_load {
                ctx.loads_in_window += 1;
            }
            if is_store {
                ctx.stores_in_window += 1;
            }
            let seq = ctx.next_seq;
            ctx.next_seq += 1;

            let mut mispredict = false;
            if let Some(info) = uop.branch {
                let predicted_target = self.mem.btb.lookup(uop.pc, asid, lcpu);
                self.bank.inc(lcpu, Event::BtbLookups);
                if predicted_target.is_none() {
                    self.bank.inc(lcpu, Event::BtbMisses);
                }
                let dir_ok = self
                    .mem
                    .predictor
                    .predict_and_update(uop.pc, lcpu, info.kind, info.taken);
                let target_ok = !info.taken || predicted_target == Some(info.target);
                if info.taken {
                    self.mem.btb.update(uop.pc, asid, lcpu, info.target);
                }
                mispredict = !dir_ok || !target_ok;
            }

            let ctx = &mut self.ctxs[i];
            ctx.window.push_back(Slot {
                uop,
                seq,
                state: SlotState::Waiting,
            });
            ctx.waiting += 1;
            fetched += 1;

            if mispredict {
                ctx.redirect_pending = Some(seq);
                self.bank.inc(lcpu, Event::BranchMispredicts);
                self.bank.inc(lcpu, Event::Squashes);
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn issue_stage(&mut self, now: u64) {
        let mut port_budget = self.cfg.port_quota;
        let mut issue_budget = self.cfg.issue_width;
        let first = (now & 1) as usize;
        for &i in &[first, 1 - first] {
            if issue_budget == 0 {
                break;
            }
            if !self.ctxs[i].bound && self.ctxs[i].window.is_empty() {
                continue;
            }
            self.issue_context(i, now, &mut port_budget, &mut issue_budget);
        }
    }

    fn issue_context(
        &mut self,
        i: usize,
        now: u64,
        port_budget: &mut [u8; 5],
        issue_budget: &mut usize,
    ) {
        if self.ctxs[i].waiting == 0 {
            // Nothing to schedule, and with in-order retirement a
            // mid-window completion can't unblock anything: the scan
            // below would be a pure read. Skip it in O(1) — the same
            // invariant the fast-forward quietness check relies on.
            return;
        }
        let lcpu = LogicalCpu::from_index(i);
        let asid = self.ctxs[i].asid;
        let front_seq = self.ctxs[i].front_seq();
        // The scan budget models finite scheduler bandwidth: only *waiting*
        // µops consume it (issued µops have left the scheduling queues).
        let mut scan_budget = self.cfg.scheduler_scan;

        for idx in 0..self.ctxs[i].window.len() {
            if *issue_budget == 0 || scan_budget == 0 {
                return;
            }
            // Gather the facts we need without holding a borrow across the
            // memory-model call below.
            let (kind, dep_dist, mem_addr, pc, waiting) = {
                let slot = &self.ctxs[i].window[idx];
                (
                    slot.uop.kind,
                    slot.uop.dep_dist,
                    slot.uop.mem,
                    slot.uop.pc,
                    matches!(slot.state, SlotState::Waiting),
                )
            };

            // A serializing µop must be the oldest in the window, and
            // blocks everything younger until it completes.
            if kind.is_serializing() && idx != 0 {
                return;
            }

            if !waiting {
                if kind.is_serializing() && !self.ctxs[i].window[idx].done(now) {
                    return;
                }
                continue;
            }
            scan_budget -= 1;

            // Data dependence: the producer must have completed. A
            // producer that already retired (or a distance reaching past
            // the start of the stream) is trivially satisfied.
            if dep_dist != DEP_NONE {
                let cur_seq = front_seq + idx as u64;
                if let Some(producer_seq) = cur_seq.checked_sub(dep_dist as u64) {
                    if producer_seq >= front_seq {
                        let pidx = (producer_seq - front_seq) as usize;
                        if !self.ctxs[i].window[pidx].done(now) {
                            continue;
                        }
                    }
                }
            }

            let port = kind.port().index();
            if port_budget[port] == 0 {
                continue;
            }

            // Compute execution latency; memory µops consult the hierarchy.
            let mut latency = kind.base_latency();
            match kind {
                UopKind::Load | UopKind::AtomicRmw => {
                    let addr = mem_addr.unwrap_or(pc);
                    latency +=
                        self.mem
                            .data_access(addr, asid, lcpu, AccessKind::Read, &mut self.bank);
                }
                UopKind::Store => {
                    let addr = mem_addr.unwrap_or(pc);
                    // The store buffer hides the miss latency from the
                    // pipeline; the access still exercises (and pollutes)
                    // the cache hierarchy.
                    let _ =
                        self.mem
                            .data_access(addr, asid, lcpu, AccessKind::Write, &mut self.bank);
                }
                _ => {}
            }

            port_budget[port] -= 1;
            *issue_budget -= 1;
            self.ctxs[i].window[idx].state = SlotState::Executing {
                done_at: now + latency as u64,
            };
            self.ctxs[i].waiting -= 1;

            if kind.is_serializing() {
                // Nothing younger may issue this cycle.
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Redirect resolution
    // ------------------------------------------------------------------

    fn resolve_redirects(&mut self, now: u64) {
        for i in 0..2 {
            let Some(seq) = self.ctxs[i].redirect_pending else {
                continue;
            };
            let front = self.ctxs[i].front_seq();
            let resolved_at = if seq < front {
                // The branch already retired.
                Some(now)
            } else {
                let idx = (seq - front) as usize;
                match self.ctxs[i].window.get(idx) {
                    Some(slot) => match slot.state {
                        SlotState::Executing { done_at } if done_at <= now => Some(done_at),
                        _ => None,
                    },
                    None => Some(now),
                }
            };
            if let Some(at) = resolved_at {
                let penalty = self.cfg.redirect_penalty as u64;
                let ctx = &mut self.ctxs[i];
                ctx.redirect_pending = None;
                ctx.fetch_stall_until = ctx.fetch_stall_until.max(at + penalty);
                self.bank
                    .add(LogicalCpu::from_index(i), Event::FetchStallCycles, penalty);
            }
        }
    }

    // ------------------------------------------------------------------
    // Retire
    // ------------------------------------------------------------------

    fn retire_stage(&mut self, now: u64) {
        // The P4 alternates retirement between logical CPUs when both are
        // active; a lone thread retires every cycle.
        let a = self.ctxs[0]
            .window
            .front()
            .map(|s| s.done(now))
            .unwrap_or(false);
        let b = self.ctxs[1]
            .window
            .front()
            .map(|s| s.done(now))
            .unwrap_or(false);
        let i = match (a, b) {
            (true, true) => (now & 1) as usize,
            (true, false) => 0,
            (false, true) => 1,
            (false, false) => {
                self.bank.inc(LogicalCpu::Lp0, Event::CyclesRetire0);
                return;
            }
        };
        let lcpu = LogicalCpu::from_index(i);
        let mut retired = 0usize;
        while retired < self.cfg.retire_width {
            let ctx = &mut self.ctxs[i];
            let Some(front) = ctx.window.front() else {
                break;
            };
            if !front.done(now) {
                break;
            }
            let slot = ctx.window.pop_front().expect("front exists");
            match slot.uop.kind {
                UopKind::Load => {
                    ctx.loads_in_window -= 1;
                    self.bank.inc(lcpu, Event::LoadsRetired);
                }
                UopKind::Store => {
                    ctx.stores_in_window -= 1;
                    self.bank.inc(lcpu, Event::StoresRetired);
                }
                UopKind::AtomicRmw => {
                    ctx.loads_in_window -= 1;
                    ctx.stores_in_window -= 1;
                    self.bank.inc(lcpu, Event::LoadsRetired);
                    self.bank.inc(lcpu, Event::StoresRetired);
                }
                UopKind::Branch => self.bank.inc(lcpu, Event::BranchesRetired),
                _ => {}
            }
            self.bank.inc(lcpu, Event::UopsRetired);
            self.bank.inc(lcpu, Event::InstrRetired);
            if slot.uop.privileged {
                self.bank.inc(lcpu, Event::UopsRetiredKernel);
            }
            retired += 1;
        }
        let hist = match retired.min(3) {
            0 => Event::CyclesRetire0,
            1 => Event::CyclesRetire1,
            2 => Event::CyclesRetire2,
            _ => Event::CyclesRetire3,
        };
        self.bank.inc(LogicalCpu::Lp0, hist);
    }
}

impl jsmt_snapshot::Snapshotable for Context {
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_bool(self.bound);
        w.put_bool(self.draining);
        w.put_u16(self.asid.0);
        self.fetch_queue.save_state(w);
        w.put_usize(self.window.len());
        for slot in &self.window {
            slot.uop.write_to(w);
            w.put_u64(slot.seq);
            match slot.state {
                SlotState::Waiting => w.put_bool(false),
                SlotState::Executing { done_at } => {
                    w.put_bool(true);
                    w.put_u64(done_at);
                }
            }
        }
        w.put_u64(self.fetch_stall_until);
        w.put_opt_u64(self.redirect_pending);
        w.put_u64(self.next_seq);
        w.put_bool(self.in_kernel);
        w.put_bool(self.starved);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        self.bound = r.get_bool()?;
        self.draining = r.get_bool()?;
        self.asid = Asid(r.get_u16()?);
        self.fetch_queue.restore_state(r)?;
        let n = r.get_len(10)?;
        self.window.clear();
        // `waiting` and the load/store occupancy counts are derived from
        // the window contents, so they are recomputed rather than stored
        // (the invariants hold by construction on restore).
        self.loads_in_window = 0;
        self.stores_in_window = 0;
        self.waiting = 0;
        for _ in 0..n {
            let uop = Uop::read_from(r)?;
            let seq = r.get_u64()?;
            let state = if r.get_bool()? {
                SlotState::Executing {
                    done_at: r.get_u64()?,
                }
            } else {
                self.waiting += 1;
                SlotState::Waiting
            };
            if matches!(uop.kind, UopKind::Load | UopKind::AtomicRmw) {
                self.loads_in_window += 1;
            }
            if matches!(uop.kind, UopKind::Store | UopKind::AtomicRmw) {
                self.stores_in_window += 1;
            }
            self.window.push_back(Slot { uop, seq, state });
        }
        self.fetch_stall_until = r.get_u64()?;
        self.redirect_pending = r.get_opt_u64()?;
        self.next_seq = r.get_u64()?;
        self.in_kernel = r.get_bool()?;
        self.starved = r.get_bool()?;
        Ok(())
    }
}

impl jsmt_snapshot::Snapshotable for SmtCore {
    /// The pipeline/memory *configurations* are reconstruction inputs, not
    /// state, and are deliberately absent — as is the `fastfwd` toggle,
    /// which never changes simulated results. The one exception is a
    /// hyper-threading guard bit, so a dual-thread snapshot cannot be
    /// restored into a single-thread machine.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.section("guard", |w| w.put_bool(self.cfg.ht_enabled));
        w.section("clock", |w| w.put_u64(self.now));
        w.section("bank", |w| self.bank.save_state(w));
        w.section("ctx0", |w| self.ctxs[0].save_state(w));
        w.section("ctx1", |w| self.ctxs[1].save_state(w));
        w.section("mem", |w| self.mem.save_state(w));
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        if r.section("guard")?.get_bool()? != self.cfg.ht_enabled {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "snapshot hyper-threading mode disagrees with core configuration",
            ));
        }
        self.now = r.section("clock")?.get_u64()?;
        self.bank.restore_state(&mut r.section("bank")?)?;
        self.ctxs[0].restore_state(&mut r.section("ctx0")?)?;
        self.ctxs[1].restore_state(&mut r.section("ctx1")?)?;
        self.mem.restore_state(&mut r.section("mem")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticStream;
    use crate::Partition;
    use jsmt_perfmon::DerivedMetrics;

    /// A stream small enough to warm the caches quickly, so unit tests
    /// measure steady-state behaviour (the paper likewise drops the
    /// cold-start run from every measurement).
    fn small_stream(seed: u64) -> SyntheticStream {
        SyntheticStream::builder(seed)
            .code_footprint(4 * 1024)
            .data_footprint(16 * 1024)
            .build()
    }

    /// Run one thread for `warmup + cycles` and return the post-warmup
    /// counter deltas plus the measured cycle count.
    fn run_single(core_cfg: CoreConfig, cycles: u64, seed: u64) -> (CounterBank, u64) {
        let mut core = SmtCore::new(core_cfg, MemConfig::p4(core_cfg.ht_enabled));
        let mut stream = small_stream(seed);
        core.bind(LogicalCpu::Lp0, Asid(1));
        let warmup = 30_000;
        for _ in 0..warmup {
            core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
        }
        let snap = core.counters().clone();
        for _ in 0..cycles {
            core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
        }
        (core.counters().delta(&snap), cycles)
    }

    #[test]
    fn single_thread_makes_progress() {
        let (bank, cycles) = run_single(CoreConfig::p4(false), 20_000, 1);
        let m = DerivedMetrics::from_bank(&bank, cycles);
        assert!(m.ipc > 0.15 && m.ipc < 3.0, "ipc {}", m.ipc);
    }

    #[test]
    fn retirement_histogram_accounts_every_cycle() {
        let (bank, cycles) = run_single(CoreConfig::p4(false), 10_000, 2);
        let hist = bank.total(Event::CyclesRetire0)
            + bank.total(Event::CyclesRetire1)
            + bank.total(Event::CyclesRetire2)
            + bank.total(Event::CyclesRetire3);
        assert_eq!(hist, cycles, "exactly one histogram bucket per cycle");
    }

    /// A DRAM-bound, high-MLP stream: the window size directly limits how
    /// many misses overlap, which is where static partitioning hurts.
    fn mlp_stream(seed: u64) -> SyntheticStream {
        SyntheticStream::builder(seed)
            .code_footprint(2 * 1024)
            .data_footprint(16 * 1024 * 1024)
            .mem_fraction(0.45)
            .dep_chain(0.05)
            .branch_fraction(0.02)
            .build()
    }

    fn run_mlp(core_cfg: CoreConfig, cycles: u64, seed: u64) -> f64 {
        let mut core = SmtCore::new(core_cfg, MemConfig::p4(core_cfg.ht_enabled));
        let mut stream = mlp_stream(seed);
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..cycles {
            core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
        }
        DerivedMetrics::from_bank(core.counters(), core.cycles()).ipc
    }

    #[test]
    fn static_partition_slows_a_single_thread() {
        let ipc_off = run_mlp(CoreConfig::p4(false), 80_000, 3);
        let ipc_on = run_mlp(CoreConfig::p4(true), 80_000, 3);
        assert!(
            ipc_on < ipc_off * 0.95,
            "halved window must cost IPC: on={ipc_on:.3} off={ipc_off:.3}"
        );
    }

    #[test]
    fn dynamic_partition_recovers_single_thread_ipc() {
        let cfg = CoreConfig::p4(true).with_partition(Partition::Dynamic);
        let ipc_dyn = run_mlp(cfg, 80_000, 3);
        let ipc_stat = run_mlp(CoreConfig::p4(true), 80_000, 3);
        assert!(
            ipc_dyn > ipc_stat,
            "dynamic partition should beat static for one thread: {ipc_dyn:.3} vs {ipc_stat:.3}"
        );
    }

    #[test]
    fn two_threads_beat_one_in_throughput() {
        // Same workload twice under HT vs once alone: machine IPC must rise.
        let cfg = CoreConfig::p4(true);
        let mut core = SmtCore::new(cfg, MemConfig::p4(true));
        let mut s0 = small_stream(10);
        let mut s1 = small_stream(11);
        core.bind(LogicalCpu::Lp0, Asid(1));
        core.bind(LogicalCpu::Lp1, Asid(1));
        let mut tick = |core: &mut SmtCore| {
            core.cycle(&mut |l, buf, max| match l {
                LogicalCpu::Lp0 => s0.fill(buf, max),
                LogicalCpu::Lp1 => s1.fill(buf, max),
            })
        };
        for _ in 0..30_000 {
            tick(&mut core);
        }
        let snap = core.counters().clone();
        for _ in 0..60_000 {
            tick(&mut core);
        }
        let smt_ipc = DerivedMetrics::from_bank(&core.counters().delta(&snap), 60_000).ipc;
        let (one, c_one) = run_single(CoreConfig::p4(true), 60_000, 10);
        let one_ipc = DerivedMetrics::from_bank(&one, c_one).ipc;
        assert!(
            smt_ipc > one_ipc * 1.1,
            "SMT should raise machine throughput: {smt_ipc:.3} vs {one_ipc:.3}"
        );
    }

    #[test]
    fn dual_thread_cycles_counted() {
        let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        let mut s0 = small_stream(1);
        let mut s1 = small_stream(2);
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..100 {
            core.cycle(&mut |_l, buf, max| s0.fill(buf, max));
        }
        assert_eq!(core.counters().total(Event::DualThreadCycles), 0);
        core.bind(LogicalCpu::Lp1, Asid(1));
        for _ in 0..100 {
            core.cycle(&mut |l, buf, max| match l {
                LogicalCpu::Lp0 => s0.fill(buf, max),
                LogicalCpu::Lp1 => s1.fill(buf, max),
            });
        }
        assert_eq!(core.counters().total(Event::DualThreadCycles), 100);
    }

    #[test]
    fn drain_then_unbind() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        let mut s = small_stream(5);
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..1000 {
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
        }
        core.request_drain(LogicalCpu::Lp0);
        let mut waited = 0;
        while !core.snapshot(LogicalCpu::Lp0).drained {
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
            waited += 1;
            assert!(waited < 5000, "drain did not complete");
        }
        core.unbind(LogicalCpu::Lp0);
        assert!(!core.snapshot(LogicalCpu::Lp0).bound);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn lp1_unusable_without_ht() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        core.bind(LogicalCpu::Lp1, Asid(1));
    }

    #[test]
    fn kernel_uops_drive_os_cycles() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        let mut s = SyntheticStream::builder(6)
            .code_footprint(4 * 1024)
            .data_footprint(16 * 1024)
            .privileged(true)
            .build();
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..2000 {
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
        }
        let bank = core.counters();
        assert!(bank.total(Event::OsCycles) > 0);
        assert!(bank.total(Event::UopsRetiredKernel) > 0);
        assert_eq!(
            bank.total(Event::UopsRetiredKernel),
            bank.total(Event::UopsRetired)
        );
    }

    /// Step-by-step and fast-forwarded drivers over the same stream must
    /// agree on every cycle and every counter (the fast-forward contract;
    /// the proptest suite widens this over random configs).
    #[test]
    fn fast_forward_matches_stepwise_bit_for_bit() {
        let n = 60_000;
        let mut step = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        step.set_fast_forward(false);
        let mut s_step = mlp_stream(9);
        step.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..n {
            step.cycle(&mut |_l, buf, max| s_step.fill(buf, max));
        }

        let mut ff = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        ff.set_fast_forward(true);
        let mut s_ff = mlp_stream(9);
        ff.bind(LogicalCpu::Lp0, Asid(1));
        let mut skipped_total = 0;
        while ff.cycles() < n {
            let skipped = ff.fast_forward(n - ff.cycles());
            skipped_total += skipped;
            if skipped == 0 {
                ff.cycle(&mut |_l, buf, max| s_ff.fill(buf, max));
            }
        }
        assert_eq!(ff.cycles(), step.cycles());
        assert_eq!(ff.counters(), step.counters(), "counter banks diverged");
        assert!(
            skipped_total > n / 10,
            "a DRAM-bound stream should skip many cycles, skipped {skipped_total}"
        );
    }

    /// The fast-forward path refuses to skip while a context is draining:
    /// the OS scheduler must observe drain completion cycle-exactly.
    #[test]
    fn fast_forward_is_noop_mid_drain() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        let mut s = mlp_stream(12);
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..5000 {
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
        }
        core.request_drain(LogicalCpu::Lp0);
        let mut waited = 0;
        while !core.snapshot(LogicalCpu::Lp0).drained {
            assert_eq!(
                core.fast_forward(1_000_000),
                0,
                "fast-forward must be bypassed mid-drain"
            );
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
            waited += 1;
            assert!(waited < 50_000, "drain did not complete");
        }
    }

    /// `JSMT_NO_FASTFWD=1` would disable the path at construction; the
    /// programmatic setter is equivalent and testable without env races.
    #[test]
    fn disabled_fast_forward_never_skips() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        core.set_fast_forward(false);
        assert!(!core.fast_forward_enabled());
        // Even a completely idle machine must not jump when disabled.
        assert_eq!(core.fast_forward(1000), 0);
        core.set_fast_forward(true);
        assert_eq!(core.fast_forward(1000), 1000, "idle machine skips freely");
    }

    #[test]
    fn mispredicts_cause_fetch_stalls() {
        let mk = |bias: f64| {
            SyntheticStream::builder(7)
                .code_footprint(4 * 1024)
                .data_footprint(16 * 1024)
                .branch_bias(bias)
                .build()
        };
        let predictable = mk(0.999);
        let noisy = mk(0.5);
        let run = |mut s: SyntheticStream| {
            let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
            core.bind(LogicalCpu::Lp0, Asid(1));
            for _ in 0..40_000 {
                core.cycle(&mut |_l, buf, max| s.fill(buf, max));
            }
            let snap = core.counters().clone();
            for _ in 0..40_000 {
                core.cycle(&mut |_l, buf, max| s.fill(buf, max));
            }
            let m = DerivedMetrics::from_bank(&core.counters().delta(&snap), 40_000);
            (m.ipc, m.branch_mispredict_ratio)
        };
        let (ipc_good, mr_good) = run(predictable);
        let (ipc_bad, mr_bad) = run(noisy);
        assert!(
            mr_bad > mr_good + 0.1,
            "mispredict ratios {mr_bad:.3} vs {mr_good:.3}"
        );
        assert!(
            ipc_bad < ipc_good,
            "mispredicts must cost IPC: {ipc_bad:.3} vs {ipc_good:.3}"
        );
    }
}
