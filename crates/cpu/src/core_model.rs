//! The SMT core pipeline model.
//!
//! The busy path runs in one of three execution tiers (see DESIGN.md
//! §3.7). All three produce bit-identical counters, snapshots and golden
//! CSVs — the tiers trade wall-clock speed for implementation simplicity,
//! never simulated results:
//!
//! * [`ExecTier::Scalar`] — the reference interpreter: the issue stage
//!   scans every window slot each cycle, re-deriving each µop's port and
//!   latency, and retirement books counters one µop at a time.
//! * [`ExecTier::Batched`] — the SoA fast path: the window lives in a
//!   [`WindowArena`] with precomputed issue columns and an intrusive
//!   waiting list, so the scheduler walk visits only schedulable µops and
//!   retirement applies bulk counter updates.
//! * [`ExecTier::Trace`] — batched, plus the compiled-trace tier
//!   (`trace_tier`): hot anchor states are profiled at fetch and recorded
//!   spans replay with a single bulk apply via [`SmtCore::trace_step`].

use std::collections::VecDeque;

use jsmt_isa::{Asid, Uop, UopKind, DEP_NONE};
use jsmt_mem::{AccessKind, MemConfig, MemoryHierarchy};
use jsmt_perfmon::{CounterBank, Event, LogicalCpu};

use crate::arena::{flags_of, WindowArena, F_BRANCH, F_LOAD, F_PRIV, F_SER, F_STORE, NIL, WAITING};
use crate::trace_tier::{CompiledTrace, EntryState, Recorder, TraceEngine, MAX_TRACE, MIN_TRACE};
use crate::TraceStats;
use crate::{CoreConfig, FetchQueue};

/// µop supply callback: append up to `max` µops of the software thread
/// currently bound to `lcpu` directly into the context's fetch queue,
/// returning how many were added (zero-copy delivery — there is no
/// intermediate staging buffer). Returning 0 means the thread cannot
/// supply µops now (blocked or finished); the OS layer reacts by
/// unbinding it.
pub type FillFn<'a> = dyn FnMut(LogicalCpu, &mut FetchQueue, usize) -> usize + 'a;

/// Which implementation of the busy path the core runs.
///
/// Purely a wall-clock choice: every tier produces bit-identical
/// counters, snapshot bytes and golden CSVs (enforced by the
/// `hot_loop_equivalence` differential suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// Reference interpreter: per-µop window scan and retirement.
    Scalar,
    /// SoA arena with waiting-list issue and bulk retirement counters.
    Batched,
    /// [`ExecTier::Batched`] plus the compiled-trace replay tier.
    Trace,
}

#[derive(Debug)]
struct Context {
    bound: bool,
    draining: bool,
    asid: Asid,
    fetch_queue: FetchQueue,
    window: WindowArena,
    loads_in_window: usize,
    stores_in_window: usize,
    fetch_stall_until: u64,
    /// Sequence number of an unresolved mispredicted branch; fetch is
    /// halted until it resolves (we never fetch down the wrong path, so
    /// the full redirect cost is modeled as a fetch bubble).
    redirect_pending: Option<u64>,
    next_seq: u64,
    in_kernel: bool,
    starved: bool,
}

impl Context {
    fn new(window_capacity: usize) -> Self {
        Context {
            bound: false,
            draining: false,
            asid: Asid(1),
            fetch_queue: FetchQueue::new(),
            window: WindowArena::new(window_capacity),
            loads_in_window: 0,
            stores_in_window: 0,
            fetch_stall_until: 0,
            redirect_pending: None,
            next_seq: 0,
            in_kernel: false,
            starved: false,
        }
    }

    #[inline]
    fn front_seq(&self) -> u64 {
        if self.window.is_empty() {
            self.next_seq
        } else {
            self.window.base_seq()
        }
    }

    #[inline]
    fn drained(&self) -> bool {
        self.window.is_empty() && self.fetch_queue.is_empty()
    }
}

/// Observable state of one context, for the OS scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextSnapshot {
    /// A software thread is bound.
    pub bound: bool,
    /// The bound thread's address space.
    pub asid: Asid,
    /// µops currently in the window.
    pub window_occupancy: usize,
    /// The source failed to supply µops at the last fetch attempt.
    pub starved: bool,
    /// A drain has been requested and is not yet complete.
    pub draining: bool,
    /// Window and fetch queue are both empty.
    pub drained: bool,
}

/// The two-context SMT core.
#[derive(Debug)]
pub struct SmtCore {
    cfg: CoreConfig,
    mem: MemoryHierarchy,
    ctxs: [Context; 2],
    bank: CounterBank,
    now: u64,
    fill_chunk: usize,
    /// Whether [`SmtCore::fast_forward`] may skip quiet cycles. Purely a
    /// wall-clock optimization: results are bit-identical either way.
    fastfwd: bool,
    tier: ExecTier,
    trace: TraceEngine,
}

impl std::fmt::Debug for TraceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceEngine")
            .field("stats", &self.stats)
            .finish()
    }
}

impl SmtCore {
    /// Build a core from pipeline and memory configurations.
    ///
    /// The stall fast-forward path is enabled unless `JSMT_NO_FASTFWD=1`
    /// is set, and the compiled-trace tier unless `JSMT_NO_TRACE_TIER=1`
    /// (the escape hatches for A/B-ing the optimizations; neither changes
    /// simulated results).
    pub fn new(core_cfg: CoreConfig, mem_cfg: MemConfig) -> Self {
        let tier = if std::env::var_os("JSMT_NO_TRACE_TIER").is_some_and(|v| v == "1") {
            ExecTier::Batched
        } else {
            ExecTier::Trace
        };
        SmtCore {
            cfg: core_cfg,
            mem: MemoryHierarchy::new(mem_cfg),
            ctxs: [
                Context::new(core_cfg.window_uops),
                Context::new(core_cfg.window_uops),
            ],
            bank: CounterBank::new(),
            now: 0,
            fill_chunk: 48,
            fastfwd: std::env::var_os("JSMT_NO_FASTFWD").is_none_or(|v| v != "1"),
            tier,
            trace: TraceEngine::new(),
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The memory hierarchy (read-only; for diagnostics).
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Elapsed machine cycles.
    pub fn cycles(&self) -> u64 {
        self.now
    }

    /// The raw event counters.
    pub fn counters(&self) -> &CounterBank {
        &self.bank
    }

    /// Bind a software thread (identified only by its address space here;
    /// thread identity lives in the OS layer) to a context.
    ///
    /// # Panics
    ///
    /// Panics if the context is already bound or not yet drained, or if
    /// `lcpu` is `Lp1` while Hyper-Threading is disabled.
    pub fn bind(&mut self, lcpu: LogicalCpu, asid: Asid) {
        assert!(
            self.cfg.ht_enabled || lcpu == LogicalCpu::Lp0,
            "logical CPU 1 does not exist with Hyper-Threading disabled"
        );
        self.trace.invalidate_all();
        let ctx = &mut self.ctxs[lcpu.index()];
        assert!(!ctx.bound, "context {lcpu:?} already bound");
        assert!(ctx.drained(), "context {lcpu:?} not drained before bind");
        debug_assert_eq!(ctx.window.waiting(), 0, "drained context has waiting µops");
        ctx.bound = true;
        ctx.draining = false;
        ctx.asid = asid;
        ctx.starved = false;
        ctx.in_kernel = false;
        ctx.fetch_stall_until = self.now;
        ctx.redirect_pending = None;
    }

    /// Request that a context stop fetching so it can be unbound. The
    /// in-flight µops continue to execute and retire.
    pub fn request_drain(&mut self, lcpu: LogicalCpu) {
        self.trace.invalidate_all();
        self.ctxs[lcpu.index()].draining = true;
    }

    /// Detach the thread from a context.
    ///
    /// # Panics
    ///
    /// Panics if the context still has µops in flight (request a drain and
    /// wait for [`ContextSnapshot::drained`] first).
    pub fn unbind(&mut self, lcpu: LogicalCpu) {
        self.trace.invalidate_all();
        let ctx = &mut self.ctxs[lcpu.index()];
        assert!(ctx.bound, "context {lcpu:?} not bound");
        assert!(
            ctx.drained(),
            "unbinding context {lcpu:?} with µops in flight"
        );
        ctx.bound = false;
        ctx.draining = false;
        ctx.starved = false;
    }

    /// Snapshot a context's scheduling-relevant state.
    pub fn snapshot(&self, lcpu: LogicalCpu) -> ContextSnapshot {
        let ctx = &self.ctxs[lcpu.index()];
        ContextSnapshot {
            bound: ctx.bound,
            asid: ctx.asid,
            window_occupancy: ctx.window.len(),
            starved: ctx.starved,
            draining: ctx.draining,
            drained: ctx.drained(),
        }
    }

    /// Whether both contexts currently have threads bound.
    pub fn dual_thread(&self) -> bool {
        self.ctxs[0].bound && self.ctxs[1].bound
    }

    /// Enable or disable the stall fast-forward path (default: enabled,
    /// unless `JSMT_NO_FASTFWD=1` is set in the environment). The setting
    /// never changes simulated results — only wall-clock speed.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fastfwd = enabled;
    }

    /// Whether the stall fast-forward path is enabled.
    pub fn fast_forward_enabled(&self) -> bool {
        self.fastfwd
    }

    /// Select the execution tier (default: [`ExecTier::Trace`], or
    /// [`ExecTier::Batched`] under `JSMT_NO_TRACE_TIER=1`). Never changes
    /// simulated results — only wall-clock speed. Switching tiers
    /// invalidates any compiled traces.
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.trace.invalidate_all();
        self.tier = tier;
    }

    /// The active execution tier.
    pub fn exec_tier(&self) -> ExecTier {
        self.tier
    }

    /// Whether the compiled-trace tier is active.
    pub fn trace_tier_enabled(&self) -> bool {
        self.tier == ExecTier::Trace
    }

    /// Compile/replay statistics of the trace tier.
    pub fn trace_stats(&self) -> TraceStats {
        self.trace.stats
    }

    /// Drop all compiled traces and profiling state. Correctness never
    /// requires calling this (structural events invalidate internally);
    /// exposed for tests and diagnostics.
    pub fn invalidate_traces(&mut self) {
        self.trace.invalidate_all();
    }

    /// Try to advance the machine by up to `max` cycles in one jump,
    /// without a fill callback. Returns the number of cycles skipped;
    /// `0` means the next cycle may do real work (or fast-forward is
    /// disabled) and the caller must run [`SmtCore::cycle`] (or
    /// [`SmtCore::trace_step`]) instead.
    ///
    /// A span of cycles is skippable only when every per-cycle effect of
    /// the step-by-step machine is *provably replayable in bulk*:
    ///
    /// * no window slot can issue inside the span: either nothing is
    ///   waiting, or every waiting µop the scheduler scan would visit is
    ///   dependence-blocked on an in-flight producer — the earliest such
    ///   producer completion caps the span (see
    ///   [`SmtCore::issue_quiet_bound`]),
    /// * no window head completes inside the span (no retirement),
    /// * no pending redirect resolves inside the span,
    /// * no context is draining (drain completion must be observed
    ///   cycle-exactly by the OS scheduler), and
    /// * at most one context could fetch — and then only when its fetch
    ///   stage provably repeats the same alloc-stalled, trace-cache-hit
    ///   probe every cycle: the fetch queue is above the refill threshold
    ///   (so the µop source is never consulted), the queue head is blocked
    ///   on a window/load/store share, and the probe at its pc would hit.
    ///
    /// The horizon is the earliest "interesting" cycle: the minimum over
    /// window-head completion times, redirect resolution times, and
    /// fetch-stall expiries, capped at `max`. Every counter the skipped
    /// cycles would have touched (`ClockCycles`, `ActiveCycles`,
    /// `DualThreadCycles`, `OsCycles`, `CyclesRetire0`, and — for the
    /// alloc-stalled replay — the `TcLookups`/`AllocStallCycles` of the
    /// repeated probe, applied through the trace cache's bulk
    /// `fetch_repeat_hit` so its internal stamps advance identically) is
    /// bulk-added, keeping the machine bit-identical to stepping cycle by
    /// cycle. A skip also aborts any in-progress trace recording: the
    /// recorder counts real stepped cycles only.
    pub fn fast_forward(&mut self, max: u64) -> u64 {
        if !self.fastfwd || max == 0 {
            return 0;
        }
        let now = self.now;
        let mut next_event = u64::MAX;
        let mut fetcher = None;
        // Cheap O(1) disqualifiers first (retirement, redirects, fetch
        // progress); the O(scan) waiting-walk bound runs only for states
        // that survive them.
        for i in 0..2 {
            let c = &self.ctxs[i];
            if c.draining {
                return 0;
            }
            if !c.window.is_empty() {
                let d = c.window.done_at(0);
                if d <= now {
                    return 0; // head done: retirement acts this cycle
                }
                next_event = next_event.min(d);
            }
            if let Some(seq) = c.redirect_pending {
                let front = c.front_seq();
                if seq < front {
                    return 0; // resolves this cycle (branch retired)
                }
                let idx = (seq - front) as usize;
                if idx >= c.window.len() {
                    return 0; // resolves this cycle
                }
                let d = c.window.done_at(idx);
                if d == WAITING || d <= now {
                    return 0; // resolves this cycle (or cannot be timed)
                }
                next_event = next_event.min(d);
            } else if c.bound {
                if c.fetch_stall_until > now {
                    next_event = next_event.min(c.fetch_stall_until);
                } else if fetcher.replace(i).is_some() {
                    // Two eligible fetchers would interleave trace-cache
                    // probes by cycle parity; not worth replaying.
                    return 0;
                }
            }
        }

        // Mode check for the lone eligible fetcher: its fetch stage must
        // repeat the identical alloc-stalled, TC-hit probe each cycle.
        let mut alloc_stalled = None;
        if let Some(i) = fetcher {
            let c = &self.ctxs[i];
            let want = self.fill_chunk.saturating_sub(c.fetch_queue.len());
            if want >= self.cfg.fetch_width {
                return 0; // a refill would consult the µop source
            }
            let Some(&head) = c.fetch_queue.front() else {
                return 0; // unreachable below the refill threshold
            };
            let sibling_bound = self.ctxs[1 - i].bound;
            let is_load = matches!(head.kind, UopKind::Load | UopKind::AtomicRmw);
            let is_store = matches!(head.kind, UopKind::Store | UopKind::AtomicRmw);
            let blocked = c.window.len() >= self.cfg.window_share(sibling_bound)
                || (is_load && c.loads_in_window >= self.cfg.load_share(sibling_bound))
                || (is_store && c.stores_in_window >= self.cfg.store_share(sibling_bound));
            if !blocked {
                return 0; // allocation would make progress
            }
            let lcpu = LogicalCpu::from_index(i);
            if !self.mem.fetch_would_hit(head.pc, c.asid, lcpu) {
                return 0; // a TC miss starts a new stall: step it
            }
            alloc_stalled = Some((i, head.pc));
        }

        for i in 0..2 {
            match self.issue_quiet_bound(i, now) {
                None => return 0,
                Some(b) => next_event = next_event.min(b),
            }
        }

        if next_event <= now {
            return 0;
        }
        let span = (next_event - now).min(max);

        // The recorder counts real stepped cycles; a bulk skip mid-capture
        // cannot be represented, so the recording is abandoned.
        self.trace.abort_recording();

        // Bulk-replay the per-cycle accounting of `span` quiet cycles.
        if self.ctxs[0].bound && self.ctxs[1].bound {
            self.bank
                .add(LogicalCpu::Lp0, Event::DualThreadCycles, span);
        }
        for i in 0..2 {
            if self.ctxs[i].bound {
                let lcpu = LogicalCpu::from_index(i);
                self.bank.add(lcpu, Event::ClockCycles, span);
                self.bank.add(lcpu, Event::ActiveCycles, span);
                if self.ctxs[i].in_kernel {
                    self.bank.add(lcpu, Event::OsCycles, span);
                }
            }
        }
        // Every skipped cycle is a zero-retirement cycle.
        self.bank.add(LogicalCpu::Lp0, Event::CyclesRetire0, span);
        if let Some((i, pc)) = alloc_stalled {
            let lcpu = LogicalCpu::from_index(i);
            let asid = self.ctxs[i].asid;
            self.mem
                .fetch_repeat_hit(pc, asid, lcpu, span, &mut self.bank);
            self.bank.add(lcpu, Event::AllocStallCycles, span);
            // What the recomputed starvation flag would be each cycle
            // (queue nonempty, nothing delivered).
            self.ctxs[i].starved = false;
        }

        self.now = now + span;
        span
    }

    /// Earliest cycle at which context `i`'s issue walk could issue a µop,
    /// or `None` if it could issue *this* cycle (not skippable).
    ///
    /// Replicates the scheduler walk read-only, visiting exactly the slots
    /// the real walk charges scan budget for, in the same order: a waiting
    /// µop with no (unretired) producer would issue now; one blocked on an
    /// issued producer becomes eligible the cycle that producer completes;
    /// one blocked on a still-waiting producer is strictly later than its
    /// producer's own unblock (the producer is older, so it was already
    /// visited and bounded). Slots past the scan budget, or shadowed by a
    /// non-head serializer, cannot act until some bounded event happens
    /// first. Nothing issuing means the walk has no side effects at all —
    /// no counters, no cache traffic — so the skipped cycles replay as
    /// pure no-ops.
    fn issue_quiet_bound(&self, i: usize, now: u64) -> Option<u64> {
        let w = &self.ctxs[i].window;
        if w.waiting() == 0 {
            return Some(u64::MAX);
        }
        // An issued-incomplete serializer parks at the window head and
        // blocks the walk entirely until it retires; head completion
        // already bounds the span for the caller.
        if !w.is_empty() {
            let r0 = w.ring(0) as u16;
            let d0 = w.done_at_ring(r0);
            if w.flags_at(r0) & F_SER != 0 && d0 != WAITING && d0 > now {
                return Some(u64::MAX);
            }
        }
        let base_seq = w.base_seq();
        let mut bound = u64::MAX;
        let mut scan_budget = self.cfg.scheduler_scan;
        let mut r = w.first_waiting();
        while r != NIL {
            if scan_budget == 0 {
                return Some(bound);
            }
            let flags = w.flags_at(r);
            let idx = w.logical_of(r);
            if flags & F_SER != 0 && idx != 0 {
                // The walk stops here every cycle of the span.
                return Some(bound);
            }
            scan_budget -= 1;
            let dep = w.dep_dist_at(r);
            if dep == DEP_NONE {
                return None;
            }
            match (base_seq + idx as u64).checked_sub(dep as u64) {
                None => return None,
                Some(ps) if ps < base_seq => return None, // producer retired
                Some(ps) => {
                    let d = w.done_at((ps - base_seq) as usize);
                    if d <= now {
                        return None; // producer done: issues this cycle
                    }
                    if d != WAITING {
                        bound = bound.min(d);
                    }
                }
            }
            r = w.next_waiting(r);
        }
        Some(bound)
    }

    /// Advance the machine by one cycle. `fill` supplies µops for bound,
    /// fetching contexts.
    pub fn cycle(&mut self, fill: &mut FillFn<'_>) {
        let now = self.now;

        if self.tier == ExecTier::Trace {
            self.trace_cycle_start(now);
        }

        // --- per-cycle accounting -------------------------------------
        let both = self.dual_thread();
        if both {
            self.bank.inc(LogicalCpu::Lp0, Event::DualThreadCycles);
        }
        for lcpu in LogicalCpu::BOTH {
            let ctx = &self.ctxs[lcpu.index()];
            if ctx.bound {
                self.bank.inc(lcpu, Event::ClockCycles);
                self.bank.inc(lcpu, Event::ActiveCycles);
                if ctx.in_kernel {
                    self.bank.inc(lcpu, Event::OsCycles);
                }
            }
        }

        self.resolve_redirects(now);
        self.fetch_stage(now, fill);
        self.issue_stage(now);
        self.retire_stage(now);

        self.now = now + 1;
    }

    // ------------------------------------------------------------------
    // Compiled-trace tier
    // ------------------------------------------------------------------

    /// Cheap anchor preconditions: exactly one bound context, quiescent
    /// sibling, no redirect, expired fetch stall, a nonempty fetch queue,
    /// and a block-aligned head pc (which rate-limits profile lookups).
    /// Every anchor state has behaviorally equivalent elided fields, so
    /// [`EntryState`] equality implies identical forward evolution.
    fn cheap_anchor(&self, now: u64) -> Option<usize> {
        let (i, j) = match (self.ctxs[0].bound, self.ctxs[1].bound) {
            (true, false) => (0, 1),
            (false, true) => (1, 0),
            _ => return None,
        };
        let c = &self.ctxs[i];
        if c.draining || c.redirect_pending.is_some() || c.fetch_stall_until > now {
            return None;
        }
        let sib = &self.ctxs[j];
        if sib.draining || !sib.window.is_empty() || !sib.fetch_queue.is_empty() {
            return None;
        }
        let head = c.fetch_queue.front()?;
        if head.pc & 0x3FF >= 16 {
            return None;
        }
        Some(i)
    }

    /// O(1) profile/cache key for context `i`'s current anchor state:
    /// a mix of the scalar fields only (head pc, asid, mode bits, queue
    /// and window occupancy). Distinct full states may collide — that is
    /// resolved by the exact [`EntryState`] comparison before any replay
    /// — but the hot path never pays for a full state encode unless this
    /// key already has a compiled trace or a hot profile counter.
    fn cheap_key(&self, i: usize) -> u64 {
        let c = &self.ctxs[i];
        let head_pc = c.fetch_queue.front().map_or(0, |u| u.pc);
        let mut k = 0x9E37_79B9_7F4A_7C15u64 ^ (i as u64);
        for field in [
            c.asid.0 as u64,
            (c.in_kernel as u64) | (c.starved as u64) << 1,
            head_pc,
            c.fetch_queue.len() as u64,
            c.window.len() as u64,
            c.window.waiting() as u64,
        ] {
            k = (k ^ field).wrapping_mul(0x0000_0100_0000_01B3);
            k ^= k >> 29;
        }
        k
    }

    /// Encode context `i`'s architectural state with completion times
    /// relative to `now_ref`.
    fn encode_state(&self, i: usize, now_ref: u64) -> EntryState {
        let c = &self.ctxs[i];
        let window = (0..c.window.len())
            .map(|k| {
                let d = c.window.done_at(k);
                let rel = (d != WAITING).then(|| d.wrapping_sub(now_ref));
                (*c.window.uop(k), rel)
            })
            .collect();
        EntryState {
            ctx: i as u8,
            asid: c.asid.0,
            in_kernel: c.in_kernel,
            starved: c.starved,
            queue: c.fetch_queue.iter().copied().collect(),
            window,
        }
    }

    /// Recorder bookkeeping at the top of every stepped cycle (Trace tier
    /// only): advance/finalize/abort an active recording, then profile the
    /// current state and possibly start a new one.
    fn trace_cycle_start(&mut self, now: u64) {
        if self.trace.recorder.is_some() {
            let (cycles, rec_ctx) = {
                let rec = self.trace.recorder.as_mut().expect("checked");
                rec.cycles += 1;
                (rec.cycles, rec.ctx)
            };
            if cycles >= MIN_TRACE && self.cheap_anchor(now) == Some(rec_ctx) {
                self.finalize_recording(now);
            } else if cycles >= MAX_TRACE {
                // The machine never re-anchored: give up on this entry.
                self.trace.abort_recording();
            }
        }
        if self.trace.recorder.is_none() {
            if let Some(i) = self.cheap_anchor(now) {
                let key = self.cheap_key(i);
                if self.trace.profile_hit(key) {
                    let entry = self.encode_state(i, now);
                    self.trace.recorder = Some(Recorder {
                        key,
                        ctx: i,
                        entry,
                        entry_bank: self.bank.clone(),
                        entry_now: now,
                        entry_next_seq: self.ctxs[i].next_seq,
                        cycles: 0,
                        fill_uops: Vec::new(),
                        probes: Vec::new(),
                    });
                }
            }
        }
    }

    /// Turn the active recording into a compiled trace ending at the
    /// current (re-anchored) state.
    fn finalize_recording(&mut self, _now: u64) {
        let rec = self.trace.recorder.take().expect("recorder active");
        let i = rec.ctx;
        // End-state completion times are relative to the *entry* cycle, so
        // replay can rebase them with a single wrapping add.
        let end = self.encode_state(i, rec.entry_now);
        let delta_bank = self.bank.delta(&rec.entry_bank);
        let delta: Vec<_> = delta_bank.iter_nonzero().collect();
        let trace = CompiledTrace {
            entry: rec.entry,
            cycles: rec.cycles,
            fill_uops: rec.fill_uops,
            probes: rec.probes,
            delta,
            end,
            next_seq_advance: self.ctxs[i].next_seq - rec.entry_next_seq,
        };
        self.trace.stats.compiled += 1;
        self.trace.insert(rec.key, trace);
    }

    /// Try to replay a compiled trace: advance up to `max` cycles with one
    /// bulk apply. `pending` is the exact queue of µops the fill callback
    /// would deliver next; on success the caller must drop the returned
    /// number of µops from its front (the trace consumed them).
    ///
    /// Returns `(cycles_advanced, uops_consumed)`; `(0, 0)` means no trace
    /// applied and **nothing was mutated** — the caller falls back to
    /// [`SmtCore::fast_forward`] / [`SmtCore::cycle`] as usual.
    ///
    /// The caller is responsible for span-level soundness: during the
    /// replayed span the world outside the core must be quiescent (no
    /// scheduler/GC/timer event, no fault injection) and every fill must
    /// be a pure drain of `pending`. Within the core, bit-identity is
    /// enforced here: the full entry state must compare equal, the
    /// pending µops must match the recorded deliveries element-wise, and
    /// every recorded probe must still hit the trace cache (hits don't
    /// move cache contents, so hit-ness is invariant across the span).
    pub fn trace_step(&mut self, max: u64, pending: &VecDeque<Uop>) -> (u64, usize) {
        if self.tier != ExecTier::Trace
            || max == 0
            || self.trace.recorder.is_some()
            || self.trace.no_traces()
        {
            // `no_traces` is the common case on workloads the recorder
            // cannot cover (any memory traffic aborts recording); it keeps
            // this per-stepped-cycle probe at a single branch there.
            return (0, 0);
        }
        let now = self.now;
        let Some(i) = self.cheap_anchor(now) else {
            return (0, 0);
        };
        let key = self.cheap_key(i);
        if !self.trace.has_trace(key) {
            return (0, 0);
        }
        let trace = self.trace.take(key).expect("checked");
        if trace.cycles > max || trace.fill_uops.len() > pending.len() {
            // Valid trace, wrong moment (span cap or shallow pending);
            // keep it for later.
            self.trace.insert(key, trace);
            return (0, 0);
        }
        // Full state encode only happens with a candidate trace in hand.
        let state = self.encode_state(i, now);
        if trace.entry != state
            || !trace
                .fill_uops
                .iter()
                .zip(pending.iter())
                .all(|(a, b)| a == b)
        {
            // Hash collision or a changed µop stream: drop the trace (it
            // stays taken) and step instead. Nothing was mutated.
            self.trace.note_mismatch(key);
            return (0, 0);
        }
        let lcpu = LogicalCpu::from_index(i);
        let asid = self.ctxs[i].asid;
        for &(pc, _) in &trace.probes {
            if !self.mem.fetch_would_hit(pc, asid, lcpu) {
                // Trace-cache contents moved since recording.
                self.trace.note_mismatch(key);
                return (0, 0);
            }
        }

        // --- committed: bulk apply ------------------------------------
        for &(l, e, v) in &trace.delta {
            self.bank.add(l, e, v);
        }
        // The recorded delta already contains the probes' counter events;
        // replaying them against a scratch bank advances the trace cache's
        // internal hit stamps identically without double counting.
        let mut scratch = CounterBank::new();
        for &(pc, n) in &trace.probes {
            self.mem.fetch_repeat_hit(pc, asid, lcpu, n, &mut scratch);
        }
        let cycles = trace.cycles;
        let consumed = trace.fill_uops.len();
        self.apply_end_state(i, &trace.end, trace.next_seq_advance, now);
        self.trace.stats.replayed += 1;
        self.trace.stats.replayed_cycles += cycles;
        self.trace.insert(key, trace);
        self.now = now + cycles;
        (cycles, consumed)
    }

    /// Install a trace's end state on context `i`. `now` is the replay
    /// entry cycle (end-state completion times are entry-relative).
    fn apply_end_state(&mut self, i: usize, end: &EntryState, next_seq_advance: u64, now: u64) {
        let ctx = &mut self.ctxs[i];
        ctx.fetch_queue.clear();
        jsmt_isa::UopSink::push_uops(&mut ctx.fetch_queue, &end.queue);
        ctx.next_seq += next_seq_advance;
        let base = ctx.next_seq - end.window.len() as u64;
        ctx.window.clear();
        ctx.loads_in_window = 0;
        ctx.stores_in_window = 0;
        for (k, (uop, issued)) in end.window.iter().enumerate() {
            ctx.window.push_back(*uop, base + k as u64);
            if let Some(rel) = issued {
                ctx.window.mark_issued(k, rel.wrapping_add(now));
            }
            let f = flags_of(uop);
            if f & F_LOAD != 0 {
                ctx.loads_in_window += 1;
            }
            if f & F_STORE != 0 {
                ctx.stores_in_window += 1;
            }
        }
        ctx.in_kernel = end.in_kernel;
        ctx.starved = end.starved;
        // fetch_stall_until is untouched: anchors require it expired, and
        // stepping the span would never have written it.
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch_candidate(&self, now: u64) -> Option<usize> {
        let can_fetch = |i: usize| {
            let c = &self.ctxs[i];
            c.bound && c.fetch_stall_until <= now && c.redirect_pending.is_none()
        };
        let first = (now & 1) as usize;
        let order = [first, 1 - first];
        order.into_iter().find(|&i| can_fetch(i))
    }

    fn fetch_stage(&mut self, now: u64, fill: &mut FillFn<'_>) {
        let Some(i) = self.fetch_candidate(now) else {
            return;
        };
        let lcpu = LogicalCpu::from_index(i);

        // Refill the fetch queue from the thread's µop source, which
        // writes directly into the context's ring buffer (zero-copy).
        let want = self
            .fill_chunk
            .saturating_sub(self.ctxs[i].fetch_queue.len());
        let mut delivered = 0;
        if want >= self.cfg.fetch_width && !self.ctxs[i].draining {
            let before = self.ctxs[i].fetch_queue.len();
            let got = fill(lcpu, &mut self.ctxs[i].fetch_queue, want);
            delivered = self.ctxs[i].fetch_queue.len() - before;
            debug_assert!(
                got <= want && delivered <= want,
                "source overfilled the fetch buffer"
            );
            let _ = got;
            if self.trace.recorder.is_some() {
                if delivered != want {
                    // A partial/empty fill means the source did more than
                    // drain its pending buffer; replay can't reproduce it.
                    self.trace.abort_recording();
                } else {
                    let q = &self.ctxs[i].fetch_queue;
                    let rec = self.trace.recorder.as_mut().expect("checked");
                    debug_assert_eq!(rec.ctx, i, "recording survived a sibling bind");
                    for k in before..q.len() {
                        rec.fill_uops.push(*q.get(k).expect("in range"));
                    }
                }
            }
        }
        // Recompute starvation unconditionally: skipping the refill (queue
        // above threshold, or draining) must not leave a stale flag for
        // the scheduler to observe.
        self.ctxs[i].starved = delivered == 0 && self.ctxs[i].fetch_queue.is_empty();
        if self.ctxs[i].fetch_queue.is_empty() {
            return;
        }

        // One trace-cache probe per fetch cycle, at the group's leading pc.
        let asid = self.ctxs[i].asid;
        let first_pc = self.ctxs[i].fetch_queue.front().expect("nonempty").pc;
        let outcome = self.mem.fetch(first_pc, asid, lcpu, &mut self.bank);
        if self.trace.recorder.is_some() {
            if outcome.tc_hit {
                self.trace
                    .recorder
                    .as_mut()
                    .expect("checked")
                    .note_probe(first_pc);
            } else {
                // A miss perturbs trace-cache contents; unreplayable.
                self.trace.abort_recording();
            }
        }
        if !outcome.tc_hit {
            self.ctxs[i].fetch_stall_until = now + outcome.penalty as u64;
            self.bank
                .add(lcpu, Event::FetchStallCycles, outcome.penalty as u64);
            return;
        }

        // Allocate up to fetch_width µops into the window.
        let sibling_bound = self.ctxs[1 - i].bound;
        let window_cap = self.cfg.window_share(sibling_bound);
        let load_cap = self.cfg.load_share(sibling_bound);
        let store_cap = self.cfg.store_share(sibling_bound);

        let mut fetched = 0;
        while fetched < self.cfg.fetch_width {
            let ctx = &mut self.ctxs[i];
            let Some(&uop) = ctx.fetch_queue.front() else {
                break;
            };
            if ctx.window.len() >= window_cap {
                self.bank.inc(lcpu, Event::AllocStallCycles);
                break;
            }
            let is_load = matches!(uop.kind, UopKind::Load | UopKind::AtomicRmw);
            let is_store = matches!(uop.kind, UopKind::Store | UopKind::AtomicRmw);
            if (is_load && ctx.loads_in_window >= load_cap)
                || (is_store && ctx.stores_in_window >= store_cap)
            {
                self.bank.inc(lcpu, Event::AllocStallCycles);
                break;
            }

            let ctx = &mut self.ctxs[i];
            ctx.fetch_queue.pop_front();
            ctx.in_kernel = uop.privileged;
            if is_load {
                ctx.loads_in_window += 1;
            }
            if is_store {
                ctx.stores_in_window += 1;
            }
            let seq = ctx.next_seq;
            ctx.next_seq += 1;

            let mut mispredict = false;
            if let Some(info) = uop.branch {
                // Allocating a branch touches the BTB and direction
                // predictor, whose state a replay cannot reproduce.
                self.trace.abort_recording();
                let predicted_target = self.mem.btb.lookup(uop.pc, asid, lcpu);
                self.bank.inc(lcpu, Event::BtbLookups);
                if predicted_target.is_none() {
                    self.bank.inc(lcpu, Event::BtbMisses);
                }
                let dir_ok = self
                    .mem
                    .predictor
                    .predict_and_update(uop.pc, lcpu, info.kind, info.taken);
                let target_ok = !info.taken || predicted_target == Some(info.target);
                if info.taken {
                    self.mem.btb.update(uop.pc, asid, lcpu, info.target);
                }
                mispredict = !dir_ok || !target_ok;
            }

            let ctx = &mut self.ctxs[i];
            ctx.window.push_back(uop, seq);
            fetched += 1;

            if mispredict {
                ctx.redirect_pending = Some(seq);
                self.bank.inc(lcpu, Event::BranchMispredicts);
                self.bank.inc(lcpu, Event::Squashes);
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn issue_stage(&mut self, now: u64) {
        let mut port_budget = self.cfg.port_quota;
        let mut issue_budget = self.cfg.issue_width;
        let first = (now & 1) as usize;
        let scalar = self.tier == ExecTier::Scalar;
        for &i in &[first, 1 - first] {
            if issue_budget == 0 {
                break;
            }
            if !self.ctxs[i].bound && self.ctxs[i].window.is_empty() {
                continue;
            }
            if scalar {
                self.issue_context_scalar(i, now, &mut port_budget, &mut issue_budget);
            } else {
                self.issue_context_batched(i, now, &mut port_budget, &mut issue_budget);
            }
        }
    }

    /// Reference interpreter: scan every window slot in age order,
    /// re-deriving each µop's port class and base latency. Kept verbatim
    /// as the differential baseline the batched walk is proven against.
    fn issue_context_scalar(
        &mut self,
        i: usize,
        now: u64,
        port_budget: &mut [u8; 5],
        issue_budget: &mut usize,
    ) {
        if self.ctxs[i].window.waiting() == 0 {
            // Nothing to schedule, and with in-order retirement a
            // mid-window completion can't unblock anything: the scan
            // below would be a pure read. Skip it in O(1) — the same
            // invariant the fast-forward quietness check relies on.
            return;
        }
        let lcpu = LogicalCpu::from_index(i);
        let asid = self.ctxs[i].asid;
        let front_seq = self.ctxs[i].front_seq();
        // The scan budget models finite scheduler bandwidth: only *waiting*
        // µops consume it (issued µops have left the scheduling queues).
        let mut scan_budget = self.cfg.scheduler_scan;

        for idx in 0..self.ctxs[i].window.len() {
            if *issue_budget == 0 || scan_budget == 0 {
                return;
            }
            // Gather the facts we need without holding a borrow across the
            // memory-model call below.
            let (kind, dep_dist, mem_addr, pc, waiting) = {
                let w = &self.ctxs[i].window;
                let u = w.uop(idx);
                (u.kind, u.dep_dist, u.mem, u.pc, w.done_at(idx) == WAITING)
            };

            // A serializing µop must be the oldest in the window, and
            // blocks everything younger until it completes.
            if kind.is_serializing() && idx != 0 {
                return;
            }

            if !waiting {
                if kind.is_serializing() && !self.ctxs[i].window.is_done(idx, now) {
                    return;
                }
                continue;
            }
            scan_budget -= 1;

            // Data dependence: the producer must have completed. A
            // producer that already retired (or a distance reaching past
            // the start of the stream) is trivially satisfied.
            if dep_dist != DEP_NONE {
                let cur_seq = front_seq + idx as u64;
                if let Some(producer_seq) = cur_seq.checked_sub(dep_dist as u64) {
                    if producer_seq >= front_seq {
                        let pidx = (producer_seq - front_seq) as usize;
                        if !self.ctxs[i].window.is_done(pidx, now) {
                            continue;
                        }
                    }
                }
            }

            let port = kind.port().index();
            if port_budget[port] == 0 {
                continue;
            }

            // Compute execution latency; memory µops consult the hierarchy.
            let mut latency = kind.base_latency();
            match kind {
                UopKind::Load | UopKind::AtomicRmw => {
                    let addr = mem_addr.unwrap_or(pc);
                    latency +=
                        self.mem
                            .data_access(addr, asid, lcpu, AccessKind::Read, &mut self.bank);
                }
                UopKind::Store => {
                    let addr = mem_addr.unwrap_or(pc);
                    // The store buffer hides the miss latency from the
                    // pipeline; the access still exercises (and pollutes)
                    // the cache hierarchy.
                    let _ =
                        self.mem
                            .data_access(addr, asid, lcpu, AccessKind::Write, &mut self.bank);
                }
                _ => {}
            }

            port_budget[port] -= 1;
            *issue_budget -= 1;
            self.ctxs[i].window.mark_issued(idx, now + latency as u64);

            if kind.is_serializing() {
                // Nothing younger may issue this cycle.
                return;
            }
        }
    }

    /// SoA fast path: walk the arena's age-ordered waiting list, reading
    /// precomputed port/latency/flag columns. Visits exactly the slots the
    /// scalar scan would charge scan budget for, in the same order, so
    /// every budget decision, `data_access` call and issue is identical.
    fn issue_context_batched(
        &mut self,
        i: usize,
        now: u64,
        port_budget: &mut [u8; 5],
        issue_budget: &mut usize,
    ) {
        if self.ctxs[i].window.waiting() == 0 {
            return;
        }
        // An issued serializer parks at the front until it retires; while
        // incomplete, nothing younger may issue (the scalar scan returns at
        // its first iteration). Waiting serializers are handled in-walk.
        {
            let w = &self.ctxs[i].window;
            if !w.is_empty() {
                let r0 = w.ring(0) as u16;
                let d0 = w.done_at_ring(r0);
                if w.flags_at(r0) & F_SER != 0 && d0 != WAITING && d0 > now {
                    return;
                }
            }
        }
        let lcpu = LogicalCpu::from_index(i);
        let asid = self.ctxs[i].asid;
        let base_seq = self.ctxs[i].window.base_seq();
        let recording = self.trace.recorder.is_some();
        let mut scan_budget = self.cfg.scheduler_scan;
        let mut r = self.ctxs[i].window.first_waiting();

        while r != NIL {
            if *issue_budget == 0 || scan_budget == 0 {
                return;
            }
            let w = &self.ctxs[i].window;
            let next = w.next_waiting(r);
            let flags = w.flags_at(r);
            let idx = w.logical_of(r);
            if flags & F_SER != 0 && idx != 0 {
                return;
            }
            scan_budget -= 1;

            let dep = w.dep_dist_at(r);
            if dep != DEP_NONE {
                if let Some(producer_seq) = (base_seq + idx as u64).checked_sub(dep as u64) {
                    if producer_seq >= base_seq {
                        let pidx = (producer_seq - base_seq) as usize;
                        if !w.is_done(pidx, now) {
                            r = next;
                            continue;
                        }
                    }
                }
            }

            let port = w.port_at(r) as usize;
            if port_budget[port] == 0 {
                r = next;
                continue;
            }

            let mut latency = w.base_lat_at(r);
            let addr = w.addr_at(r);
            if flags & F_LOAD != 0 {
                latency += self
                    .mem
                    .data_access(addr, asid, lcpu, AccessKind::Read, &mut self.bank);
            } else if flags & F_STORE != 0 {
                let _ = self
                    .mem
                    .data_access(addr, asid, lcpu, AccessKind::Write, &mut self.bank);
            }
            if recording && flags & (F_LOAD | F_STORE | F_SER) != 0 {
                // Memory and serializing issues read (and move) cache
                // state a replay could not reproduce.
                self.trace.abort_recording();
            }

            port_budget[port] -= 1;
            *issue_budget -= 1;
            self.ctxs[i]
                .window
                .mark_issued_ring(r, now + latency as u64);

            if flags & F_SER != 0 {
                return;
            }
            r = next;
        }
    }

    // ------------------------------------------------------------------
    // Redirect resolution
    // ------------------------------------------------------------------

    fn resolve_redirects(&mut self, now: u64) {
        for i in 0..2 {
            let Some(seq) = self.ctxs[i].redirect_pending else {
                continue;
            };
            let front = self.ctxs[i].front_seq();
            let resolved_at = if seq < front {
                // The branch already retired.
                Some(now)
            } else {
                let w = &self.ctxs[i].window;
                let idx = (seq - front) as usize;
                if idx >= w.len() {
                    Some(now)
                } else {
                    let d = w.done_at(idx);
                    // A waiting slot's sentinel is never <= now.
                    (d <= now).then_some(d)
                }
            };
            if let Some(at) = resolved_at {
                let penalty = self.cfg.redirect_penalty as u64;
                let ctx = &mut self.ctxs[i];
                ctx.redirect_pending = None;
                ctx.fetch_stall_until = ctx.fetch_stall_until.max(at + penalty);
                self.bank
                    .add(LogicalCpu::from_index(i), Event::FetchStallCycles, penalty);
            }
        }
    }

    // ------------------------------------------------------------------
    // Retire
    // ------------------------------------------------------------------

    fn retire_stage(&mut self, now: u64) {
        // The P4 alternates retirement between logical CPUs when both are
        // active; a lone thread retires every cycle.
        let a = self.ctxs[0].window.front_done(now);
        let b = self.ctxs[1].window.front_done(now);
        let i = match (a, b) {
            (true, true) => (now & 1) as usize,
            (true, false) => 0,
            (false, true) => 1,
            (false, false) => {
                self.bank.inc(LogicalCpu::Lp0, Event::CyclesRetire0);
                return;
            }
        };
        let lcpu = LogicalCpu::from_index(i);
        let retired = if self.tier == ExecTier::Scalar {
            self.retire_scalar(i, lcpu, now)
        } else {
            self.retire_batched(i, lcpu, now)
        };
        let hist = match retired.min(3) {
            0 => Event::CyclesRetire0,
            1 => Event::CyclesRetire1,
            2 => Event::CyclesRetire2,
            _ => Event::CyclesRetire3,
        };
        self.bank.inc(LogicalCpu::Lp0, hist);
    }

    /// Reference retirement: one counter update per retired µop.
    fn retire_scalar(&mut self, i: usize, lcpu: LogicalCpu, now: u64) -> usize {
        let mut retired = 0usize;
        while retired < self.cfg.retire_width {
            let ctx = &mut self.ctxs[i];
            if !ctx.window.front_done(now) {
                break;
            }
            let uop = ctx.window.pop_front();
            match uop.kind {
                UopKind::Load => {
                    ctx.loads_in_window -= 1;
                    self.bank.inc(lcpu, Event::LoadsRetired);
                }
                UopKind::Store => {
                    ctx.stores_in_window -= 1;
                    self.bank.inc(lcpu, Event::StoresRetired);
                }
                UopKind::AtomicRmw => {
                    ctx.loads_in_window -= 1;
                    ctx.stores_in_window -= 1;
                    self.bank.inc(lcpu, Event::LoadsRetired);
                    self.bank.inc(lcpu, Event::StoresRetired);
                }
                UopKind::Branch => self.bank.inc(lcpu, Event::BranchesRetired),
                _ => {}
            }
            self.bank.inc(lcpu, Event::UopsRetired);
            self.bank.inc(lcpu, Event::InstrRetired);
            if uop.privileged {
                self.bank.inc(lcpu, Event::UopsRetiredKernel);
            }
            retired += 1;
        }
        retired
    }

    /// Batched retirement: classify the retiring run from the flag column
    /// and apply one bulk counter add per event. Counter *values* are
    /// identical to the scalar path (addition commutes within a cycle).
    fn retire_batched(&mut self, i: usize, lcpu: LogicalCpu, now: u64) -> usize {
        let mut retired = 0usize;
        let (mut loads, mut stores, mut branches, mut kernel) = (0u64, 0u64, 0u64, 0u64);
        {
            let ctx = &mut self.ctxs[i];
            while retired < self.cfg.retire_width && ctx.window.front_done(now) {
                let r0 = ctx.window.ring(0) as u16;
                let flags = ctx.window.flags_at(r0);
                ctx.window.drop_front();
                if flags & F_LOAD != 0 {
                    ctx.loads_in_window -= 1;
                    loads += 1;
                }
                if flags & F_STORE != 0 {
                    ctx.stores_in_window -= 1;
                    stores += 1;
                }
                if flags & F_BRANCH != 0 {
                    branches += 1;
                }
                if flags & F_PRIV != 0 {
                    kernel += 1;
                }
                retired += 1;
            }
        }
        if retired > 0 {
            if loads > 0 {
                self.bank.add(lcpu, Event::LoadsRetired, loads);
            }
            if stores > 0 {
                self.bank.add(lcpu, Event::StoresRetired, stores);
            }
            if branches > 0 {
                self.bank.add(lcpu, Event::BranchesRetired, branches);
            }
            self.bank.add(lcpu, Event::UopsRetired, retired as u64);
            self.bank.add(lcpu, Event::InstrRetired, retired as u64);
            if kernel > 0 {
                self.bank.add(lcpu, Event::UopsRetiredKernel, kernel);
            }
        }
        retired
    }
}

impl jsmt_snapshot::Snapshotable for Context {
    /// The encoding predates the SoA arena and is kept byte-identical:
    /// per-slot `(µop, seq, executing?, done_at)` tuples, with sequence
    /// numbers materialized from the arena's `base_seq + index` invariant.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_bool(self.bound);
        w.put_bool(self.draining);
        w.put_u16(self.asid.0);
        self.fetch_queue.save_state(w);
        w.put_usize(self.window.len());
        for k in 0..self.window.len() {
            self.window.uop(k).write_to(w);
            w.put_u64(self.window.base_seq() + k as u64);
            let d = self.window.done_at(k);
            if d == WAITING {
                w.put_bool(false);
            } else {
                w.put_bool(true);
                w.put_u64(d);
            }
        }
        w.put_u64(self.fetch_stall_until);
        w.put_opt_u64(self.redirect_pending);
        w.put_u64(self.next_seq);
        w.put_bool(self.in_kernel);
        w.put_bool(self.starved);
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        self.bound = r.get_bool()?;
        self.draining = r.get_bool()?;
        self.asid = Asid(r.get_u16()?);
        self.fetch_queue.restore_state(r)?;
        let n = r.get_len(10)?;
        self.window.clear();
        // The waiting count/list and the load/store occupancy counts are
        // derived from the window contents, so they are recomputed rather
        // than stored (the invariants hold by construction on restore).
        self.loads_in_window = 0;
        self.stores_in_window = 0;
        for k in 0..n {
            let uop = Uop::read_from(r)?;
            let seq = r.get_u64()?;
            if k > 0 && seq != self.window.base_seq() + k as u64 {
                return Err(jsmt_snapshot::SnapshotError::Corrupt(
                    "window sequence numbers are not contiguous",
                ));
            }
            self.window.push_back(uop, seq);
            if r.get_bool()? {
                let done_at = r.get_u64()?;
                self.window.mark_issued(k, done_at);
            }
            if matches!(uop.kind, UopKind::Load | UopKind::AtomicRmw) {
                self.loads_in_window += 1;
            }
            if matches!(uop.kind, UopKind::Store | UopKind::AtomicRmw) {
                self.stores_in_window += 1;
            }
        }
        self.fetch_stall_until = r.get_u64()?;
        self.redirect_pending = r.get_opt_u64()?;
        self.next_seq = r.get_u64()?;
        self.in_kernel = r.get_bool()?;
        self.starved = r.get_bool()?;
        Ok(())
    }
}

impl jsmt_snapshot::Snapshotable for SmtCore {
    /// The pipeline/memory *configurations* are reconstruction inputs, not
    /// state, and are deliberately absent — as are the `fastfwd` toggle,
    /// the execution tier, and the trace cache/profile, none of which ever
    /// change simulated results (a restored core recompiles traces from
    /// cold and still produces bit-identical output). The one exception is
    /// a hyper-threading guard bit, so a dual-thread snapshot cannot be
    /// restored into a single-thread machine.
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.section("guard", |w| w.put_bool(self.cfg.ht_enabled));
        w.section("clock", |w| w.put_u64(self.now));
        w.section("bank", |w| self.bank.save_state(w));
        w.section("ctx0", |w| self.ctxs[0].save_state(w));
        w.section("ctx1", |w| self.ctxs[1].save_state(w));
        w.section("mem", |w| self.mem.save_state(w));
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        // Compiled traces are keyed off live machine state; a restore
        // replaces that state wholesale, so they cannot survive it.
        self.trace.invalidate_all();
        if r.section("guard")?.get_bool()? != self.cfg.ht_enabled {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "snapshot hyper-threading mode disagrees with core configuration",
            ));
        }
        self.now = r.section("clock")?.get_u64()?;
        self.bank.restore_state(&mut r.section("bank")?)?;
        self.ctxs[0].restore_state(&mut r.section("ctx0")?)?;
        self.ctxs[1].restore_state(&mut r.section("ctx1")?)?;
        self.mem.restore_state(&mut r.section("mem")?)?;
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticStream;
    use crate::Partition;
    use jsmt_perfmon::DerivedMetrics;

    /// A stream small enough to warm the caches quickly, so unit tests
    /// measure steady-state behaviour (the paper likewise drops the
    /// cold-start run from every measurement).
    fn small_stream(seed: u64) -> SyntheticStream {
        SyntheticStream::builder(seed)
            .code_footprint(4 * 1024)
            .data_footprint(16 * 1024)
            .build()
    }

    /// Run one thread for `warmup + cycles` and return the post-warmup
    /// counter deltas plus the measured cycle count.
    fn run_single(core_cfg: CoreConfig, cycles: u64, seed: u64) -> (CounterBank, u64) {
        let mut core = SmtCore::new(core_cfg, MemConfig::p4(core_cfg.ht_enabled));
        let mut stream = small_stream(seed);
        core.bind(LogicalCpu::Lp0, Asid(1));
        let warmup = 30_000;
        for _ in 0..warmup {
            core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
        }
        let snap = core.counters().clone();
        for _ in 0..cycles {
            core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
        }
        (core.counters().delta(&snap), cycles)
    }

    #[test]
    fn single_thread_makes_progress() {
        let (bank, cycles) = run_single(CoreConfig::p4(false), 20_000, 1);
        let m = DerivedMetrics::from_bank(&bank, cycles);
        assert!(m.ipc > 0.15 && m.ipc < 3.0, "ipc {}", m.ipc);
    }

    #[test]
    fn retirement_histogram_accounts_every_cycle() {
        // Every execution tier must fill exactly one histogram bucket per
        // cycle — the batched retire path books the same buckets in bulk.
        for tier in [ExecTier::Scalar, ExecTier::Batched, ExecTier::Trace] {
            let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
            core.set_exec_tier(tier);
            let mut stream = small_stream(2);
            core.bind(LogicalCpu::Lp0, Asid(1));
            for _ in 0..30_000 {
                core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
            }
            let snap = core.counters().clone();
            let cycles = 10_000;
            for _ in 0..cycles {
                core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
            }
            let bank = core.counters().delta(&snap);
            let hist = bank.total(Event::CyclesRetire0)
                + bank.total(Event::CyclesRetire1)
                + bank.total(Event::CyclesRetire2)
                + bank.total(Event::CyclesRetire3);
            assert_eq!(
                hist, cycles,
                "exactly one histogram bucket per cycle under {tier:?}"
            );
        }
    }

    /// A DRAM-bound, high-MLP stream: the window size directly limits how
    /// many misses overlap, which is where static partitioning hurts.
    fn mlp_stream(seed: u64) -> SyntheticStream {
        SyntheticStream::builder(seed)
            .code_footprint(2 * 1024)
            .data_footprint(16 * 1024 * 1024)
            .mem_fraction(0.45)
            .dep_chain(0.05)
            .branch_fraction(0.02)
            .build()
    }

    fn run_mlp(core_cfg: CoreConfig, cycles: u64, seed: u64) -> f64 {
        let mut core = SmtCore::new(core_cfg, MemConfig::p4(core_cfg.ht_enabled));
        let mut stream = mlp_stream(seed);
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..cycles {
            core.cycle(&mut |_l, buf, max| stream.fill(buf, max));
        }
        DerivedMetrics::from_bank(core.counters(), core.cycles()).ipc
    }

    #[test]
    fn static_partition_slows_a_single_thread() {
        let ipc_off = run_mlp(CoreConfig::p4(false), 80_000, 3);
        let ipc_on = run_mlp(CoreConfig::p4(true), 80_000, 3);
        assert!(
            ipc_on < ipc_off * 0.95,
            "halved window must cost IPC: on={ipc_on:.3} off={ipc_off:.3}"
        );
    }

    #[test]
    fn dynamic_partition_recovers_single_thread_ipc() {
        let cfg = CoreConfig::p4(true).with_partition(Partition::Dynamic);
        let ipc_dyn = run_mlp(cfg, 80_000, 3);
        let ipc_stat = run_mlp(CoreConfig::p4(true), 80_000, 3);
        assert!(
            ipc_dyn > ipc_stat,
            "dynamic partition should beat static for one thread: {ipc_dyn:.3} vs {ipc_stat:.3}"
        );
    }

    #[test]
    fn two_threads_beat_one_in_throughput() {
        // Same workload twice under HT vs once alone: machine IPC must rise.
        let cfg = CoreConfig::p4(true);
        let mut core = SmtCore::new(cfg, MemConfig::p4(true));
        let mut s0 = small_stream(10);
        let mut s1 = small_stream(11);
        core.bind(LogicalCpu::Lp0, Asid(1));
        core.bind(LogicalCpu::Lp1, Asid(1));
        let mut tick = |core: &mut SmtCore| {
            core.cycle(&mut |l, buf, max| match l {
                LogicalCpu::Lp0 => s0.fill(buf, max),
                LogicalCpu::Lp1 => s1.fill(buf, max),
            })
        };
        for _ in 0..30_000 {
            tick(&mut core);
        }
        let snap = core.counters().clone();
        for _ in 0..60_000 {
            tick(&mut core);
        }
        let smt_ipc = DerivedMetrics::from_bank(&core.counters().delta(&snap), 60_000).ipc;
        let (one, c_one) = run_single(CoreConfig::p4(true), 60_000, 10);
        let one_ipc = DerivedMetrics::from_bank(&one, c_one).ipc;
        assert!(
            smt_ipc > one_ipc * 1.1,
            "SMT should raise machine throughput: {smt_ipc:.3} vs {one_ipc:.3}"
        );
    }

    #[test]
    fn dual_thread_cycles_counted() {
        let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
        let mut s0 = small_stream(1);
        let mut s1 = small_stream(2);
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..100 {
            core.cycle(&mut |_l, buf, max| s0.fill(buf, max));
        }
        assert_eq!(core.counters().total(Event::DualThreadCycles), 0);
        core.bind(LogicalCpu::Lp1, Asid(1));
        for _ in 0..100 {
            core.cycle(&mut |l, buf, max| match l {
                LogicalCpu::Lp0 => s0.fill(buf, max),
                LogicalCpu::Lp1 => s1.fill(buf, max),
            });
        }
        assert_eq!(core.counters().total(Event::DualThreadCycles), 100);
    }

    #[test]
    fn drain_then_unbind() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        let mut s = small_stream(5);
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..1000 {
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
        }
        core.request_drain(LogicalCpu::Lp0);
        let mut waited = 0;
        while !core.snapshot(LogicalCpu::Lp0).drained {
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
            waited += 1;
            assert!(waited < 5000, "drain did not complete");
        }
        core.unbind(LogicalCpu::Lp0);
        assert!(!core.snapshot(LogicalCpu::Lp0).bound);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn lp1_unusable_without_ht() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        core.bind(LogicalCpu::Lp1, Asid(1));
    }

    #[test]
    fn kernel_uops_drive_os_cycles() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        let mut s = SyntheticStream::builder(6)
            .code_footprint(4 * 1024)
            .data_footprint(16 * 1024)
            .privileged(true)
            .build();
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..2000 {
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
        }
        let bank = core.counters();
        assert!(bank.total(Event::OsCycles) > 0);
        assert!(bank.total(Event::UopsRetiredKernel) > 0);
        assert_eq!(
            bank.total(Event::UopsRetiredKernel),
            bank.total(Event::UopsRetired)
        );
    }

    /// Step-by-step and fast-forwarded drivers over the same stream must
    /// agree on every cycle and every counter (the fast-forward contract;
    /// the proptest suite widens this over random configs).
    #[test]
    fn fast_forward_matches_stepwise_bit_for_bit() {
        let n = 60_000;
        let mut step = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        step.set_fast_forward(false);
        let mut s_step = mlp_stream(9);
        step.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..n {
            step.cycle(&mut |_l, buf, max| s_step.fill(buf, max));
        }

        let mut ff = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        ff.set_fast_forward(true);
        let mut s_ff = mlp_stream(9);
        ff.bind(LogicalCpu::Lp0, Asid(1));
        let mut skipped_total = 0;
        while ff.cycles() < n {
            let skipped = ff.fast_forward(n - ff.cycles());
            skipped_total += skipped;
            if skipped == 0 {
                ff.cycle(&mut |_l, buf, max| s_ff.fill(buf, max));
            }
        }
        assert_eq!(ff.cycles(), step.cycles());
        assert_eq!(ff.counters(), step.counters(), "counter banks diverged");
        assert!(
            skipped_total > n / 10,
            "a DRAM-bound stream should skip many cycles, skipped {skipped_total}"
        );
    }

    /// The fast-forward path refuses to skip while a context is draining:
    /// the OS scheduler must observe drain completion cycle-exactly.
    #[test]
    fn fast_forward_is_noop_mid_drain() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        let mut s = mlp_stream(12);
        core.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..5000 {
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
        }
        core.request_drain(LogicalCpu::Lp0);
        let mut waited = 0;
        while !core.snapshot(LogicalCpu::Lp0).drained {
            assert_eq!(
                core.fast_forward(1_000_000),
                0,
                "fast-forward must be bypassed mid-drain"
            );
            core.cycle(&mut |_l, buf, max| s.fill(buf, max));
            waited += 1;
            assert!(waited < 50_000, "drain did not complete");
        }
    }

    /// `JSMT_NO_FASTFWD=1` would disable the path at construction; the
    /// programmatic setter is equivalent and testable without env races.
    #[test]
    fn disabled_fast_forward_never_skips() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        core.set_fast_forward(false);
        assert!(!core.fast_forward_enabled());
        // Even a completely idle machine must not jump when disabled.
        assert_eq!(core.fast_forward(1000), 0);
        core.set_fast_forward(true);
        assert_eq!(core.fast_forward(1000), 1000, "idle machine skips freely");
    }

    #[test]
    fn mispredicts_cause_fetch_stalls() {
        let mk = |bias: f64| {
            SyntheticStream::builder(7)
                .code_footprint(4 * 1024)
                .data_footprint(16 * 1024)
                .branch_bias(bias)
                .build()
        };
        let predictable = mk(0.999);
        let noisy = mk(0.5);
        let run = |mut s: SyntheticStream| {
            let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
            core.bind(LogicalCpu::Lp0, Asid(1));
            for _ in 0..40_000 {
                core.cycle(&mut |_l, buf, max| s.fill(buf, max));
            }
            let snap = core.counters().clone();
            for _ in 0..40_000 {
                core.cycle(&mut |_l, buf, max| s.fill(buf, max));
            }
            let m = DerivedMetrics::from_bank(&core.counters().delta(&snap), 40_000);
            (m.ipc, m.branch_mispredict_ratio)
        };
        let (ipc_good, mr_good) = run(predictable);
        let (ipc_bad, mr_bad) = run(noisy);
        assert!(
            mr_bad > mr_good + 0.1,
            "mispredict ratios {mr_bad:.3} vs {mr_good:.3}"
        );
        assert!(
            ipc_bad < ipc_good,
            "mispredicts must cost IPC: {ipc_bad:.3} vs {ipc_good:.3}"
        );
    }

    // ------------------------------------------------------------------
    // Execution-tier differential tests
    // ------------------------------------------------------------------

    /// The trace tier defaults on (absent `JSMT_NO_TRACE_TIER=1`); the
    /// programmatic setter mirrors the env knob without env races.
    #[test]
    fn exec_tier_selection() {
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        assert!(matches!(
            core.exec_tier(),
            ExecTier::Trace | ExecTier::Batched
        ));
        core.set_exec_tier(ExecTier::Scalar);
        assert_eq!(core.exec_tier(), ExecTier::Scalar);
        assert!(!core.trace_tier_enabled());
        core.set_exec_tier(ExecTier::Trace);
        assert!(core.trace_tier_enabled());
        assert_eq!(core.trace_stats(), TraceStats::default());
    }

    /// Drive one core per execution tier through the same dual-thread
    /// workload and demand bit-identical counters and snapshot bytes (the
    /// proptest suite in `tests/hot_loop_equivalence.rs` widens this over
    /// random workloads and checkpoint cycles).
    #[test]
    fn all_tiers_agree_bit_for_bit() {
        let n = 40_000;
        let mut banks = Vec::new();
        let mut bytes = Vec::new();
        for tier in [ExecTier::Scalar, ExecTier::Batched, ExecTier::Trace] {
            let mut core = SmtCore::new(CoreConfig::p4(true), MemConfig::p4(true));
            core.set_exec_tier(tier);
            let mut s0 = mlp_stream(21);
            let mut s1 = small_stream(22);
            core.bind(LogicalCpu::Lp0, Asid(1));
            core.bind(LogicalCpu::Lp1, Asid(2));
            for _ in 0..n {
                core.cycle(&mut |l, buf, max| match l {
                    LogicalCpu::Lp0 => s0.fill(buf, max),
                    LogicalCpu::Lp1 => s1.fill(buf, max),
                });
            }
            banks.push(core.counters().clone());
            bytes.push(jsmt_snapshot::save_bytes(&core));
        }
        assert_eq!(banks[0], banks[1], "scalar vs batched counters diverged");
        assert_eq!(banks[1], banks[2], "batched vs trace counters diverged");
        assert_eq!(bytes[0], bytes[1], "scalar vs batched snapshot bytes");
        assert_eq!(bytes[1], bytes[2], "batched vs trace snapshot bytes");
    }

    /// A dense pure-compute stream — the shape the compiled-trace tier
    /// targets. Traces must actually compile and replay, and the replayed
    /// machine must stay bit-identical to a batched reference stepping
    /// every cycle.
    #[test]
    fn trace_tier_replays_bit_for_bit() {
        let n = 200_000;
        let dense = |seed| {
            SyntheticStream::builder(seed)
                .code_footprint(2 * 1024)
                .mem_fraction(0.0)
                .branch_fraction(0.0)
                .dep_chain(0.0)
                .fp_fraction(0.4)
                .build()
        };

        let mut reference = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        reference.set_exec_tier(ExecTier::Batched);
        let mut s_ref = dense(33);
        reference.bind(LogicalCpu::Lp0, Asid(1));
        for _ in 0..n {
            reference.cycle(&mut |_l, buf, max| s_ref.fill(buf, max));
        }

        // Trace tier, driven the way the system layer drives it: fills are
        // pure drains of a pending µop buffer, and a successful replay
        // consumes the matched µops from its front.
        let mut core = SmtCore::new(CoreConfig::p4(false), MemConfig::p4(false));
        core.set_exec_tier(ExecTier::Trace);
        let mut stream = dense(33);
        let mut pending: VecDeque<Uop> = VecDeque::new();
        core.bind(LogicalCpu::Lp0, Asid(1));
        while core.cycles() < n {
            // A replay only applies when the pending buffer covers every
            // fill the trace recorded (up to fetch_width × MAX_TRACE µops),
            // so keep it stocked deeper than the longest possible trace.
            while pending.len() < 4096 {
                stream.fill(&mut pending, 48);
            }
            let (cycles, consumed) = core.trace_step(n - core.cycles(), &pending);
            if cycles > 0 {
                pending.drain(..consumed);
                continue;
            }
            core.cycle(&mut |_l, buf, max| {
                let take = max.min(pending.len());
                for u in pending.drain(..take) {
                    buf.push_back(u);
                }
                take
            });
        }

        let stats = core.trace_stats();
        assert!(stats.compiled > 0, "dense stream must compile: {stats:?}");
        assert!(stats.replayed > 0, "traces must replay: {stats:?}");
        assert!(
            stats.replayed_cycles > n / 4,
            "replay should cover a large share of the run: {stats:?}"
        );
        assert_eq!(core.cycles(), reference.cycles());
        assert_eq!(
            core.counters(),
            reference.counters(),
            "trace replay diverged from stepping"
        );
        assert_eq!(
            jsmt_snapshot::save_bytes(&core),
            jsmt_snapshot::save_bytes(&reference),
            "snapshot bytes diverged after replay"
        );
    }
}
