//! The per-context fetch queue: a fixed-capacity ring buffer of µops.
//!
//! This replaces the old `VecDeque<Uop>` + intermediate scratch `Vec`
//! pair: µop sources write straight into the ring through
//! [`jsmt_isa::UopSink`], so delivery into the pipeline is a single copy
//! into a flat, cache-resident array — no reallocation, no per-cycle
//! buffer shuffling.

use jsmt_isa::{Uop, UopSink};

/// Ring capacity. The core refills at most `fill_chunk` (48) µops into a
/// queue it only refills when at least `fetch_width` slots are free, so
/// the occupancy never exceeds `fill_chunk`; 64 leaves headroom and keeps
/// the index mask a power of two.
const CAP: usize = 64;

/// Fixed-capacity FIFO of fetched µops, backed by `[Uop; 64]`.
#[derive(Clone)]
pub struct FetchQueue {
    buf: [Uop; CAP],
    head: usize,
    len: usize,
}

impl FetchQueue {
    /// An empty queue.
    pub fn new() -> Self {
        FetchQueue {
            buf: [Uop::alu(0); CAP],
            head: 0,
            len: 0,
        }
    }

    /// Number of queued µops.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free slots remaining.
    #[inline]
    pub fn free(&self) -> usize {
        CAP - self.len
    }

    /// The oldest queued µop, if any.
    #[inline]
    pub fn front(&self) -> Option<&Uop> {
        (self.len > 0).then(|| &self.buf[self.head])
    }

    /// The `k`-th queued µop counting from the front (0 = oldest).
    #[inline]
    pub fn get(&self, k: usize) -> Option<&Uop> {
        (k < self.len).then(|| &self.buf[(self.head + k) & (CAP - 1)])
    }

    /// Iterate the queued µops front to back.
    pub fn iter(&self) -> impl Iterator<Item = &Uop> {
        (0..self.len).map(move |k| &self.buf[(self.head + k) & (CAP - 1)])
    }

    /// Drop all queued µops.
    #[inline]
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Remove and return the oldest µop.
    #[inline]
    pub fn pop_front(&mut self) -> Option<Uop> {
        if self.len == 0 {
            return None;
        }
        let u = self.buf[self.head];
        self.head = (self.head + 1) & (CAP - 1);
        self.len -= 1;
        Some(u)
    }

    /// Append a µop. A full queue drops the µop (callers are contracted
    /// to respect the `max` they were given; debug builds assert).
    #[inline]
    pub fn push_back(&mut self, uop: Uop) {
        debug_assert!(self.len < CAP, "fetch queue overflow: source ignored max");
        if self.len < CAP {
            self.buf[(self.head + self.len) & (CAP - 1)] = uop;
            self.len += 1;
        }
    }
}

impl jsmt_snapshot::Snapshotable for FetchQueue {
    /// The encoding is *logical*: µops are written front-to-back and
    /// restored with `head == 0`, so two queues with the same contents at
    /// different ring offsets serialize identically (canonical bytes).
    fn save_state(&self, w: &mut jsmt_snapshot::Writer) {
        w.put_usize(self.len);
        for k in 0..self.len {
            self.buf[(self.head + k) & (CAP - 1)].write_to(w);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut jsmt_snapshot::Reader<'_>,
    ) -> Result<(), jsmt_snapshot::SnapshotError> {
        let n = r.get_usize()?;
        if n > CAP {
            return Err(jsmt_snapshot::SnapshotError::Corrupt(
                "fetch queue length exceeds capacity",
            ));
        }
        self.head = 0;
        self.len = n;
        for k in 0..n {
            self.buf[k] = Uop::read_from(r)?;
        }
        for slot in self.buf.iter_mut().skip(n) {
            *slot = Uop::alu(0);
        }
        Ok(())
    }
}

impl UopSink for FetchQueue {
    #[inline]
    fn push_uop(&mut self, uop: Uop) {
        self.push_back(uop);
    }

    /// Bulk append: one capacity check for the whole batch, then straight
    /// copies into the ring (the batch-emit fast path trace replay uses
    /// when re-materializing a verified fetch queue).
    fn push_uops(&mut self, uops: &[Uop]) {
        debug_assert!(
            self.len + uops.len() <= CAP,
            "fetch queue overflow: source ignored max"
        );
        for &u in uops.iter().take(CAP - self.len) {
            self.buf[(self.head + self.len) & (CAP - 1)] = u;
            self.len += 1;
        }
    }
}

impl Default for FetchQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FetchQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchQueue")
            .field("len", &self.len)
            .field("front_pc", &self.front().map(|u| u.pc))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_across_wraparound() {
        let mut q = FetchQueue::new();
        // Drive head deep into the ring, then push a run that wraps.
        for i in 0..50u64 {
            q.push_back(Uop::alu(i));
        }
        for i in 0..50u64 {
            assert_eq!(q.pop_front().unwrap().pc, i);
        }
        for i in 100..140u64 {
            q.push_back(Uop::alu(i));
        }
        assert_eq!(q.len(), 40);
        assert_eq!(q.front().unwrap().pc, 100);
        for i in 100..140u64 {
            assert_eq!(q.pop_front().unwrap().pc, i);
        }
        assert!(q.is_empty());
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn capacity_holds_a_full_fill_chunk() {
        let mut q = FetchQueue::new();
        for i in 0..48u64 {
            q.push_back(Uop::alu(i));
        }
        assert_eq!(q.len(), 48);
        assert!(q.free() >= 16);
    }

    #[test]
    fn full_queue_drops_excess_in_release() {
        let mut q = FetchQueue::new();
        for i in 0..CAP as u64 {
            q.push_back(Uop::alu(i));
        }
        assert_eq!(q.len(), CAP);
        // In release builds the overflow push is silently dropped; in
        // debug builds it asserts, so only exercise it there.
        if !cfg!(debug_assertions) {
            q.push_back(Uop::alu(999));
            assert_eq!(q.len(), CAP);
        }
    }
}
