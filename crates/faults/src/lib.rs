//! # jsmt-faults
//!
//! Deterministic fault injection for the jsmt experiment harness.
//!
//! The supervised experiment engine (`jsmt-core`) promises to survive,
//! attribute, and reproduce its own failures. This crate supplies the
//! failures: a [`FaultPlan`] — parsed from a compact spec string, so the
//! same plan travels through `JSMT_FAULTS`, the `--faults` flag, and a
//! crash-repro bundle — is installed process-wide, and instrumented
//! components ask it whether to misbehave. Every trigger is keyed on
//! *simulated* state (the machine cycle, an occurrence count, a scope
//! label), never on wall-clock time or thread identity, so an injected
//! failure replays bit-identically.
//!
//! ## Spec grammar
//!
//! A spec is `;`-separated clauses; each clause is `,`-separated fields,
//! the first naming the fault kind, the rest `key=value` pairs:
//!
//! ```text
//! panic,component=gc,cycle=5000,scope=pair-grid/compress+db
//! starve,cycle=2000,scope=pair-grid/jess+db,attempts=1
//! worker-panic,scope=pair-grid/db+db
//! worker-kill,scope=shard/compress+db,attempts=1
//! io-error,target=checkpoint,nth=0
//! corrupt,target=checkpoint,nth=1
//! torn,target=cache,nth=0
//! cache-corrupt,nth=2
//! cache-torn-write
//! ```
//!
//! * `panic` — `panic_any` an [`InjectedPanic`] from the named component
//!   at the first check with `cycle >= N`.
//! * `starve` — from `cycle >= N` on, the µop supply dries up (the
//!   system-level `fill` path yields nothing), livelocking the machine
//!   so forward-progress watchdogs can be exercised.
//! * `worker-panic` — the worker thread dies at job pickup, before the
//!   simulation starts.
//! * `worker-kill` — the worker **process** aborts at shard pickup
//!   (models SIGKILL/OOM-kill of a shard worker). With `nth=N` only the
//!   `N`th matching pickup dies; without it, every matching pickup does.
//! * `io-error` — the `nth` durable write to the named target fails with
//!   a synthetic `io::Error`.
//! * `corrupt` — the `nth` durable write to the named target flips one
//!   payload byte, so a later load must detect the corruption.
//! * `torn` — the `nth` durable write to the named target is truncated
//!   mid-payload (a torn write that beat the fsync), so a later load
//!   sees a short, checksum-less file.
//! * `cache-corrupt` / `cache-torn-write` — sugar for
//!   `corrupt,target=cache` / `torn,target=cache`; the drills named in
//!   the robustness CI matrix.
//!
//! `scope=LABEL` restricts a clause to one supervised cell (labels look
//! like `pair-grid/compress+db`); an unscoped clause matches everywhere.
//! `attempts=K` makes a fault *transient*: it only fires on the first
//! `K` attempts of a cell, so a supervisor retry converges to the
//! healthy output.
//!
//! ## Cost when disarmed
//!
//! Every hook starts with one relaxed atomic load; with no plan
//! installed the branch is never taken and healthy runs stay
//! bit-identical (enforced by `tests/fault_isolation.rs` in the
//! workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod fsio;

/// Durable-write target name of the persistent result cache; the
/// `cache-corrupt` / `cache-torn-write` spec sugar expands to clauses
/// with this target.
pub const CACHE_TARGET: &str = "cache";

/// One fault clause of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Only fire inside the supervised cell with this label
    /// (`None` = everywhere).
    pub scope: Option<String>,
    /// Only fire on attempt numbers `< attempts` (`None` = every
    /// attempt). `attempts=1` models a transient fault that a retry
    /// clears.
    pub attempts: Option<u32>,
}

/// The kinds of injectable failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic from `component` at the first check with `cycle >= N`.
    Panic {
        /// Instrumented component name (`system`, `gc`, …).
        component: String,
        /// Trigger cycle.
        cycle: u64,
    },
    /// Dry up the µop supply from `cycle >= N` on (livelock).
    Starve {
        /// Trigger cycle.
        cycle: u64,
    },
    /// Kill the worker at job pickup, before the simulation starts.
    WorkerPanic,
    /// Abort the worker *process* at shard pickup (models SIGKILL).
    WorkerKill {
        /// Zero-based pickup occurrence to kill (`None` = every matching
        /// pickup).
        nth: Option<u64>,
    },
    /// Fail the `nth` durable write to `target` with an `io::Error`.
    IoError {
        /// Write target name (`checkpoint`, `bundle`, `cache`).
        target: String,
        /// Zero-based occurrence to fail.
        nth: u64,
    },
    /// Flip a byte in the `nth` durable write to `target`.
    Corrupt {
        /// Write target name (`checkpoint`, `bundle`, `cache`).
        target: String,
        /// Zero-based occurrence to corrupt.
        nth: u64,
    },
    /// Truncate the `nth` durable write to `target` mid-payload.
    Torn {
        /// Write target name (`checkpoint`, `bundle`, `cache`).
        target: String,
        /// Zero-based occurrence to tear.
        nth: u64,
    },
}

/// A parsed fault plan: the clause list plus the spec it came from (kept
/// verbatim so crash bundles can carry the plan for replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    spec: String,
}

impl FaultPlan {
    /// Parse a spec string (see the crate docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            faults.push(parse_clause(clause)?);
        }
        if faults.is_empty() {
            return Err(format!("fault spec {spec:?} contains no clauses"));
        }
        Ok(FaultPlan {
            faults,
            spec: spec.to_string(),
        })
    }

    /// The spec string this plan was parsed from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The parsed clauses.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

fn parse_clause(clause: &str) -> Result<Fault, String> {
    let mut fields = clause.split(',').map(str::trim);
    let kind_name = fields.next().expect("split yields at least one field");
    let mut component = None;
    let mut cycle = None;
    let mut target = None;
    let mut nth = None::<u64>;
    let mut scope = None;
    let mut attempts = None;
    for field in fields {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("fault clause {clause:?}: field {field:?} is not key=value"))?;
        match key {
            "component" => component = Some(value.to_string()),
            "cycle" => {
                cycle =
                    Some(value.parse::<u64>().map_err(|e| {
                        format!("fault clause {clause:?}: bad cycle {value:?}: {e}")
                    })?);
            }
            "target" => target = Some(value.to_string()),
            "nth" => {
                nth = Some(
                    value
                        .parse::<u64>()
                        .map_err(|e| format!("fault clause {clause:?}: bad nth {value:?}: {e}"))?,
                );
            }
            "scope" => scope = Some(value.to_string()),
            "attempts" => {
                attempts = Some(value.parse::<u32>().map_err(|e| {
                    format!("fault clause {clause:?}: bad attempts {value:?}: {e}")
                })?);
            }
            other => {
                return Err(format!("fault clause {clause:?}: unknown key {other:?}"));
            }
        }
    }
    let kind = match kind_name {
        "panic" => FaultKind::Panic {
            component: component
                .ok_or_else(|| format!("fault clause {clause:?}: panic needs component="))?,
            cycle: cycle.ok_or_else(|| format!("fault clause {clause:?}: panic needs cycle="))?,
        },
        "starve" => FaultKind::Starve {
            cycle: cycle.ok_or_else(|| format!("fault clause {clause:?}: starve needs cycle="))?,
        },
        "worker-panic" => FaultKind::WorkerPanic,
        "worker-kill" => FaultKind::WorkerKill { nth },
        "io-error" => FaultKind::IoError {
            target: target
                .ok_or_else(|| format!("fault clause {clause:?}: io-error needs target="))?,
            nth: nth.unwrap_or(0),
        },
        "corrupt" => FaultKind::Corrupt {
            target: target
                .ok_or_else(|| format!("fault clause {clause:?}: corrupt needs target="))?,
            nth: nth.unwrap_or(0),
        },
        "torn" => FaultKind::Torn {
            target: target.ok_or_else(|| format!("fault clause {clause:?}: torn needs target="))?,
            nth: nth.unwrap_or(0),
        },
        // Sugar for the cache robustness drills: the persistent result
        // cache is the one durable target whose faults are routine
        // enough to deserve first-class spellings.
        "cache-corrupt" => FaultKind::Corrupt {
            target: CACHE_TARGET.to_string(),
            nth: nth.unwrap_or(0),
        },
        "cache-torn-write" => FaultKind::Torn {
            target: CACHE_TARGET.to_string(),
            nth: nth.unwrap_or(0),
        },
        other => return Err(format!("unknown fault kind {other:?} in clause {clause:?}")),
    };
    Ok(Fault {
        kind,
        scope,
        attempts,
    })
}

/// Panic payload of an injected `panic` fault: carries the attribution
/// the supervisor records in the failure manifest and crash bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedPanic {
    /// Component the panic fired from.
    pub component: String,
    /// Machine cycle at which it fired (the first check at or after the
    /// clause's trigger cycle — deterministic under replay).
    pub cycle: u64,
    /// Scope label active when it fired (empty when unscoped).
    pub scope: String,
}

impl fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected panic in component '{}' at cycle {} (scope '{}')",
            self.component, self.cycle, self.scope
        )
    }
}

struct PlanState {
    plan: FaultPlan,
    /// Per-clause occurrence counters for `io-error` / `corrupt`.
    write_counts: Vec<AtomicU64>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<PlanState>>> = Mutex::new(None);

thread_local! {
    /// The supervised cell this thread is currently executing
    /// (label, attempt number).
    static SCOPE: RefCell<Option<(String, u32)>> = const { RefCell::new(None) };
}

/// Install `plan` process-wide, replacing any previous plan.
pub fn install(plan: FaultPlan) {
    let n = plan.faults.len();
    let state = PlanState {
        plan,
        write_counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
    };
    *PLAN.lock().expect("fault plan lock") = Some(Arc::new(state));
    ARMED.store(true, Ordering::SeqCst);
}

/// Parse and install a spec string (see [`FaultPlan::parse`]).
///
/// # Errors
///
/// Propagates the parse error; the previous plan stays installed.
pub fn install_spec(spec: &str) -> Result<(), String> {
    install(FaultPlan::parse(spec)?);
    Ok(())
}

/// Remove the installed plan; all hooks return to their disarmed fast
/// path.
pub fn clear() {
    ARMED.store(false, Ordering::SeqCst);
    *PLAN.lock().expect("fault plan lock") = None;
}

/// The spec string of the installed plan, if any (recorded into crash
/// bundles so `repro replay-crash` can re-install it).
pub fn active_spec() -> Option<String> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    PLAN.lock()
        .expect("fault plan lock")
        .as_ref()
        .map(|s| s.plan.spec.clone())
}

fn state() -> Option<Arc<PlanState>> {
    PLAN.lock().expect("fault plan lock").clone()
}

/// Mark this thread as executing the supervised cell `label`, attempt
/// `attempt` (0-based). The previous scope is restored when the guard
/// drops, so nested supervision composes.
pub fn enter_scope(label: &str, attempt: u32) -> ScopeGuard {
    let prev = SCOPE.with(|s| s.replace(Some((label.to_string(), attempt))));
    ScopeGuard { prev }
}

/// Restores the previous fault scope on drop (see [`enter_scope`]).
pub struct ScopeGuard {
    prev: Option<(String, u32)>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        SCOPE.with(|s| *s.borrow_mut() = prev);
    }
}

/// The scope label and attempt active on this thread (empty label when
/// unscoped).
pub fn current_scope() -> (String, u32) {
    SCOPE.with(|s| s.borrow().clone().unwrap_or_default())
}

/// Does `fault` apply on this thread right now?
fn applies(fault: &Fault) -> bool {
    SCOPE.with(|s| {
        let scope = s.borrow();
        if let Some(want) = &fault.scope {
            match scope.as_ref() {
                Some((label, _)) if label == want => {}
                _ => return false,
            }
        }
        if let Some(max) = fault.attempts {
            let attempt = scope.as_ref().map(|(_, a)| *a).unwrap_or(0);
            if attempt >= max {
                return false;
            }
        }
        true
    })
}

/// Fault check for a named simulator component at machine cycle `cycle`.
/// Panics with an [`InjectedPanic`] payload when an armed `panic` clause
/// matches. Call this wherever a component is willing to die.
pub fn check_cycle(component: &str, cycle: u64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let Some(state) = state() else { return };
    for fault in &state.plan.faults {
        if let FaultKind::Panic {
            component: c,
            cycle: n,
        } = &fault.kind
        {
            if c == component && cycle >= *n && applies(fault) {
                let (scope, _) = current_scope();
                std::panic::panic_any(InjectedPanic {
                    component: component.to_string(),
                    cycle,
                    scope,
                });
            }
        }
    }
}

/// Whether an armed `starve` clause wants the µop supply dry at `cycle`.
pub fn starved(cycle: u64) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let Some(state) = state() else { return false };
    state.plan.faults.iter().any(|fault| {
        matches!(&fault.kind, FaultKind::Starve { cycle: n } if cycle >= *n) && applies(fault)
    })
}

/// Fault check at worker job pickup. Panics with an [`InjectedPanic`]
/// (component `worker`, cycle 0) when an armed `worker-panic` clause
/// matches.
pub fn check_worker() {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let Some(state) = state() else { return };
    for fault in &state.plan.faults {
        if matches!(fault.kind, FaultKind::WorkerPanic) && applies(fault) {
            let (scope, _) = current_scope();
            std::panic::panic_any(InjectedPanic {
                component: "worker".to_string(),
                cycle: 0,
                scope,
            });
        }
    }
}

/// Fault check at *shard* pickup in a worker process. When an armed
/// `worker-kill` clause matches, the process aborts — no unwinding, no
/// cleanup — exactly as a SIGKILL'd or OOM-killed worker would look to
/// the dispatcher. `nth=N` kills only the `N`th matching pickup (the
/// occurrence counter is per-process, so a respawned worker starts
/// fresh); without `nth`, every matching pickup dies and only
/// `attempts=`/`scope=` bound the blast radius.
pub fn check_worker_kill() {
    if worker_kill_fires() {
        let (scope, attempt) = current_scope();
        eprintln!("jsmt-faults: injected worker-kill at shard pickup (scope '{scope}', attempt {attempt}); aborting");
        std::process::abort();
    }
}

fn worker_kill_fires() -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let Some(state) = state() else { return false };
    let mut fired = false;
    for (i, fault) in state.plan.faults.iter().enumerate() {
        let FaultKind::WorkerKill { nth } = &fault.kind else {
            continue;
        };
        if !applies(fault) {
            continue;
        }
        let seen = state.write_counts[i].fetch_add(1, Ordering::SeqCst);
        if nth.map(|n| seen == n).unwrap_or(true) {
            fired = true;
        }
    }
    fired
}

/// Whether an armed `corrupt` clause targeting `target` fires on this
/// occurrence. This is the value-corruption twin of the durable-write
/// hook: components with no byte stream to flip (e.g. the litmus
/// harness's observation corruptor) poll it at their corruption point
/// and deterministically falsify their value when it returns `true`.
/// Occurrence counting matches durable writes — each matching clause
/// fires on exactly its `nth` poll — so use a dedicated target name.
pub fn corrupt_armed(target: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let Some(state) = state() else { return false };
    let mut fired = false;
    for (i, fault) in state.plan.faults.iter().enumerate() {
        let FaultKind::Corrupt { target: t, nth } = &fault.kind else {
            continue;
        };
        if t != target || !applies(fault) {
            continue;
        }
        let seen = state.write_counts[i].fetch_add(1, Ordering::SeqCst);
        if seen == *nth {
            fired = true;
        }
    }
    fired
}

/// How an injected fault wants the next durable write to misbehave.
#[derive(Debug)]
pub(crate) enum WriteVerdict {
    /// Fail before writing anything.
    Fail(std::io::Error),
    /// Write the full payload with one byte flipped mid-stream.
    CorruptByte,
    /// Write only a truncated prefix of the payload (torn write).
    Truncate,
}

/// Whether the next durable write to `target` should misbehave, and how.
/// Each matching clause fires on exactly its `nth` occurrence; when
/// several clauses fire on the same write the last one in the plan wins.
pub(crate) fn write_fault(target: &str) -> Option<WriteVerdict> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let state = state()?;
    let mut verdict = None;
    for (i, fault) in state.plan.faults.iter().enumerate() {
        let (t, nth, make) = match &fault.kind {
            FaultKind::IoError { target: t, nth } => (
                t, *nth, None, // built below so the error message can name the occurrence
            ),
            FaultKind::Corrupt { target: t, nth } => (t, *nth, Some(WriteVerdict::CorruptByte)),
            FaultKind::Torn { target: t, nth } => (t, *nth, Some(WriteVerdict::Truncate)),
            _ => continue,
        };
        if t != target || !applies(fault) {
            continue;
        }
        let seen = state.write_counts[i].fetch_add(1, Ordering::SeqCst);
        if seen == nth {
            verdict = Some(make.unwrap_or_else(|| {
                WriteVerdict::Fail(std::io::Error::other(format!(
                    "injected i/o error on write #{seen} to '{target}'"
                )))
            }));
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plan install/clear is process-global; serialize the tests that
    /// touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    /// Shared with `fsio::tests`, which arms plans of its own.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parses_every_kind() {
        let plan = FaultPlan::parse(
            "panic,component=gc,cycle=5000,scope=pair-grid/compress+db,attempts=1; \
             starve,cycle=100; worker-panic; io-error,target=checkpoint,nth=2; \
             corrupt,target=bundle; worker-kill,nth=3; torn,target=checkpoint,nth=1; \
             cache-corrupt,nth=2; cache-torn-write",
        )
        .expect("valid spec");
        assert_eq!(plan.faults().len(), 9);
        assert_eq!(
            plan.faults()[0],
            Fault {
                kind: FaultKind::Panic {
                    component: "gc".into(),
                    cycle: 5000
                },
                scope: Some("pair-grid/compress+db".into()),
                attempts: Some(1),
            }
        );
        assert_eq!(
            plan.faults()[3].kind,
            FaultKind::IoError {
                target: "checkpoint".into(),
                nth: 2
            }
        );
        assert_eq!(
            plan.faults()[4].kind,
            FaultKind::Corrupt {
                target: "bundle".into(),
                nth: 0
            }
        );
        assert_eq!(
            plan.faults()[5].kind,
            FaultKind::WorkerKill { nth: Some(3) }
        );
        assert_eq!(
            plan.faults()[6].kind,
            FaultKind::Torn {
                target: "checkpoint".into(),
                nth: 1
            }
        );
        // The cache drills are sugar over the generic write-target kinds.
        assert_eq!(
            plan.faults()[7].kind,
            FaultKind::Corrupt {
                target: CACHE_TARGET.into(),
                nth: 2
            }
        );
        assert_eq!(
            plan.faults()[8].kind,
            FaultKind::Torn {
                target: CACHE_TARGET.into(),
                nth: 0
            }
        );
        assert_eq!(
            FaultPlan::parse("worker-kill").unwrap().faults()[0].kind,
            FaultKind::WorkerKill { nth: None }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "panic",                      // missing component + cycle
            "panic,component=gc",         // missing cycle
            "starve",                     // missing cycle
            "io-error",                   // missing target
            "torn",                       // missing target
            "worker-kill,nth=x",          // unparseable nth
            "frobnicate,cycle=1",         // unknown kind
            "panic,component=gc,cycle=x", // unparseable number
            "panic,component=gc,cycle=1,bogus=2",
            "panic,component=gc,cycle=1,noequals",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn panic_fault_fires_only_in_matching_scope_and_attempt() {
        let _l = LOCK.lock().unwrap();
        install_spec("panic,component=system,cycle=10,scope=cell-a,attempts=1").unwrap();

        // Wrong scope: nothing happens.
        {
            let _s = enter_scope("cell-b", 0);
            check_cycle("system", 50);
        }
        // Matching scope but attempt exhausted (transient fault).
        {
            let _s = enter_scope("cell-a", 1);
            check_cycle("system", 50);
        }
        // Matching scope, cycle below threshold.
        {
            let _s = enter_scope("cell-a", 0);
            check_cycle("system", 9);
        }
        // Matching everything: must panic with the typed payload.
        let payload = std::panic::catch_unwind(|| {
            let _s = enter_scope("cell-a", 0);
            check_cycle("system", 12);
        })
        .expect_err("fault must fire");
        let injected = payload
            .downcast_ref::<InjectedPanic>()
            .expect("typed payload");
        assert_eq!(injected.component, "system");
        assert_eq!(injected.cycle, 12);
        assert_eq!(injected.scope, "cell-a");
        clear();
    }

    #[test]
    fn starve_and_worker_faults_respect_scope() {
        let _l = LOCK.lock().unwrap();
        install_spec("starve,cycle=100,scope=s; worker-panic,scope=w").unwrap();
        {
            let _s = enter_scope("s", 0);
            assert!(!starved(99));
            assert!(starved(100));
            check_worker(); // worker clause is scoped elsewhere
        }
        {
            let _s = enter_scope("w", 0);
            assert!(!starved(100));
            assert!(std::panic::catch_unwind(check_worker).is_err());
        }
        clear();
        assert!(!starved(100));
    }

    #[test]
    fn write_faults_fire_on_their_nth_occurrence() {
        let _l = LOCK.lock().unwrap();
        install_spec(
            "io-error,target=checkpoint,nth=1; corrupt,target=bundle,nth=0; \
             cache-torn-write,nth=1",
        )
        .unwrap();
        assert!(write_fault("checkpoint").is_none()); // write #0 passes
        assert!(matches!(
            write_fault("checkpoint"),
            Some(WriteVerdict::Fail(_))
        )); // #1 fails
        assert!(write_fault("checkpoint").is_none()); // #2 passes again
        assert!(matches!(
            write_fault("bundle"),
            Some(WriteVerdict::CorruptByte)
        )); // corrupt #0
        assert!(write_fault("bundle").is_none());
        assert!(write_fault(CACHE_TARGET).is_none()); // cache write #0 passes
        assert!(matches!(
            write_fault(CACHE_TARGET),
            Some(WriteVerdict::Truncate)
        )); // #1 torn
        assert!(write_fault("other").is_none());
        clear();
    }

    #[test]
    fn worker_kill_counts_pickups_and_respects_scope() {
        let _l = LOCK.lock().unwrap();
        install_spec("worker-kill,nth=1,scope=shard/a+b").unwrap();
        {
            let _s = enter_scope("shard/x+y", 0);
            assert!(!worker_kill_fires()); // wrong scope: not even counted
        }
        {
            let _s = enter_scope("shard/a+b", 0);
            assert!(!worker_kill_fires()); // pickup #0 survives
            assert!(worker_kill_fires()); // pickup #1 dies
            assert!(!worker_kill_fires()); // #2 survives (nth already spent)
        }
        install_spec("worker-kill,attempts=1,scope=shard/a+b").unwrap();
        {
            let _s = enter_scope("shard/a+b", 0);
            assert!(worker_kill_fires()); // every first-attempt pickup dies
            assert!(worker_kill_fires());
        }
        {
            let _s = enter_scope("shard/a+b", 1);
            assert!(!worker_kill_fires()); // retry attempt survives
        }
        clear();
        assert!(!worker_kill_fires());
    }

    #[test]
    fn corrupt_armed_fires_on_its_nth_poll_and_respects_scope() {
        let _l = LOCK.lock().unwrap();
        install_spec("corrupt,target=litmus-observation,nth=1,scope=cell-a").unwrap();
        {
            let _s = enter_scope("cell-a", 0);
            assert!(!corrupt_armed("litmus-observation")); // poll #0
            assert!(corrupt_armed("litmus-observation")); // poll #1 fires
            assert!(!corrupt_armed("litmus-observation")); // #2 passes
            assert!(!corrupt_armed("other-target"));
        }
        {
            let _s = enter_scope("cell-b", 0);
            assert!(!corrupt_armed("litmus-observation"));
        }
        clear();
        assert!(!corrupt_armed("litmus-observation"));
    }

    #[test]
    fn active_spec_round_trips() {
        let _l = LOCK.lock().unwrap();
        assert_eq!(active_spec(), None);
        install_spec("starve,cycle=7").unwrap();
        assert_eq!(active_spec().as_deref(), Some("starve,cycle=7"));
        clear();
        assert_eq!(active_spec(), None);
    }
}
